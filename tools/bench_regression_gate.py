#!/usr/bin/env python3
"""Bench regression gate: diff a fresh bench_micro JSON against the committed
baseline and fail CI on a real streaming-throughput regression.

Raw real_time ratios between two different machines carry the machine-speed
factor (the committed baseline is recorded wherever the last perf PR ran, CI
runs on whatever runner it gets). To first order that factor is the same for
every benchmark in a run, so the gate normalizes it away: each gated ratio
(new/base of a BM_Stream* entry) is divided by the geomean ratio of the
*anchor* benchmarks — every common benchmark outside the gated prefix
(BM_TreeBuild*, BM_MappingCost, ...). A uniformly slower runner inflates
gated and anchor ratios alike and cancels; a change that slows only the
streaming hot paths moves the gated ratios against the anchors and trips the
gate. The residual blind spot (a change slowing *everything*, anchors
included, uniformly) is covered by the uploaded artifact and perf review,
not this gate; --no-normalize gives the raw same-machine comparison.

Exit codes: 0 = within bounds (individual drifts above --warn emit GitHub
warning annotations), 1 = normalized geomean regression above --fail,
2 = usage/data error (missing files, no overlapping benchmarks).

Usage:
  bench_regression_gate.py NEW_JSON BASELINE_JSON \
      [--prefix BM_Stream [--prefix BM_Buffered ...]] \
      [--fail 0.15] [--warn 0.05] [--no-normalize]

--prefix may be repeated (or given comma-separated): a benchmark is gated
when its name starts with ANY prefix; all remaining common benchmarks are
the normalization anchors.
"""

import argparse
import json
import math
import sys


def load_benchmarks(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read '{path}': {e}", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs).
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        time = b.get("real_time")
        if name is not None and isinstance(time, (int, float)) and time > 0:
            entries[name] = float(time)
    return entries


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument("--prefix", action="append", default=None,
                        help="gate benchmarks whose name starts with any of "
                             "these (repeatable, comma-separated allowed; "
                             "default: BM_Stream)")
    parser.add_argument("--fail", type=float, default=0.15,
                        help="fail when the gated geomean regresses more than this")
    parser.add_argument("--warn", type=float, default=0.05,
                        help="annotate individual entries drifting more than this")
    parser.add_argument("--no-normalize", action="store_true",
                        help="skip the anchor normalization (same-machine diffs)")
    args = parser.parse_args()
    prefixes = []
    for entry in (args.prefix or ["BM_Stream"]):
        prefixes.extend(p for p in entry.split(",") if p)

    new = load_benchmarks(args.new_json)
    base = load_benchmarks(args.baseline_json)
    common = sorted(set(new) & set(base))
    # Benchmarks only present in the new run would silently drop out of the
    # comparison: a freshly added bench is unguarded (and missing from the
    # anchors) until the baseline is re-recorded. Surface that loudly.
    unguarded = sorted(set(new) - set(base))
    if unguarded:
        names = ", ".join(unguarded)
        print(f"::warning title=bench gate coverage::{len(unguarded)} "
              f"benchmark(s) missing from the baseline and therefore not "
              f"gated: {names} — re-record BENCH_micro_baseline.json to "
              f"guard them")
    removed = sorted(set(base) - set(new))
    if removed:
        print(f"::warning title=bench gate coverage::{len(removed)} baseline "
              f"benchmark(s) no longer produced by this run: "
              f"{', '.join(removed)}")
    ratios = {n: new[n] / base[n] for n in common}
    gated = [n for n in common if n.startswith(tuple(prefixes))]
    anchors = [n for n in common if not n.startswith(tuple(prefixes))]
    prefix_label = "|".join(prefixes)
    if not gated:
        print(f"error: no common benchmarks with prefix '{prefix_label}' "
              f"({len(common)} common overall)", file=sys.stderr)
        sys.exit(2)

    # Machine-speed factor: how much faster/slower this run's machine is on
    # the benchmarks the gate does NOT watch. Falls back to 1.0 (raw ratios)
    # when there are no anchors to estimate it from.
    machine = 1.0
    if not args.no_normalize and anchors:
        machine = geomean([ratios[n] for n in anchors])

    print(f"{'benchmark':40s} {'baseline':>12s} {'new':>12s} {'ratio':>7s} {'norm':>7s}")
    for name in common:
        norm = ratios[name] / machine
        in_gate = name.startswith(tuple(prefixes))
        marker = "  <-- slower" if in_gate and norm > 1 + args.warn else ""
        print(f"{name:40s} {base[name]:12.0f} {new[name]:12.0f} "
              f"{ratios[name]:6.2f}x {norm:6.2f}x{marker}")
        if in_gate and norm > 1 + args.warn:
            # GitHub annotation; harmless plain text outside Actions.
            print(f"::warning title=bench drift::{name} is {norm:.2f}x the "
                  f"baseline real_time (machine-normalized)")

    gated_geomean = geomean([ratios[n] for n in gated]) / machine
    print(f"\nmachine factor (geomean of {len(anchors)} anchor benchmarks): "
          f"{machine:.3f}x")
    print(f"gated geomean ({prefix_label}*, {len(gated)} benchmarks, "
          f"normalized): {gated_geomean:.3f}x baseline")
    if gated_geomean > 1 + args.fail:
        print(f"::error title=bench regression::{prefix_label}* normalized "
              f"geomean {gated_geomean:.3f}x exceeds the {1 + args.fail:.2f}x gate")
        sys.exit(1)
    if gated_geomean > 1 + args.warn:
        print(f"::warning title=bench drift::{prefix_label}* normalized geomean "
              f"{gated_geomean:.3f}x baseline (gate is {1 + args.fail:.2f}x)")
    print("bench regression gate: OK")
    sys.exit(0)


if __name__ == "__main__":
    main()
