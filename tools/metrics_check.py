#!/usr/bin/env python3
"""Validate an "oms.metrics.v1" document written by --metrics-out.

Structural checks (always): the schema id, that counters/gauges are flat
string -> non-negative-int maps, and that every histogram carries exactly 40
buckets whose sum equals its count. Content checks (per invocation):
--nonzero NAME (repeatable) asserts a specific counter, gauge, or
histogram-count is > 0 — CI uses it to prove a partition run actually
streamed through the instrumented paths, not just that the writer produced
well-formed JSON.

Exit codes: 0 = valid, 1 = validation failure, 2 = cannot read the file.

Usage:
  metrics_check.py FILE [--nonzero stream.nodes] [--nonzero stage.parse_ns]
"""

import argparse
import json
import sys

BUCKETS = 40


def fail(msg):
    print(f"metrics_check: {msg}", file=sys.stderr)
    sys.exit(1)


def check_flat_map(doc, section):
    table = doc.get(section)
    if not isinstance(table, dict) or not table:
        fail(f'"{section}" is missing or not a non-empty object')
    for name, value in table.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f'{section}["{name}"] = {value!r} is not a non-negative int')
    return table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="metrics JSON written by --metrics-out")
    parser.add_argument("--nonzero", action="append", default=[],
                        metavar="NAME",
                        help="assert this counter/gauge/histogram-count > 0 "
                             "(repeatable)")
    args = parser.parse_args()

    try:
        with open(args.file) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"metrics_check: cannot read '{args.file}': {e}",
              file=sys.stderr)
        sys.exit(2)

    if doc.get("schema") != "oms.metrics.v1":
        fail(f'schema is {doc.get("schema")!r}, want "oms.metrics.v1"')
    counters = check_flat_map(doc, "counters")
    gauges = check_flat_map(doc, "gauges")

    histograms = doc.get("histograms")
    if not isinstance(histograms, dict) or not histograms:
        fail('"histograms" is missing or not a non-empty object')
    for name, hist in histograms.items():
        if not isinstance(hist, dict):
            fail(f'histogram "{name}" is not an object')
        count, total, buckets = (hist.get("count"), hist.get("sum"),
                                 hist.get("buckets"))
        if not isinstance(count, int) or count < 0:
            fail(f'histogram "{name}" count {count!r} invalid')
        if not isinstance(total, int) or total < 0:
            fail(f'histogram "{name}" sum {total!r} invalid')
        if (not isinstance(buckets, list) or len(buckets) != BUCKETS or
                any(not isinstance(b, int) or b < 0 for b in buckets)):
            fail(f'histogram "{name}" needs exactly {BUCKETS} '
                 f'non-negative int buckets')
        if sum(buckets) != count:
            fail(f'histogram "{name}": bucket sum {sum(buckets)} != '
                 f'count {count}')

    lookup = dict(counters)
    lookup.update(gauges)
    lookup.update({name: hist["count"] for name, hist in histograms.items()})
    for name in args.nonzero:
        if name not in lookup:
            fail(f'--nonzero {name}: no such metric in the document')
        if lookup[name] == 0:
            fail(f'--nonzero {name}: metric is zero')

    checked = f"{len(counters)} counters, {len(gauges)} gauges, " \
              f"{len(histograms)} histograms"
    print(f"metrics_check: OK ({checked}"
          + (f"; nonzero: {', '.join(args.nonzero)}" if args.nonzero else "")
          + ")")
    sys.exit(0)


if __name__ == "__main__":
    main()
