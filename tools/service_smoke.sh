#!/usr/bin/env bash
# Service smoke for CI: a scripted client session against a live oms_serve
# daemon. Phase 1 partitions a generated ring on startup and serves a Unix
# socket; the python client checks WHERE/BATCH/STATS answers, an
# out-of-range id (typed kOutOfRange reply), a deliberately malformed frame
# (typed kBadFrame reply — the daemon must keep serving afterwards), asks for
# METRICS mid-session (per-opcode counters and a populated request-latency
# histogram), takes a SNAPSHOT, and sends SHUTDOWN; the daemon must then exit
# 0 on its own. Phase 2 restarts from the snapshot over the stdin/stdout
# transport and must answer the same WHERE queries identically, with METRICS
# served on that transport too.
# Phase 3 exercises the graceful drain: SIGTERM must answer the in-flight
# request, refuse new work with a typed kShuttingDown, and exit 0. Phase 4
# exercises admission control: with --max-conns 2 a third concurrent
# connection gets a typed kOverloaded verdict and the daemon keeps serving.
# Usage: service_smoke.sh <path-to-oms_serve>
set -u

serve="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

graph="$tmpdir/ring.graph"
awk 'BEGIN {
  n = 2000;
  printf "%d %d\n", n, n;
  for (i = 1; i <= n; i++) {
    l = i - 1; if (l < 1) l = n;
    r = i + 1; if (r > n) r = 1;
    printf "%d %d\n", l, r;
  }
}' > "$graph"

socket="$tmpdir/oms.sock"
snapshot="$tmpdir/snapshot.part"
failures=0

"$serve" "$graph" --k 8 --socket "$socket" 2> "$tmpdir/serve.log" &
serve_pid=$!

python3 - "$socket" "$snapshot" > "$tmpdir/socket_answers.txt" <<'EOF'
import json, socket, struct, sys, time

sock_path, snap_path = sys.argv[1], sys.argv[2]
OK, BAD_FRAME, OUT_OF_RANGE = 0, 1, 3

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
for _ in range(400):  # the daemon partitions the graph before it listens
    try:
        s.connect(sock_path)
        break
    except OSError:
        time.sleep(0.05)
else:
    sys.exit("could not connect to " + sock_path)

def send_raw(body):
    s.sendall(struct.pack("<I", len(body)) + body)

def read_exactly(n):
    buf = b""
    while len(buf) < n:
        chunk = s.recv(n - len(buf))
        if not chunk:
            sys.exit("server hung up mid-reply")
        buf += chunk
    return buf

def roundtrip(body):
    send_raw(body)
    (length,) = struct.unpack("<I", read_exactly(4))
    reply = read_exactly(length)
    return struct.unpack("<I", reply[:4])[0], reply[4:]

def expect(label, got, want):
    if got != want:
        sys.exit(f"{label}: got {got}, want {want}")

# WHERE for the first ten items: record the blocks for the restore phase.
blocks = []
for v in range(10):
    status, payload = roundtrip(struct.pack("<IQ", 1, v))
    expect(f"WHERE {v} status", status, OK)
    blocks.append(struct.unpack("<I", payload)[0])
print(" ".join(str(b) for b in blocks))

# Out-of-range id: a typed error reply, not a dropped connection.
status, _ = roundtrip(struct.pack("<IQ", 1, 1 << 60))
expect("WHERE out-of-range status", status, OUT_OF_RANGE)

# A malformed frame (one stray byte): kBadFrame, and the session survives.
status, _ = roundtrip(b"\x01")
expect("malformed frame status", status, BAD_FRAME)

# BATCH over the same ids must agree with the scalar answers.
status, payload = roundtrip(struct.pack("<II", 3, 10) +
                            b"".join(struct.pack("<Q", v) for v in range(10)))
expect("BATCH status", status, OK)
count = struct.unpack("<I", payload[:4])[0]
expect("BATCH count", count, 10)
batch = list(struct.unpack("<10I", payload[4:44]))
expect("BATCH blocks", batch, blocks)

# STATS: k and the request counter (everything above, this one included).
status, payload = roundtrip(struct.pack("<I", 4))
expect("STATS status", status, OK)
_, k, items = struct.unpack("<IIQ", payload[:16])
expect("STATS k", k, 8)
expect("STATS items", items, 2000)
requests = struct.unpack("<Q", payload[32:40])[0]
expect("STATS requests served", requests, 14)

# METRICS mid-session: the live telemetry registry over the wire. Every
# request above is visible in the per-opcode counters (WHERE = 10 answered +
# 1 out-of-range; the malformed frame lands in .invalid) and in a non-empty
# request-latency histogram. The METRICS request counts itself.
status, payload = roundtrip(struct.pack("<I", 7))
expect("METRICS status", status, OK)
(jlen,) = struct.unpack_from("<I", payload, 0)
metrics = json.loads(payload[4:4 + jlen].decode())
expect("METRICS schema", metrics["schema"], "oms.metrics.v1")
counters = metrics["counters"]
expect("METRICS service.req.where", counters["service.req.where"], 11)
expect("METRICS service.req.batch", counters["service.req.batch"], 1)
expect("METRICS service.req.stats", counters["service.req.stats"], 1)
expect("METRICS service.req.metrics", counters["service.req.metrics"], 1)
if counters["service.req.invalid"] < 1:
    sys.exit("METRICS: the malformed frame was not counted as invalid")
hist = metrics["histograms"]["service.request_ns"]
if hist["count"] < 14 or sum(hist["buckets"]) != hist["count"]:
    sys.exit(f"METRICS: implausible request latency histogram: {hist}")

# SNAPSHOT, then a clean SHUTDOWN ack.
path = snap_path.encode()
status, _ = roundtrip(struct.pack("<II", 5, len(path)) + path)
expect("SNAPSHOT status", status, OK)
status, _ = roundtrip(struct.pack("<I", 6))
expect("SHUTDOWN status", status, OK)
s.close()
EOF
client_rc=$?
if [ "$client_rc" -ne 0 ]; then
  echo "FAIL: scripted socket session"
  sed 's/^/  serve: /' "$tmpdir/serve.log"
  kill "$serve_pid" 2> /dev/null
  failures=$((failures + 1))
fi

wait "$serve_pid"
serve_rc=$?
if [ "$client_rc" -eq 0 ]; then
  if [ "$serve_rc" -ne 0 ]; then
    echo "FAIL: daemon exited $serve_rc after SHUTDOWN (want 0)"
    sed 's/^/  serve: /' "$tmpdir/serve.log"
    failures=$((failures + 1))
  else
    echo "ok   [socket session: lookups, typed errors, live metrics, snapshot, shutdown]"
  fi
fi

# Phase 2: restore from the snapshot over stdin/stdout and re-ask the same
# WHERE queries; the answers must be bit-identical to the live daemon's.
python3 - <<'EOF' > "$tmpdir/requests.bin"
import struct, sys
out = b""
for v in range(10):
    body = struct.pack("<IQ", 1, v)
    out += struct.pack("<I", len(body)) + body
body = struct.pack("<I", 7)  # METRICS (stdio transport serves it too)
out += struct.pack("<I", len(body)) + body
body = struct.pack("<I", 6)  # SHUTDOWN
out += struct.pack("<I", len(body)) + body
sys.stdout.buffer.write(out)
EOF

if "$serve" --artifact "$snapshot" < "$tmpdir/requests.bin" \
     > "$tmpdir/replies.bin" 2>> "$tmpdir/serve.log"; then
  python3 - "$tmpdir/replies.bin" <<'EOF' > "$tmpdir/restored_answers.txt"
import json, struct, sys
data = open(sys.argv[1], "rb").read()
blocks, off, saw_metrics = [], 0, False
while off < len(data):
    (length,) = struct.unpack_from("<I", data, off)
    off += 4
    reply = data[off:off + length]
    off += length
    status = struct.unpack_from("<I", reply, 0)[0]
    if status != 0:
        sys.exit(f"restored daemon replied status {status}")
    if len(reply) == 8:  # WHERE replies carry a block; the SHUTDOWN ack is bare
        blocks.append(struct.unpack_from("<I", reply, 4)[0])
    elif len(reply) > 8:  # the METRICS reply: status + string json
        (jlen,) = struct.unpack_from("<I", reply, 4)
        metrics = json.loads(reply[8:8 + jlen].decode())
        if metrics["schema"] != "oms.metrics.v1":
            sys.exit("restored METRICS: wrong schema " + metrics["schema"])
        if metrics["counters"]["service.req.where"] != 10:
            sys.exit("restored METRICS: WHERE count != 10")
        saw_metrics = True
if not saw_metrics:
    sys.exit("restored session never answered METRICS")
print(" ".join(str(b) for b in blocks))
EOF
  if cmp -s <(head -n 1 "$tmpdir/socket_answers.txt") "$tmpdir/restored_answers.txt"; then
    echo "ok   [snapshot restore answers bit-identical over stdio]"
  else
    echo "FAIL: restored answers differ from the live daemon's"
    failures=$((failures + 1))
  fi
else
  echo "FAIL: oms_serve --artifact session exited non-zero"
  failures=$((failures + 1))
fi

# Phase 3: graceful drain. SIGTERM while one request is in flight must
# answer it, hand every other session (established or new) a typed
# kShuttingDown verdict, and exit 0.
socket3="$tmpdir/oms_drain.sock"
"$serve" "$graph" --k 8 --socket "$socket3" 2> "$tmpdir/serve_drain.log" &
drain_pid=$!

python3 - "$socket3" "$drain_pid" <<'EOF'
import os, signal, socket, struct, sys, time

sock_path, pid = sys.argv[1], int(sys.argv[2])
OK, SHUTTING_DOWN = 0, 7

def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    for _ in range(400):  # the daemon partitions the graph before it listens
        try:
            s.connect(sock_path)
            return s
        except OSError:
            time.sleep(0.05)
    sys.exit("could not connect to " + sock_path)

def read_frame(s):
    buf = b""
    while len(buf) < 4:
        chunk = s.recv(4 - len(buf))
        if not chunk:
            return None  # clean close
        buf += chunk
    (length,) = struct.unpack("<I", buf)
    reply = b""
    while len(reply) < length:
        chunk = s.recv(length - len(reply))
        if not chunk:
            sys.exit("server hung up mid-reply")
        reply += chunk
    return struct.unpack("<I", reply[:4])[0]

idle = connect()
idle.sendall(struct.pack("<I", 12) + struct.pack("<IQ", 1, 3))
if read_frame(idle) != OK:
    sys.exit("pre-drain WHERE failed")

# Park a frame in flight: the full prefix plus 4 of 12 body bytes, then a
# stall — that session must be answered, not cut off, by the drain.
inflight = connect()
body = struct.pack("<IQ", 1, 7)
inflight.sendall(struct.pack("<I", len(body)) + body[:4])
time.sleep(0.3)  # let its worker start reading the body

os.kill(pid, signal.SIGTERM)

# The idle session gets one unsolicited kShuttingDown, then EOF.
if read_frame(idle) != SHUTTING_DOWN:
    sys.exit("idle session did not get the kShuttingDown verdict")
if read_frame(idle) is not None:
    sys.exit("idle session not closed after the drain verdict")
idle.close()

# A new connection during the drain is refused with the same typed verdict.
late = connect()
if read_frame(late) != SHUTTING_DOWN:
    sys.exit("late connection did not get the kShuttingDown verdict")
late.close()

# The in-flight frame is finished and answered before its session drains.
inflight.sendall(body[4:])
if read_frame(inflight) != OK:
    sys.exit("in-flight request was not answered during the drain")
if read_frame(inflight) != SHUTTING_DOWN:
    sys.exit("in-flight session did not drain after its answer")
inflight.close()
EOF
drain_client_rc=$?
if [ "$drain_client_rc" -ne 0 ]; then
  kill "$drain_pid" 2> /dev/null
fi
wait "$drain_pid"
drain_rc=$?
if [ "$drain_client_rc" -ne 0 ] || [ "$drain_rc" -ne 0 ]; then
  echo "FAIL: graceful drain (client rc $drain_client_rc, daemon rc $drain_rc, want 0)"
  sed 's/^/  serve: /' "$tmpdir/serve_drain.log"
  failures=$((failures + 1))
elif ! grep -q "drained" "$tmpdir/serve_drain.log"; then
  echo "FAIL: daemon log does not report a drain"
  sed 's/^/  serve: /' "$tmpdir/serve_drain.log"
  failures=$((failures + 1))
else
  echo "ok   [SIGTERM drain: in-flight answered, new work refused kShuttingDown, exit 0]"
fi

# Phase 4: admission control. With --max-conns 2 a third concurrent
# connection is shed with a typed kOverloaded verdict; freed slots readmit.
socket4="$tmpdir/oms_overload.sock"
"$serve" "$graph" --k 8 --socket "$socket4" --max-conns 2 \
  2> "$tmpdir/serve_overload.log" &
overload_pid=$!

python3 - "$socket4" <<'EOF'
import socket, struct, sys, time

sock_path = sys.argv[1]
OK, OVERLOADED = 0, 6

def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    for _ in range(400):
        try:
            s.connect(sock_path)
            return s
        except OSError:
            time.sleep(0.05)
    sys.exit("could not connect to " + sock_path)

def read_frame(s):
    buf = b""
    while len(buf) < 4:
        chunk = s.recv(4 - len(buf))
        if not chunk:
            return None
        buf += chunk
    (length,) = struct.unpack("<I", buf)
    reply = b""
    while len(reply) < length:
        chunk = s.recv(length - len(reply))
        if not chunk:
            sys.exit("server hung up mid-reply")
        reply += chunk
    return struct.unpack("<I", reply[:4])[0]

# Two holders fill both slots; a round trip each proves their workers are
# live, not merely queued in the listen backlog.
holders = []
for _ in range(2):
    s = connect()
    s.sendall(struct.pack("<I", 12) + struct.pack("<IQ", 1, 1))
    if read_frame(s) != OK:
        sys.exit("holder WHERE failed")
    holders.append(s)

# The third connection gets one unsolicited kOverloaded verdict, then EOF.
third = connect()
if read_frame(third) != OVERLOADED:
    sys.exit("third connection did not get the kOverloaded verdict")
if read_frame(third) is not None:
    sys.exit("shed connection not closed after the verdict")
third.close()
for s in holders:
    s.close()

# Freed slots readmit: shut down cleanly, retrying while the reaper catches
# up with the just-closed holders. A retry can itself be shed (verdict then
# close, racing our send into EPIPE) — that just means "not yet".
for _ in range(100):
    s = connect()
    try:
        s.sendall(struct.pack("<I", 4) + struct.pack("<I", 6))
        verdict = read_frame(s)
    except OSError:
        verdict = None
    s.close()
    if verdict == OK:
        sys.exit(0)
    time.sleep(0.05)
sys.exit("could not shut the daemon down after the overload check")
EOF
overload_client_rc=$?
if [ "$overload_client_rc" -ne 0 ]; then
  kill "$overload_pid" 2> /dev/null
fi
wait "$overload_pid"
overload_rc=$?
if [ "$overload_client_rc" -ne 0 ] || [ "$overload_rc" -ne 0 ]; then
  echo "FAIL: overload shedding (client rc $overload_client_rc, daemon rc $overload_rc, want 0)"
  sed 's/^/  serve: /' "$tmpdir/serve_overload.log"
  failures=$((failures + 1))
else
  echo "ok   [--max-conns 2: third connection shed kOverloaded, freed slots readmit]"
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures service smoke failure(s)"
  exit 1
fi
echo "service smoke passed"
