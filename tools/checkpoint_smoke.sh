#!/usr/bin/env bash
# Checkpoint kill/resume smoke for CI: on a generated graph, a partition_tool
# run killed by the deterministic post-snapshot crash fault must resume into
# a byte-identical partition, for the one-pass and buffered paths. Then a
# sweep of seeded fault schedules (OMS_FAULT_SEED) over the plain drivers
# checks the chaos contract end to end: exit 0 with baseline-identical
# output, or exit 1 with a clean "error:" message — never anything else.
# Usage: checkpoint_smoke.sh <path-to-partition_tool>
set -u

tool="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

graph="$tmpdir/ring.graph"
awk 'BEGIN {
  n = 5000;
  printf "%d %d\n", n, n;
  for (i = 1; i <= n; i++) {
    l = i - 1; if (l < 1) l = n;
    r = i + 1; if (r > n) r = 1;
    printf "%d %d\n", l, r;
  }
}' > "$graph"

failures=0

kill_resume() {
  local name="$1"
  shift
  local base="$tmpdir/${name}_base.txt"
  local resumed="$tmpdir/${name}_resumed.txt"
  local ckpt="$tmpdir/${name}.ckpt"
  if ! "$tool" "$graph" --k 4 "$@" --from-disk --output "$base" > /dev/null; then
    echo "FAIL [$name]: baseline run failed"
    failures=$((failures + 1))
    return
  fi
  OMS_FAULTS=checkpoint.die@1 "$tool" "$graph" --k 4 "$@" \
    --checkpoint "$ckpt" --checkpoint-every 1024 > /dev/null 2>&1
  if [ $? -ne 1 ]; then
    echo "FAIL [$name]: injected crash did not exit 1"
    failures=$((failures + 1))
    return
  fi
  if ! "$tool" "$graph" --k 4 "$@" --resume "$ckpt" \
       --output "$resumed" > /dev/null; then
    echo "FAIL [$name]: resume run failed"
    failures=$((failures + 1))
    return
  fi
  if cmp -s "$base" "$resumed"; then
    echo "ok   [$name kill/resume bit-identical]"
  else
    echo "FAIL [$name]: resumed partition differs from baseline"
    failures=$((failures + 1))
  fi
}

kill_resume oms --algo oms
kill_resume fennel --algo fennel
kill_resume buffered_lp --algo buffered --buffer-size 512
kill_resume buffered_ml --algo buffered --buffered-engine multilevel \
  --buffer-size 512

# Seeded chaos sweep over the plain drivers: clean failure or identical output.
chaos_sweep() {
  local name="$1"
  shift
  local golden="$tmpdir/${name}_golden.txt"
  if ! "$tool" "$graph" --k 4 "$@" --output "$golden" > /dev/null; then
    echo "FAIL [$name]: fault-free golden run failed"
    failures=$((failures + 1))
    return
  fi
  local seed
  for seed in 1 2 3 4 5 6 7 8; do
    local got="$tmpdir/${name}_chaos.txt"
    rm -f "$got"
    local out
    out="$(OMS_FAULT_SEED=$seed "$tool" "$graph" --k 4 "$@" \
           --output "$got" 2>&1)"
    local code=$?
    if [ "$code" -eq 0 ]; then
      if ! cmp -s "$golden" "$got"; then
        echo "FAIL [$name seed $seed]: completed with different output"
        failures=$((failures + 1))
      fi
    elif [ "$code" -eq 1 ] && printf '%s' "$out" | grep -q "error:"; then
      : # clean injected failure
    else
      echo "FAIL [$name seed $seed]: exit $code"
      echo "$out" | sed 's/^/    /'
      failures=$((failures + 1))
    fi
  done
  echo "ok   [$name chaos sweep]"
}

chaos_sweep seq --from-disk
chaos_sweep pipelined --pipeline
chaos_sweep buffered --algo buffered --from-disk --buffer-size 512
chaos_sweep window --algo window --from-disk --window-size 256

if [ "$failures" -ne 0 ]; then
  echo "$failures checkpoint smoke check(s) failed"
  exit 1
fi
echo "all checkpoint smoke checks passed"
