/// \file oms_ping.cpp
/// \brief Health check for a running oms_serve daemon, built on the
///        self-healing ServiceClient.
///
/// Usage:
///   oms_ping --socket PATH [--where ID] [--timeout MS] [--attempts N]
///
/// Sends STATS (and optionally one WHERE probe) through ServiceClient — so
/// connect/request timeouts, bounded exponential backoff with jitter, and
/// automatic reconnect on torn connections all apply — and prints a one-line
/// summary. Deployment probes call this as their liveness/readiness command.
///
/// Exit codes: 0 the daemon answered, 1 it did not (unreachable, overloaded
/// past the retry budget, shutting down, or a typed error), 2 usage errors.
#include <cstdint>
#include <iostream>
#include <string>

#include "oms/oms.hpp"

namespace {

[[noreturn]] void usage(int exit_code = 2) {
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage: oms_ping --socket PATH [--where ID] [--timeout MS] "
         "[--attempts N]\n"
         "\n"
         "Pings a running oms_serve daemon: STATS, plus an optional WHERE\n"
         "probe. Retries with bounded exponential backoff and reconnects\n"
         "through torn connections before giving up.\n"
         "\n"
         "  --socket PATH  the daemon's Unix-domain socket (required)\n"
         "  --where ID     additionally look up one id and print its block\n"
         "  --timeout MS   connect and per-request deadline (default 2000)\n"
         "  --attempts N   total tries per request (default 4)\n";
  std::exit(exit_code);
}

[[nodiscard]] std::uint64_t parse_u64_arg(const std::string& flag,
                                          const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    if (used == text.size()) {
      return value;
    }
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects a non-negative integer, got '"
            << text << "'\n";
  usage();
}

} // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool probe_where = false;
  std::uint64_t where_id = 0;
  oms::service::ClientConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " expects a value\n";
        usage();
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage(0);
    } else if (flag == "--socket") {
      socket_path = value();
    } else if (flag == "--where") {
      probe_where = true;
      where_id = parse_u64_arg("--where", value());
    } else if (flag == "--timeout") {
      const auto ms = static_cast<int>(parse_u64_arg("--timeout", value()));
      config.connect_timeout_ms = ms;
      config.request_timeout_ms = ms;
    } else if (flag == "--attempts") {
      config.max_attempts =
          static_cast<int>(parse_u64_arg("--attempts", value()));
      if (config.max_attempts < 1) {
        std::cerr << "error: --attempts expects an integer >= 1\n";
        usage();
      }
    } else {
      std::cerr << "error: unknown flag '" << flag << "'\n";
      usage();
    }
  }
  if (socket_path.empty()) {
    std::cerr << "error: --socket is required\n";
    usage();
  }

  try {
    oms::service::ServiceClient client(socket_path, config);
    const oms::service::ClientStats stats = client.stats();
    std::cout << "ok: " << stats.items << " "
              << (stats.edge_partition ? "edges" : "nodes") << " in k = "
              << stats.k << " blocks (algo " << stats.algo << "), "
              << stats.requests_served << " request(s) served";
    if (probe_where) {
      std::cout << "; where(" << where_id << ") = " << client.where(where_id);
    }
    if (client.connects() > 1) {
      std::cout << " [healed " << client.connects() - 1
                << " torn connection(s)]";
    }
    std::cout << "\n";
    return 0;
  } catch (const oms::IoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
