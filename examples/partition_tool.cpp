/// \file partition_tool.cpp
/// \brief Command-line streaming partitioner over METIS files — the shape of
///        tool a downstream user would run in an ingest pipeline.
///
/// Usage:
///   partition_tool <graph.metis> --k 64
///                  [--algo oms|fennel|ldg|hashing|window|buffered]
///                  [--hierarchy 4:16:2 --distances 1:10:100]
///                  [--epsilon 0.03] [--threads 1] [--seed 1]
///                  [--output partition.txt] [--from-disk]
///
/// With --hierarchy the tool solves process mapping (OMS) and reports J;
/// without it, plain k-way partitioning. --from-disk streams the file node
/// by node without ever materializing the graph (O(n + k) memory; one-pass
/// algorithms only). window/buffered use the in-memory graph for lookahead.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/core/online_multisection.hpp"
#include "oms/graph/io.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/metis_stream.hpp"
#include "oms/stream/window_partitioner.hpp"
#include "oms/util/memory.hpp"
#include "oms/util/timer.hpp"

namespace {

struct Options {
  std::string graph_path;
  std::string algo = "oms";
  oms::BlockId k = 0;
  std::optional<std::string> hierarchy;
  std::string distances = "1:10:100";
  double epsilon = 0.03;
  int threads = 1;
  std::uint64_t seed = 1;
  std::string output;
  bool from_disk = false;
};

[[noreturn]] void usage() {
  std::cerr << "usage: partition_tool <graph.metis> --k K [--algo "
               "oms|fennel|ldg|hashing]\n"
               "                      [--hierarchy a1:a2:... --distances "
               "d1:d2:...]\n"
               "                      [--epsilon E] [--threads T] [--seed S]\n"
               "                      [--output FILE] [--from-disk]\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  if (argc < 2) {
    usage();
  }
  opt.graph_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "--k") {
      opt.k = static_cast<oms::BlockId>(std::stol(value()));
    } else if (arg == "--algo") {
      opt.algo = value();
    } else if (arg == "--hierarchy") {
      opt.hierarchy = value();
    } else if (arg == "--distances") {
      opt.distances = value();
    } else if (arg == "--epsilon") {
      opt.epsilon = std::stod(value());
    } else if (arg == "--threads") {
      opt.threads = std::stoi(value());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--output") {
      opt.output = value();
    } else if (arg == "--from-disk") {
      opt.from_disk = true;
    } else {
      usage();
    }
  }
  return opt;
}

std::unique_ptr<oms::OnePassAssigner> make_assigner(const Options& opt, oms::NodeId n,
                                                    oms::EdgeIndex m,
                                                    oms::NodeWeight total_weight) {
  using namespace oms;
  PartitionConfig pc;
  pc.k = opt.k;
  pc.epsilon = opt.epsilon;
  pc.seed = opt.seed;
  if (opt.algo == "fennel") {
    return std::make_unique<FennelPartitioner>(n, m, total_weight, pc);
  }
  if (opt.algo == "ldg") {
    return std::make_unique<LdgPartitioner>(n, total_weight, pc);
  }
  if (opt.algo == "hashing") {
    return std::make_unique<HashingPartitioner>(n, total_weight, pc);
  }
  if (opt.algo == "oms") {
    OmsConfig config;
    config.epsilon = opt.epsilon;
    config.seed = opt.seed;
    if (opt.hierarchy.has_value()) {
      const SystemHierarchy topo =
          SystemHierarchy::parse(*opt.hierarchy, opt.distances);
      return std::make_unique<OnlineMultisection>(n, m, total_weight, topo, config);
    }
    return std::make_unique<OnlineMultisection>(n, m, total_weight, opt.k, config);
  }
  usage();
}

} // namespace

int main(int argc, char** argv) {
  using namespace oms;
  Options opt = parse_args(argc, argv);

  std::optional<SystemHierarchy> topo;
  if (opt.hierarchy.has_value()) {
    topo = SystemHierarchy::parse(*opt.hierarchy, opt.distances);
    opt.k = topo->num_pes();
  }
  if (opt.k < 1) {
    std::cerr << "error: need --k or --hierarchy\n";
    return 2;
  }

  StreamResult result;
  Timer total;
  if (opt.from_disk) {
    // True streaming: only the header is read ahead of time.
    MetisNodeStream probe(opt.graph_path);
    const MetisHeader header = probe.header();
    auto assigner = make_assigner(opt, header.num_nodes, header.num_edges,
                                  static_cast<NodeWeight>(header.num_nodes));
    result = run_one_pass_from_file(opt.graph_path, *assigner);
    std::cout << "streamed " << header.num_nodes << " nodes from disk"
              << " (peak RSS " << peak_rss_bytes() / (1024 * 1024) << " MB)\n";
    std::cout << "assignment time: " << result.elapsed_s << " s (total "
              << total.elapsed_s() << " s)\n";
  } else {
    const CsrGraph graph = read_metis(opt.graph_path);
    if (opt.algo == "window") {
      WindowConfig wc;
      wc.epsilon = opt.epsilon;
      wc.seed = opt.seed;
      WindowPartitioner window(graph.num_nodes(), graph.total_node_weight(), graph,
                               wc, opt.k);
      result = run_one_pass(graph, window, 1);
    } else if (opt.algo == "buffered") {
      BufferedConfig bc;
      bc.epsilon = opt.epsilon;
      bc.seed = opt.seed;
      const BufferedResult br = buffered_partition(graph, opt.k, bc);
      result.assignment = br.assignment;
      result.elapsed_s = br.elapsed_s;
    } else {
      auto assigner = make_assigner(opt, graph.num_nodes(), graph.num_edges(),
                                    graph.total_node_weight());
      result = run_one_pass(graph, *assigner, opt.threads);
    }
    std::cout << "n = " << graph.num_nodes() << ", m = " << graph.num_edges()
              << ", k = " << opt.k << ", algo = " << opt.algo << "\n";
    std::cout << "edge-cut:  " << edge_cut(graph, result.assignment) << "\n";
    std::cout << "imbalance: " << imbalance(graph, result.assignment, opt.k) << "\n";
    if (topo.has_value()) {
      std::cout << "mapping J: "
                << mapping_cost(graph, *topo, result.assignment, opt.threads) << "\n";
    }
    std::cout << "time:      " << result.elapsed_s << " s\n";
  }

  if (!opt.output.empty()) {
    std::ofstream out(opt.output);
    for (const BlockId b : result.assignment) {
      out << b << '\n';
    }
    std::cout << "partition written to " << opt.output << "\n";
  }
  return 0;
}
