/// \file partition_tool.cpp
/// \brief Command-line streaming partitioner over METIS *node* streams and
///        SNAP-style *edge-list* streams — the shape of tool a downstream
///        user would run in an ingest pipeline.
///
/// The tool is a thin shell around the unified API: oms::cli::parse_request
/// maps the flags onto an oms::PartitionRequest, oms::Partitioner executes
/// it, and the PartitionArtifact that comes back carries the assignment and
/// every reported metric. oms_serve consumes the same two entry points, so
/// a partition served by the daemon is bit-identical to this tool's output
/// for the same flags.
///
/// METIS inputs are partitioned by node (edge-cut / process-mapping
/// objectives); edge-list inputs are partitioned by *vertex-cut* (hdrf, dbh,
/// grid2d — replication-factor objective), always streaming one pass from
/// disk. The format is autodetected from the extension (.edgelist, .el,
/// .edges, .snap = edge list) and forced with --format.
///
/// With --hierarchy the tool solves process mapping: OMS with J for node
/// streams, hierarchical HDRF with the weighted replica cost for edge
/// streams. --from-disk streams the file node by node without ever
/// materializing the graph: O(n + k) memory for the one-pass algorithms,
/// O(n + window + k) for the sliding window and O(n + buffer + k) for the
/// buffered model (the O(n) term is the assignment itself). --pipeline
/// (implies --from-disk) overlaps parsing with assignment: a dedicated
/// reader thread parses batches while --io-threads consumer threads assign
/// them (1, the default, keeps the sequential stream order bit-for-bit;
/// window, buffered and vertex-cut assignment are inherently sequential, so
/// there the pipeline overlaps parsing only).
///
/// Fault tolerance: --checkpoint snapshots the run every --checkpoint-every
/// streamed nodes (one-pass algorithms and buffered; sequential disk
/// streaming only) and --resume continues a killed run bit-identically.
/// --on-error=skip tolerates up to --error-budget malformed data lines
/// instead of aborting on the first one. OMS_FAULTS / OMS_FAULT_SEED arm the
/// deterministic fault-injection schedule (test harness).
///
/// Observability: --metrics-out FILE writes the full telemetry registry as
/// one "oms.metrics.v1" JSON document after the run; --progress prints a
/// stderr heartbeat (items/s, percent done, ETA) while streaming. Both leave
/// stdout byte-identical to a plain run.
///
/// Exit codes: 0 success, 1 malformed input content (IoError), 2 usage.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "oms/oms.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/memory.hpp"
#include "oms/util/timer.hpp"

namespace {

[[noreturn]] void usage(int exit_code = 2) {
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage: partition_tool <graph> --k K [--format metis|edgelist]\n"
         "                      [--algo oms|fennel|ldg|hashing|window|buffered"
         "    (metis)\n"
         "                             |hdrf|dbh|grid2d]                      "
         "    (edgelist)\n"
         "                      [--hierarchy a1:a2:... --distances "
         "d1:d2:...]\n"
         "                      [--epsilon E] [--lambda L] [--threads T] "
         "[--seed S]\n"
         "                      [--buffer-size N] [--refine-iters N] "
         "[--window-size N]\n"
         "                      [--buffered-engine lp|multilevel]\n"
         "                      [--output FILE] [--from-disk]\n"
         "                      [--pipeline] [--io-threads T] [--watchdog-ms MS]\n"
         "                      [--checkpoint FILE] [--checkpoint-every N]\n"
         "                      [--resume FILE]\n"
         "                      [--on-error abort|skip] [--error-budget N]\n"
         "                      [--metrics-out FILE] [--progress]\n";
  std::exit(exit_code);
}

/// The advisory notes the tool has always printed for thread flags that the
/// selected execution path cannot exploit. Inspecting the *normalized*
/// request keeps them accurate without re-implementing any dispatch logic.
void print_thread_notes(const oms::PartitionRequest& req) {
  if (req.format == "edgelist") {
    if (req.threads > 1 || req.io_threads > 1) {
      std::cerr << "note: vertex-cut assignment is sequential; --pipeline "
                   "overlaps parsing only (ignoring thread counts > 1)\n";
    }
    return;
  }
  if (req.from_disk) {
    if (req.threads > 1) {
      std::cerr << "note: the disk stream is sequential; ignoring --threads "
                << req.threads << " (use --pipeline --io-threads for "
                   "parse/assign overlap)\n";
    }
    if (req.algo == "buffered" && req.pipeline && req.io_threads != 1) {
      std::cerr << "note: buffered model building is sequential; --pipeline "
                   "overlaps parsing only (ignoring --io-threads "
                << req.io_threads << ")\n";
    }
    return;
  }
  if (req.threads > 1 && req.algo == "window") {
    std::cerr << "note: sliding-window partitioning is sequential; "
                 "--threads only affects the mapping-cost evaluation\n";
  }
  if (req.threads > 1 && req.algo == "buffered") {
    std::cerr << "note: buffered partitioning is sequential; --threads "
                 "only affects the mapping-cost evaluation\n";
  }
}

/// One stdout line of merged WorkCounters (node one-pass routes; buffered
/// and edge runs carry none). Printed on every run — with or without
/// --metrics-out — so instrumented runs stay byte-identical on stdout.
void print_work_line(const oms::WorkCounters& work) {
  if (work.total() == 0) {
    return;
  }
  std::cout << "work: " << work.score_evaluations << " score evals, "
            << work.neighbor_visits << " neighbor visits, "
            << work.layers_traversed << " layers\n";
}

void print_summary(const oms::PartitionRequest& req,
                   const oms::PartitionArtifact& artifact, double total_s) {
  if (artifact.skip_stats.lines_skipped > 0) {
    std::cerr << "note: skipped " << artifact.skip_stats.lines_skipped
              << " malformed line(s) (--on-error skip); first at line "
              << artifact.skip_stats.first_line << ": "
              << artifact.skip_stats.first_message << "\n";
  }
  if (artifact.edge_partition) {
    std::cout << "streamed " << artifact.num_edges << " edges over "
              << artifact.num_nodes << " vertices from disk"
              << (req.pipeline ? " (pipelined)" : "") << ", k = " << artifact.k
              << ", algo = " << req.algo
              << (artifact.hierarchy.has_value() ? " (hierarchical)" : "")
              << "\n";
    if (artifact.self_loops_skipped > 0) {
      std::cout << "self-loops skipped: " << artifact.self_loops_skipped << "\n";
    }
    std::cout << "replication factor: " << artifact.metrics.replication_factor
              << "\n";
    std::cout << "edge imbalance:     " << artifact.metrics.edge_imbalance
              << "\n";
    if (artifact.hierarchy.has_value()) {
      std::cout << "replica cost (hier): " << artifact.metrics.replica_cost
                << "\n";
    }
    std::cout << "assignment time: " << artifact.elapsed_s << " s (total "
              << total_s << " s, peak RSS "
              << oms::peak_rss_bytes() / (1024 * 1024) << " MB)\n";
    return;
  }
  if (req.from_disk) {
    std::cout << "streamed " << artifact.num_nodes << " nodes from disk"
              << (req.pipeline ? " (pipelined)" : "") << " (peak RSS "
              << oms::peak_rss_bytes() / (1024 * 1024) << " MB)\n";
    std::cout << "assignment time: " << artifact.elapsed_s << " s (total "
              << total_s << " s)\n";
    print_work_line(artifact.work);
    return;
  }
  std::cout << "n = " << artifact.num_nodes << ", m = " << artifact.num_edges
            << ", k = " << artifact.k << ", algo = " << req.algo << "\n";
  std::cout << "edge-cut:  " << artifact.metrics.edge_cut << "\n";
  std::cout << "imbalance: " << artifact.metrics.imbalance << "\n";
  if (artifact.hierarchy.has_value()) {
    std::cout << "mapping J: " << artifact.metrics.mapping_j << "\n";
  }
  std::cout << "time:      " << artifact.elapsed_s << " s\n";
  print_work_line(artifact.work);
}

int run_tool(const oms::cli::CliRequest& cli) {
  // Normalizing up front (idempotent; partition() re-runs it) resolves the
  // format/algo defaults the notes and the summary report on.
  const oms::PartitionRequest req = oms::Partitioner::normalize(cli.request);
  print_thread_notes(req);

  // Telemetry is armed only when something will consume it; a plain run
  // keeps every hook on its one-relaxed-load fast path.
  std::optional<oms::telemetry::MetricsRegistry> registry;
  if (!cli.metrics_out.empty() || cli.progress) {
    registry.emplace();
    oms::telemetry::MetricsRegistry::arm(*registry);
  }

  oms::Timer total;
  oms::PartitionArtifact artifact;
  {
    // Scoped so the heartbeat thread stops (and prints its final line)
    // before the summary; --progress writes stderr only.
    std::unique_ptr<oms::telemetry::ProgressReporter> progress;
    if (cli.progress) {
      progress = std::make_unique<oms::telemetry::ProgressReporter>();
    }
    artifact = oms::Partitioner().partition(req);
  }
  print_summary(req, artifact, total.elapsed_s());

  if (!cli.metrics_out.empty()) {
    std::ofstream out(cli.metrics_out);
    out << registry->scrape().to_json() << '\n';
    out.flush();
    if (!out.good()) {
      std::cerr << "error: cannot write metrics to '" << cli.metrics_out
                << "'\n";
      return 2;
    }
  }

  if (!cli.output.empty()) {
    std::ofstream out(cli.output);
    for (const oms::BlockId b : artifact.assignment) {
      out << b << '\n';
    }
    out.flush();
    if (!out.good()) {
      std::cerr << "error: cannot write partition to '" << cli.output << "'\n";
      return 2;
    }
    std::cout << (artifact.edge_partition ? "edge partition" : "partition")
              << " written to " << cli.output << "\n";
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  oms::cli::CliRequest cli;
  try {
    cli = oms::cli::parse_request(argc, argv);
  } catch (const oms::cli::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
  }
  if (cli.help) {
    usage(0);
  }
  try {
    // Deterministic fault injection for the chaos harness: OMS_FAULTS (an
    // explicit site@n schedule) or OMS_FAULT_SEED (a seeded random plan).
    // Unset in production, this arms nothing and every hook stays a no-op.
    oms::FaultPlan::arm_from_env();
    return run_tool(cli);
  } catch (const oms::InvalidRequest& e) {
    // The request itself cannot be executed: a usage problem, like a flag
    // combination the drivers do not support. No usage dump — the message
    // names the one thing to fix.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const oms::IoError& e) {
    // Malformed graph *content* (bad header, out-of-range neighbor, missing
    // edge weight, ...) is a user-input problem: report and exit non-zero
    // instead of letting the library abort.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::bad_alloc&) {
    // Also a user-input problem in practice: a graph (or an edge list whose
    // max vertex id sizes the dense streaming state) too large for this
    // machine must fail cleanly, not SIGABRT through std::terminate.
    std::cerr << "error: out of memory loading '" << cli.request.graph_path
              << "'\n";
    return 1;
  }
}
