/// \file partition_tool.cpp
/// \brief Command-line streaming partitioner over METIS *node* streams and
///        SNAP-style *edge-list* streams — the shape of tool a downstream
///        user would run in an ingest pipeline.
///
/// Usage:
///   partition_tool <graph.metis> --k 64
///                  [--format metis|edgelist]
///                  [--algo oms|fennel|ldg|hashing|window|buffered
///                         |hdrf|dbh|grid2d]
///                  [--hierarchy 4:16:2 --distances 1:10:100]
///                  [--epsilon 0.03] [--lambda 1.1] [--threads 1] [--seed 1]
///                  [--buffer-size 4096] [--refine-iters 3]
///                  [--buffered-engine lp|multilevel]
///                  [--window-size 1024]
///                  [--output partition.txt] [--from-disk]
///                  [--pipeline] [--io-threads 1] [--watchdog-ms 0]
///                  [--checkpoint ckpt.bin] [--checkpoint-every 65536]
///                  [--resume ckpt.bin]
///                  [--on-error abort|skip] [--error-budget 100]
///
/// METIS inputs are partitioned by node (edge-cut / process-mapping
/// objectives); edge-list inputs are partitioned by *vertex-cut* (hdrf, dbh,
/// grid2d — replication-factor objective), always streaming one pass from
/// disk. The format is autodetected from the extension (.edgelist, .el,
/// .edges, .snap = edge list) and forced with --format.
///
/// With --hierarchy the tool solves process mapping: OMS with J for node
/// streams, hierarchical HDRF with the weighted replica cost for edge
/// streams. --from-disk streams the file node by node without ever
/// materializing the graph: O(n + k) memory for the one-pass algorithms,
/// O(n + window + k) for the sliding window and O(n + buffer + k) for the
/// buffered model (the O(n) term is the assignment itself). --pipeline
/// (implies --from-disk) overlaps parsing with assignment: a dedicated
/// reader thread parses batches while --io-threads consumer threads assign
/// them (1, the default, keeps the sequential stream order bit-for-bit;
/// window, buffered and vertex-cut assignment are inherently sequential, so
/// there the pipeline overlaps parsing only).
///
/// Fault tolerance: --checkpoint snapshots the run every --checkpoint-every
/// streamed nodes (one-pass algorithms and buffered; sequential disk
/// streaming only) and --resume continues a killed run bit-identically.
/// --on-error=skip tolerates up to --error-budget malformed data lines
/// instead of aborting on the first one. OMS_FAULTS / OMS_FAULT_SEED arm the
/// deterministic fault-injection schedule (test harness).
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/core/online_multisection.hpp"
#include "oms/edgepart/dbh.hpp"
#include "oms/edgepart/driver.hpp"
#include "oms/edgepart/grid2d.hpp"
#include "oms/edgepart/hdrf.hpp"
#include "oms/edgepart/hierarchical_hdrf.hpp"
#include "oms/graph/io.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/buffered_stream_driver.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/stream/error_policy.hpp"
#include "oms/stream/metis_stream.hpp"
#include "oms/stream/pipeline.hpp"
#include "oms/stream/window_partitioner.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"
#include "oms/util/memory.hpp"
#include "oms/util/timer.hpp"

namespace {

struct Options {
  std::string graph_path;
  std::string format = "auto"; ///< auto | metis | edgelist
  std::string algo;            ///< default depends on format (oms / hdrf)
  oms::BlockId k = 0;
  std::optional<std::string> hierarchy;
  std::string distances = "1:10:100";
  double epsilon = 0.03;
  double lambda = 1.1;
  int threads = 1;
  std::uint64_t seed = 1;
  long buffer_size = 4096;  ///< buffered model: nodes per buffer
  long refine_iters = 3;    ///< buffered model: refinement budget multiplier
  std::optional<std::string> buffered_engine; ///< lp | multilevel
  long window_size = 1024;  ///< sliding window: delayed nodes
  std::string output;
  bool from_disk = false;
  bool pipeline = false;
  int io_threads = 1;
  std::uint64_t watchdog_ms = 0;      ///< pipeline queue watchdog; 0 = off
  std::string checkpoint;             ///< snapshot path; empty = disabled
  std::uint64_t checkpoint_every = 65536; ///< snapshot cadence (streamed nodes)
  std::string resume;                 ///< checkpoint to resume from
  std::string on_error = "abort";     ///< abort | skip (malformed data lines)
  std::uint64_t error_budget = 100;   ///< max skipped lines under --on-error skip
};

[[noreturn]] void usage(int exit_code = 2) {
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage: partition_tool <graph> --k K [--format metis|edgelist]\n"
         "                      [--algo oms|fennel|ldg|hashing|window|buffered"
         "    (metis)\n"
         "                             |hdrf|dbh|grid2d]                      "
         "    (edgelist)\n"
         "                      [--hierarchy a1:a2:... --distances "
         "d1:d2:...]\n"
         "                      [--epsilon E] [--lambda L] [--threads T] "
         "[--seed S]\n"
         "                      [--buffer-size N] [--refine-iters N] "
         "[--window-size N]\n"
         "                      [--buffered-engine lp|multilevel]\n"
         "                      [--output FILE] [--from-disk]\n"
         "                      [--pipeline] [--io-threads T] [--watchdog-ms MS]\n"
         "                      [--checkpoint FILE] [--checkpoint-every N]\n"
         "                      [--resume FILE]\n"
         "                      [--on-error abort|skip] [--error-budget N]\n";
  std::exit(exit_code);
}

/// Edge-list extensions autodetected when --format is not given.
bool looks_like_edge_list(const std::string& path) {
  const std::string ext = std::filesystem::path(path).extension().string();
  return ext == ".edgelist" || ext == ".el" || ext == ".edges" || ext == ".snap";
}

Options parse_args(int argc, char** argv) {
  Options opt;
  if (argc < 2) {
    usage();
  }
  if (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h") {
    usage(0);
  }
  opt.graph_path = argv[1];
  int i = 2;
  const auto value = [&]() -> std::string {
    if (i + 1 >= argc) {
      usage();
    }
    return argv[++i];
  };
  // Shared numeric validation: a typo'd value should print usage, not abort
  // with an uncaught exception or silently accept a partial parse ("1O").
  const auto parsed_value = [&](auto parse) {
    const std::string text = value();
    try {
      std::size_t pos = 0;
      const auto parsed = parse(text, pos);
      if (pos != text.size()) {
        usage();
      }
      return parsed;
    } catch (const std::exception&) {
      usage();
    }
  };
  const auto long_value = [&] {
    return parsed_value(
        [](const std::string& s, std::size_t& p) { return std::stol(s, &p); });
  };
  const auto double_value = [&] {
    return parsed_value(
        [](const std::string& s, std::size_t& p) { return std::stod(s, &p); });
  };
  const auto int_value = [&]() -> int {
    const long parsed = long_value();
    if (parsed < std::numeric_limits<int>::min() ||
        parsed > std::numeric_limits<int>::max()) {
      usage();
    }
    return static_cast<int>(parsed);
  };
  const auto u64_value = [&] {
    return parsed_value([](const std::string& s, std::size_t& p) -> std::uint64_t {
      // stoull silently wraps negative input; only bare digits qualify.
      if (s.empty() || s[0] < '0' || s[0] > '9') {
        throw std::invalid_argument("not a decimal uint64");
      }
      return static_cast<std::uint64_t>(std::stoull(s, &p));
    });
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--k") {
      opt.k = static_cast<oms::BlockId>(int_value());
    } else if (arg == "--algo") {
      opt.algo = value();
    } else if (arg == "--format") {
      opt.format = value();
      if (opt.format != "metis" && opt.format != "edgelist") {
        usage();
      }
    } else if (arg == "--lambda") {
      opt.lambda = double_value();
    } else if (arg == "--hierarchy") {
      opt.hierarchy = value();
    } else if (arg == "--distances") {
      opt.distances = value();
    } else if (arg == "--epsilon") {
      opt.epsilon = double_value();
    } else if (arg == "--threads") {
      opt.threads = int_value();
    } else if (arg == "--seed") {
      opt.seed = u64_value();
    } else if (arg == "--buffer-size") {
      opt.buffer_size = long_value();
    } else if (arg == "--buffered-engine") {
      opt.buffered_engine = value();
      if (*opt.buffered_engine != "lp" && *opt.buffered_engine != "multilevel") {
        std::cerr << "error: --buffered-engine must be 'lp' or 'multilevel' (got '"
                  << *opt.buffered_engine << "')\n";
        usage();
      }
    } else if (arg == "--refine-iters") {
      opt.refine_iters = long_value();
    } else if (arg == "--window-size") {
      opt.window_size = long_value();
    } else if (arg == "--output") {
      opt.output = value();
    } else if (arg == "--from-disk") {
      opt.from_disk = true;
    } else if (arg == "--pipeline") {
      opt.pipeline = true;
      opt.from_disk = true;
    } else if (arg == "--io-threads") {
      opt.io_threads = int_value();
    } else if (arg == "--watchdog-ms") {
      opt.watchdog_ms = u64_value();
    } else if (arg == "--checkpoint") {
      opt.checkpoint = value();
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = u64_value();
    } else if (arg == "--resume") {
      opt.resume = value();
    } else if (arg == "--on-error") {
      opt.on_error = value();
      if (opt.on_error != "abort" && opt.on_error != "skip") {
        std::cerr << "error: --on-error must be 'abort' or 'skip' (got '"
                  << opt.on_error << "')\n";
        usage();
      }
    } else if (arg == "--error-budget") {
      opt.error_budget = u64_value();
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      usage();
    }
  }
  return opt;
}

std::unique_ptr<oms::OnePassAssigner> make_assigner(const Options& opt, oms::NodeId n,
                                                    oms::EdgeIndex m,
                                                    oms::NodeWeight total_weight) {
  using namespace oms;
  PartitionConfig pc;
  pc.k = opt.k;
  pc.epsilon = opt.epsilon;
  pc.seed = opt.seed;
  if (opt.algo == "fennel") {
    return std::make_unique<FennelPartitioner>(n, m, total_weight, pc);
  }
  if (opt.algo == "ldg") {
    return std::make_unique<LdgPartitioner>(n, total_weight, pc);
  }
  if (opt.algo == "hashing") {
    return std::make_unique<HashingPartitioner>(n, total_weight, pc);
  }
  if (opt.algo == "window") {
    WindowConfig wc;
    wc.window_size = static_cast<NodeId>(opt.window_size);
    wc.epsilon = opt.epsilon;
    wc.seed = opt.seed;
    return std::make_unique<WindowPartitioner>(n, total_weight, wc, opt.k);
  }
  if (opt.algo == "oms") {
    OmsConfig config;
    config.epsilon = opt.epsilon;
    config.seed = opt.seed;
    if (opt.hierarchy.has_value()) {
      const SystemHierarchy topo =
          SystemHierarchy::parse(*opt.hierarchy, opt.distances);
      return std::make_unique<OnlineMultisection>(n, m, total_weight, topo, config);
    }
    return std::make_unique<OnlineMultisection>(n, m, total_weight, opt.k, config);
  }
  usage();
}

oms::BufferedConfig buffered_config(const Options& opt,
                                    const std::optional<oms::SystemHierarchy>& topo) {
  oms::BufferedConfig bc;
  bc.buffer_size = static_cast<oms::NodeId>(opt.buffer_size);
  bc.epsilon = opt.epsilon;
  bc.seed = opt.seed;
  bc.refinement_iterations = static_cast<int>(opt.refine_iters);
  if (opt.buffered_engine.has_value() && *opt.buffered_engine == "multilevel") {
    bc.engine = oms::BufferedEngine::kMultilevel;
  }
  if (topo.has_value()) {
    // Buffered streaming then optimizes the mapping objective J directly
    // (distance-weighted gains) instead of plain edge cut.
    bc.hierarchy = &*topo;
  }
  return bc;
}

int run_tool(Options opt);
int run_edge_tool(const Options& opt,
                  const std::optional<oms::SystemHierarchy>& topo);

} // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    // Deterministic fault injection for the chaos harness: OMS_FAULTS (an
    // explicit site@n schedule) or OMS_FAULT_SEED (a seeded random plan).
    // Unset in production, this arms nothing and every hook stays a no-op.
    oms::FaultPlan::arm_from_env();
    return run_tool(opt);
  } catch (const oms::IoError& e) {
    // Malformed graph *content* (bad header, out-of-range neighbor, missing
    // edge weight, ...) is a user-input problem: report and exit non-zero
    // instead of letting the library abort.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::bad_alloc&) {
    // Also a user-input problem in practice: a graph (or an edge list whose
    // max vertex id sizes the dense streaming state) too large for this
    // machine must fail cleanly, not SIGABRT through std::terminate.
    std::cerr << "error: out of memory loading '" << opt.graph_path << "'\n";
    return 1;
  }
}

namespace {

int run_tool(Options opt) {
  using namespace oms;

  if (opt.format == "auto") {
    opt.format = looks_like_edge_list(opt.graph_path) ? "edgelist" : "metis";
  }
  const bool edge_list = opt.format == "edgelist";
  if (opt.algo.empty()) {
    opt.algo = edge_list ? "hdrf" : "oms";
  }
  const bool edge_algo =
      opt.algo == "hdrf" || opt.algo == "dbh" || opt.algo == "grid2d";
  if (edge_list != edge_algo) {
    std::cerr << "error: --algo " << opt.algo << " needs --format "
              << (edge_algo ? "edgelist" : "metis") << "\n";
    return 2;
  }

  std::optional<SystemHierarchy> topo;
  if (opt.hierarchy.has_value()) {
    topo = SystemHierarchy::parse(*opt.hierarchy, opt.distances);
    opt.k = topo->num_pes();
  }
  if (opt.k < 1) {
    std::cerr << "error: need --k or --hierarchy\n";
    return 2;
  }
  if (opt.buffered_engine.has_value() && opt.algo != "buffered") {
    std::cerr << "error: --buffered-engine requires --algo buffered\n";
    return 2;
  }
  // Checkpoint/resume gating: the checkpointing drivers are the sequential
  // disk streamers for the one-pass algorithms and the buffered model.
  const bool checkpointing = !opt.checkpoint.empty() || !opt.resume.empty();
  if (checkpointing) {
    if (edge_list) {
      std::cerr << "error: --checkpoint/--resume support METIS node streams "
                   "only (not edge lists)\n";
      return 2;
    }
    if (opt.pipeline) {
      std::cerr << "error: --checkpoint/--resume are incompatible with "
                   "--pipeline (the checkpointing driver is sequential)\n";
      return 2;
    }
    if (opt.algo == "window") {
      std::cerr << "error: --algo window does not support "
                   "--checkpoint/--resume (window state is not "
                   "checkpointable)\n";
      return 2;
    }
    if (opt.checkpoint_every < 1) {
      std::cerr << "error: --checkpoint-every must be >= 1\n";
      return 2;
    }
    opt.from_disk = true; // checkpoints reference a byte offset in the file
  }
  const bool skip_errors = opt.on_error == "skip";
  if (skip_errors && !edge_list && !opt.from_disk) {
    std::cerr << "error: --on-error skip applies to streaming runs; add "
                 "--from-disk (or use an edge-list input)\n";
    return 2;
  }
  if (skip_errors && opt.algo == "buffered") {
    std::cerr << "error: --on-error skip is not supported with --algo "
                 "buffered\n";
    return 2;
  }
  if (!std::isfinite(opt.epsilon) || opt.epsilon < 0.0) {
    // The partitioners OMS_ASSERT on negative slack (and NaN fails every
    // capacity comparison); reject both here instead.
    std::cerr << "error: --epsilon must be a finite value >= 0\n";
    return 2;
  }
  constexpr long kMaxNodeCount = std::numeric_limits<NodeId>::max();
  if (opt.buffer_size < 1 || opt.buffer_size > kMaxNodeCount) {
    std::cerr << "error: --buffer-size must be in [1, " << kMaxNodeCount << "]\n";
    return 2;
  }
  if (opt.refine_iters < 0 || opt.refine_iters > std::numeric_limits<int>::max()) {
    std::cerr << "error: --refine-iters must be >= 0\n";
    return 2;
  }
  if (opt.window_size < 1 || opt.window_size > kMaxNodeCount) {
    std::cerr << "error: --window-size must be in [1, " << kMaxNodeCount << "]\n";
    return 2;
  }
  // Unsupported combinations get exactly one diagnostic each. Window and
  // buffered now stream from disk like the one-pass algorithms; the only
  // structural limit left is that both commit nodes in stream order, so the
  // pipeline can overlap parsing but never fan assignment out.
  if (opt.algo == "window" && opt.pipeline && opt.io_threads != 1) {
    std::cerr << "error: --algo window is sequential; --pipeline supports only "
                 "--io-threads 1\n";
    return 2;
  }
  // The loaders raise IoError on unopenable files, but a bad path deserves
  // the usage-level exit code (2), not the malformed-content one (1).
  // Directories open "successfully" on Linux, so reject them explicitly.
  // FIFOs (process substitution, mkfifo pipelines) must NOT be probe-opened —
  // the open/close would SIGPIPE the writer — so only regular files get the
  // readability probe.
  std::error_code fs_error;
  const std::filesystem::file_status graph_status =
      std::filesystem::status(opt.graph_path, fs_error);
  if (fs_error || std::filesystem::is_directory(graph_status) ||
      (std::filesystem::is_regular_file(graph_status) &&
       !std::ifstream(opt.graph_path).good())) {
    std::cerr << "error: cannot open graph file '" << opt.graph_path << "'\n";
    return 2;
  }
  if (!edge_list && opt.from_disk &&
      !std::filesystem::is_regular_file(graph_status)) {
    // --from-disk opens the file twice (header probe, then the full stream),
    // which a FIFO cannot replay. (The edge-list path opens it exactly once,
    // so it has no such restriction.)
    std::cerr << "error: --from-disk needs a regular file, not a pipe\n";
    return 2;
  }
  if (edge_list) {
    return run_edge_tool(opt, topo);
  }

  StreamResult result;
  Timer total;
  if (opt.from_disk) {
    if (opt.threads > 1) {
      std::cerr << "note: the disk stream is sequential; ignoring --threads "
                << opt.threads << " (use --pipeline --io-threads for "
                   "parse/assign overlap)\n";
    }
    if (opt.io_threads < 0) {
      std::cerr << "error: --io-threads must be >= 0 (0 = all hardware threads)\n";
      return 2;
    }
    if (opt.algo == "buffered" && opt.pipeline && opt.io_threads != 1) {
      std::cerr << "note: buffered model building is sequential; --pipeline "
                   "overlaps parsing only (ignoring --io-threads "
                << opt.io_threads << ")\n";
    }
    // True streaming: only the header is read ahead of time. Capacity bounds
    // assume unit node weights (total = n), which the header lets us check.
    MetisNodeStream probe(opt.graph_path);
    const MetisHeader header = probe.header();
    if (header.has_node_weights) {
      std::cerr << "error: --from-disk assumes unit node weights; this graph "
                   "has node weights (load it without --from-disk)\n";
      return 2;
    }
    // Resume validation happens up front, against the header of the *actual*
    // input: a checkpoint from a different algorithm, k, seed or graph is a
    // usage error (exit 2), not a mid-stream IoError (exit 1).
    const std::string ckpt_algo =
        opt.algo == "buffered"
            ? std::string(buffered_checkpoint_algo_id(buffered_config(opt, topo)))
            : opt.algo;
    std::optional<CheckpointState> resume_state;
    if (!opt.resume.empty()) {
      try {
        resume_state = read_checkpoint_file(opt.resume);
        validate_resume(resume_state->meta, ckpt_algo,
                        static_cast<std::uint64_t>(opt.k), opt.seed,
                        header.num_nodes);
      } catch (const IoError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    }
    const CheckpointState* resume_ptr =
        resume_state.has_value() ? &*resume_state : nullptr;
    CheckpointConfig ckpt;
    ckpt.path = opt.checkpoint;
    ckpt.every_nodes = opt.checkpoint_every;

    StreamErrorPolicy error_policy;
    error_policy.action = skip_errors ? StreamErrorPolicy::Action::kSkip
                                      : StreamErrorPolicy::Action::kAbort;
    error_policy.skip_budget = opt.error_budget;
    StreamErrorStats skip_stats;

    if (opt.algo == "buffered") {
      // The buffered model has its own driver: whole buffers are modeled and
      // refined jointly, with the pipeline parsing the next buffers ahead.
      BufferedResult br;
      if (opt.pipeline) {
        PipelineConfig pipeline;
        pipeline.watchdog_ms = opt.watchdog_ms;
        br = buffered_partition_from_file(opt.graph_path, opt.k,
                                          buffered_config(opt, topo), pipeline);
      } else if (checkpointing) {
        br = buffered_partition_from_file_resumable(opt.graph_path, opt.k,
                                                    buffered_config(opt, topo),
                                                    ckpt, resume_ptr);
      } else {
        br = buffered_partition_from_file(opt.graph_path, opt.k,
                                          buffered_config(opt, topo));
      }
      result.assignment = std::move(br.assignment);
      result.elapsed_s = br.elapsed_s;
    } else {
      auto assigner = make_assigner(opt, header.num_nodes, header.num_edges,
                                    static_cast<NodeWeight>(header.num_nodes));
      if (opt.pipeline) {
        PipelineConfig pipeline;
        pipeline.assign_threads = opt.io_threads;
        pipeline.watchdog_ms = opt.watchdog_ms;
        pipeline.error_policy = error_policy;
        pipeline.error_stats_out = &skip_stats;
        result = run_one_pass_from_file(opt.graph_path, *assigner, pipeline);
      } else {
        // The sequential disk path is the checkpointing driver; with no
        // --checkpoint/--resume it degenerates to the plain one-pass loop.
        MetisNodeStream stream(opt.graph_path, MetisNodeStream::kDefaultBufferBytes);
        stream.set_error_policy(error_policy);
        result = run_one_pass_resumable(stream, *assigner, ckpt_algo, opt.seed,
                                        ckpt, resume_ptr);
        skip_stats = stream.error_stats();
      }
    }
    if (skip_stats.lines_skipped > 0) {
      std::cerr << "note: skipped " << skip_stats.lines_skipped
                << " malformed line(s) (--on-error skip); first at line "
                << skip_stats.first_line << ": " << skip_stats.first_message
                << "\n";
    }
    std::cout << "streamed " << header.num_nodes << " nodes from disk"
              << (opt.pipeline ? " (pipelined)" : "") << " (peak RSS "
              << peak_rss_bytes() / (1024 * 1024) << " MB)\n";
    std::cout << "assignment time: " << result.elapsed_s << " s (total "
              << total.elapsed_s() << " s)\n";
  } else {
    const CsrGraph graph = read_metis(opt.graph_path);
    if (opt.algo == "window") {
      if (opt.threads > 1) {
        std::cerr << "note: sliding-window partitioning is sequential; "
                     "--threads only affects the mapping-cost evaluation\n";
      }
      auto window = make_assigner(opt, graph.num_nodes(), graph.num_edges(),
                                  graph.total_node_weight());
      result = run_one_pass(graph, *window, 1);
    } else if (opt.algo == "buffered") {
      if (opt.threads > 1) {
        std::cerr << "note: buffered partitioning is sequential; --threads "
                     "only affects the mapping-cost evaluation\n";
      }
      BufferedResult br =
          buffered_partition(graph, opt.k, buffered_config(opt, topo));
      result.assignment = std::move(br.assignment);
      result.elapsed_s = br.elapsed_s;
    } else {
      auto assigner = make_assigner(opt, graph.num_nodes(), graph.num_edges(),
                                    graph.total_node_weight());
      result = run_one_pass(graph, *assigner, opt.threads);
    }
    std::cout << "n = " << graph.num_nodes() << ", m = " << graph.num_edges()
              << ", k = " << opt.k << ", algo = " << opt.algo << "\n";
    std::cout << "edge-cut:  " << edge_cut(graph, result.assignment) << "\n";
    std::cout << "imbalance: " << imbalance(graph, result.assignment, opt.k) << "\n";
    if (topo.has_value()) {
      std::cout << "mapping J: "
                << mapping_cost(graph, *topo, result.assignment, opt.threads) << "\n";
    }
    std::cout << "time:      " << result.elapsed_s << " s\n";
  }

  if (!opt.output.empty()) {
    std::ofstream out(opt.output);
    for (const BlockId b : result.assignment) {
      out << b << '\n';
    }
    out.flush();
    if (!out.good()) {
      std::cerr << "error: cannot write partition to '" << opt.output << "'\n";
      return 2;
    }
    std::cout << "partition written to " << opt.output << "\n";
  }
  return 0;
}

/// The vertex-cut path: stream the edge list one pass from disk through an
/// edgepart assigner and report the replication-factor objectives.
/// \p topo was parsed by run_tool (which also set opt.k to its PE count).
int run_edge_tool(const Options& opt,
                  const std::optional<oms::SystemHierarchy>& topo) {
  using namespace oms;

  if (topo.has_value() && opt.algo != "hdrf") {
    std::cerr << "error: --hierarchy with an edge list requires --algo hdrf "
                 "(hierarchical HDRF)\n";
    return 2;
  }
  if (!std::isfinite(opt.lambda) || opt.lambda < 0.0) {
    std::cerr << "error: --lambda must be a finite value >= 0\n";
    return 2;
  }
  if (opt.threads > 1 || opt.io_threads > 1) {
    std::cerr << "note: vertex-cut assignment is sequential; --pipeline "
                 "overlaps parsing only (ignoring thread counts > 1)\n";
  }
  if (opt.io_threads < 0) {
    std::cerr << "error: --io-threads must be >= 0 (0 = all hardware threads)\n";
    return 2;
  }

  EdgePartConfig config;
  config.k = opt.k;
  config.lambda = opt.lambda;
  config.epsilon = opt.epsilon;
  config.seed = opt.seed;
  std::unique_ptr<StreamingEdgePartitioner> partitioner;
  if (topo.has_value()) {
    partitioner = std::make_unique<HierarchicalHdrfPartitioner>(*topo, config);
  } else if (opt.algo == "hdrf") {
    partitioner = std::make_unique<HdrfPartitioner>(config);
  } else if (opt.algo == "dbh") {
    partitioner = std::make_unique<DbhPartitioner>(config);
  } else {
    partitioner = std::make_unique<Grid2dPartitioner>(config);
  }

  StreamErrorPolicy error_policy;
  error_policy.action = opt.on_error == "skip" ? StreamErrorPolicy::Action::kSkip
                                               : StreamErrorPolicy::Action::kAbort;
  error_policy.skip_budget = opt.error_budget;
  StreamErrorStats skip_stats;

  Timer total;
  EdgePartitionResult result;
  if (opt.pipeline) {
    PipelineConfig pipeline;
    pipeline.watchdog_ms = opt.watchdog_ms;
    pipeline.error_policy = error_policy;
    pipeline.error_stats_out = &skip_stats;
    result = run_edge_partition_from_file(opt.graph_path, *partitioner, pipeline);
  } else {
    result = run_edge_partition_from_file(opt.graph_path, *partitioner,
                                          error_policy, &skip_stats);
  }
  if (skip_stats.lines_skipped > 0) {
    std::cerr << "note: skipped " << skip_stats.lines_skipped
              << " malformed line(s) (--on-error skip); first at line "
              << skip_stats.first_line << ": " << skip_stats.first_message
              << "\n";
  }

  std::cout << "streamed " << result.stats.num_edges << " edges over "
            << result.stats.num_vertices << " vertices from disk"
            << (opt.pipeline ? " (pipelined)" : "") << ", k = "
            << partitioner->num_blocks() << ", algo = " << opt.algo
            << (topo.has_value() ? " (hierarchical)" : "") << "\n";
  if (result.stats.self_loops_skipped > 0) {
    std::cout << "self-loops skipped: " << result.stats.self_loops_skipped
              << "\n";
  }
  std::cout << "replication factor: " << replication_factor(partitioner->replicas())
            << "\n";
  std::cout << "edge imbalance:     " << edge_imbalance(partitioner->edge_loads())
            << "\n";
  if (topo.has_value()) {
    std::cout << "replica cost (hier): "
              << hierarchical_replica_cost(partitioner->replicas(), *topo) << "\n";
  }
  std::cout << "assignment time: " << result.elapsed_s << " s (total "
            << total.elapsed_s() << " s, peak RSS "
            << peak_rss_bytes() / (1024 * 1024) << " MB)\n";

  if (!opt.output.empty()) {
    std::ofstream out(opt.output);
    for (const BlockId b : result.edge_assignment) {
      out << b << '\n';
    }
    out.flush();
    if (!out.good()) {
      std::cerr << "error: cannot write partition to '" << opt.output << "'\n";
      return 2;
    }
    std::cout << "edge partition written to " << opt.output << "\n";
  }
  return 0;
}

} // namespace
