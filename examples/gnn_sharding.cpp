/// \file gnn_sharding.cpp
/// \brief The motivating scenario from the paper's introduction: hierarchical
///        partitionings for "distributed hybrid CPU and GPU training of graph
///        neural networks on billion-scale graphs" [41] — at laptop scale.
///
/// A social-network graph is sharded across a cluster of machines, each
/// hosting several GPUs: hierarchy S = gpus_per_machine : machines. Mini-batch
/// GNN training pays for every edge whose endpoints live on different GPUs —
/// much more when the GPUs sit in different machines (NVLink vs Ethernet).
/// The example compares single-pass sharding strategies by estimated epoch
/// communication.
///
///   $ ./examples/gnn_sharding [machines] [gpus_per_machine]
#include <cstdlib>
#include <iostream>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/table.hpp"

int main(int argc, char** argv) {
  using namespace oms;

  const std::int64_t machines = argc > 1 ? std::atol(argv[1]) : 8;
  const std::int64_t gpus = argc > 2 ? std::atol(argv[2]) : 4;
  // NVLink-ish intra-machine cost 1, Ethernet-ish cross-machine cost 20.
  const SystemHierarchy cluster({gpus, machines}, {1, 20});

  std::cout << "Cluster: " << machines << " machines x " << gpus
            << " GPUs (k = " << cluster.num_pes() << " shards)\n";
  const CsrGraph social = gen::barabasi_albert(1u << 17, 8, /*seed=*/2022);
  std::cout << "Social graph: n = " << social.num_nodes()
            << ", m = " << social.num_edges() << " (BA, skewed degrees)\n\n";

  TablePrinter table({"sharding", "epoch comm (J)", "cross-machine edges",
                      "cut edges", "time [ms]"});

  const auto report = [&](const char* name, const std::vector<BlockId>& shard,
                          double seconds) {
    const auto volume = per_level_volume(social, cluster, shard);
    table.add_row({name, TablePrinter::cell(mapping_cost(social, cluster, shard)),
                   TablePrinter::cell(volume[2] / 2),
                   TablePrinter::cell(edge_cut(social, shard)),
                   TablePrinter::cell(seconds * 1e3)});
  };

  {
    OmsConfig config;
    OnlineMultisection oms(social.num_nodes(), social.num_edges(),
                           social.total_node_weight(), cluster, config);
    const StreamResult r = run_one_pass(social, oms, 1);
    report("OMS (topology-aware)", r.assignment, r.elapsed_s);
  }
  {
    PartitionConfig pc;
    pc.k = cluster.num_pes();
    FennelPartitioner fennel(social.num_nodes(), social.num_edges(),
                             social.total_node_weight(), pc);
    const StreamResult r = run_one_pass(social, fennel, 1);
    report("Fennel (flat k-way)", r.assignment, r.elapsed_s);
  }
  {
    PartitionConfig pc;
    pc.k = cluster.num_pes();
    HashingPartitioner hashing(social.num_nodes(), social.total_node_weight(), pc);
    const StreamResult r = run_one_pass(social, hashing, 1);
    report("Hashing (random)", r.assignment, r.elapsed_s);
  }
  table.print(std::cout);

  std::cout << "\nA topology-aware single-pass shard keeps hot subgraphs inside "
               "machines:\nsame ingest cost as Fennel-style streaming, but the "
               "expensive cross-machine\ntraffic drops because the multi-section "
               "splits across machines *first*.\n";
  return 0;
}
