/// \file oms_serve.cpp
/// \brief Partition-as-a-service daemon: ingest a graph once (or restore a
///        snapshot), then answer lookup queries over the frame protocol.
///
/// Usage:
///   oms_serve <graph> [partitioning flags of partition_tool] [--socket PATH]
///   oms_serve --artifact FILE [--socket PATH]
///
/// The daemon builds its immutable partition artifact exactly like
/// partition_tool would (same flags, same oms::Partitioner facade, so the
/// served assignment is bit-identical to the tool's output), or restores one
/// from a snapshot written by a previous SNAPSHOT request / write_artifact().
/// It then serves WHERE / RANK / BATCH / STATS / SNAPSHOT / SHUTDOWN frames
/// (see service/protocol.hpp for the grammar) until a client sends SHUTDOWN:
///  * --socket PATH  — Unix-domain socket, one thread per connection;
///  * default        — a single session on stdin/stdout (protocol bytes own
///                     stdout; every human-readable message goes to stderr).
///
/// Telemetry is always armed: the METRICS opcode returns live counters and
/// per-opcode latency histograms on both transports. --metrics-out FILE
/// additionally writes the final registry as JSON at shutdown; --progress
/// narrates the build phase on stderr.
///
/// Production hardening: the socket transport admits at most --max-conns
/// concurrent sessions (excess connections get a typed kOverloaded reply),
/// --idle-timeout MS reclaims workers from stalled or dead peers, SIGPIPE is
/// ignored (a client hanging up mid-reply costs one connection, not the
/// daemon), and SIGTERM/SIGINT drain gracefully: stop admitting, answer
/// in-flight requests, reply kShuttingDown to anything new, exit 0.
///
/// Exit codes match partition_tool: 0 clean shutdown or drain, 1 on IoError
/// (bad graph content, unreadable artifact, live socket path), 2 on usage
/// errors.
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "oms/oms.hpp"

namespace {

[[noreturn]] void usage(int exit_code = 2) {
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage: oms_serve <graph> [partitioning flags] [--socket PATH]\n"
         "       oms_serve --artifact FILE [--socket PATH]\n"
         "\n"
         "Builds (or restores) a partition artifact, then answers\n"
         "WHERE/RANK/BATCH/STATS/SNAPSHOT/SHUTDOWN frames until SHUTDOWN\n"
         "or a SIGTERM/SIGINT drain. Partitioning flags are those of\n"
         "partition_tool (--k, --algo, --hierarchy, --from-disk, ...).\n"
         "\n"
         "  --artifact FILE  serve a snapshot instead of partitioning\n"
         "  --socket PATH    listen on a Unix-domain socket (default:\n"
         "                   one session on stdin/stdout)\n"
         "  --max-conns N    concurrent connection cap on the socket\n"
         "                   transport; excess connections are shed with a\n"
         "                   typed kOverloaded reply (default 64)\n"
         "  --idle-timeout MS  close a connection that makes no progress\n"
         "                     for MS milliseconds (default 0 = never)\n"
         "  --metrics-out FILE  write the telemetry registry as JSON at\n"
         "                      shutdown (METRICS serves it live either way)\n"
         "  --progress          stderr heartbeat while building the artifact\n";
  std::exit(exit_code);
}

struct ServeCliOptions {
  std::string artifact; ///< restore this snapshot instead of partitioning
  std::string socket;   ///< empty = stdin/stdout session
  int max_conns = 64;
  int idle_timeout_ms = 0;
};

/// Parse a non-negative integer flag value; exits 2 on garbage.
[[nodiscard]] int parse_count(const std::string& flag, const std::string& text,
                              int min_value) {
  try {
    std::size_t used = 0;
    const int value = std::stoi(text, &used);
    if (used == text.size() && value >= min_value) {
      return value;
    }
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects an integer >= " << min_value
            << ", got '" << text << "'\n";
  usage();
}

/// SIGTERM/SIGINT: request a graceful drain. Async-signal-safe (one relaxed
/// atomic store); the serve loops notice within one poll slice.
void on_drain_signal(int) { oms::service::request_drain(); }

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_drain_signal; // NOLINT: union member per sigaction(2)
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0; // no SA_RESTART: blocking accept/poll must wake for drain
  (void)::sigaction(SIGTERM, &sa, nullptr);
  (void)::sigaction(SIGINT, &sa, nullptr);
  // A client that hangs up mid-reply must cost one EPIPE write error, never
  // the process: socket writes already use MSG_NOSIGNAL, this covers the
  // stdio transport's plain write(2).
  (void)std::signal(SIGPIPE, SIG_IGN);
}

} // namespace

int main(int argc, char** argv) {
  oms::cli::CliRequest cli;
  ServeCliOptions serve;
  try {
    cli = oms::cli::parse_request(
        argc, argv,
        [&serve](const std::string& flag, const oms::cli::ValueFn& value) {
          if (flag == "--artifact") {
            serve.artifact = value();
            return true;
          }
          if (flag == "--socket") {
            serve.socket = value();
            return true;
          }
          if (flag == "--max-conns") {
            serve.max_conns = parse_count("--max-conns", value(), 1);
            return true;
          }
          if (flag == "--idle-timeout") {
            serve.idle_timeout_ms = parse_count("--idle-timeout", value(), 0);
            return true;
          }
          return false;
        });
  } catch (const oms::cli::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
  }
  if (cli.help) {
    usage(0);
  }
  if (!cli.output.empty()) {
    std::cerr << "error: --output belongs to partition_tool; use a SNAPSHOT "
                 "request (or --artifact) with oms_serve\n";
    return 2;
  }
  if (!serve.artifact.empty() && !cli.request.graph_path.empty()) {
    std::cerr << "error: give either a graph to partition or --artifact, "
                 "not both\n";
    return 2;
  }

  // The daemon always arms telemetry: METRICS must answer with live data on
  // any session, and the hooks' armed cost is per-batch/per-request, far off
  // the lookup fast path.
  oms::telemetry::MetricsRegistry registry;
  oms::telemetry::MetricsRegistry::arm(registry);

  try {
    oms::PartitionArtifact artifact;
    {
      std::unique_ptr<oms::telemetry::ProgressReporter> progress;
      if (cli.progress) {
        progress = std::make_unique<oms::telemetry::ProgressReporter>();
      }
      if (!serve.artifact.empty()) {
        artifact = oms::read_artifact(serve.artifact);
      } else {
        artifact = oms::Partitioner().partition(cli.request);
      }
    }
    if (!serve.artifact.empty()) {
      std::cerr << "restored artifact '" << serve.artifact << "'";
    } else {
      std::cerr << "partitioned '" << cli.request.graph_path << "' in "
                << artifact.elapsed_s << " s";
    }
    std::cerr << ": " << artifact.assignment.size() << " "
              << (artifact.edge_partition ? "edges" : "nodes") << " in k = "
              << artifact.k << " blocks (algo " << artifact.algo << ")\n";

    const oms::service::PartitionService service(std::move(artifact));
    install_signal_handlers();
    if (!serve.socket.empty()) {
      oms::service::ServeOptions transport;
      transport.max_conns = serve.max_conns;
      transport.idle_timeout_ms = serve.idle_timeout_ms;
      std::cerr << "listening on '" << serve.socket << "' (max "
                << transport.max_conns << " connection(s)";
      if (transport.idle_timeout_ms > 0) {
        std::cerr << ", idle timeout " << transport.idle_timeout_ms << " ms";
      }
      std::cerr << ")\n";
      oms::service::serve_unix_socket(service, serve.socket, transport);
    } else {
      std::cerr << "serving one session on stdin/stdout\n";
      oms::service::SessionOptions session;
      session.idle_timeout_ms = serve.idle_timeout_ms;
      (void)oms::service::serve_stream(service, 0, 1, session);
    }
    std::cerr << (oms::service::drain_requested() ? "drained" : "shutdown")
              << " after " << service.requests_served() << " request(s)\n";
    if (!cli.metrics_out.empty()) {
      std::ofstream out(cli.metrics_out);
      out << registry.scrape().to_json() << '\n';
      out.flush();
      if (!out.good()) {
        std::cerr << "error: cannot write metrics to '" << cli.metrics_out
                  << "'\n";
        return 2;
      }
    }
    return 0;
  } catch (const oms::InvalidRequest& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const oms::IoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::bad_alloc&) {
    std::cerr << "error: out of memory building the served artifact\n";
    return 1;
  }
}
