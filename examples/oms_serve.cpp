/// \file oms_serve.cpp
/// \brief Partition-as-a-service daemon: ingest a graph once (or restore a
///        snapshot), then answer lookup queries over the frame protocol.
///
/// Usage:
///   oms_serve <graph> [partitioning flags of partition_tool] [--socket PATH]
///   oms_serve --artifact FILE [--socket PATH]
///
/// The daemon builds its immutable partition artifact exactly like
/// partition_tool would (same flags, same oms::Partitioner facade, so the
/// served assignment is bit-identical to the tool's output), or restores one
/// from a snapshot written by a previous SNAPSHOT request / write_artifact().
/// It then serves WHERE / RANK / BATCH / STATS / SNAPSHOT / SHUTDOWN frames
/// (see service/protocol.hpp for the grammar) until a client sends SHUTDOWN:
///  * --socket PATH  — Unix-domain socket, one thread per connection;
///  * default        — a single session on stdin/stdout (protocol bytes own
///                     stdout; every human-readable message goes to stderr).
///
/// Telemetry is always armed: the METRICS opcode returns live counters and
/// per-opcode latency histograms on both transports. --metrics-out FILE
/// additionally writes the final registry as JSON at shutdown; --progress
/// narrates the build phase on stderr.
///
/// Exit codes match partition_tool: 0 clean shutdown, 1 on IoError (bad
/// graph content, unreadable artifact), 2 on usage errors.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "oms/oms.hpp"

namespace {

[[noreturn]] void usage(int exit_code = 2) {
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage: oms_serve <graph> [partitioning flags] [--socket PATH]\n"
         "       oms_serve --artifact FILE [--socket PATH]\n"
         "\n"
         "Builds (or restores) a partition artifact, then answers\n"
         "WHERE/RANK/BATCH/STATS/SNAPSHOT/SHUTDOWN frames until SHUTDOWN.\n"
         "Partitioning flags are those of partition_tool (--k, --algo,\n"
         "--hierarchy, --from-disk, --pipeline, ...).\n"
         "\n"
         "  --artifact FILE  serve a snapshot instead of partitioning\n"
         "  --socket PATH    listen on a Unix-domain socket (default:\n"
         "                   one session on stdin/stdout)\n"
         "  --metrics-out FILE  write the telemetry registry as JSON at\n"
         "                      shutdown (METRICS serves it live either way)\n"
         "  --progress          stderr heartbeat while building the artifact\n";
  std::exit(exit_code);
}

struct ServeOptions {
  std::string artifact; ///< restore this snapshot instead of partitioning
  std::string socket;   ///< empty = stdin/stdout session
};

} // namespace

int main(int argc, char** argv) {
  oms::cli::CliRequest cli;
  ServeOptions serve;
  try {
    cli = oms::cli::parse_request(
        argc, argv,
        [&serve](const std::string& flag, const oms::cli::ValueFn& value) {
          if (flag == "--artifact") {
            serve.artifact = value();
            return true;
          }
          if (flag == "--socket") {
            serve.socket = value();
            return true;
          }
          return false;
        });
  } catch (const oms::cli::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
  }
  if (cli.help) {
    usage(0);
  }
  if (!cli.output.empty()) {
    std::cerr << "error: --output belongs to partition_tool; use a SNAPSHOT "
                 "request (or --artifact) with oms_serve\n";
    return 2;
  }
  if (!serve.artifact.empty() && !cli.request.graph_path.empty()) {
    std::cerr << "error: give either a graph to partition or --artifact, "
                 "not both\n";
    return 2;
  }

  // The daemon always arms telemetry: METRICS must answer with live data on
  // any session, and the hooks' armed cost is per-batch/per-request, far off
  // the lookup fast path.
  oms::telemetry::MetricsRegistry registry;
  oms::telemetry::MetricsRegistry::arm(registry);

  try {
    oms::PartitionArtifact artifact;
    {
      std::unique_ptr<oms::telemetry::ProgressReporter> progress;
      if (cli.progress) {
        progress = std::make_unique<oms::telemetry::ProgressReporter>();
      }
      if (!serve.artifact.empty()) {
        artifact = oms::read_artifact(serve.artifact);
      } else {
        artifact = oms::Partitioner().partition(cli.request);
      }
    }
    if (!serve.artifact.empty()) {
      std::cerr << "restored artifact '" << serve.artifact << "'";
    } else {
      std::cerr << "partitioned '" << cli.request.graph_path << "' in "
                << artifact.elapsed_s << " s";
    }
    std::cerr << ": " << artifact.assignment.size() << " "
              << (artifact.edge_partition ? "edges" : "nodes") << " in k = "
              << artifact.k << " blocks (algo " << artifact.algo << ")\n";

    const oms::service::PartitionService service(std::move(artifact));
    if (!serve.socket.empty()) {
      std::cerr << "listening on '" << serve.socket << "'\n";
      oms::service::serve_unix_socket(service, serve.socket);
    } else {
      std::cerr << "serving one session on stdin/stdout\n";
      (void)oms::service::serve_stream(service, 0, 1);
    }
    std::cerr << "shutdown after " << service.requests_served()
              << " request(s)\n";
    if (!cli.metrics_out.empty()) {
      std::ofstream out(cli.metrics_out);
      out << registry.scrape().to_json() << '\n';
      out.flush();
      if (!out.good()) {
        std::cerr << "error: cannot write metrics to '" << cli.metrics_out
                  << "'\n";
        return 2;
      }
    }
    return 0;
  } catch (const oms::InvalidRequest& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const oms::IoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::bad_alloc&) {
    std::cerr << "error: out of memory building the served artifact\n";
    return 1;
  }
}
