/// \file quickstart.cpp
/// \brief 60-second tour of the library: generate a graph, stream-partition
///        it with the online recursive multi-section (nh-OMS), and compare
///        the result against Fennel and Hashing.
///
///   $ ./examples/quickstart [k]
#include <cstdlib>
#include <iostream>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/table.hpp"

int main(int argc, char** argv) {
  using namespace oms;

  const BlockId k = argc > 1 ? static_cast<BlockId>(std::atoi(argv[1])) : 64;
  std::cout << "Generating a 2^15-node random geometric graph (rgg15)...\n";
  const CsrGraph graph = gen::random_geometric(1u << 15, /*seed=*/42);
  std::cout << "  n = " << graph.num_nodes() << ", m = " << graph.num_edges()
            << "\n\nStream-partitioning into k = " << k << " blocks (eps = 3%)\n\n";

  TablePrinter table({"algorithm", "edge-cut", "time [ms]", "balanced"});

  // --- nh-OMS: the paper's contribution, no hierarchy given --------------
  {
    OmsConfig config; // tuned defaults: Fennel scorer, adapted alpha, base 4
    OnlineMultisection oms(graph.num_nodes(), graph.num_edges(),
                           graph.total_node_weight(), k, config);
    const StreamResult r = run_one_pass(graph, oms, /*threads=*/1);
    table.add_row({"nh-OMS", TablePrinter::cell(edge_cut(graph, r.assignment)),
                   TablePrinter::cell(r.elapsed_s * 1e3),
                   is_balanced(graph, r.assignment, k, 0.03) ? "yes" : "NO"});
  }

  // --- Fennel: the one-pass state of the art -----------------------------
  {
    PartitionConfig pc;
    pc.k = k;
    FennelPartitioner fennel(graph.num_nodes(), graph.num_edges(),
                             graph.total_node_weight(), pc);
    const StreamResult r = run_one_pass(graph, fennel, 1);
    table.add_row({"Fennel", TablePrinter::cell(edge_cut(graph, r.assignment)),
                   TablePrinter::cell(r.elapsed_s * 1e3),
                   is_balanced(graph, r.assignment, k, 0.03) ? "yes" : "NO"});
  }

  // --- Hashing: the speed-of-light baseline ------------------------------
  {
    PartitionConfig pc;
    pc.k = k;
    HashingPartitioner hashing(graph.num_nodes(), graph.total_node_weight(), pc);
    const StreamResult r = run_one_pass(graph, hashing, 1);
    table.add_row({"Hashing", TablePrinter::cell(edge_cut(graph, r.assignment)),
                   TablePrinter::cell(r.elapsed_s * 1e3),
                   is_balanced(graph, r.assignment, k, 0.03) ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << "\nnh-OMS scores only O(b log_b k) blocks per node instead of "
               "Fennel's O(k),\nwhich is where the speedup at large k comes "
               "from (Theorem 4 of the paper).\n";
  return 0;
}
