/// \file hybrid_tradeoff.cpp
/// \brief Explore the paper's hybrid mapping (Section 3.2): solve the top h
///        multi-section layers with Fennel and the rest with Hashing, and
///        watch quality trade against running time (Theorem 3).
///
///   $ ./examples/hybrid_tradeoff
#include <iostream>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/table.hpp"

int main() {
  using namespace oms;

  // Deep hierarchy so there are many layers to hybridize: 4:4:4:4 = 256 PEs.
  const SystemHierarchy topo({4, 4, 4, 4}, {1, 5, 25, 125});
  const CsrGraph comm = gen::delaunay(1u << 16, /*seed=*/7);
  std::cout << "Communication graph: del16 (n = " << comm.num_nodes()
            << ", m = " << comm.num_edges() << ")\n"
            << "Topology: " << topo.to_string() << " (k = " << topo.num_pes()
            << ")\n\n"
            << "quality_layers = h: top h layers scored with Fennel, "
               "remaining layers hashed\n\n";

  TablePrinter table(
      {"h", "J(C,D,Pi)", "edge-cut", "time [ms]", "score evals", "J vs full"});
  Cost j_full = 0;
  for (int h = 4; h >= 0; --h) {
    OmsConfig config;
    config.quality_layers = h;
    OnlineMultisection oms(comm.num_nodes(), comm.num_edges(),
                           comm.total_node_weight(), topo, config);
    const StreamResult r = run_one_pass(comm, oms, 1);
    const Cost j = mapping_cost(comm, topo, r.assignment);
    if (h == 4) {
      j_full = j;
    }
    table.add_row({TablePrinter::cell(static_cast<std::int64_t>(h)),
                   TablePrinter::cell(j),
                   TablePrinter::cell(edge_cut(comm, r.assignment)),
                   TablePrinter::cell(r.elapsed_s * 1e3),
                   TablePrinter::cell(r.work.score_evaluations),
                   TablePrinter::cell(static_cast<double>(j) /
                                      static_cast<double>(j_full)) +
                       "x"});
  }
  table.print(std::cout);

  std::cout << "\nHashing the *bottom* layers is cheap on the objective because "
               "bottom-layer\nmistakes only pay the small intra-module "
               "distances — the paper found hashing\n67% of the layers costs "
               "+27.5% J but saves 31% time; hashing everything\n(h = 0) "
               "degrades J sharply.\n";
  return 0;
}
