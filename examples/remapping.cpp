/// \file remapping.cpp
/// \brief The paper's Section 3.2 extension: iterative *remapping* by
///        restreaming the online multi-section several times (the analogue of
///        ReFennel for the process-mapping objective). Each pass removes a
///        node from its block path and re-places it with fresh scores.
///
///   $ ./examples/remapping [passes]
#include <cstdlib>
#include <iostream>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/table.hpp"
#include "oms/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace oms;

  const int passes = argc > 1 ? std::atoi(argv[1]) : 5;
  const SystemHierarchy topo({4, 16, 2}, {1, 10, 100});
  const CsrGraph comm = gen::random_geometric(1u << 15, /*seed=*/31);
  std::cout << "Graph: rgg15 (n = " << comm.num_nodes() << ", m = "
            << comm.num_edges() << "), topology " << topo.to_string() << "\n\n";

  OmsConfig config;
  OnlineMultisection oms(comm.num_nodes(), comm.num_edges(),
                         comm.total_node_weight(), topo, config);
  oms.prepare(1);
  WorkCounters counters;

  TablePrinter table({"pass", "J(C,D,Pi)", "edge-cut", "cumulative time [ms]"});
  Timer timer;
  std::vector<BlockId> snapshot(comm.num_nodes());
  for (int pass = 0; pass < passes; ++pass) {
    for (NodeId u = 0; u < comm.num_nodes(); ++u) {
      if (pass > 0) {
        oms.unassign(u, comm.node_weight(u)); // restream: re-place the node
      }
      const StreamedNode node{u, comm.node_weight(u), comm.neighbors(u),
                              comm.incident_weights(u)};
      oms.assign(node, 0, counters);
    }
    for (NodeId u = 0; u < comm.num_nodes(); ++u) {
      snapshot[u] = oms.block_of(u);
    }
    table.add_row({TablePrinter::cell(static_cast<std::int64_t>(pass + 1)),
                   TablePrinter::cell(mapping_cost(comm, topo, snapshot)),
                   TablePrinter::cell(edge_cut(comm, snapshot)),
                   TablePrinter::cell(timer.elapsed_ms())});
  }
  table.print(std::cout);

  const bool balanced = is_balanced(comm, snapshot, topo.num_pes(), 0.03);
  std::cout << "\nfinal mapping balanced: " << (balanced ? "yes" : "NO")
            << "\nLater passes see the *complete* placement of every neighbor "
               "instead of only\nthe already-streamed prefix, which is where "
               "the improvement comes from.\n";
  return 0;
}
