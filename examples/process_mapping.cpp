/// \file process_mapping.cpp
/// \brief Map the processes of a simulated MPI application onto a
///        hierarchical supercomputer topology, streaming the communication
///        graph once — the paper's headline application.
///
/// The communication graph is a 2D stencil halo-exchange pattern (the
/// classic workload for topology mapping), the topology is the paper's
/// S = 4:16:r with D = 1:10:100. Compares OMS against hierarchy-oblivious
/// Fennel and Hashing, and shows where each mapping pays its communication.
///
///   $ ./examples/process_mapping [r]
#include <cstdlib>
#include <iostream>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/table.hpp"

namespace {

void print_level_breakdown(const oms::CsrGraph& graph,
                           const oms::SystemHierarchy& topo,
                           const std::vector<oms::BlockId>& mapping,
                           const char* name) {
  const auto volume = oms::per_level_volume(graph, topo, mapping);
  std::cout << "  " << name << ": intra-PE " << volume[0];
  const char* level_names[] = {"intra-processor", "intra-node", "cross-node"};
  for (std::size_t level = 1; level < volume.size(); ++level) {
    std::cout << ", " << level_names[level - 1] << " " << volume[level];
  }
  std::cout << "\n";
}

} // namespace

int main(int argc, char** argv) {
  using namespace oms;

  const std::int64_t r = argc > 1 ? std::atol(argv[1]) : 2;
  const SystemHierarchy topo({4, 16, r}, {1, 10, 100});
  std::cout << "Topology: " << topo.to_string() << "  (k = " << topo.num_pes()
            << " PEs: " << r << " nodes x 16 processors x 4 cores)\n";

  // Halo-exchange communication pattern: a 384x256 process grid where each
  // process talks to its 4 stencil neighbors.
  const CsrGraph comm = gen::grid_2d(384, 256);
  std::cout << "Communication graph: 2D stencil, n = " << comm.num_nodes()
            << " processes, m = " << comm.num_edges() << " pairs\n\n";

  TablePrinter table({"algorithm", "J(C,D,Pi)", "time [ms]", "J vs OMS"});
  Cost j_oms = 0;
  std::vector<BlockId> oms_mapping;
  std::vector<BlockId> fennel_mapping;
  std::vector<BlockId> hashing_mapping;

  {
    OmsConfig config;
    OnlineMultisection oms(comm.num_nodes(), comm.num_edges(),
                           comm.total_node_weight(), topo, config);
    const StreamResult result = run_one_pass(comm, oms, 1);
    oms_mapping = result.assignment;
    j_oms = mapping_cost(comm, topo, oms_mapping);
    table.add_row({"OMS", TablePrinter::cell(j_oms),
                   TablePrinter::cell(result.elapsed_s * 1e3), "1.00x"});
  }
  {
    PartitionConfig pc;
    pc.k = topo.num_pes();
    FennelPartitioner fennel(comm.num_nodes(), comm.num_edges(),
                             comm.total_node_weight(), pc);
    const StreamResult result = run_one_pass(comm, fennel, 1);
    fennel_mapping = result.assignment;
    const Cost j = mapping_cost(comm, topo, fennel_mapping);
    table.add_row({"Fennel (block i -> PE i)", TablePrinter::cell(j),
                   TablePrinter::cell(result.elapsed_s * 1e3),
                   TablePrinter::cell(static_cast<double>(j) /
                                      static_cast<double>(j_oms)) +
                       "x"});
  }
  {
    PartitionConfig pc;
    pc.k = topo.num_pes();
    HashingPartitioner hashing(comm.num_nodes(), comm.total_node_weight(), pc);
    const StreamResult result = run_one_pass(comm, hashing, 1);
    hashing_mapping = result.assignment;
    const Cost j = mapping_cost(comm, topo, hashing_mapping);
    table.add_row({"Hashing (block i -> PE i)", TablePrinter::cell(j),
                   TablePrinter::cell(result.elapsed_s * 1e3),
                   TablePrinter::cell(static_cast<double>(j) /
                                      static_cast<double>(j_oms)) +
                       "x"});
  }
  table.print(std::cout);

  std::cout << "\nWhere each mapping pays (communication volume per level):\n";
  print_level_breakdown(comm, topo, oms_mapping, "OMS    ");
  print_level_breakdown(comm, topo, fennel_mapping, "Fennel ");
  print_level_breakdown(comm, topo, hashing_mapping, "Hashing");
  std::cout << "\nOMS pushes volume down the hierarchy (cheap intra-processor "
               "links)\nbecause its top-layer split happens first — exactly the "
               "top-down order\nin which communication costs decrease "
               "(Section 3.1 of the paper).\n";
  return 0;
}
