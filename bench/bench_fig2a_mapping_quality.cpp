/// \file bench_fig2a_mapping_quality.cpp
/// \brief Figure 2a: average mapping improvement over Hashing as a function
///        of k, for OMS, Fennel (identity block->PE) and KaMinParLite.
///
/// Paper result to compare against: KaMinPar ~ +1117%, OMS ~ +257.8%,
/// Fennel ~ +153% over Hashing; OMS ~ 41% better than Fennel.
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Fig 2a — mapping improvement over Hashing vs k (S=4:16:r, D=1:10:100)",
           env);

  const auto suite = benchmark_suite(env.scale);
  const std::vector<Algo> algos = {Algo::kOms, Algo::kFennel, Algo::kKaMinParLite};

  TablePrinter table({"k", "OMS", "Fennel", "KaMinParLite"});
  for (const std::int64_t r : r_sweep(env.scale)) {
    RunOptions options;
    options.repetitions = env.repetitions;
    options.threads = env.threads;
    options.topology = paper_topology(r);

    // Per-instance improvement over Hashing, aggregated by geometric mean of
    // the J ratio (equivalent to the paper's improvement-over average).
    std::vector<std::vector<double>> ratios(algos.size());
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const RunMetrics hashing = run_algorithm(Algo::kHashing, graph, options);
      for (std::size_t a = 0; a < algos.size(); ++a) {
        const RunMetrics metrics = run_algorithm(algos[a], graph, options);
        ratios[a].push_back(hashing.mapping_cost / metrics.mapping_cost);
      }
    }
    std::vector<std::string> row{TablePrinter::cell(std::int64_t{64} * r)};
    for (auto& per_algo : ratios) {
      row.push_back(TablePrinter::percent_cell((geometric_mean(per_algo) - 1.0) *
                                               100.0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper (Fig 2a, averages): OMS +257.8%, Fennel +153%, "
               "KaMinPar +1117% over Hashing;\nOMS beats Fennel by ~41%. "
               "Expected shape: OMS > Fennel everywhere, KaMinParLite on top.\n";
  return 0;
}
