/// \file bench_fig3_scalability_pergraph.cpp
/// \brief Figure 3: per-graph speedup and running time versus thread count
///        for the three scalability instances (the paper plots soc-orkut-dir,
///        HV15R and soc-LiveJournal1; we use the suite's social/mesh/web
///        stand-ins).
#include "bench/bench_common.hpp"

#include "oms/util/parallel.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Fig 3 — per-graph speedup and running time vs threads", env);

  const BlockId k = env.scale == Scale::kSmall
                        ? 512
                        : (env.scale == Scale::kMedium ? 2048 : 8192);
  const std::int64_t r = k / 64;

  std::vector<int> thread_counts;
  for (int t = 1; t <= hardware_threads(); t *= 2) {
    thread_counts.push_back(t);
  }

  const std::vector<std::pair<Algo, const char*>> algos = {
      {Algo::kHashing, "Hashing"},
      {Algo::kNhOms, "nh-OMS"},
      {Algo::kOms, "OMS"},
      {Algo::kFennel, "Fennel"},
  };

  for (const auto& instance : scalability_suite(env.scale)) {
    const CsrGraph graph = instance.make();
    std::cout << "\n--- " << instance.name << " (n = " << graph.num_nodes()
              << ", m = " << graph.num_edges() << ", k = " << k << ") ---\n";
    TablePrinter table({"threads", "Hashing RT", "SU", "nh-OMS RT", "SU", "OMS RT",
                        "SU", "Fennel RT", "SU"});
    std::vector<double> base(algos.size(), 0.0);
    for (const int threads : thread_counts) {
      std::vector<std::string> row{
          TablePrinter::cell(static_cast<std::int64_t>(threads))};
      for (std::size_t a = 0; a < algos.size(); ++a) {
        RunOptions options;
        options.repetitions = env.repetitions;
        options.threads = threads;
        if (algos[a].first == Algo::kOms) {
          options.topology = paper_topology(r);
        } else {
          options.k_override = k;
        }
        const double time = run_algorithm(algos[a].first, graph, options).time_s;
        if (threads == 1) {
          base[a] = time;
        }
        row.push_back(TablePrinter::cell(time, 4));
        row.push_back(TablePrinter::cell(base[a] / time, 1));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  std::cout << "\npaper (Fig 3): Fennel's curve rises steepest, Hashing stays "
               "flat (<= 1x),\nOMS sits between nh-OMS and Fennel; OMS scales "
               "better than nh-OMS because its\nwide subproblems (16-way, "
               "r-way) keep more scoring work per cache line.\n";
  return 0;
}
