/// \file bench_ablation_overshoot.cpp
/// \brief Design-choice ablation (DESIGN.md #4): the paper makes block-weight
///        increments atomic but deliberately does NOT synchronize the
///        check-then-assign sequence, accepting that a block can be overshot
///        "if multiple threads decide to assign a node to it at the same
///        time. Since this is very unlikely ..." — this bench measures how
///        (un)likely, across thread counts and repetitions.
#include "bench/bench_common.hpp"

#include "oms/core/online_multisection.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/parallel.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Ablation — parallel balance overshoot frequency (Section 3.4)", env);

  const CsrGraph graph = instance_by_name(env.scale, "social-ba").make();
  const BlockId k = 256;
  const double epsilon = 0.03;
  const int trials = 10 * env.repetitions;
  std::cout << "instance social-ba (n = " << graph.num_nodes() << "), k = " << k
            << ", eps = 3%, " << trials << " trials per thread count\n\n";

  const NodeWeight lmax = max_block_weight(graph.total_node_weight(), k, epsilon);
  TablePrinter table({"threads", "trials over Lmax", "worst overshoot [nodes]",
                      "worst imbalance", "Lmax"});
  for (int threads = 1; threads <= hardware_threads(); threads *= 2) {
    int violations = 0;
    double worst = 0.0;
    NodeWeight worst_overshoot = 0;
    for (int trial = 0; trial < trials; ++trial) {
      OmsConfig config;
      config.epsilon = epsilon;
      config.seed = static_cast<std::uint64_t>(trial) + 1;
      OnlineMultisection oms(graph.num_nodes(), graph.num_edges(),
                             graph.total_node_weight(), k, config);
      const StreamResult r = run_one_pass(graph, oms, threads);
      worst = std::max(worst, imbalance(graph, r.assignment, k));
      bool violated = false;
      for (const NodeWeight w : block_weights_of(graph, r.assignment, k)) {
        if (w > lmax) {
          violated = true;
          worst_overshoot = std::max(worst_overshoot, w - lmax);
        }
      }
      violations += violated ? 1 : 0;
    }
    table.add_row({TablePrinter::cell(static_cast<std::int64_t>(threads)),
                   TablePrinter::cell(static_cast<std::int64_t>(violations)) + "/" +
                       TablePrinter::cell(static_cast<std::int64_t>(trials)),
                   TablePrinter::cell(worst_overshoot),
                   TablePrinter::cell(worst, 4), TablePrinter::cell(lmax)});
  }
  table.print(std::cout);
  std::cout << "\nSequential runs never exceed Lmax. Parallel overshoot, when "
               "it happens, is\nbounded by one node per concurrently deciding "
               "thread — a negligible absolute\nslip that justifies the paper's "
               "unsynchronized check-then-assign design\n(Section 3.4).\n";
  return 0;
}
