/// \file bench_tuning_alpha.cpp
/// \brief Parameter-tuning ablation (Section 4): adapted per-subproblem
///        alpha_i = alpha / sqrt(prod_{r<i} a_r) versus the flat k-way alpha.
///
/// Paper result: adapted alpha is on average 3.1% faster, 9.7% better on the
/// mapping objective, and cuts roughly the same number of edges.
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Tuning — adapted vs vanilla Fennel alpha inside OMS", env);

  const auto suite = benchmark_suite(env.scale);
  TablePrinter table({"r", "mapping J (adapted better by)", "edge-cut (adapted better by)",
                      "time (adapted faster by)"});
  for (const std::int64_t r : r_sweep(env.scale)) {
    RunOptions adapted;
    adapted.repetitions = env.repetitions;
    adapted.threads = env.threads;
    adapted.topology = paper_topology(r);
    adapted.adapted_alpha = true;
    RunOptions vanilla = adapted;
    vanilla.adapted_alpha = false;

    std::vector<double> j_ratio;
    std::vector<double> cut_ratio;
    std::vector<double> time_ratio;
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const RunMetrics a = run_algorithm(Algo::kOms, graph, adapted);
      const RunMetrics v = run_algorithm(Algo::kOms, graph, vanilla);
      j_ratio.push_back(v.mapping_cost / a.mapping_cost);
      cut_ratio.push_back(v.edge_cut / std::max(a.edge_cut, 1.0));
      time_ratio.push_back(v.time_s / a.time_s);
    }
    table.add_row({TablePrinter::cell(r),
                   TablePrinter::percent_cell((geometric_mean(j_ratio) - 1) * 100),
                   TablePrinter::percent_cell((geometric_mean(cut_ratio) - 1) * 100),
                   TablePrinter::percent_cell((geometric_mean(time_ratio) - 1) * 100)});
  }
  table.print(std::cout);
  std::cout << "\npaper: adapted alpha +9.7% mapping quality, +3.1% speed, "
               "~same edge-cut.\nPositive numbers mean the adapted variant "
               "wins.\n";
  return 0;
}
