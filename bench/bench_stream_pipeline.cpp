/// \file bench_stream_pipeline.cpp
/// \brief Disk-streaming pipeline bench + assertion harness: measures the
///        end-to-end wall clock of a disk-backed one-pass partition run under
///        (a) the sequential parse-then-assign driver and (b) the pipelined
///        driver across consumer-thread counts, and asserts the contracts
///        that must hold everywhere — single-consumer output bit-identical to
///        sequential, multi-consumer output covered and within the parallel
///        overshoot bound. Exits non-zero on violation so CI catches both
///        correctness and plumbing regressions.
///
/// The headline number is the seq/pipelined ratio with >= 2 total threads
/// (reader + 1 assigner): that is the parse/assign overlap the pipeline
/// exists for. On a single-core machine the ratio degrades to ~1.0 by
/// construction (the threads time-slice); the table still documents it.
#include "bench/bench_common.hpp"

#include <cstdio>
#include <unistd.h>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/stream/pipeline.hpp"
#include "oms/util/parallel.hpp"
#include "oms/util/timer.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Pipelined disk streaming — parse + assign overlap", env);

  const NodeId n = env.scale == Scale::kSmall
                       ? (1u << 15)
                       : (env.scale == Scale::kMedium ? (1u << 18) : (1u << 20));
  const BlockId k = 256;
  const CsrGraph graph = gen::barabasi_albert(n, 8, 3);
  const std::string path = "/tmp/oms_bench_stream_pipeline." +
                           std::to_string(::getpid()) + ".graph";
  write_metis(graph, path);

  const auto make_oms = [&] {
    OmsConfig config;
    return OnlineMultisection(graph.num_nodes(), graph.num_edges(),
                              graph.total_node_weight(), k, config);
  };
  const auto timed_best = [&](auto&& run) {
    // Best-of-reps: disk-backed timings are noisy (page cache, scheduler);
    // the minimum is the most stable estimator of the achievable time.
    double best = 0.0;
    for (int rep = 0; rep < env.repetitions; ++rep) {
      Timer timer;
      run();
      const double t = timer.elapsed_s();
      if (rep == 0 || t < best) {
        best = t;
      }
    }
    return best;
  };

  int failures = 0;

  // Reference: the sequential driver (parse and assign interleaved).
  std::vector<BlockId> sequential_assignment;
  const double seq_time = timed_best([&] {
    OnlineMultisection oms = make_oms();
    sequential_assignment = run_one_pass_from_file(path, oms).assignment;
  });

  TablePrinter table({"mode", "io-threads", "time [s]", "vs seq"});
  table.add_row({std::string("sequential"), TablePrinter::cell(std::int64_t{0}),
                 TablePrinter::cell(seq_time, 4), TablePrinter::cell(1.0, 2)});

  std::vector<int> consumer_counts = {1};
  for (int t = 2; t <= hardware_threads(); t *= 2) {
    consumer_counts.push_back(t);
  }
  for (const int consumers : consumer_counts) {
    PipelineConfig config;
    config.assign_threads = consumers;
    std::vector<BlockId> assignment;
    const double t = timed_best([&] {
      OnlineMultisection oms = make_oms();
      assignment = run_one_pass_from_file(path, oms, config).assignment;
    });

    if (consumers == 1) {
      // Contract 1: parse-ahead reorders work, not decisions.
      if (assignment != sequential_assignment) {
        std::cerr << "FAIL: single-consumer pipelined assignment differs from "
                     "the sequential driver\n";
        ++failures;
      }
    } else {
      // Contract 2: parallel consumers keep coverage + the overshoot bound.
      OmsConfig oc;
      const NodeWeight lmax =
          max_block_weight(graph.total_node_weight(), k, oc.epsilon);
      const auto weights = block_weights_of(graph, assignment, k);
      for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        if (assignment[u] < 0 || assignment[u] >= k) {
          std::cerr << "FAIL: node " << u << " unassigned/out of range "
                    << "(consumers=" << consumers << ")\n";
          ++failures;
          break;
        }
      }
      for (BlockId b = 0; b < k; ++b) {
        if (weights[static_cast<std::size_t>(b)] > lmax + consumers) {
          std::cerr << "FAIL: block " << b << " weight "
                    << weights[static_cast<std::size_t>(b)] << " exceeds " << lmax
                    << " + " << consumers << " (consumers=" << consumers << ")\n";
          ++failures;
        }
      }
    }
    table.add_row({std::string("pipelined"),
                   TablePrinter::cell(static_cast<std::int64_t>(consumers)),
                   TablePrinter::cell(t, 4), TablePrinter::cell(seq_time / t, 2)});
  }
  table.print(std::cout);
  std::cout << "\n'vs seq' > 1 means the pipeline wins; the io-threads=1 row "
               "isolates pure\nparse/assign overlap (hardware threads here: "
            << hardware_threads() << ").\n";

  std::remove(path.c_str());
  if (failures != 0) {
    std::cerr << failures << " pipeline invariant violation(s)\n";
    return 1;
  }
  return 0;
}
