/// \file bench_tuning_hybrid.cpp
/// \brief Parameter-tuning ablation (Section 4): the hybrid Fennel/Hashing
///        configuration — solve the top h layers with Fennel, hash the rest.
///
/// Paper result: hashing the bottom 67% of the layers costs ~2.3x the edge
/// cut and +27.5% mapping objective while saving 31.1% running time.
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Tuning — hybrid Fennel/Hashing layer split (Theorem 3)", env);

  const auto suite = benchmark_suite(env.scale);
  // 3-level paper topology: h = 3 is fully scored, h = 1 hashes the bottom
  // 2 of 3 layers (the paper's "67% of the layers" configuration).
  const std::int64_t r = r_sweep(env.scale).back();
  std::cout << "topology S = 4:16:" << r << " (3 layers)\n\n";

  TablePrinter table({"h (scored layers)", "J vs h=3", "cut vs h=3", "time vs h=3"});
  std::vector<double> base_j;
  std::vector<double> base_cut;
  std::vector<double> base_time;
  for (const int h : {3, 2, 1, 0}) {
    RunOptions options;
    options.repetitions = env.repetitions;
    options.threads = env.threads;
    options.topology = paper_topology(r);
    options.quality_layers = h;

    std::vector<double> js;
    std::vector<double> cuts;
    std::vector<double> times;
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const RunMetrics metrics = run_algorithm(Algo::kOms, graph, options);
      js.push_back(metrics.mapping_cost);
      cuts.push_back(std::max(metrics.edge_cut, 1.0));
      times.push_back(metrics.time_s);
    }
    if (h == 3) {
      base_j = js;
      base_cut = cuts;
      base_time = times;
    }
    std::vector<double> j_ratio;
    std::vector<double> cut_ratio;
    std::vector<double> time_ratio;
    for (std::size_t i = 0; i < js.size(); ++i) {
      j_ratio.push_back(js[i] / base_j[i]);
      cut_ratio.push_back(cuts[i] / base_cut[i]);
      time_ratio.push_back(times[i] / base_time[i]);
    }
    table.add_row({TablePrinter::cell(static_cast<std::int64_t>(h)),
                   TablePrinter::cell(geometric_mean(j_ratio)) + "x",
                   TablePrinter::cell(geometric_mean(cut_ratio)) + "x",
                   TablePrinter::cell(geometric_mean(time_ratio)) + "x"});
  }
  table.print(std::cout);
  std::cout << "\npaper (67% of layers hashed, h=1 here): 2.3x cut, 1.275x J, "
               "0.69x time\nrelative to the fully scored configuration — a "
               "quality/speed dial, not a win.\n";
  return 0;
}
