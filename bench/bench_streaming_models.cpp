/// \file bench_streaming_models.cpp
/// \brief Comparison across the streaming *models* the paper's related-work
///        section lays out (Section 2.1/2.2): one-pass (Hashing, LDG,
///        Fennel, nh-OMS), sliding window (WStream-style) and buffered
///        (HeiStream-style). Quality should improve with the amount of
///        lookahead a model buys; time should degrade gracefully.
#include "bench/bench_common.hpp"

#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/window_partitioner.hpp"
#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Streaming models — one-pass vs sliding window vs buffered", env);

  const auto suite = benchmark_suite(env.scale);
  const BlockId k = 64;
  std::cout << "k = " << k << "; cut ratios vs one-pass Fennel (<1 = better), "
               "geomean over the suite.\n\n";

  std::vector<double> hashing_ratio, ldg_ratio, nhoms_ratio, window_ratio,
      buffered_ratio, window_time, buffered_time, fennel_time;
  for (const auto& instance : suite) {
    const CsrGraph graph = instance.make();
    RunOptions options;
    options.repetitions = env.repetitions;
    options.k_override = k;

    const RunMetrics fennel = run_algorithm(Algo::kFennel, graph, options);
    const double fennel_cut = std::max(fennel.edge_cut, 1.0);
    fennel_time.push_back(fennel.time_s);

    hashing_ratio.push_back(
        run_algorithm(Algo::kHashing, graph, options).edge_cut / fennel_cut);
    ldg_ratio.push_back(run_algorithm(Algo::kLdg, graph, options).edge_cut /
                        fennel_cut);
    nhoms_ratio.push_back(run_algorithm(Algo::kNhOms, graph, options).edge_cut /
                          fennel_cut);

    WindowConfig wc;
    wc.window_size = 1024;
    WindowPartitioner window(graph.num_nodes(), graph.total_node_weight(), wc, k);
    const StreamResult wr = run_one_pass(graph, window, 1);
    window_ratio.push_back(static_cast<double>(edge_cut(graph, wr.assignment)) /
                           fennel_cut);
    window_time.push_back(wr.elapsed_s);

    BufferedConfig bc;
    const BufferedResult br = buffered_partition(graph, k, bc);
    buffered_ratio.push_back(static_cast<double>(edge_cut(graph, br.assignment)) /
                             fennel_cut);
    buffered_time.push_back(br.elapsed_s);
  }

  TablePrinter table({"model / algorithm", "cut vs Fennel", "time vs Fennel"});
  table.add_row({"one-pass Hashing", TablePrinter::cell(geometric_mean(hashing_ratio)) + "x", "~0x"});
  table.add_row({"one-pass LDG", TablePrinter::cell(geometric_mean(ldg_ratio)) + "x", "~1x"});
  table.add_row({"one-pass Fennel", "1.00x", "1.00x"});
  table.add_row({"one-pass nh-OMS", TablePrinter::cell(geometric_mean(nhoms_ratio)) + "x", "<1x (see Fig 2c)"});
  table.add_row({"window (WStream-style, w=1024)",
                 TablePrinter::cell(geometric_mean(window_ratio)) + "x",
                 TablePrinter::cell(geometric_mean(window_time) /
                                    geometric_mean(fennel_time)) + "x"});
  table.add_row({"buffered (HeiStream-style, 4096)",
                 TablePrinter::cell(geometric_mean(buffered_ratio)) + "x",
                 TablePrinter::cell(geometric_mean(buffered_time) /
                                    geometric_mean(fennel_time)) + "x"});
  table.print(std::cout);
  std::cout << "\nExpected ordering (paper Section 2.2): buffered < one-pass "
               "quality gap at\nk-independent cost; the window sits between; "
               "Hashing is the fast/poor extreme.\n";
  return 0;
}
