/// \file bench_buffer_size.cpp
/// \brief Extension ablation: the buffer size of the HeiStream-style
///        buffered partitioner — how much lookahead buys how much cut, and
///        at what cost (the axis along which buffered streaming interpolates
///        between one-pass and in-memory partitioning).
#include "bench/bench_common.hpp"

#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Ablation — buffered streaming buffer size", env);

  const auto suite = benchmark_suite(env.scale);
  const BlockId k = 64;
  std::cout << "k = " << k << "; ratios vs buffer = 256.\n\n";

  TablePrinter table({"buffer size", "cut vs smallest", "time vs smallest"});
  std::vector<double> base_cut;
  std::vector<double> base_time;
  for (const NodeId buffer : {256u, 1024u, 4096u, 16384u, 65536u}) {
    std::vector<double> cuts;
    std::vector<double> times;
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      BufferedConfig config;
      config.buffer_size = buffer;
      double cut = 0.0;
      double time = 0.0;
      for (int rep = 0; rep < env.repetitions; ++rep) {
        config.seed = static_cast<std::uint64_t>(rep) + 1;
        const BufferedResult r = buffered_partition(graph, k, config);
        cut += static_cast<double>(edge_cut(graph, r.assignment));
        time += r.elapsed_s;
      }
      cuts.push_back(std::max(cut / env.repetitions, 1.0));
      times.push_back(time / env.repetitions);
    }
    if (base_cut.empty()) {
      base_cut = cuts;
      base_time = times;
    }
    std::vector<double> cut_ratio;
    std::vector<double> time_ratio;
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      cut_ratio.push_back(cuts[i] / base_cut[i]);
      time_ratio.push_back(times[i] / base_time[i]);
    }
    table.add_row({TablePrinter::cell(static_cast<std::int64_t>(buffer)),
                   TablePrinter::cell(geometric_mean(cut_ratio)) + "x",
                   TablePrinter::cell(geometric_mean(time_ratio)) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nBigger buffers monotonically improve the cut (the model sees "
               "more context)\nwhile per-node cost stays k-independent — the "
               "HeiStream trade-off the paper's\nrelated-work section "
               "describes.\n";
  return 0;
}
