/// \file bench_service.cpp
/// \brief Lookup-throughput bench + assertion harness for the partition
///        service: builds one immutable artifact via the oms::Partitioner
///        facade, then drives PartitionService::handle() — the full
///        decode-request -> lookup -> encode-reply path every oms_serve
///        transport funnels through — with pre-encoded WHERE/RANK/BATCH
///        bodies on a single thread. Also times the raw artifact.where()
///        loop so the protocol overhead is visible as a ratio.
///
/// Contracts asserted everywhere (all build types): every reply is kOk and
/// carries exactly the block the artifact stores. The headline throughput
/// floor — >= 1e6 WHERE requests/s on one thread — is only enforced under
/// NDEBUG: sanitizer and -O0 builds run the same correctness matrix but are
/// not held to Release-grade speed. Exits non-zero on violation.
#include "bench/bench_common.hpp"

#include <cstdint>
#include <vector>

#include "oms/graph/generators.hpp"
#include "oms/oms.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/util/timer.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  using namespace oms::service;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Partition service — single-thread request/reply throughput", env);

  const NodeId n = env.scale == Scale::kSmall
                       ? (1u << 15)
                       : (env.scale == Scale::kMedium ? (1u << 17) : (1u << 19));
  const std::uint64_t ops = env.scale == Scale::kSmall
                                ? 1'000'000
                                : (env.scale == Scale::kMedium ? 4'000'000
                                                               : 16'000'000);
  PartitionRequest request;
  request.algo = "oms";
  request.k = 256;
  const PartitionService service(
      Partitioner().partition(gen::barabasi_albert(n, 6, 7), request));
  const PartitionArtifact& artifact = service.artifact();
  const std::uint64_t items = artifact.assignment.size();
  std::cout << "artifact: " << items << " items in k = " << artifact.k
            << " blocks (algo " << artifact.algo << "), " << ops
            << " ops per timed rep\n\n";

  // Requests are pre-encoded: the bench measures the server side of the
  // protocol, not the client's encoder. A pool larger than L2 keeps the
  // id sequence from degenerating into a single hot cache line.
  constexpr std::uint64_t kPool = 4096;
  std::vector<std::vector<char>> where_pool;
  std::vector<std::vector<char>> rank_pool;
  where_pool.reserve(kPool);
  rank_pool.reserve(kPool);
  for (std::uint64_t i = 0; i < kPool; ++i) {
    const std::uint64_t v = (i * 2654435761u) % items;
    where_pool.push_back(encode_where(v));
    rank_pool.push_back(encode_rank(v));
  }
  constexpr std::uint32_t kBatchLen = 256;
  std::vector<std::uint64_t> batch_ids(kBatchLen);
  for (std::uint32_t i = 0; i < kBatchLen; ++i) {
    batch_ids[i] = (static_cast<std::uint64_t>(i) * 48271u) % items;
  }
  const std::vector<char> batch_body = encode_batch(batch_ids);

  int failures = 0;
  const auto expect_ok_u32 = [&](const Reply& reply, std::uint32_t expected,
                                 const char* label) {
    CheckpointReader r(reply.body);
    if (static_cast<Status>(r.get_u32()) != Status::kOk ||
        r.get_u32() != expected) {
      std::cerr << "FAIL: " << label << " reply is not kOk/" << expected
                << "\n";
      ++failures;
    }
  };

  // Correctness sweep first (untimed): every pooled request must round-trip
  // to exactly the artifact's answer before any throughput is reported.
  for (std::uint64_t i = 0; i < kPool; ++i) {
    const std::uint64_t v = (i * 2654435761u) % items;
    expect_ok_u32(service.handle(where_pool[i].data(), where_pool[i].size()),
                  static_cast<std::uint32_t>(artifact.where(v)), "WHERE");
    expect_ok_u32(service.handle(rank_pool[i].data(), rank_pool[i].size()),
                  static_cast<std::uint32_t>(artifact.rank_of(v)), "RANK");
  }
  {
    const Reply reply = service.handle(batch_body.data(), batch_body.size());
    CheckpointReader r(reply.body);
    if (static_cast<Status>(r.get_u32()) != Status::kOk ||
        r.get_u32() != kBatchLen) {
      std::cerr << "FAIL: BATCH header mismatch\n";
      ++failures;
    } else {
      for (std::uint32_t i = 0; i < kBatchLen; ++i) {
        if (r.get_u32() != static_cast<std::uint32_t>(
                               artifact.where(batch_ids[i]))) {
          std::cerr << "FAIL: BATCH entry " << i << " mismatch\n";
          ++failures;
          break;
        }
      }
    }
  }

  const auto timed_best = [&](auto&& run) {
    double best = 0.0;
    for (int rep = 0; rep < env.repetitions; ++rep) {
      Timer timer;
      run();
      const double t = timer.elapsed_s();
      if (rep == 0 || t < best) {
        best = t;
      }
    }
    return best;
  };
  // Fold every answer into a checksum the optimizer cannot delete.
  std::uint64_t sink = 0;

  const double direct_s = timed_best([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      sink += static_cast<std::uint64_t>(artifact.where(i % items));
    }
  });
  const double where_s = timed_best([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::vector<char>& body = where_pool[i % kPool];
      sink += static_cast<std::uint64_t>(
          service.handle(body.data(), body.size()).body.back());
    }
  });
  const double rank_s = timed_best([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::vector<char>& body = rank_pool[i % kPool];
      sink += static_cast<std::uint64_t>(
          service.handle(body.data(), body.size()).body.back());
    }
  });
  const std::uint64_t batches = ops / kBatchLen;
  const double batch_s = timed_best([&] {
    for (std::uint64_t i = 0; i < batches; ++i) {
      sink += static_cast<std::uint64_t>(
          service.handle(batch_body.data(), batch_body.size()).body.back());
    }
  });

  TablePrinter table({"path", "ops", "time [s]", "Mops/s", "vs direct"});
  const auto row = [&](const char* path, std::uint64_t count, double t) {
    const double rate = static_cast<double>(count) / t;
    table.add_row({std::string(path),
                   TablePrinter::cell(static_cast<std::int64_t>(count)),
                   TablePrinter::cell(t, 4), TablePrinter::cell(rate / 1e6, 2),
                   TablePrinter::cell((static_cast<double>(ops) / direct_s) /
                                          rate,
                                      2)});
  };
  row("direct where()", ops, direct_s);
  row("service WHERE", ops, where_s);
  row("service RANK", ops, rank_s);
  row("service BATCH/256", batches * kBatchLen, batch_s);
  table.print(std::cout);
  std::cout << "\n'vs direct' is the protocol overhead factor per lookup "
               "(checksum " << (sink & 0xff) << ").\n";

#ifdef NDEBUG
  const double where_rate = static_cast<double>(ops) / where_s;
  if (where_rate < 1e6) {
    std::cerr << "FAIL: service WHERE throughput " << where_rate
              << " ops/s is below the 1e6 ops/s floor\n";
    ++failures;
  }
#endif
  if (failures != 0) {
    std::cerr << failures << " service bench violation(s)\n";
    return 1;
  }
  return 0;
}
