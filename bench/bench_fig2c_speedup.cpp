/// \file bench_fig2c_speedup.cpp
/// \brief Figure 2c: average speedup over Fennel as a function of k for
///        Hashing, nh-OMS, OMS and KaMinParLite.
///
/// Paper result (averages): Hashing 1301x, nh-OMS 133x, OMS 55.4x,
/// KaMinPar 5.3x faster than Fennel; the gap *grows* with k because Fennel
/// is O(m + nk) while the multi-section is O((m + nb) log_b k).
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Fig 2c — speedup over Fennel vs k", env);

  const auto suite = benchmark_suite(env.scale);

  TablePrinter table({"k", "Hashing", "nh-OMS", "OMS", "KaMinParLite"});
  for (const std::int64_t r : r_sweep(env.scale)) {
    const BlockId k = static_cast<BlockId>(64 * r);
    RunOptions map_options;
    map_options.repetitions = env.repetitions;
    map_options.threads = env.threads;
    map_options.topology = paper_topology(r);
    RunOptions gp_options = map_options;
    gp_options.topology.reset();
    gp_options.k_override = k;

    std::vector<double> hashing_speedup;
    std::vector<double> nh_oms_speedup;
    std::vector<double> oms_speedup;
    std::vector<double> ml_speedup;
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const double fennel_time =
          run_algorithm(Algo::kFennel, graph, gp_options).time_s;
      hashing_speedup.push_back(
          fennel_time / run_algorithm(Algo::kHashing, graph, gp_options).time_s);
      nh_oms_speedup.push_back(
          fennel_time / run_algorithm(Algo::kNhOms, graph, gp_options).time_s);
      oms_speedup.push_back(
          fennel_time / run_algorithm(Algo::kOms, graph, map_options).time_s);
      ml_speedup.push_back(
          fennel_time /
          run_algorithm(Algo::kKaMinParLite, graph, gp_options).time_s);
    }
    table.add_row({TablePrinter::cell(static_cast<std::int64_t>(k)),
                   TablePrinter::cell(geometric_mean(hashing_speedup)) + "x",
                   TablePrinter::cell(geometric_mean(nh_oms_speedup)) + "x",
                   TablePrinter::cell(geometric_mean(oms_speedup)) + "x",
                   TablePrinter::cell(geometric_mean(ml_speedup)) + "x"});
  }
  table.print(std::cout);
  std::cout << "\npaper (Fig 2c, averages): Hashing 1301x, nh-OMS 133x, OMS "
               "55.4x, KaMinPar 5.3x.\nExpected shape: ordering Hashing > "
               "nh-OMS > OMS > 1x, all growing with k\n(absolute factors "
               "scale with instance size; the paper uses multi-million-node "
               "graphs).\n";
  return 0;
}
