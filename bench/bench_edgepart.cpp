/// \file bench_edgepart.cpp
/// \brief Streaming vertex-cut bench + assertion harness: partitions the
///        benchlib instances as edge-list streams with HDRF, DBH and Grid,
///        reporting replication factor, edge imbalance and throughput, and
///        asserting the contracts that must hold everywhere — pipelined
///        output bit-identical to the sequential stream, HDRF's replication
///        factor no worse than the hashing baselines (with tolerance), and
///        hierarchical HDRF lowering the distance-weighted replica cost.
///        Exits non-zero on violation so CI catches regressions.
#include "bench/bench_common.hpp"

#include <cstdio>
#include <unistd.h>

#include <functional>
#include <memory>

#include "oms/edgepart/dbh.hpp"
#include "oms/edgepart/driver.hpp"
#include "oms/edgepart/grid2d.hpp"
#include "oms/edgepart/hdrf.hpp"
#include "oms/edgepart/hierarchical_hdrf.hpp"
#include "oms/graph/io.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/util/timer.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Streaming vertex-cut edge partitioning (oms/edgepart/)", env);

  const BlockId k = 32;
  // Strongly non-uniform distances: the regime hierarchy-aware placement
  // exists for (uniform distances reduce the cost to plain replication).
  const SystemHierarchy topo({4, 8}, {1, 100});
  // Hierarchy-blind ablation baseline for the replica-cost contract: same
  // algorithm and per-layer balance cap, tree flattened to one level.
  const SystemHierarchy flat_topo({k}, {1});
  EdgePartConfig config;
  config.k = k;

  struct Algo {
    const char* name;
    std::function<std::unique_ptr<StreamingEdgePartitioner>()> make;
  };
  const std::vector<Algo> algos = {
      {"hdrf", [&] { return std::make_unique<HdrfPartitioner>(config); }},
      {"dbh", [&] { return std::make_unique<DbhPartitioner>(config); }},
      {"grid2d", [&] { return std::make_unique<Grid2dPartitioner>(config); }},
      {"flat-hdrf+cap",
       [&] {
         return std::make_unique<HierarchicalHdrfPartitioner>(flat_topo, config);
       }},
      {"hier-hdrf",
       [&] { return std::make_unique<HierarchicalHdrfPartitioner>(topo, config); }},
  };

  int failures = 0;
  TablePrinter table({"instance", "algo", "rep factor", "edge imbal",
                      "Medges/s"});
  for (const auto& spec : benchmark_suite(env.scale)) {
    const CsrGraph graph = spec.make();
    const std::string path = "/tmp/oms_bench_edgepart." +
                             std::to_string(::getpid()) + ".edgelist";
    write_edge_list(graph, path);

    double rf_hdrf = 0.0;
    double rf_dbh = 0.0;
    double rf_grid = 0.0;
    Cost cost_flat = 0;
    Cost cost_hier = 0;
    for (const Algo& algo : algos) {
      // Best-of-reps timing (page cache, scheduler noise); one fresh
      // partitioner per rep — an instance handles exactly one pass.
      double best_time = 0.0;
      std::unique_ptr<StreamingEdgePartitioner> partitioner;
      EdgeIndex num_edges = 0;
      for (int rep = 0; rep < env.repetitions; ++rep) {
        partitioner = algo.make();
        Timer timer;
        const auto result = run_edge_partition_from_file(path, *partitioner);
        const double t = timer.elapsed_s();
        if (rep == 0 || t < best_time) {
          best_time = t;
        }
        num_edges = result.stats.num_edges;
      }
      const double rf = replication_factor(partitioner->replicas());
      const double imbalance = edge_imbalance(partitioner->edge_loads());
      const double medges = static_cast<double>(num_edges) / best_time / 1e6;
      table.add_row({spec.name, std::string(algo.name),
                     TablePrinter::cell(rf, 3), TablePrinter::cell(imbalance, 3),
                     TablePrinter::cell(medges, 2)});
      const std::string name = algo.name;
      if (name == "hdrf") {
        rf_hdrf = rf;
      } else if (name == "dbh") {
        rf_dbh = rf;
      } else if (name == "grid2d") {
        rf_grid = rf;
      } else if (name == "flat-hdrf+cap") {
        cost_flat = hierarchical_replica_cost(partitioner->replicas(), topo);
      } else {
        cost_hier = hierarchical_replica_cost(partitioner->replicas(), topo);
      }
    }

    // Contract 1: HDRF's replication factor beats the hashing baselines
    // (2% tolerance: it is a heuristic, not a bound).
    if (rf_hdrf > rf_dbh * 1.02 || rf_hdrf > rf_grid * 1.02) {
      std::cerr << "FAIL [" << spec.name << "]: HDRF replication factor "
                << rf_hdrf << " worse than DBH " << rf_dbh << " / Grid "
                << rf_grid << "\n";
      ++failures;
    }
    // Contract 2: hierarchy-aware scoring lowers the weighted replica cost
    // versus the hierarchy-blind run under the same balance regime (same 2%
    // heuristic tolerance as contract 1).
    if (static_cast<double>(cost_hier) > static_cast<double>(cost_flat) * 1.02) {
      std::cerr << "FAIL [" << spec.name << "]: hierarchical HDRF cost "
                << cost_hier << " exceeds hierarchy-blind cost " << cost_flat
                << "\n";
      ++failures;
    }
    // Contract 3: the pipelined driver reproduces the sequential stream
    // bit-for-bit.
    {
      HdrfPartitioner sequential(config);
      HdrfPartitioner pipelined(config);
      const auto seq = run_edge_partition_from_file(path, sequential);
      PipelineConfig pipe_config;
      const auto pipe = run_edge_partition_from_file(path, pipelined, pipe_config);
      if (seq.edge_assignment != pipe.edge_assignment) {
        std::cerr << "FAIL [" << spec.name
                  << "]: pipelined edge assignment differs from sequential\n";
        ++failures;
      }
    }
    std::remove(path.c_str());
  }
  table.print(std::cout);

  if (failures != 0) {
    std::cerr << failures << " edge-partitioning invariant violation(s)\n";
    return 1;
  }
  std::cout << "\nall edge-partitioning invariants hold\n";
  return 0;
}
