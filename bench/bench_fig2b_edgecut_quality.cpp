/// \file bench_fig2b_edgecut_quality.cpp
/// \brief Figure 2b: average edge-cut improvement over Hashing as a function
///        of k, for nh-OMS, Fennel and KaMinParLite.
///
/// Paper result: KaMinPar ~ +3024%, Fennel ~ +130.5%, nh-OMS ~ +118.2% over
/// Hashing; nh-OMS cuts ~5% more edges than Fennel.
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Fig 2b — edge-cut improvement over Hashing vs k", env);

  const auto suite = benchmark_suite(env.scale);
  const std::vector<Algo> algos = {Algo::kNhOms, Algo::kFennel, Algo::kKaMinParLite};

  TablePrinter table({"k", "nh-OMS", "Fennel", "KaMinParLite", "nh-OMS vs Fennel"});
  for (const BlockId k : k_sweep(env.scale)) {
    RunOptions options;
    options.repetitions = env.repetitions;
    options.threads = env.threads;
    options.k_override = k;

    std::vector<std::vector<double>> ratios(algos.size());
    std::vector<double> oms_vs_fennel;
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const RunMetrics hashing = run_algorithm(Algo::kHashing, graph, options);
      std::vector<double> cuts;
      for (std::size_t a = 0; a < algos.size(); ++a) {
        const RunMetrics metrics = run_algorithm(algos[a], graph, options);
        // Guard: a cut of 0 is possible on tiny disconnected stand-ins.
        ratios[a].push_back(hashing.edge_cut / std::max(metrics.edge_cut, 1.0));
        cuts.push_back(metrics.edge_cut);
      }
      oms_vs_fennel.push_back(cuts[0] / std::max(cuts[1], 1.0));
    }
    std::vector<std::string> row{TablePrinter::cell(static_cast<std::int64_t>(k))};
    for (auto& per_algo : ratios) {
      row.push_back(TablePrinter::percent_cell((geometric_mean(per_algo) - 1.0) *
                                               100.0));
    }
    row.push_back(TablePrinter::percent_cell(
        (geometric_mean(oms_vs_fennel) - 1.0) * 100.0));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper (Fig 2b, averages): Fennel +130.5%, nh-OMS +118.2%, "
               "KaMinPar +3024% over Hashing;\nnh-OMS cuts ~+5% more edges than "
               "Fennel (last column; positive = more cut).\n";
  return 0;
}
