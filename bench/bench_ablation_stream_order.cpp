/// \file bench_ablation_stream_order.cpp
/// \brief Design-choice ablation (DESIGN.md #5): sensitivity of the streaming
///        algorithms to the node arrival order. The paper streams "the
///        natural given order"; the prioritized-streaming literature it cites
///        (Awadelkarim & Ugander) shows order matters — this bench quantifies
///        by how much for nh-OMS and Fennel.
#include "bench/bench_common.hpp"

#include "oms/graph/ordering.hpp"
#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Ablation — stream order sensitivity (edge-cut vs natural order)", env);

  const auto suite = benchmark_suite(env.scale);
  const BlockId k = 256;
  std::cout << "k = " << k << "; entries are geomean cut ratios vs the natural "
               "order (>1 = worse).\n\n";

  const StreamOrder orders[] = {StreamOrder::kNatural, StreamOrder::kRandom,
                                StreamOrder::kBfs, StreamOrder::kDegreeAscending,
                                StreamOrder::kDegreeDescending};

  TablePrinter table({"order", "nh-OMS cut ratio", "Fennel cut ratio"});
  std::vector<std::vector<double>> oms_cuts(5);
  std::vector<std::vector<double>> fennel_cuts(5);
  for (const auto& instance : suite) {
    const CsrGraph graph = instance.make();
    for (std::size_t o = 0; o < 5; ++o) {
      const CsrGraph ordered =
          o == 0 ? instance.make()
                 : apply_order(graph, make_order(graph, orders[o], 123));
      RunOptions options;
      options.repetitions = env.repetitions;
      options.threads = env.threads;
      options.k_override = k;
      oms_cuts[o].push_back(
          std::max(run_algorithm(Algo::kNhOms, ordered, options).edge_cut, 1.0));
      fennel_cuts[o].push_back(
          std::max(run_algorithm(Algo::kFennel, ordered, options).edge_cut, 1.0));
    }
  }
  for (std::size_t o = 0; o < 5; ++o) {
    std::vector<double> oms_ratio;
    std::vector<double> fennel_ratio;
    for (std::size_t i = 0; i < oms_cuts[o].size(); ++i) {
      oms_ratio.push_back(oms_cuts[o][i] / oms_cuts[0][i]);
      fennel_ratio.push_back(fennel_cuts[o][i] / fennel_cuts[0][i]);
    }
    table.add_row({stream_order_name(orders[o]),
                   TablePrinter::cell(geometric_mean(oms_ratio)) + "x",
                   TablePrinter::cell(geometric_mean(fennel_ratio)) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nGenerated instances carry locality in their natural ids "
               "(grids, spatially\nsorted Delaunay/RGG), so random order "
               "typically hurts while BFS order helps\nslightly — consistent "
               "with the restreaming literature the paper cites.\n";
  return 0;
}
