/// \file bench_complexity.cpp
/// \brief Empirical verification of the complexity claims (Theorems 2-4):
///        instrumented work counters versus k for Fennel (O(m + nk)),
///        nh-OMS (O((m + nb) log_b k)) and OMS (O(ml + n sum a_i)).
#include "bench/bench_common.hpp"

#include <cmath>

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Theorems 2-4 — measured work vs predicted work", env);

  const CsrGraph graph = instance_by_name(env.scale, "citations-ba").make();
  const auto n = static_cast<double>(graph.num_nodes());
  const auto arcs = static_cast<double>(graph.num_arcs());
  std::cout << "instance: citations-ba (n = " << graph.num_nodes()
            << ", m = " << graph.num_edges() << "), base b = 4\n\n";

  TablePrinter table({"k", "Fennel evals", "pred n*k", "nh-OMS evals",
                      "pred n*b*ceil(log_b k)", "nh-OMS nbr visits",
                      "pred 2m*ceil(log_b k)"});
  for (const BlockId k : {64, 256, 1024, 4096}) {
    RunOptions options;
    options.repetitions = 1;
    options.k_override = k;
    const RunMetrics fennel = run_algorithm(Algo::kFennel, graph, options);
    const RunMetrics nh_oms = run_algorithm(Algo::kNhOms, graph, options);
    const double layers = std::ceil(std::log(static_cast<double>(k)) / std::log(4.0));
    table.add_row({TablePrinter::cell(static_cast<std::int64_t>(k)),
                   TablePrinter::cell(fennel.work.score_evaluations),
                   TablePrinter::cell(n * static_cast<double>(k), 0),
                   TablePrinter::cell(nh_oms.work.score_evaluations),
                   TablePrinter::cell(n * 4 * layers, 0),
                   TablePrinter::cell(nh_oms.work.neighbor_visits),
                   TablePrinter::cell(arcs * layers, 0)});
  }
  table.print(std::cout);

  // OMS with the paper hierarchy: predicted n * sum(a_i) evals, 2m*l visits.
  std::cout << "\nOMS along S = 4:16:r (Theorem 2: O(m*l + n*sum a_i)):\n\n";
  TablePrinter oms_table({"r", "OMS evals", "pred n*(4+16+r)", "OMS nbr visits",
                          "pred 2m*3"});
  for (const std::int64_t r : {2LL, 8LL, 32LL}) {
    RunOptions options;
    options.repetitions = 1;
    options.topology = paper_topology(r);
    const RunMetrics oms = run_algorithm(Algo::kOms, graph, options);
    oms_table.add_row({TablePrinter::cell(r),
                       TablePrinter::cell(oms.work.score_evaluations),
                       TablePrinter::cell(n * static_cast<double>(4 + 16 + r), 0),
                       TablePrinter::cell(oms.work.neighbor_visits),
                       TablePrinter::cell(arcs * 3, 0)});
  }
  oms_table.print(std::cout);
  std::cout << "\nMeasured counters must track the predictions within small "
               "constants\n(capacity-skips make measured evals slightly lower; "
               "single-child layers add\nnone). Fennel grows linearly in k, "
               "the multi-section logarithmically — the\ncomplexity separation "
               "behind the paper's two-orders-of-magnitude speedups.\n";
  return 0;
}
