/// \file bench_parallel_scaling.cpp
/// \brief Parallel-scaling assertion bench for the one-pass driver: sweeps
///        thread counts and chunk sizes over nh-OMS and asserts the
///        invariants that must survive any interleaving — full coverage and
///        block weights within the Section 3.4 overshoot bound. Exits
///        non-zero on violation, so CI catches scaling regressions; the
///        timing table documents the measured scaling story.
///
/// Chunk sizes: 0 is one maximal chunk per thread (the paper's setup);
/// smaller chunks deal hub-heavy regions across threads at the price of more
/// chunk switches.
#include "bench/bench_common.hpp"

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/util/parallel.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Parallel scaling — nh-OMS one-pass driver", env);

  const NodeId n = env.scale == Scale::kSmall
                       ? (1u << 16)
                       : (env.scale == Scale::kMedium ? (1u << 19) : (1u << 21));
  const BlockId k = 1024;
  const CsrGraph graph = gen::barabasi_albert(n, 8, 3);

  std::vector<int> thread_counts;
  for (int t = 1; t <= hardware_threads(); t *= 2) {
    thread_counts.push_back(t);
  }
  const std::vector<std::size_t> chunk_sizes = {0, 4096, 16384};

  int failures = 0;
  TablePrinter table({"threads", "chunk", "time [s]", "speedup", "imbalance"});
  double base_time = 0.0;
  for (const int threads : thread_counts) {
    for (const std::size_t chunk : chunk_sizes) {
      OmsConfig config;
      OnlineMultisection oms(graph.num_nodes(), graph.num_edges(),
                             graph.total_node_weight(), k, config);
      const StreamResult r = run_one_pass(graph, oms, threads, chunk);

      // Invariant 1: every node placed, every block id in range.
      for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        if (r.assignment[u] < 0 || r.assignment[u] >= k) {
          std::cerr << "FAIL: node " << u << " has invalid block "
                    << r.assignment[u] << " (threads=" << threads
                    << ", chunk=" << chunk << ")\n";
          ++failures;
          break;
        }
      }
      // Invariant 2: capacity + parallel overshoot bound. Each block may be
      // overshot by at most one racing node per extra thread (unit weights
      // here), plus the all-full fallback; threads * max weight is a safe
      // envelope.
      const NodeWeight lmax =
          max_block_weight(graph.total_node_weight(), k, config.epsilon);
      const auto weights = block_weights_of(graph, r.assignment, k);
      for (BlockId b = 0; b < k; ++b) {
        if (weights[static_cast<std::size_t>(b)] > lmax + threads) {
          std::cerr << "FAIL: block " << b << " weight "
                    << weights[static_cast<std::size_t>(b)] << " exceeds "
                    << lmax << " + " << threads << " (threads=" << threads
                    << ", chunk=" << chunk << ")\n";
          ++failures;
        }
      }

      if (threads == 1 && chunk == 0) {
        base_time = r.elapsed_s;
      }
      table.add_row({TablePrinter::cell(static_cast<std::int64_t>(threads)),
                     TablePrinter::cell(static_cast<std::int64_t>(chunk)),
                     TablePrinter::cell(r.elapsed_s, 4),
                     TablePrinter::cell(base_time / r.elapsed_s, 2),
                     TablePrinter::cell(imbalance(graph, r.assignment, k), 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\npaper (Table 2): nh-OMS self-relative speedup ~2.8x at 32 "
               "threads; the bound asserted\nhere is correctness (coverage + "
               "overshoot), which must hold at every thread count.\n";
  if (failures != 0) {
    std::cerr << failures << " scaling invariant violation(s)\n";
    return 1;
  }
  std::cout << "all scaling invariants held\n";
  return 0;
}
