/// \file bench_memory.cpp
/// \brief Section 4.1 memory comparison: streaming algorithms keep O(n + k)
///        state while the internal-memory tools hold whole graph copies.
///        The paper reports MBs for the streamers vs GBs for KaMinPar/IntMap
///        on three graphs; we report the analytic state footprint plus the
///        process peak RSS.
#include "bench/bench_common.hpp"

#include "oms/util/memory.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Sec 4.1 — memory requirements per algorithm", env);

  const BlockId k = env.scale == Scale::kSmall ? 512 : 2048;
  const std::int64_t r = k / 64;
  std::cout << "k = " << k << "; 'state' = assignment + block weights (+ tree) "
               "for streamers,\npeak live graph bytes for in-memory tools.\n\n";

  TablePrinter table({"graph", "algorithm", "state [KB]", "graph CSR [KB]"});
  for (const auto& instance : scalability_suite(env.scale)) {
    const CsrGraph graph = instance.make();
    const std::uint64_t graph_kb = graph.memory_footprint_bytes() / 1024;

    const std::vector<std::pair<Algo, bool>> algos = {
        {Algo::kHashing, false}, {Algo::kNhOms, false},   {Algo::kOms, true},
        {Algo::kFennel, false},  {Algo::kKaMinParLite, false},
        {Algo::kIntMapLite, true},
    };
    for (const auto& [algo, needs_topology] : algos) {
      RunOptions options;
      options.repetitions = 1;
      options.threads = env.threads;
      if (needs_topology) {
        options.topology = paper_topology(r);
      } else {
        options.k_override = k;
      }
      const RunMetrics metrics = run_algorithm(algo, graph, options);
      table.add_row({instance.name, algo_name(algo),
                     TablePrinter::cell(metrics.state_bytes / 1024),
                     TablePrinter::cell(graph_kb)});
    }
  }
  table.print(std::cout);
  std::cout << "\ncurrent process peak RSS: " << peak_rss_bytes() / (1024 * 1024)
            << " MB\n"
            << "\npaper (Sec 4.1): on soc-orkut-dir / HV15R / soc-LiveJournal1 "
               "the streaming\nalgorithms need 13-25 MB while KaMinPar needs "
               "1.8-4.1 GB and IntMap 10-34 GB —\nthe streaming state is orders "
               "of magnitude below the graph itself.\n";
  return 0;
}
