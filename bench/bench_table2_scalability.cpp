/// \file bench_table2_scalability.cpp
/// \brief Table 2: average running time (RT) and self-relative speedup (SU)
///        versus thread count for Hashing, nh-OMS, OMS, Fennel and
///        KaMinParLite at large k, over the scalability suite.
///
/// Paper result (32 threads): Fennel scales best (15.2x), KaMinPar 11.9x,
/// OMS 8.2x, nh-OMS 2.8x, Hashing ~1x (parallel overhead dominates); the
/// average OMS time lands within 3x of Hashing.
#include "bench/bench_common.hpp"

#include <thread>

#include "oms/util/parallel.hpp"
#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Table 2 — average RT [s] and speedup vs threads", env);

  // k scales with the suite so blocks stay meaningfully sized
  // (paper: k = 8192 on multi-million-node graphs).
  const BlockId k = env.scale == Scale::kSmall
                        ? 512
                        : (env.scale == Scale::kMedium ? 2048 : 8192);
  const std::int64_t r = k / 64;
  std::cout << "k = " << k << " (S = 4:16:" << r << ")\n\n";

  const auto suite = scalability_suite(env.scale);
  std::vector<CsrGraph> graphs;
  for (const auto& instance : suite) {
    graphs.push_back(instance.make());
  }

  std::vector<int> thread_counts;
  for (int t = 1; t <= hardware_threads(); t *= 2) {
    thread_counts.push_back(t);
  }

  const std::vector<std::pair<Algo, const char*>> algos = {
      {Algo::kHashing, "Hashing"},
      {Algo::kNhOms, "nh-OMS"},
      {Algo::kOms, "OMS"},
      {Algo::kFennel, "Fennel"},
      {Algo::kKaMinParLite, "KaMinParLite"},
  };

  TablePrinter table({"threads", "Hashing RT", "SU", "nh-OMS RT", "SU", "OMS RT",
                      "SU", "Fennel RT", "SU", "KaMinParLite RT", "SU"});
  std::vector<double> base_times(algos.size(), 0.0);
  for (const int threads : thread_counts) {
    std::vector<std::string> row{TablePrinter::cell(static_cast<std::int64_t>(threads))};
    for (std::size_t a = 0; a < algos.size(); ++a) {
      RunOptions options;
      options.repetitions = env.repetitions;
      options.threads = threads;
      if (algos[a].first == Algo::kOms) {
        options.topology = paper_topology(r);
      } else {
        options.k_override = k;
      }
      std::vector<double> times;
      for (const CsrGraph& graph : graphs) {
        times.push_back(run_algorithm(algos[a].first, graph, options).time_s);
      }
      const double mean_time = geometric_mean(times);
      if (threads == 1) {
        base_times[a] = mean_time;
      }
      row.push_back(TablePrinter::cell(mean_time, 4));
      row.push_back(TablePrinter::cell(base_times[a] / mean_time, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\npaper (Table 2, 32 threads): Hashing SU 1.1, nh-OMS 2.8, OMS "
               "8.2, Fennel 15.2,\nKaMinPar 11.9. Expected shape: Fennel scales "
               "best (most work per node), Hashing\nworst (parallel overhead "
               "dominates its tiny runtime), OMS in between; note\nKaMinParLite "
               "here is sequential, so its SU stays ~1 by construction.\n";
  return 0;
}
