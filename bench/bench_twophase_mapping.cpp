/// \file bench_twophase_mapping.cpp
/// \brief Beyond the paper's identity baseline: how much of OMS's mapping
///        advantage survives when the two-phase competitors get a *real*
///        second phase — greedy block-to-PE construction (GreedyAllC-style)
///        and pairwise-swap refinement (Brandfass-style) on top of a
///        hierarchy-oblivious partition?
///
/// The paper compares OMS against "Fennel which ignores the given hierarchy"
/// (block i -> PE i). This bench adds the stronger offline pipelines the
/// related-work section describes, at their extra cost.
#include "bench/bench_common.hpp"

#include "oms/mapping/mapping_cost.hpp"
#include "oms/multilevel/block_swap.hpp"
#include "oms/multilevel/greedy_mapping.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/util/stats.hpp"
#include "oms/util/timer.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Two-phase mapping — OMS vs partition-then-map pipelines", env);

  const auto suite = benchmark_suite(env.scale);
  const std::int64_t r = 2;
  const SystemHierarchy topo = paper_topology(r);
  std::cout << "topology " << topo.to_string() << " (k = " << topo.num_pes()
            << ")\n\n";

  std::vector<double> identity_ratio, greedy_ratio, swap_ratio, time_identity,
      time_swap, time_oms;
  for (const auto& instance : suite) {
    const CsrGraph graph = instance.make();
    RunOptions options;
    options.repetitions = env.repetitions;
    options.threads = env.threads;
    options.topology = topo;

    const RunMetrics oms = run_algorithm(Algo::kOms, graph, options);
    time_oms.push_back(oms.time_s);

    // Phase 1: hierarchy-oblivious Fennel partition (timed separately).
    PartitionConfig pc;
    pc.k = topo.num_pes();
    FennelPartitioner fennel(graph.num_nodes(), graph.num_edges(),
                             graph.total_node_weight(), pc);
    Timer phase1;
    const StreamResult fr = run_one_pass(graph, fennel, env.threads);
    const double fennel_time = phase1.elapsed_s();
    time_identity.push_back(fennel_time);

    // Phase 2a: identity (the paper's baseline).
    const double j_identity =
        static_cast<double>(mapping_cost(graph, topo, fr.assignment));
    // Phase 2b: greedy construction.
    std::vector<BlockId> greedy = fr.assignment;
    Timer phase2;
    apply_greedy_mapping(graph, greedy, topo);
    const double j_greedy =
        static_cast<double>(mapping_cost(graph, topo, greedy));
    // Phase 2c: greedy + swap refinement.
    std::vector<BlockId> swapped = greedy;
    BlockSwapConfig swap;
    swap_refine_mapping(graph, topo, swapped, swap);
    const double j_swap = static_cast<double>(mapping_cost(graph, topo, swapped));
    time_swap.push_back(fennel_time + phase2.elapsed_s());

    identity_ratio.push_back(j_identity / oms.mapping_cost);
    greedy_ratio.push_back(j_greedy / oms.mapping_cost);
    swap_ratio.push_back(j_swap / oms.mapping_cost);
  }

  TablePrinter table({"pipeline", "J vs OMS", "time vs OMS"});
  table.add_row({"OMS (single streaming pass)", "1.00x", "1.00x"});
  table.add_row({"Fennel + identity (paper baseline)",
                 TablePrinter::cell(geometric_mean(identity_ratio)) + "x",
                 TablePrinter::cell(geometric_mean(time_identity) /
                                    geometric_mean(time_oms)) + "x"});
  table.add_row({"Fennel + greedy construction",
                 TablePrinter::cell(geometric_mean(greedy_ratio)) + "x", "(+)"});
  table.add_row({"Fennel + greedy + swap refinement",
                 TablePrinter::cell(geometric_mean(swap_ratio)) + "x",
                 TablePrinter::cell(geometric_mean(time_swap) /
                                    geometric_mean(time_oms)) + "x"});
  table.print(std::cout);
  std::cout << "\nOMS bakes the hierarchy into the partitioning itself; even "
               "after a proper\nsecond phase, the two-phase pipelines pay "
               "Fennel's O(nk) pass *plus* the QAP\nrefinement and should not "
               "fully close the quality gap (cf. the integrated-vs-\ntwo-phase "
               "comparison in the paper's reference [12]).\n";
  return 0;
}
