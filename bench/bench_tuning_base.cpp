/// \file bench_tuning_base.cpp
/// \brief Parameter-tuning ablation (Section 4): the base b of the artificial
///        multi-section tree used by nh-OMS.
///
/// Paper result: b = 4 is the fastest configuration overall — 16.7% faster
/// than b = 2 while cutting 3.2% fewer edges; larger bases approach flat
/// Fennel behaviour (more scoring per layer, fewer layers).
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Tuning — multi-section base b for nh-OMS", env);

  const auto suite = benchmark_suite(env.scale);
  const BlockId k = k_sweep(env.scale).back();
  std::cout << "k = " << k << "\n\n";

  TablePrinter table({"base b", "geomean cut", "geomean time [ms]", "score evals",
                      "vs b=2 cut", "vs b=2 time"});
  double base2_cut = 0.0;
  double base2_time = 0.0;
  for (const int b : {2, 3, 4, 8, 16}) {
    RunOptions options;
    options.repetitions = env.repetitions;
    options.threads = env.threads;
    options.k_override = k;
    options.base = b;

    std::vector<double> cuts;
    std::vector<double> times;
    std::uint64_t evals = 0;
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const RunMetrics metrics = run_algorithm(Algo::kNhOms, graph, options);
      cuts.push_back(std::max(metrics.edge_cut, 1.0));
      times.push_back(metrics.time_s);
      evals += metrics.work.score_evaluations;
    }
    const double cut = geometric_mean(cuts);
    const double time = geometric_mean(times);
    if (b == 2) {
      base2_cut = cut;
      base2_time = time;
    }
    table.add_row({TablePrinter::cell(static_cast<std::int64_t>(b)),
                   TablePrinter::cell(cut, 0), TablePrinter::cell(time * 1e3),
                   TablePrinter::cell(evals),
                   TablePrinter::percent_cell((base2_cut / cut - 1) * 100),
                   TablePrinter::percent_cell((base2_time / time - 1) * 100)});
  }
  table.print(std::cout);
  std::cout << "\npaper: b = 4 beats b = 2 by 16.7% time and 3.2% cut; the "
               "library default is 4.\nPositive percentages mean that base "
               "beats b = 2.\n";
  return 0;
}
