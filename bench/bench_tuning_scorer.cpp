/// \file bench_tuning_scorer.cpp
/// \brief Parameter-tuning ablation (Section 4): Fennel versus LDG as the
///        scoring function inside the online multi-section.
///
/// Paper result: Fennel produces on average 3.89% better mappings and 0.19%
/// better edge-cuts than LDG, hence Fennel is the library default.
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Tuning — Fennel vs LDG scorer inside OMS", env);

  const auto suite = benchmark_suite(env.scale);
  TablePrinter table({"r", "mapping J (Fennel better by)", "edge-cut (Fennel better by)",
                      "time (Fennel faster by)"});
  for (const std::int64_t r : r_sweep(env.scale)) {
    RunOptions fennel;
    fennel.repetitions = env.repetitions;
    fennel.threads = env.threads;
    fennel.topology = paper_topology(r);
    fennel.oms_use_ldg = false;
    RunOptions ldg = fennel;
    ldg.oms_use_ldg = true;

    std::vector<double> j_ratio;
    std::vector<double> cut_ratio;
    std::vector<double> time_ratio;
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const RunMetrics f = run_algorithm(Algo::kOms, graph, fennel);
      const RunMetrics l = run_algorithm(Algo::kOms, graph, ldg);
      j_ratio.push_back(l.mapping_cost / f.mapping_cost);
      cut_ratio.push_back(l.edge_cut / std::max(f.edge_cut, 1.0));
      time_ratio.push_back(l.time_s / f.time_s);
    }
    table.add_row({TablePrinter::cell(r),
                   TablePrinter::percent_cell((geometric_mean(j_ratio) - 1) * 100),
                   TablePrinter::percent_cell((geometric_mean(cut_ratio) - 1) * 100),
                   TablePrinter::percent_cell((geometric_mean(time_ratio) - 1) * 100)});
  }
  table.print(std::cout);
  std::cout << "\npaper: Fennel scorer +3.89% mapping, +0.19% edge-cut over "
               "LDG. Positive\nnumbers mean Fennel wins.\n";
  return 0;
}
