/// \file bench_common.hpp
/// \brief Shared plumbing for the per-figure/table bench binaries: env-driven
///        scale/repetitions, the paper's k sweeps, and a standard preamble.
///
/// Environment knobs (all optional):
///   OMS_BENCH_SCALE = small | medium | large   (instance sizes; default small)
///   OMS_BENCH_REPS  = N                        (repetitions; default 3)
///   OMS_BENCH_THREADS = N                      (threads for timed runs; default 1)
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "oms/benchlib/algorithms.hpp"
#include "oms/benchlib/instances.hpp"
#include "oms/util/env.hpp"
#include "oms/util/table.hpp"

namespace oms::bench {

struct BenchEnv {
  Scale scale = Scale::kSmall;
  int repetitions = 3;
  int threads = 1;

  [[nodiscard]] static BenchEnv from_env() {
    BenchEnv env;
    env.scale = scale_from_env();
    env.repetitions = static_cast<int>(env_or_int("OMS_BENCH_REPS", 3));
    env.threads = static_cast<int>(env_or_int("OMS_BENCH_THREADS", 1));
    return env;
  }
};

/// The r values of the paper's S = 4:16:r sweep, scaled down so the default
/// bench run finishes in minutes (paper: r in 1..128 -> k = 64..8192).
[[nodiscard]] inline std::vector<std::int64_t> r_sweep(Scale scale) {
  switch (scale) {
    case Scale::kSmall: return {1, 4, 16};
    case Scale::kMedium: return {1, 4, 16, 64};
    case Scale::kLarge: return {1, 4, 16, 64, 128};
  }
  return {1, 4, 16};
}

/// k values for the general-partitioning experiments (paper: k = 64s).
[[nodiscard]] inline std::vector<BlockId> k_sweep(Scale scale) {
  std::vector<BlockId> ks;
  for (const std::int64_t r : r_sweep(scale)) {
    ks.push_back(static_cast<BlockId>(64 * r));
  }
  return ks;
}

inline void preamble(const char* experiment, const BenchEnv& env) {
  std::cout << "=====================================================\n"
            << experiment << "\n"
            << "scale=" << scale_name(env.scale) << " reps=" << env.repetitions
            << " threads=" << env.threads
            << "  (env: OMS_BENCH_SCALE / OMS_BENCH_REPS / OMS_BENCH_THREADS)\n"
            << "=====================================================\n";
}

} // namespace oms::bench
