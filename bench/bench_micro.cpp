/// \file bench_micro.cpp
/// \brief google-benchmark microbenchmarks for the hot paths: tree
///        construction, leaf location, per-node assignment throughput of all
///        streaming algorithms, and the mapping-objective evaluation.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <optional>
#include <string>

#include "oms/api/partitioner.hpp"
#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/core/multisection_tree.hpp"
#include "oms/core/online_multisection.hpp"
#include "oms/edgepart/dbh.hpp"
#include "oms/edgepart/driver.hpp"
#include "oms/edgepart/hdrf.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/service/protocol.hpp"
#include "oms/service/service.hpp"
#include "oms/stream/metis_stream.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/stream/pipeline.hpp"
#include "oms/stream/window_partitioner.hpp"
#include "oms/telemetry/metrics.hpp"

namespace {

using namespace oms;

const CsrGraph& shared_graph() {
  static const CsrGraph graph = gen::barabasi_albert(1u << 15, 6, 7);
  return graph;
}

void BM_TreeBuildBSection(benchmark::State& state) {
  const auto k = static_cast<BlockId>(state.range(0));
  for (auto _ : state) {
    MultisectionTree tree = MultisectionTree::b_section(k, 4);
    benchmark::DoNotOptimize(tree.num_blocks());
  }
}
BENCHMARK(BM_TreeBuildBSection)->Arg(64)->Arg(1024)->Arg(8192)->Arg(1 << 16);

void BM_ChildIndexOfLeaf(benchmark::State& state) {
  const MultisectionTree tree = MultisectionTree::b_section(8191, 4);
  const auto& root = tree.root();
  BlockId leaf = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.child_index_of_leaf(root, leaf));
    leaf = (leaf + 37) % 8191;
  }
}
BENCHMARK(BM_ChildIndexOfLeaf);

void BM_LeafBlockId(benchmark::State& state) {
  const MultisectionTree tree = MultisectionTree::b_section(8191, 4);
  BlockId leaf = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.leaf_block_id(leaf));
    leaf = (leaf + 37) % 8191;
  }
}
BENCHMARK(BM_LeafBlockId);

template <typename MakeAssigner>
void stream_throughput(benchmark::State& state, MakeAssigner&& make) {
  const CsrGraph& graph = shared_graph();
  for (auto _ : state) {
    auto assigner = make(graph);
    const StreamResult r = run_one_pass(graph, *assigner, 1);
    benchmark::DoNotOptimize(r.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_nodes()));
}

void BM_StreamHashing(benchmark::State& state) {
  const auto k = static_cast<BlockId>(state.range(0));
  stream_throughput(state, [k](const CsrGraph& g) {
    PartitionConfig pc;
    pc.k = k;
    return std::make_unique<HashingPartitioner>(g.num_nodes(), g.total_node_weight(),
                                                pc);
  });
}
BENCHMARK(BM_StreamHashing)->Arg(256)->Arg(4096);

void BM_StreamLdg(benchmark::State& state) {
  const auto k = static_cast<BlockId>(state.range(0));
  stream_throughput(state, [k](const CsrGraph& g) {
    PartitionConfig pc;
    pc.k = k;
    return std::make_unique<LdgPartitioner>(g.num_nodes(), g.total_node_weight(), pc);
  });
}
BENCHMARK(BM_StreamLdg)->Arg(256)->Arg(4096);

void BM_StreamFennel(benchmark::State& state) {
  const auto k = static_cast<BlockId>(state.range(0));
  stream_throughput(state, [k](const CsrGraph& g) {
    PartitionConfig pc;
    pc.k = k;
    return std::make_unique<FennelPartitioner>(g.num_nodes(), g.num_edges(),
                                               g.total_node_weight(), pc);
  });
}
BENCHMARK(BM_StreamFennel)->Arg(256)->Arg(4096);

void BM_StreamNhOms(benchmark::State& state) {
  const auto k = static_cast<BlockId>(state.range(0));
  stream_throughput(state, [k](const CsrGraph& g) {
    OmsConfig config;
    return std::make_unique<OnlineMultisection>(g.num_nodes(), g.num_edges(),
                                                g.total_node_weight(), k, config);
  });
}
BENCHMARK(BM_StreamNhOms)->Arg(256)->Arg(4096);

void BM_StreamOmsMapping(benchmark::State& state) {
  const auto r = state.range(0);
  stream_throughput(state, [r](const CsrGraph& g) {
    const SystemHierarchy topo({4, 16, r}, {1, 10, 100});
    OmsConfig config;
    return std::make_unique<OnlineMultisection>(g.num_nodes(), g.num_edges(),
                                                g.total_node_weight(), topo, config);
  });
}
BENCHMARK(BM_StreamOmsMapping)->Arg(4)->Arg(64);

void BM_MetisStreamRead(benchmark::State& state) {
  // Disk ingest throughput: parse the shared graph's METIS file node by node
  // (the buffered raw-read + in-place from_chars path). PID-unique path so
  // concurrent bench runs on a shared machine cannot clobber each other.
  const std::string path = "/tmp/oms_bench_micro_stream." +
                           std::to_string(::getpid()) + ".graph";
  write_metis(shared_graph(), path);
  EdgeIndex arcs = 0;
  for (auto _ : state) {
    MetisNodeStream stream(path);
    StreamedNode node{};
    arcs = 0;
    while (stream.next(node)) {
      arcs += node.neighbors.size();
    }
    benchmark::DoNotOptimize(arcs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(arcs));
  std::remove(path.c_str());
}
BENCHMARK(BM_MetisStreamRead);

/// Disk-backed end-to-end partition runs: the sequential driver interleaves
/// parse and assign on one core; the pipelined driver overlaps them with a
/// dedicated reader thread. Same file, same assigner, same decisions — the
/// gap between the two entries is the parse/assign overlap win.
template <bool kPipelined>
void metis_stream_partition(benchmark::State& state) {
  const std::string path = "/tmp/oms_bench_micro_partition." +
                           std::to_string(::getpid()) + ".graph";
  const CsrGraph& graph = shared_graph();
  write_metis(graph, path);
  for (auto _ : state) {
    PartitionConfig pc;
    pc.k = 256;
    FennelPartitioner fennel(graph.num_nodes(), graph.num_edges(),
                             graph.total_node_weight(), pc);
    StreamResult r;
    if constexpr (kPipelined) {
      PipelineConfig config; // 1 assign thread: bit-identical to sequential
      r = run_one_pass_from_file(path, fennel, config);
    } else {
      r = run_one_pass_from_file(path, fennel);
    }
    benchmark::DoNotOptimize(r.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_nodes()));
  std::remove(path.c_str());
}

void BM_MetisStreamPartitionSeq(benchmark::State& state) {
  metis_stream_partition<false>(state);
}
BENCHMARK(BM_MetisStreamPartitionSeq);

void BM_MetisStreamPartitionPipelined(benchmark::State& state) {
  metis_stream_partition<true>(state);
}
BENCHMARK(BM_MetisStreamPartitionPipelined);

void BM_TelemetryOverhead(benchmark::State& state) {
  // The cost of the permanently compiled telemetry hooks on the densest
  // instrumented surface, the sequential disk-stream partition (per-line
  // reader hooks + per-4096-node flushes). Arg(0) runs disarmed — the
  // production default, where every hook is one relaxed load and the /0
  // entry must stay within noise of BM_MetisStreamPartitionSeq — and Arg(1)
  // runs with a registry armed, pinning the full instrumentation cost.
  const std::string path = "/tmp/oms_bench_micro_telemetry." +
                           std::to_string(::getpid()) + ".graph";
  const CsrGraph& graph = shared_graph();
  write_metis(graph, path);
  std::optional<telemetry::MetricsRegistry> registry;
  if (state.range(0) != 0) {
    registry.emplace(); // the destructor disarms
    telemetry::MetricsRegistry::arm(*registry);
  }
  for (auto _ : state) {
    PartitionConfig pc;
    pc.k = 256;
    FennelPartitioner fennel(graph.num_nodes(), graph.num_edges(),
                             graph.total_node_weight(), pc);
    const StreamResult r = run_one_pass_from_file(path, fennel);
    benchmark::DoNotOptimize(r.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_nodes()));
  std::remove(path.c_str());
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1);

void BM_BufferedPartition(benchmark::State& state) {
  // Buffered (HeiStream-style) model build + refinement throughput on the
  // in-memory entry point; the disk-native driver runs the same core.
  const auto buffer = static_cast<NodeId>(state.range(0));
  const CsrGraph& graph = shared_graph();
  for (auto _ : state) {
    BufferedConfig config;
    config.buffer_size = buffer;
    const BufferedResult r = buffered_partition(graph, 64, config);
    benchmark::DoNotOptimize(r.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_nodes()));
}
BENCHMARK(BM_BufferedPartition)->Arg(4096)->Arg(16384);

void BM_BufferedMultilevel(benchmark::State& state) {
  // Same buffered core with the multilevel inner engine: contract the
  // buffer-local model, partition the coarsest level, refine back up.
  const auto buffer = static_cast<NodeId>(state.range(0));
  const CsrGraph& graph = shared_graph();
  for (auto _ : state) {
    BufferedConfig config;
    config.buffer_size = buffer;
    config.engine = BufferedEngine::kMultilevel;
    const BufferedResult r = buffered_partition(graph, 64, config);
    benchmark::DoNotOptimize(r.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_nodes()));
}
BENCHMARK(BM_BufferedMultilevel)->Arg(4096)->Arg(16384);

void BM_WindowPartition(benchmark::State& state) {
  // Sliding-window assignment throughput (delayed decisions, k-wide scan).
  const auto k = static_cast<BlockId>(state.range(0));
  const CsrGraph& graph = shared_graph();
  for (auto _ : state) {
    WindowConfig config;
    WindowPartitioner window(graph.num_nodes(), graph.total_node_weight(), config,
                             k);
    const StreamResult r = run_one_pass(graph, window, 1);
    benchmark::DoNotOptimize(r.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_nodes()));
}
BENCHMARK(BM_WindowPartition)->Arg(256);

/// Shared edge sequence for the vertex-cut assignment-throughput benches
/// (each undirected edge of the shared graph once, stream order).
const std::vector<StreamedEdge>& shared_edges() {
  static const std::vector<StreamedEdge> edges = [] {
    const CsrGraph& graph = shared_graph();
    std::vector<StreamedEdge> result;
    result.reserve(graph.num_edges());
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      for (const NodeId v : graph.neighbors(u)) {
        if (v > u) {
          result.push_back(StreamedEdge{u, v, 1});
        }
      }
    }
    return result;
  }();
  return edges;
}

template <typename MakePartitioner>
void edge_stream_throughput(benchmark::State& state, MakePartitioner&& make) {
  const std::vector<StreamedEdge>& edges = shared_edges();
  for (auto _ : state) {
    auto partitioner = make();
    const EdgePartitionResult r = run_edge_partition(edges, *partitioner);
    benchmark::DoNotOptimize(r.edge_assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}

void BM_EdgeStreamHdrf(benchmark::State& state) {
  const auto k = static_cast<BlockId>(state.range(0));
  edge_stream_throughput(state, [k] {
    EdgePartConfig config;
    config.k = k;
    return std::make_unique<HdrfPartitioner>(config);
  });
}
BENCHMARK(BM_EdgeStreamHdrf)->Arg(32)->Arg(256);

void BM_EdgeStreamDbh(benchmark::State& state) {
  const auto k = static_cast<BlockId>(state.range(0));
  edge_stream_throughput(state, [k] {
    EdgePartConfig config;
    config.k = k;
    return std::make_unique<DbhPartitioner>(config);
  });
}
BENCHMARK(BM_EdgeStreamDbh)->Arg(32)->Arg(256);

void BM_EdgeListStreamRead(benchmark::State& state) {
  // Edge-list ingest throughput: the buffered raw-read + in-place from_chars
  // path of EdgeListStream, without any assignment work.
  const std::string path = "/tmp/oms_bench_micro_edges." +
                           std::to_string(::getpid()) + ".edgelist";
  write_edge_list(shared_graph(), path);
  EdgeIndex edges = 0;
  for (auto _ : state) {
    EdgeListStream stream(path);
    StreamedEdge edge;
    edges = 0;
    while (stream.next(edge)) {
      ++edges;
    }
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(edges));
  std::remove(path.c_str());
}
BENCHMARK(BM_EdgeListStreamRead);

void BM_MappingCost(benchmark::State& state) {
  const CsrGraph& graph = shared_graph();
  const SystemHierarchy topo({4, 16, 4}, {1, 10, 100});
  std::vector<BlockId> mapping(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    mapping[u] = static_cast<BlockId>(u % static_cast<NodeId>(topo.num_pes()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping_cost(graph, topo, mapping, 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_arcs()));
}
BENCHMARK(BM_MappingCost);

void BM_PeDistance(benchmark::State& state) {
  const SystemHierarchy topo({4, 16, 32}, {1, 10, 100});
  BlockId x = 0;
  BlockId y = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.distance(x, y));
    x = (x + 13) % topo.num_pes();
    y = (y + 29) % topo.num_pes();
  }
}
BENCHMARK(BM_PeDistance);

/// One immutable artifact shared by the service benchmarks: partitioning the
/// shared graph once keeps the setup out of every timed region.
const service::PartitionService& shared_service() {
  static const service::PartitionService instance = [] {
    PartitionRequest request;
    request.algo = "oms";
    request.k = 256;
    return service::PartitionService(
        Partitioner().partition(shared_graph(), request));
  }();
  return instance;
}

void BM_ServiceWhere(benchmark::State& state) {
  const service::PartitionService& service = shared_service();
  const std::uint64_t items = service.artifact().assignment.size();
  // Pre-encoded request bodies: the benchmark measures the server-side
  // decode -> lookup -> encode path, not the client's encoder.
  constexpr std::uint64_t kPool = 1024;
  std::vector<std::vector<char>> pool;
  pool.reserve(kPool);
  for (std::uint64_t i = 0; i < kPool; ++i) {
    pool.push_back(service::encode_where((i * 2654435761u) % items));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::vector<char>& body = pool[i++ & (kPool - 1)];
    benchmark::DoNotOptimize(service.handle(body.data(), body.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceWhere);

void BM_ServiceBatch(benchmark::State& state) {
  const service::PartitionService& service = shared_service();
  const std::uint64_t items = service.artifact().assignment.size();
  const auto count = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::uint64_t> ids(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ids[i] = (i * 48271u) % items;
  }
  const std::vector<char> body = service::encode_batch(ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.handle(body.data(), body.size()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ServiceBatch)->Arg(16)->Arg(256)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
