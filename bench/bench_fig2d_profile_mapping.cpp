/// \file bench_fig2d_profile_mapping.cpp
/// \brief Figure 2d: mapping performance profile — for each algorithm, the
///        fraction of (instance, k) pairs on which its J is within a factor
///        tau of the best algorithm's J.
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Fig 2d — mapping performance profile", env);

  const auto suite = benchmark_suite(env.scale);
  PerformanceProfile profile;
  for (const std::int64_t r : r_sweep(env.scale)) {
    RunOptions options;
    options.repetitions = env.repetitions;
    options.threads = env.threads;
    options.topology = paper_topology(r);
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const std::string key = instance.name + "/r" + std::to_string(r);
      for (const Algo algo :
           {Algo::kHashing, Algo::kOms, Algo::kFennel, Algo::kKaMinParLite}) {
        profile.add(key, algo_name(algo),
                    run_algorithm(algo, graph, options).mapping_cost);
      }
    }
  }

  const std::vector<double> taus = {1, 2, 4, 8, 16, 32, 64, 128};
  TablePrinter table({"tau", "Hashing", "OMS", "Fennel", "KaMinParLite"});
  for (const double tau : taus) {
    table.add_row({TablePrinter::cell(tau, 0),
                   TablePrinter::cell(profile.fraction_within("Hashing", tau)),
                   TablePrinter::cell(profile.fraction_within("OMS", tau)),
                   TablePrinter::cell(profile.fraction_within("Fennel", tau)),
                   TablePrinter::cell(profile.fraction_within("KaMinParLite", tau))});
  }
  table.print(std::cout);
  std::cout << "\npaper (Fig 2d): KaMinPar best on all instances (fraction 1.0 "
               "at tau=1);\nOMS dominates the streaming competitors; Hashing "
               "needs very large tau.\n";
  return 0;
}
