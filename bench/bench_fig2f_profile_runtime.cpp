/// \file bench_fig2f_profile_runtime.cpp
/// \brief Figure 2f: running-time performance profile for Hashing, nh-OMS,
///        OMS, Fennel and KaMinParLite.
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Fig 2f — running-time performance profile", env);

  const auto suite = benchmark_suite(env.scale);
  PerformanceProfile profile;
  for (const std::int64_t r : r_sweep(env.scale)) {
    RunOptions map_options;
    map_options.repetitions = env.repetitions;
    map_options.threads = env.threads;
    map_options.topology = paper_topology(r);
    RunOptions gp_options = map_options;
    gp_options.topology.reset();
    gp_options.k_override = static_cast<BlockId>(64 * r);
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const std::string key = instance.name + "/r" + std::to_string(r);
      profile.add(key, "Hashing",
                  run_algorithm(Algo::kHashing, graph, gp_options).time_s);
      profile.add(key, "nh-OMS",
                  run_algorithm(Algo::kNhOms, graph, gp_options).time_s);
      profile.add(key, "OMS", run_algorithm(Algo::kOms, graph, map_options).time_s);
      profile.add(key, "Fennel",
                  run_algorithm(Algo::kFennel, graph, gp_options).time_s);
      profile.add(key, "KaMinParLite",
                  run_algorithm(Algo::kKaMinParLite, graph, gp_options).time_s);
    }
  }

  const std::vector<double> taus = {1, 4, 16, 64, 256, 1024, 4096};
  TablePrinter table({"tau", "Hashing", "nh-OMS", "OMS", "Fennel", "KaMinParLite"});
  for (const double tau : taus) {
    table.add_row({TablePrinter::cell(tau, 0),
                   TablePrinter::cell(profile.fraction_within("Hashing", tau)),
                   TablePrinter::cell(profile.fraction_within("nh-OMS", tau)),
                   TablePrinter::cell(profile.fraction_within("OMS", tau)),
                   TablePrinter::cell(profile.fraction_within("Fennel", tau)),
                   TablePrinter::cell(profile.fraction_within("KaMinParLite", tau))});
  }
  table.print(std::cout);
  std::cout << "\npaper (Fig 2f): Hashing fastest everywhere; nh-OMS within "
               "16x of Hashing on\n100% of instances (the Theorem 4 bound); "
               "OMS third; Fennel and the in-memory\ntools need the largest "
               "tau.\n";
  return 0;
}
