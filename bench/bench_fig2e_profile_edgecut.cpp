/// \file bench_fig2e_profile_edgecut.cpp
/// \brief Figure 2e: edge-cut performance profile for Hashing, nh-OMS,
///        Fennel and KaMinParLite over all (instance, k) pairs.
#include "bench/bench_common.hpp"

#include "oms/util/stats.hpp"

int main() {
  using namespace oms;
  using namespace oms::bench;
  const BenchEnv env = BenchEnv::from_env();
  preamble("Fig 2e — edge-cut performance profile", env);

  const auto suite = benchmark_suite(env.scale);
  PerformanceProfile profile;
  for (const BlockId k : k_sweep(env.scale)) {
    RunOptions options;
    options.repetitions = env.repetitions;
    options.threads = env.threads;
    options.k_override = k;
    for (const auto& instance : suite) {
      const CsrGraph graph = instance.make();
      const std::string key = instance.name + "/k" + std::to_string(k);
      for (const Algo algo :
           {Algo::kHashing, Algo::kNhOms, Algo::kFennel, Algo::kKaMinParLite}) {
        profile.add(key, algo_name(algo),
                    run_algorithm(algo, graph, options).edge_cut);
      }
    }
  }

  const std::vector<double> taus = {1, 1.05, 1.25, 2, 4, 8, 16, 32, 64, 128};
  TablePrinter table({"tau", "Hashing", "nh-OMS", "Fennel", "KaMinParLite"});
  for (const double tau : taus) {
    table.add_row({TablePrinter::cell(tau),
                   TablePrinter::cell(profile.fraction_within("Hashing", tau)),
                   TablePrinter::cell(profile.fraction_within("nh-OMS", tau)),
                   TablePrinter::cell(profile.fraction_within("Fennel", tau)),
                   TablePrinter::cell(profile.fraction_within("KaMinParLite", tau))});
  }
  table.print(std::cout);
  std::cout << "\npaper (Fig 2e): KaMinPar smallest cut on all instances; "
               "Fennel slightly better\nthan nh-OMS (the ~5% gap shows up as "
               "nh-OMS catching up by tau ~ 1.05-1.25);\nboth far better than "
               "Hashing.\n";
  return 0;
}
