#include "oms/mapping/mapping_cost.hpp"

#include <omp.h>

#include "oms/util/assert.hpp"
#include "oms/util/parallel.hpp"

namespace oms {

Cost mapping_cost(const CsrGraph& graph, const SystemHierarchy& topology,
                  std::span<const BlockId> mapping, int num_threads) {
  OMS_ASSERT(mapping.size() == graph.num_nodes());
#if defined(OMS_TSAN_ACTIVE)
  // Read-only fan-out: under TSan the OMP fork/join would false-positive
  // (see parallel.hpp), so evaluate sequentially.
  (void)num_threads;
  const int threads = 1;
#else
  const int threads = resolve_threads(num_threads);
#endif
  const auto n = static_cast<std::int64_t>(graph.num_nodes());
  Cost total = 0;

#pragma omp parallel for schedule(static) num_threads(threads) reduction(+ : total)
  for (std::int64_t ui = 0; ui < n; ++ui) {
    const auto u = static_cast<NodeId>(ui);
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    const BlockId pu = mapping[u];
    Cost local = 0;
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      local += weights[i] * topology.distance(pu, mapping[neigh[i]]);
    }
    total += local;
  }
  // Each undirected edge was visited from both endpoints — exactly the
  // ordered-pair sum of the objective definition.
  return total;
}

void verify_mapping(const CsrGraph& graph, const SystemHierarchy& topology,
                    std::span<const BlockId> mapping) {
  OMS_ASSERT_MSG(mapping.size() == graph.num_nodes(),
                 "mapping size must equal node count");
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    OMS_ASSERT_MSG(mapping[u] >= 0 && mapping[u] < topology.num_pes(),
                   "node mapped outside the PE range");
  }
}

std::vector<Cost> per_level_volume(const CsrGraph& graph,
                                   const SystemHierarchy& topology,
                                   std::span<const BlockId> mapping) {
  OMS_ASSERT(mapping.size() == graph.num_nodes());
  std::vector<Cost> volume(topology.num_levels() + 1, 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    const BlockId pu = mapping[u];
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const BlockId pv = mapping[neigh[i]];
      if (pu == pv) {
        volume[0] += weights[i];
        continue;
      }
      for (std::size_t level = 1; level <= topology.num_levels(); ++level) {
        if (pu / topology.module_size(level) == pv / topology.module_size(level)) {
          volume[level] += weights[i];
          break;
        }
      }
    }
  }
  return volume;
}

} // namespace oms
