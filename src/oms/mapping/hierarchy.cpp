#include "oms/mapping/hierarchy.hpp"

#include "oms/util/sequence.hpp"

namespace oms {

SystemHierarchy::SystemHierarchy(std::vector<std::int64_t> extents,
                                 std::vector<std::int64_t> distances)
    : extents_(std::move(extents)), distances_(std::move(distances)) {
  OMS_ASSERT_MSG(!extents_.empty(), "hierarchy needs at least one level");
  OMS_ASSERT_MSG(extents_.size() == distances_.size(),
                 "one distance per hierarchy level");
  prefix_products_.resize(extents_.size() + 1);
  prefix_products_[0] = 1;
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    OMS_ASSERT_MSG(extents_[i] >= 1, "hierarchy extents must be >= 1");
    OMS_ASSERT_MSG(distances_[i] > 0, "hierarchy distances must be positive");
    prefix_products_[i + 1] = prefix_products_[i] * extents_[i];
  }
  const std::int64_t k = prefix_products_.back();
  OMS_ASSERT_MSG(k >= 1 && k <= (std::int64_t{1} << 30), "unreasonable PE count");
  num_pes_ = static_cast<BlockId>(k);
}

SystemHierarchy SystemHierarchy::parse(const std::string& extents,
                                       const std::string& distances) {
  return SystemHierarchy(parse_sequence(extents), parse_sequence(distances));
}

std::vector<std::int64_t> SystemHierarchy::extents_top_down() const {
  return {extents_.rbegin(), extents_.rend()};
}

std::string SystemHierarchy::to_string() const {
  return "S=" + format_sequence(extents_) + " D=" + format_sequence(distances_);
}

} // namespace oms
