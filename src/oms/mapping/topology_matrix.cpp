#include "oms/mapping/topology_matrix.hpp"

#include <algorithm>
#include <cstdlib>

#include "oms/util/assert.hpp"

namespace oms {

TopologyMatrix::TopologyMatrix(std::vector<std::vector<std::int64_t>> distances)
    : distances_(std::move(distances)) {
  const std::size_t k = distances_.size();
  OMS_ASSERT_MSG(k >= 1, "topology needs at least one PE");
  for (std::size_t x = 0; x < k; ++x) {
    OMS_ASSERT_MSG(distances_[x].size() == k, "distance matrix must be square");
    OMS_ASSERT_MSG(distances_[x][x] == 0, "self-distance must be zero");
    for (std::size_t y = 0; y < k; ++y) {
      OMS_ASSERT_MSG(distances_[x][y] >= 0, "distances must be non-negative");
      OMS_ASSERT_MSG(distances_[x][y] == distances_[y][x],
                     "distance matrix must be symmetric");
    }
  }
}

TopologyMatrix TopologyMatrix::from_hierarchy(const SystemHierarchy& topo) {
  const BlockId k = topo.num_pes();
  std::vector<std::vector<std::int64_t>> d(
      static_cast<std::size_t>(k), std::vector<std::int64_t>(static_cast<std::size_t>(k)));
  for (BlockId x = 0; x < k; ++x) {
    for (BlockId y = 0; y < k; ++y) {
      d[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] =
          topo.distance(x, y);
    }
  }
  return TopologyMatrix(std::move(d));
}

TopologyMatrix TopologyMatrix::torus_2d(BlockId k_x, BlockId k_y) {
  OMS_ASSERT(k_x >= 1 && k_y >= 1);
  const BlockId k = k_x * k_y;
  const auto wrap_distance = [](BlockId a, BlockId b, BlockId extent) {
    const BlockId direct = std::abs(a - b);
    return std::min(direct, extent - direct);
  };
  std::vector<std::vector<std::int64_t>> d(
      static_cast<std::size_t>(k), std::vector<std::int64_t>(static_cast<std::size_t>(k)));
  for (BlockId x = 0; x < k; ++x) {
    for (BlockId y = 0; y < k; ++y) {
      const BlockId xi = x % k_x;
      const BlockId xj = x / k_x;
      const BlockId yi = y % k_x;
      const BlockId yj = y / k_x;
      d[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] =
          wrap_distance(xi, yi, k_x) + wrap_distance(xj, yj, k_y);
    }
  }
  return TopologyMatrix(std::move(d));
}

TopologyMatrix TopologyMatrix::chain(BlockId k) {
  OMS_ASSERT(k >= 1);
  std::vector<std::vector<std::int64_t>> d(
      static_cast<std::size_t>(k), std::vector<std::int64_t>(static_cast<std::size_t>(k)));
  for (BlockId x = 0; x < k; ++x) {
    for (BlockId y = 0; y < k; ++y) {
      d[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = std::abs(x - y);
    }
  }
  return TopologyMatrix(std::move(d));
}

TopologyMatrix TopologyMatrix::fully_connected(BlockId k, std::int64_t uniform) {
  OMS_ASSERT(k >= 1 && uniform > 0);
  std::vector<std::vector<std::int64_t>> d(
      static_cast<std::size_t>(k),
      std::vector<std::int64_t>(static_cast<std::size_t>(k), uniform));
  for (BlockId x = 0; x < k; ++x) {
    d[static_cast<std::size_t>(x)][static_cast<std::size_t>(x)] = 0;
  }
  return TopologyMatrix(std::move(d));
}

Cost mapping_cost_matrix(const CsrGraph& graph, const TopologyMatrix& topology,
                         std::span<const BlockId> mapping) {
  OMS_ASSERT(mapping.size() == graph.num_nodes());
  Cost total = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    const BlockId pu = mapping[u];
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      total += weights[i] * topology.distance(pu, mapping[neigh[i]]);
    }
  }
  return total;
}

} // namespace oms
