/// \file topology_matrix.hpp
/// \brief Explicit k x k distance matrices for process mapping on
///        *non-hierarchical* topologies (2D tori, chains, ...) — the general
///        D of the paper's preliminaries (Section 2.1). The hierarchical
///        SystemHierarchy is the special case the multi-section exploits;
///        this class lets the evaluation machinery score mappings against
///        any topology, including ones the streaming mapper was not built
///        for (paper reference [24] targets Cartesian topologies).
#pragma once

#include <span>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/types.hpp"

namespace oms {

class TopologyMatrix {
public:
  /// Dense symmetric matrix with zero diagonal.
  explicit TopologyMatrix(std::vector<std::vector<std::int64_t>> distances);

  /// Materialize a hierarchical topology into matrix form (for testing the
  /// equivalence of the two distance implementations, and for mixing
  /// hierarchical and explicit topologies in one experiment).
  [[nodiscard]] static TopologyMatrix from_hierarchy(const SystemHierarchy& topo);

  /// k_x x k_y torus with unit hop cost and shortest-path (Manhattan with
  /// wraparound) distances — the classic Blue-Gene-style interconnect.
  [[nodiscard]] static TopologyMatrix torus_2d(BlockId k_x, BlockId k_y);

  /// Linear chain of k PEs, distance = hop count.
  [[nodiscard]] static TopologyMatrix chain(BlockId k);

  /// Fully connected switch: all distinct pairs at distance \p uniform.
  [[nodiscard]] static TopologyMatrix fully_connected(BlockId k,
                                                      std::int64_t uniform = 1);

  [[nodiscard]] BlockId num_pes() const noexcept {
    return static_cast<BlockId>(distances_.size());
  }

  [[nodiscard]] std::int64_t distance(BlockId x, BlockId y) const noexcept {
    return distances_[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)];
  }

private:
  std::vector<std::vector<std::int64_t>> distances_;
};

/// J(C, D, Pi) against an explicit matrix (ordered-pair convention, same as
/// mapping_cost for hierarchies).
[[nodiscard]] Cost mapping_cost_matrix(const CsrGraph& communication_graph,
                                       const TopologyMatrix& topology,
                                       std::span<const BlockId> mapping);

} // namespace oms
