/// \file hierarchy.hpp
/// \brief The homogeneous hierarchical topology of the process mapping
///        problem: S = a1:a2:...:al (a1 cores per processor, a2 processors
///        per node, ...) with level distances D = d1:d2:...:dl.
///
/// PEs are numbered 0..k-1 in mixed radix over (a1, ..., al): PE p sits in
/// core p mod a1 of processor (p / a1) mod a2 of node (p / (a1*a2)) mod a3,
/// and so on. The distance between two distinct PEs is d_j where j is the
/// smallest level whose module contains both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oms/types.hpp"
#include "oms/util/assert.hpp"

namespace oms {

class SystemHierarchy {
public:
  /// \param extents   a1..al, innermost (cheapest) level first; each >= 2
  ///                  except that a trailing 1 is tolerated (the paper's
  ///                  S = 4:16:r sweep includes r = 1).
  /// \param distances d1..dl, one per level, strictly increasing makes
  ///                  physical sense but is not required.
  SystemHierarchy(std::vector<std::int64_t> extents,
                  std::vector<std::int64_t> distances);

  /// Parse from the paper's notation, e.g. ("4:16:2", "1:10:100").
  [[nodiscard]] static SystemHierarchy parse(const std::string& extents,
                                             const std::string& distances);

  [[nodiscard]] std::size_t num_levels() const noexcept { return extents_.size(); }
  [[nodiscard]] BlockId num_pes() const noexcept { return num_pes_; }
  [[nodiscard]] const std::vector<std::int64_t>& extents() const noexcept {
    return extents_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& distances() const noexcept {
    return distances_;
  }

  /// Number of PEs inside one level-i module (prefix product a1*...*ai).
  /// module_size(0) == 1 (a single PE).
  [[nodiscard]] std::int64_t module_size(std::size_t level) const noexcept {
    OMS_HEAVY_ASSERT(level <= extents_.size());
    return prefix_products_[level];
  }

  /// Communication distance between PEs x and y (0 if x == y, else d_j for
  /// the smallest level j whose module contains both). O(l).
  [[nodiscard]] std::int64_t distance(BlockId x, BlockId y) const noexcept {
    OMS_HEAVY_ASSERT(x >= 0 && x < num_pes_ && y >= 0 && y < num_pes_);
    if (x == y) {
      return 0;
    }
    for (std::size_t level = 1; level <= extents_.size(); ++level) {
      if (x / prefix_products_[level] == y / prefix_products_[level]) {
        return distances_[level - 1];
      }
    }
    // Distinct PEs always share the root module, so this is unreachable for
    // valid inputs; keep the top distance as a safe answer.
    return distances_.back();
  }

  /// Extents outermost-first (al, ..., a1): the order in which the online
  /// multi-section splits the stream (paper Section 3.1 assigns the al-way
  /// top layer first).
  [[nodiscard]] std::vector<std::int64_t> extents_top_down() const;

  [[nodiscard]] std::string to_string() const;

private:
  std::vector<std::int64_t> extents_;         // a1..al (innermost first)
  std::vector<std::int64_t> distances_;       // d1..dl
  std::vector<std::int64_t> prefix_products_; // size l+1; [i] = a1*...*ai
  BlockId num_pes_ = 0;
};

} // namespace oms
