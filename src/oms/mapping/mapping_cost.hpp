/// \file mapping_cost.hpp
/// \brief The process-mapping objective J(C, D, Pi) = sum_{i,j} C_ij *
///        D_{Pi(i),Pi(j)} evaluated over a communication graph and a
///        hierarchical topology.
///
/// The communication matrix C is represented by the graph G_C itself (paper
/// Section 2.1): edge weights are the communication volumes, and the sum runs
/// over ordered pairs, i.e. every undirected edge contributes twice.
#pragma once

#include <span>

#include "oms/graph/csr_graph.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/types.hpp"

namespace oms {

/// Full objective: sum over ordered communicating pairs (u, v) of
/// C_uv * D_{Pi(u),Pi(v)}. Parallelized over nodes (read-only reduction).
[[nodiscard]] Cost mapping_cost(const CsrGraph& communication_graph,
                                const SystemHierarchy& topology,
                                std::span<const BlockId> mapping,
                                int num_threads = 1);

/// Abort with a diagnostic unless \p mapping maps every node into [0, k).
void verify_mapping(const CsrGraph& communication_graph,
                    const SystemHierarchy& topology, std::span<const BlockId> mapping);

/// Communication volume between each pair of hierarchy levels: entry j is
/// the summed C_uv (over ordered pairs) whose endpoints' PEs first meet in a
/// level-(j+1) module; entry 0 counts intra-PE pairs. Useful for examples
/// and for diagnosing *where* a mapping pays its cost.
[[nodiscard]] std::vector<Cost> per_level_volume(const CsrGraph& communication_graph,
                                                 const SystemHierarchy& topology,
                                                 std::span<const BlockId> mapping);

} // namespace oms
