#include "oms/cli/parse_request.hpp"

#include <cstdint>
#include <limits>

#include "oms/types.hpp"

namespace oms::cli {
namespace {

/// Shared numeric validation: a typo'd value must become a UsageError naming
/// the flag, not an uncaught exception or a silently accepted partial parse
/// ("1O").
template <typename Parse>
auto parsed_value(const std::string& flag, const ValueFn& value, Parse parse) {
  const std::string text = value();
  try {
    std::size_t pos = 0;
    const auto parsed = parse(text, pos);
    if (pos != text.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return parsed;
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError("invalid value '" + text + "' for " + flag);
  }
}

long long_value(const std::string& flag, const ValueFn& value) {
  return parsed_value(flag, value, [](const std::string& s, std::size_t& p) {
    return std::stol(s, &p);
  });
}

double double_value(const std::string& flag, const ValueFn& value) {
  return parsed_value(flag, value, [](const std::string& s, std::size_t& p) {
    return std::stod(s, &p);
  });
}

int int_value(const std::string& flag, const ValueFn& value) {
  return parsed_value(flag, value, [](const std::string& s, std::size_t& p) {
    const long parsed = std::stol(s, &p);
    if (parsed < std::numeric_limits<int>::min() ||
        parsed > std::numeric_limits<int>::max()) {
      throw std::out_of_range("beyond int");
    }
    return static_cast<int>(parsed);
  });
}

std::uint64_t u64_value(const std::string& flag, const ValueFn& value) {
  return parsed_value(flag, value,
                      [](const std::string& s, std::size_t& p) -> std::uint64_t {
    // stoull silently wraps negative input; only bare digits qualify.
    if (s.empty() || s[0] < '0' || s[0] > '9') {
      throw std::invalid_argument("not a decimal uint64");
    }
    return static_cast<std::uint64_t>(std::stoull(s, &p));
  });
}

} // namespace

CliRequest parse_request(int argc, char** argv, const ExtraFlag& extra) {
  CliRequest cli;
  if (argc < 2) {
    throw UsageError("missing input graph");
  }
  int i = 1;
  if (argv[1][0] != '-') {
    cli.request.graph_path = argv[1];
    i = 2;
  }
  const ValueFn value = [&]() -> std::string {
    if (i + 1 >= argc) {
      throw UsageError(std::string("missing value for ") + argv[i]);
    }
    return argv[++i];
  };
  PartitionRequest& req = cli.request;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--k") {
      req.k = static_cast<BlockId>(int_value(arg, value));
    } else if (arg == "--algo") {
      req.algo = value();
    } else if (arg == "--format") {
      req.format = value();
    } else if (arg == "--lambda") {
      req.lambda = double_value(arg, value);
    } else if (arg == "--hierarchy") {
      req.hierarchy = value();
    } else if (arg == "--distances") {
      req.distances = value();
    } else if (arg == "--epsilon") {
      req.epsilon = double_value(arg, value);
    } else if (arg == "--threads") {
      req.threads = int_value(arg, value);
    } else if (arg == "--seed") {
      req.seed = u64_value(arg, value);
    } else if (arg == "--buffer-size") {
      req.buffer_size = long_value(arg, value);
    } else if (arg == "--buffered-engine") {
      req.buffered_engine = value();
    } else if (arg == "--refine-iters") {
      req.refine_iters = long_value(arg, value);
    } else if (arg == "--window-size") {
      req.window_size = long_value(arg, value);
    } else if (arg == "--output") {
      cli.output = value();
    } else if (arg == "--metrics-out") {
      cli.metrics_out = value();
    } else if (arg == "--progress") {
      cli.progress = true;
    } else if (arg == "--from-disk") {
      req.from_disk = true;
    } else if (arg == "--pipeline") {
      req.pipeline = true;
      req.from_disk = true;
    } else if (arg == "--io-threads") {
      req.io_threads = int_value(arg, value);
    } else if (arg == "--watchdog-ms") {
      req.watchdog_ms = u64_value(arg, value);
    } else if (arg == "--checkpoint") {
      req.checkpoint = value();
    } else if (arg == "--checkpoint-every") {
      req.checkpoint_every = u64_value(arg, value);
    } else if (arg == "--resume") {
      req.resume = value();
    } else if (arg == "--on-error") {
      req.on_error = value();
    } else if (arg == "--error-budget") {
      req.error_budget = u64_value(arg, value);
    } else if (arg == "--help" || arg == "-h") {
      cli.help = true;
      return cli;
    } else if (extra && extra(arg, value)) {
      // tool-specific flag, consumed by the hook
    } else {
      throw UsageError("unknown option '" + arg + "'");
    }
  }
  return cli;
}

} // namespace oms::cli
