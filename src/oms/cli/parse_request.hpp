/// \file parse_request.hpp
/// \brief Shared command-line front end: flags -> oms::PartitionRequest.
///
/// partition_tool and oms_serve accept the same partitioning flags; both map
/// them onto PartitionRequest through this one parser so the mapping cannot
/// drift. The parser only *shapes* the request (flag syntax, numeric
/// ranges of the flag values themselves); semantic validation — unknown
/// algorithms, contradictory combinations — is Partitioner::normalize()'s
/// job, so both CLIs and library callers get identical diagnostics.
///
/// Every syntax problem throws UsageError with a message; the tools print
/// "error: <message>" followed by their usage text and exit 2. (This fixed a
/// historical inconsistency where bad flag *values* printed bare usage with
/// no error line while bad combinations printed an error line with no usage.)
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "oms/api/partition_request.hpp"

namespace oms::cli {

/// Flag-syntax problem: unknown option, missing or malformed value. The
/// CLIs print "error: <what()>", their usage text, and exit 2.
class UsageError : public std::runtime_error {
public:
  explicit UsageError(const std::string& message)
      : std::runtime_error(message) {}
};

/// What the shared flags parse to. Fields beyond the request are the flags
/// that make no sense in the library API (output is a CLI concern).
struct CliRequest {
  PartitionRequest request;
  std::string output;      ///< --output FILE; empty = stdout summary only
  std::string metrics_out; ///< --metrics-out FILE; telemetry JSON after the run
  bool progress = false;   ///< --progress; stderr heartbeat while running
  bool help = false; ///< --help / -h anywhere; caller prints usage, exits 0
};

/// Fetches the current flag's operand; throws UsageError when it is missing.
using ValueFn = std::function<std::string()>;
/// Hook for tool-specific flags (oms_serve's --socket/--artifact/...): called
/// with each flag the shared parser does not recognize; return true after
/// consuming it (calling \p value as needed), false to make parse_request
/// reject the flag as unknown.
using ExtraFlag = std::function<bool(const std::string& flag, const ValueFn& value)>;

/// Parse `argv[1..argc)` into a CliRequest. argv[1] is the input graph path
/// unless it starts with '-' (tools whose input can come from elsewhere —
/// oms_serve with --artifact — simply get an empty graph_path, which
/// Partitioner::normalize rejects if a partitioning run is actually
/// requested). Throws UsageError on any flag-syntax problem.
[[nodiscard]] CliRequest parse_request(int argc, char** argv,
                                       const ExtraFlag& extra = {});

} // namespace oms::cli
