#include "oms/partition/metrics.hpp"

#include <algorithm>

#include "oms/partition/partition_config.hpp"
#include "oms/util/assert.hpp"

namespace oms {

Cost edge_cut(const CsrGraph& graph, std::span<const BlockId> partition) {
  OMS_ASSERT(partition.size() == graph.num_nodes());
  Cost doubled_cut = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    const BlockId bu = partition[u];
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      if (partition[neigh[i]] != bu) {
        doubled_cut += weights[i];
      }
    }
  }
  OMS_ASSERT_MSG(doubled_cut % 2 == 0, "cut arcs must pair up");
  return doubled_cut / 2;
}

std::vector<NodeWeight> block_weights_of(const CsrGraph& graph,
                                         std::span<const BlockId> partition,
                                         BlockId k) {
  OMS_ASSERT(partition.size() == graph.num_nodes());
  std::vector<NodeWeight> weights(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const BlockId b = partition[u];
    OMS_ASSERT_MSG(b >= 0 && b < k, "node assigned outside [0, k)");
    weights[static_cast<std::size_t>(b)] += graph.node_weight(u);
  }
  return weights;
}

double imbalance(const CsrGraph& graph, std::span<const BlockId> partition, BlockId k) {
  const auto weights = block_weights_of(graph, partition, k);
  const NodeWeight heaviest = *std::max_element(weights.begin(), weights.end());
  const double perfect =
      static_cast<double>(graph.total_node_weight()) / static_cast<double>(k);
  if (perfect == 0.0) {
    return 0.0;
  }
  return static_cast<double>(heaviest) / perfect - 1.0;
}

bool is_balanced(const CsrGraph& graph, std::span<const BlockId> partition, BlockId k,
                 double epsilon) {
  const auto weights = block_weights_of(graph, partition, k);
  const NodeWeight lmax = max_block_weight(graph.total_node_weight(), k, epsilon);
  return std::all_of(weights.begin(), weights.end(),
                     [lmax](NodeWeight w) { return w <= lmax; });
}

void verify_partition(const CsrGraph& graph, std::span<const BlockId> partition,
                      BlockId k) {
  OMS_ASSERT_MSG(partition.size() == graph.num_nodes(),
                 "partition size must equal node count");
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    OMS_ASSERT_MSG(partition[u] >= 0 && partition[u] < k,
                   "node assigned outside [0, k)");
  }
}

BlockId num_non_empty_blocks(std::span<const BlockId> partition, BlockId k) {
  std::vector<bool> seen(static_cast<std::size_t>(k), false);
  for (const BlockId b : partition) {
    if (b >= 0 && b < k) {
      seen[static_cast<std::size_t>(b)] = true;
    }
  }
  return static_cast<BlockId>(std::count(seen.begin(), seen.end(), true));
}

double replication_factor(const BitsetTable& replicas) {
  std::uint64_t total_replicas = 0;
  std::uint64_t occurring = 0;
  for (std::size_t row = 0; row < replicas.num_rows(); ++row) {
    const std::uint32_t count = replicas.count_row(row);
    if (count > 0) {
      total_replicas += count;
      ++occurring;
    }
  }
  if (occurring == 0) {
    return 0.0;
  }
  return static_cast<double>(total_replicas) / static_cast<double>(occurring);
}

Cost replication_overhead(const BitsetTable& replicas) {
  Cost overhead = 0;
  for (std::size_t row = 0; row < replicas.num_rows(); ++row) {
    const std::uint32_t count = replicas.count_row(row);
    if (count > 0) {
      overhead += static_cast<Cost>(count) - 1;
    }
  }
  return overhead;
}

double edge_imbalance(std::span<const EdgeWeight> edge_loads) {
  OMS_ASSERT_MSG(!edge_loads.empty(), "edge_imbalance needs at least one block");
  EdgeWeight total = 0;
  EdgeWeight heaviest = 0;
  for (const EdgeWeight load : edge_loads) {
    total += load;
    heaviest = load > heaviest ? load : heaviest;
  }
  if (total == 0) {
    return 0.0;
  }
  const double perfect =
      static_cast<double>(total) / static_cast<double>(edge_loads.size());
  return static_cast<double>(heaviest) / perfect - 1.0;
}

Cost hierarchical_replica_cost(const BitsetTable& replicas,
                               const SystemHierarchy& topo) {
  OMS_ASSERT_MSG(replicas.bits_per_row() <= topo.num_pes(),
                 "replica table wider than the topology");
  Cost cost = 0;
  for (std::size_t row = 0; row < replicas.num_rows(); ++row) {
    BlockId master = kInvalidBlock;
    Cost row_cost = 0;
    replicas.for_each_set(row, [&](BlockId b) {
      if (master == kInvalidBlock) {
        master = b; // lowest set bit: for_each_set iterates ascending
      } else {
        row_cost += static_cast<Cost>(topo.distance(master, b));
      }
    });
    cost += row_cost;
  }
  return cost;
}

} // namespace oms
