#include "oms/partition/metrics.hpp"

#include <algorithm>

#include "oms/partition/partition_config.hpp"
#include "oms/util/assert.hpp"

namespace oms {

Cost edge_cut(const CsrGraph& graph, std::span<const BlockId> partition) {
  OMS_ASSERT(partition.size() == graph.num_nodes());
  Cost doubled_cut = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    const BlockId bu = partition[u];
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      if (partition[neigh[i]] != bu) {
        doubled_cut += weights[i];
      }
    }
  }
  OMS_ASSERT_MSG(doubled_cut % 2 == 0, "cut arcs must pair up");
  return doubled_cut / 2;
}

std::vector<NodeWeight> block_weights_of(const CsrGraph& graph,
                                         std::span<const BlockId> partition,
                                         BlockId k) {
  OMS_ASSERT(partition.size() == graph.num_nodes());
  std::vector<NodeWeight> weights(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const BlockId b = partition[u];
    OMS_ASSERT_MSG(b >= 0 && b < k, "node assigned outside [0, k)");
    weights[static_cast<std::size_t>(b)] += graph.node_weight(u);
  }
  return weights;
}

double imbalance(const CsrGraph& graph, std::span<const BlockId> partition, BlockId k) {
  const auto weights = block_weights_of(graph, partition, k);
  const NodeWeight heaviest = *std::max_element(weights.begin(), weights.end());
  const double perfect =
      static_cast<double>(graph.total_node_weight()) / static_cast<double>(k);
  if (perfect == 0.0) {
    return 0.0;
  }
  return static_cast<double>(heaviest) / perfect - 1.0;
}

bool is_balanced(const CsrGraph& graph, std::span<const BlockId> partition, BlockId k,
                 double epsilon) {
  const auto weights = block_weights_of(graph, partition, k);
  const NodeWeight lmax = max_block_weight(graph.total_node_weight(), k, epsilon);
  return std::all_of(weights.begin(), weights.end(),
                     [lmax](NodeWeight w) { return w <= lmax; });
}

void verify_partition(const CsrGraph& graph, std::span<const BlockId> partition,
                      BlockId k) {
  OMS_ASSERT_MSG(partition.size() == graph.num_nodes(),
                 "partition size must equal node count");
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    OMS_ASSERT_MSG(partition[u] >= 0 && partition[u] < k,
                   "node assigned outside [0, k)");
  }
}

BlockId num_non_empty_blocks(std::span<const BlockId> partition, BlockId k) {
  std::vector<bool> seen(static_cast<std::size_t>(k), false);
  for (const BlockId b : partition) {
    if (b >= 0 && b < k) {
      seen[static_cast<std::size_t>(b)] = true;
    }
  }
  return static_cast<BlockId>(std::count(seen.begin(), seen.end(), true));
}

} // namespace oms
