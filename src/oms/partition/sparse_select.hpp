/// \file sparse_select.hpp
/// \brief Exact sparse-candidate selection for the tuned Fennel objective,
///        shared by the flat partitioner and the multi-section descent.
///
/// The dense reference loop scores every slot i in ascending order:
///
///   score(i) = attraction(i) - factor * sqrt(w_i)   among slots with room,
///
/// keeping the best (score, then lighter weight, then earlier index). When
/// every slot shares (capacity, factor) and the penalty is strictly
/// increasing (factor > 0), all zero-attraction slots score -factor*sqrt(w):
/// the best of them is the lexicographic min of (weight, index) — exactly
/// the slot the ascending-index tie-break would keep, and sqrt is injective
/// on the integer weights so equal scores imply equal weights. Every other
/// zero-attraction slot is strictly dominated by that representative under
/// the loop's selection order, so evaluating only the attracted slots plus
/// the representative — in ascending index order, with the original
/// comparison — provably returns the identical winner.
///
/// Cost: O(count) branchless integer ops + O(#attracted) double ops, instead
/// of O(count) double ops. Preconditions (checked by the callers when they
/// enable this path): factor > 0, 0 <= w_i, capacity < 2^31, count < 2^31.
#pragma once

#include <cstdint>

#include "oms/types.hpp"
#include "oms/util/sqrt_cache.hpp"

namespace oms {

/// \param count        number of candidate slots
/// \param node_weight  weight of the node being placed (capacity filter)
/// \param capacity     shared slot capacity
/// \param factor       shared alpha * gamma (> 0)
/// \param sqrt_cache   memoized sqrt for the penalty
/// \param load_weight  load_weight(i) -> current weight of slot i
/// \param attraction   attraction(i) -> gathered neighbor weight of slot i
/// \param touched_scratch at least `count` slots of scratch
/// \returns the winning slot index, or -1 if no slot has room.
template <typename LoadWeight, typename AttractionAt>
[[nodiscard]] std::int32_t sparse_fennel_select(
    std::int32_t count, NodeWeight node_weight, NodeWeight capacity, double factor,
    const SqrtCache& sqrt_cache, LoadWeight&& load_weight,
    AttractionAt&& attraction, std::int32_t* touched_scratch) {
  // Branchless (weight, index) key reduction over zero-attraction slots with
  // room; attracted slots are collected (in ascending index order) on the way.
  std::uint64_t best_key = ~std::uint64_t{0};
  std::int32_t touched_count = 0;
  for (std::int32_t i = 0; i < count; ++i) {
    const NodeWeight w = load_weight(i);
    const EdgeWeight g = attraction(i);
    if (g != 0) {
      touched_scratch[touched_count++] = i;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(w) << 32) | static_cast<std::uint32_t>(i);
    const bool eligible = w + node_weight <= capacity && g == 0;
    const std::uint64_t masked = eligible ? key : ~std::uint64_t{0};
    best_key = masked < best_key ? masked : best_key;
  }
  const std::int32_t rep =
      best_key == ~std::uint64_t{0}
          ? -1
          : static_cast<std::int32_t>(best_key & 0xffffffffU);

  // Exact evaluation over attracted ∪ {representative}, ascending index,
  // reproducing the dense loop's comparison bit for bit. The representative
  // is scored at its scan-time weight (recovered from the key): sequentially
  // that equals a fresh load, and under concurrent overshoot it keeps the
  // slot eligible at the snapshot that selected it — re-loading could
  // otherwise drop the only zero-attraction candidate and fall through to
  // the all-full fallback, a divergence the dense racy loop cannot produce.
  std::int32_t best = -1;
  double best_score = 0.0;
  NodeWeight best_weight = 0;
  const auto consider_at = [&](std::int32_t i, NodeWeight w) {
    if (w + node_weight > capacity) {
      return;
    }
    const double score =
        static_cast<double>(attraction(i)) - factor * sqrt_cache(w);
    if (best < 0 || score > best_score ||
        (score == best_score && w < best_weight)) {
      best = i;
      best_score = score;
      best_weight = w;
    }
  };
  const auto rep_weight = static_cast<NodeWeight>(best_key >> 32);
  bool rep_pending = rep >= 0;
  for (std::int32_t t = 0; t < touched_count; ++t) {
    if (rep_pending && rep < touched_scratch[t]) {
      consider_at(rep, rep_weight);
      rep_pending = false;
    }
    const std::int32_t i = touched_scratch[t];
    consider_at(i, load_weight(i));
  }
  if (rep_pending) {
    consider_at(rep, rep_weight);
  }
  return best;
}

} // namespace oms
