#include "oms/partition/fennel.hpp"

namespace oms {

FennelPartitioner::FennelPartitioner(NodeId num_nodes, EdgeIndex num_edges,
                                     NodeWeight total_node_weight,
                                     const PartitionConfig& config)
    : FennelPartitioner(num_nodes, total_node_weight, config,
                        FennelParams::standard(num_nodes, num_edges, config.k)) {}

FennelPartitioner::FennelPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                                     const PartitionConfig& config,
                                     const FennelParams& params)
    : config_(config),
      params_(params),
      max_block_weight_(max_block_weight(total_node_weight, config.k, config.epsilon)),
      assignment_(num_nodes, kInvalidBlock),
      weights_(static_cast<std::size_t>(config.k)) {
  OMS_ASSERT(config.k >= 1);
}

void FennelPartitioner::prepare(int num_threads) {
  scratch_.resize(static_cast<std::size_t>(num_threads));
  for (auto& s : scratch_) {
    s.neighbor_weight.assign(static_cast<std::size_t>(config_.k), 0);
    s.touched.clear();
  }
}

BlockId FennelPartitioner::assign(const StreamedNode& node, int thread_id,
                                  WorkCounters& counters) {
  auto& scratch = scratch_[static_cast<std::size_t>(thread_id)];

  for (std::size_t i = 0; i < node.neighbors.size(); ++i) {
    counters.neighbor_visits += 1;
    const BlockId nb = assignment_[node.neighbors[i]];
    if (nb == kInvalidBlock) {
      continue;
    }
    if (scratch.neighbor_weight[static_cast<std::size_t>(nb)] == 0) {
      scratch.touched.push_back(nb);
    }
    scratch.neighbor_weight[static_cast<std::size_t>(nb)] += node.edge_weights[i];
  }

  BlockId best = kInvalidBlock;
  double best_score = 0.0;
  NodeWeight best_weight = 0;
  for (BlockId b = 0; b < config_.k; ++b) {
    counters.score_evaluations += 1;
    const NodeWeight w = weights_.load(static_cast<std::size_t>(b));
    if (w + node.weight > max_block_weight_) {
      continue;
    }
    const double score =
        static_cast<double>(scratch.neighbor_weight[static_cast<std::size_t>(b)]) -
        fennel_penalty(params_.alpha, params_.gamma, w);
    if (best == kInvalidBlock || score > best_score ||
        (score == best_score && w < best_weight)) {
      best = b;
      best_score = score;
      best_weight = w;
    }
  }
  if (best == kInvalidBlock) {
    best = 0;
    for (BlockId b = 1; b < config_.k; ++b) {
      if (weights_.load(static_cast<std::size_t>(b)) <
          weights_.load(static_cast<std::size_t>(best))) {
        best = b;
      }
    }
  }

  for (const BlockId b : scratch.touched) {
    scratch.neighbor_weight[static_cast<std::size_t>(b)] = 0;
  }
  scratch.touched.clear();

  weights_.add(static_cast<std::size_t>(best), node.weight);
  assignment_[node.id] = best;
  counters.layers_traversed += 1;
  return best;
}

void FennelPartitioner::unassign(NodeId u, NodeWeight weight) {
  const BlockId b = assignment_[u];
  OMS_ASSERT_MSG(b != kInvalidBlock, "unassign of a never-assigned node");
  weights_.add(static_cast<std::size_t>(b), -weight);
  assignment_[u] = kInvalidBlock;
}

std::uint64_t FennelPartitioner::state_bytes() const noexcept {
  return static_cast<std::uint64_t>(assignment_.capacity() * sizeof(BlockId) +
                                    weights_.size() * sizeof(NodeWeight));
}

} // namespace oms
