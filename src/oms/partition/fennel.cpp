#include "oms/partition/fennel.hpp"

#include "oms/stream/checkpoint.hpp"

#include <cstdint>

#include "oms/partition/sparse_select.hpp"

namespace oms {

FennelPartitioner::FennelPartitioner(NodeId num_nodes, EdgeIndex num_edges,
                                     NodeWeight total_node_weight,
                                     const PartitionConfig& config)
    : FennelPartitioner(num_nodes, total_node_weight, config,
                        FennelParams::standard(num_nodes, num_edges, config.k)) {}

FennelPartitioner::FennelPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                                     const PartitionConfig& config,
                                     const FennelParams& params)
    : config_(config),
      params_(params),
      max_block_weight_(max_block_weight(total_node_weight, config.k, config.epsilon)),
      penalty_factor_(params.alpha * params.gamma),
      tuned_gamma_(params.gamma == 1.5),
      // The sparse-candidate scan needs a strictly increasing penalty (its
      // untouched-block ordering collapses when alpha == 0) and weights that
      // fit the 32-bit half of its scan key.
      sparse_scan_(tuned_gamma_ && params.alpha > 0 &&
                   max_block_weight_ < (NodeWeight{1} << 31)),
      assignment_(num_nodes),
      weights_(static_cast<std::size_t>(config.k)),
      sqrt_(tuned_gamma_ ? max_block_weight_ : NodeWeight{-1}) {
  OMS_ASSERT(config.k >= 1);
}

void FennelPartitioner::prepare(int num_threads) {
  scratch_.resize(static_cast<std::size_t>(num_threads));
  for (auto& s : scratch_) {
    s.neighbor_weight.assign(static_cast<std::size_t>(config_.k), 0);
    s.touched.clear();
    s.candidates.assign(static_cast<std::size_t>(config_.k), 0);
  }
}

BlockId FennelPartitioner::assign(const StreamedNode& node, int thread_id,
                                  WorkCounters& counters) {
  auto& scratch = scratch_[static_cast<std::size_t>(thread_id)];

  for (std::size_t i = 0; i < node.neighbors.size(); ++i) {
    counters.neighbor_visits += 1;
    const BlockId nb = assignment_.load(node.neighbors[i]);
    if (nb == kInvalidBlock) {
      continue;
    }
    if (scratch.neighbor_weight[static_cast<std::size_t>(nb)] == 0) {
      scratch.touched.push_back(nb);
    }
    scratch.neighbor_weight[static_cast<std::size_t>(nb)] += node.edge_weights[i];
  }

  // The per-block work is still Theorem-shaped O(k) (every block's weight is
  // inspected once); count it as such regardless of which scan runs below.
  counters.score_evaluations += static_cast<std::uint64_t>(config_.k);
  BlockId best = kInvalidBlock;
  double best_score = 0.0;
  NodeWeight best_weight = 0;
  const EdgeWeight* const neighbor_weight = scratch.neighbor_weight.data();
  // Flat partitioners always keep the dense layout: a compile-time unit
  // stride and a cached sqrt keep the k-wide scan at a multiply per block.
  const auto weights = weights_.view<BlockWeights::Layout::kDense>();
  const auto consider = [&](BlockId b, NodeWeight w, double penalty) {
    const double score =
        static_cast<double>(neighbor_weight[static_cast<std::size_t>(b)]) - penalty;
    if (best == kInvalidBlock || score > best_score ||
        (score == best_score && w < best_weight)) {
      best = b;
      best_score = score;
      best_weight = w;
    }
  };
  if (sparse_scan_) {
    // Exact sparse-candidate scan (see sparse_select.hpp for the dominance
    // argument): bit-identical winner, O(k) integer ops + O(deg) double ops
    // instead of O(k) double ops. sparse_scan_ guarantees 0 <= w <=
    // max_block_weight_ < 2^31 and a strictly increasing penalty.
    best = sparse_fennel_select(
        config_.k, node.weight, max_block_weight_, penalty_factor_, sqrt_,
        [&](std::int32_t b) { return weights.load(static_cast<std::size_t>(b)); },
        [&](std::int32_t b) {
          return neighbor_weight[static_cast<std::size_t>(b)];
        },
        scratch.candidates.data());
  } else if (tuned_gamma_) {
    for (BlockId b = 0; b < config_.k; ++b) {
      const NodeWeight w = weights.load(static_cast<std::size_t>(b));
      if (w + node.weight > max_block_weight_) {
        continue;
      }
      consider(b, w, penalty_factor_ * sqrt_(w));
    }
  } else {
    for (BlockId b = 0; b < config_.k; ++b) {
      const NodeWeight w = weights.load(static_cast<std::size_t>(b));
      if (w + node.weight > max_block_weight_) {
        continue;
      }
      consider(b, w, fennel_penalty(params_.alpha, params_.gamma, w));
    }
  }
  if (best == kInvalidBlock) {
    best = 0;
    for (BlockId b = 1; b < config_.k; ++b) {
      if (weights_.load(static_cast<std::size_t>(b)) <
          weights_.load(static_cast<std::size_t>(best))) {
        best = b;
      }
    }
  }

  for (const BlockId b : scratch.touched) {
    scratch.neighbor_weight[static_cast<std::size_t>(b)] = 0;
  }
  scratch.touched.clear();

  weights_.add(static_cast<std::size_t>(best), node.weight);
  assignment_.store(node.id, best);
  counters.layers_traversed += 1;
  return best;
}

void FennelPartitioner::unassign(NodeId u, NodeWeight weight) {
  const BlockId b = assignment_.load(u);
  OMS_ASSERT_MSG(b != kInvalidBlock, "unassign of a never-assigned node");
  weights_.add(static_cast<std::size_t>(b), -weight);
  assignment_.store(u, kInvalidBlock);
}

std::uint64_t FennelPartitioner::state_bytes() const noexcept {
  return assignment_.footprint_bytes() +
         static_cast<std::uint64_t>(weights_.size() * sizeof(NodeWeight));
}

bool FennelPartitioner::save_stream_state(CheckpointWriter& w) const {
  save_assignment(w, assignment_);
  save_block_weights(w, weights_);
  return true;
}

bool FennelPartitioner::load_stream_state(CheckpointReader& r) {
  load_assignment(r, assignment_);
  load_block_weights(r, weights_);
  return true;
}

} // namespace oms
