/// \file fennel.hpp
/// \brief Fennel (Tsourakakis et al., WSDM'14): one-pass partitioning with an
///        additive degree-based penalty. Node v goes to the block maximizing
///        |V_i intersect N(v)| - alpha * gamma * c(V_i)^(gamma-1) among blocks
///        with room, with gamma = 3/2 and alpha = sqrt(k) m / n^(3/2).
///        O(m + n*k) per pass — the state of the art the paper races against.
#pragma once

#include <vector>

#include "oms/partition/partition_config.hpp"
#include "oms/stream/block_weights.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/assignment_array.hpp"
#include "oms/util/sqrt_cache.hpp"

namespace oms {

class FennelPartitioner final : public OnePassAssigner {
public:
  /// \param num_edges used for the standard alpha; pass an override through
  ///        \p params to study non-default objectives.
  FennelPartitioner(NodeId num_nodes, EdgeIndex num_edges,
                    NodeWeight total_node_weight, const PartitionConfig& config);
  FennelPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                    const PartitionConfig& config, const FennelParams& params);

  void prepare(int num_threads) override;
  BlockId assign(const StreamedNode& node, int thread_id,
                 WorkCounters& counters) override;
  [[nodiscard]] BlockId block_of(NodeId u) const override {
    return assignment_.load(u);
  }
  [[nodiscard]] BlockId num_blocks() const override { return config_.k; }
  [[nodiscard]] std::vector<BlockId> take_assignment() override {
    return assignment_.take();
  }

  [[nodiscard]] const FennelParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t state_bytes() const noexcept;

  /// Restreaming support (ReFennel): remove \p u from its current block so a
  /// later assign() can re-place it with fresh scores.
  void unassign(NodeId u, NodeWeight weight);

  // Checkpoint/resume: assignment + block weights; alpha/gamma/caches are
  // config-derived and rebuilt by the constructor.
  [[nodiscard]] bool save_stream_state(CheckpointWriter& w) const override;
  [[nodiscard]] bool load_stream_state(CheckpointReader& r) override;

private:
  struct Scratch {
    std::vector<EdgeWeight> neighbor_weight;
    std::vector<BlockId> touched;
    std::vector<std::int32_t> candidates; // sparse-scan scratch, size k
  };

  PartitionConfig config_;
  FennelParams params_;
  NodeWeight max_block_weight_;
  /// alpha * gamma, hoisted out of the per-block score loop; identical to the
  /// left-associated product inside fennel_penalty().
  double penalty_factor_;
  bool tuned_gamma_; ///< gamma == 3/2: penalty is penalty_factor_ * sqrt(w)
  bool sparse_scan_; ///< exact sparse-candidate scan applicable (see assign)
  AssignmentArray assignment_;
  BlockWeights weights_;
  SqrtCache sqrt_; ///< covers [0, max_block_weight_]
  std::vector<Scratch> scratch_;
};

} // namespace oms
