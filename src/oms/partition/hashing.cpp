#include "oms/partition/hashing.hpp"

#include "oms/stream/checkpoint.hpp"

#include "oms/util/random.hpp"

namespace oms {

HashingPartitioner::HashingPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                                       const PartitionConfig& config)
    : config_(config),
      max_block_weight_(max_block_weight(total_node_weight, config.k, config.epsilon)),
      assignment_(num_nodes, kInvalidBlock),
      weights_(static_cast<std::size_t>(config.k)) {
  OMS_ASSERT(config.k >= 1);
}

void HashingPartitioner::prepare(int /*num_threads*/) {}

BlockId HashingPartitioner::assign(const StreamedNode& node, int /*thread_id*/,
                                   WorkCounters& counters) {
  const auto k = static_cast<std::uint64_t>(config_.k);
  const auto weights = weights_.view<BlockWeights::Layout::kDense>();
  auto block = static_cast<BlockId>(
      splitmix64(static_cast<std::uint64_t>(node.id) ^ config_.seed) % k);
  // Balance fallback: probe forward until a block has room. With eps > 0 the
  // total capacity strictly exceeds c(V), so a block with room always exists.
  for (BlockId probes = 0; probes < config_.k; ++probes) {
    const auto b = static_cast<std::size_t>((block + probes) % config_.k);
    counters.score_evaluations += 1;
    if (weights.load(b) + node.weight <= max_block_weight_) {
      weights.add(b, node.weight);
      assignment_[node.id] = static_cast<BlockId>(b);
      counters.layers_traversed += 1;
      return static_cast<BlockId>(b);
    }
  }
  // Degenerate fallback (eps == 0 with awkward weights): least-loaded block.
  std::size_t best = 0;
  for (std::size_t b = 1; b < weights_.size(); ++b) {
    if (weights.load(b) < weights.load(best)) {
      best = b;
    }
  }
  weights.add(best, node.weight);
  assignment_[node.id] = static_cast<BlockId>(best);
  return static_cast<BlockId>(best);
}

std::uint64_t HashingPartitioner::state_bytes() const noexcept {
  return static_cast<std::uint64_t>(assignment_.capacity() * sizeof(BlockId) +
                                    weights_.size() * sizeof(NodeWeight));
}

bool HashingPartitioner::save_stream_state(CheckpointWriter& w) const {
  save_assignment(w, assignment_);
  save_block_weights(w, weights_);
  return true;
}

bool HashingPartitioner::load_stream_state(CheckpointReader& r) {
  load_assignment(r, assignment_);
  load_block_weights(r, weights_);
  return true;
}

} // namespace oms
