/// \file partition_config.hpp
/// \brief Common parameters of the k-way balanced partitioning problem and
///        the Fennel objective constants from Tsourakakis et al.
#pragma once

#include <cmath>
#include <cstdint>

#include "oms/types.hpp"
#include "oms/util/assert.hpp"

namespace oms {

/// Balance constraint of the paper: Lmax = ceil((1 + eps) * c(V) / k).
[[nodiscard]] inline NodeWeight max_block_weight(NodeWeight total_node_weight,
                                                 BlockId k, double epsilon) {
  OMS_ASSERT(k >= 1);
  OMS_ASSERT(epsilon >= 0.0);
  const double bound = (1.0 + epsilon) * static_cast<double>(total_node_weight) /
                       static_cast<double>(k);
  return static_cast<NodeWeight>(std::ceil(bound));
}

/// Fennel's tuned objective constants: gamma = 3/2 and
/// alpha = sqrt(k) * m / n^(3/2)  (Section 2.2 of the paper).
struct FennelParams {
  double alpha = 0.0;
  double gamma = 1.5;

  [[nodiscard]] static FennelParams standard(NodeId n, EdgeIndex m, BlockId k) {
    OMS_ASSERT(n > 0);
    FennelParams params;
    params.gamma = 1.5;
    params.alpha = std::sqrt(static_cast<double>(k)) * static_cast<double>(m) /
                   std::pow(static_cast<double>(n), 1.5);
    return params;
  }
};

/// Additive Fennel penalty f(w) = alpha * gamma * w^(gamma-1); specialized
/// for the tuned gamma = 3/2 where w^(1/2) avoids std::pow on the hot path.
[[nodiscard]] inline double fennel_penalty(double alpha, double gamma,
                                           NodeWeight block_weight) noexcept {
  const auto w = static_cast<double>(block_weight);
  if (gamma == 1.5) {
    return alpha * 1.5 * std::sqrt(w);
  }
  return alpha * gamma * std::pow(w, gamma - 1.0);
}

/// Shared knobs of the streaming partitioners.
struct PartitionConfig {
  BlockId k = 2;
  double epsilon = 0.03; ///< paper default: 3% imbalance
  std::uint64_t seed = 1;
};

} // namespace oms
