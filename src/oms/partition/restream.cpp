#include "oms/partition/restream.hpp"

#include "oms/partition/metrics.hpp"
#include "oms/util/timer.hpp"

namespace oms {

RestreamResult restream(const CsrGraph& graph, RestreamableAssigner& assigner,
                        int passes) {
  OMS_ASSERT(passes >= 1);
  assigner.prepare(1);

  RestreamResult result;
  Timer timer;
  WorkCounters counters;
  for (int pass = 0; pass < passes; ++pass) {
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      if (pass > 0) {
        assigner.unassign_node(u, graph.node_weight(u));
      }
      const StreamedNode node{u, graph.node_weight(u), graph.neighbors(u),
                              graph.incident_weights(u)};
      assigner.assign(node, 0, counters);
    }
    // Objective trace: read the live assignment without consuming it.
    std::vector<BlockId> snapshot(graph.num_nodes());
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      snapshot[u] = assigner.block_of(u);
    }
    result.cut_per_pass.push_back(edge_cut(graph, snapshot));
  }
  result.elapsed_s = timer.elapsed_s();
  result.assignment = assigner.take_assignment();
  return result;
}

} // namespace oms
