/// \file ldg.hpp
/// \brief Linear Deterministic Greedy (Stanton & Kliot): assign node v to the
///        block maximizing |V_i intersect N(v)| * (1 - c(V_i)/Lmax), breaking
///        ties towards the lighter block. O(m + n*k) over a pass.
#pragma once

#include <vector>

#include "oms/partition/partition_config.hpp"
#include "oms/stream/block_weights.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/assignment_array.hpp"

namespace oms {

class LdgPartitioner final : public OnePassAssigner {
public:
  LdgPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                 const PartitionConfig& config);

  void prepare(int num_threads) override;
  BlockId assign(const StreamedNode& node, int thread_id,
                 WorkCounters& counters) override;
  [[nodiscard]] BlockId block_of(NodeId u) const override {
    return assignment_.load(u);
  }
  [[nodiscard]] BlockId num_blocks() const override { return config_.k; }
  [[nodiscard]] std::vector<BlockId> take_assignment() override {
    return assignment_.take();
  }

  [[nodiscard]] std::uint64_t state_bytes() const noexcept;

  // Checkpoint/resume: assignment + block weights (scratch is per-node).
  [[nodiscard]] bool save_stream_state(CheckpointWriter& w) const override;
  [[nodiscard]] bool load_stream_state(CheckpointReader& r) override;

private:
  struct Scratch {
    std::vector<EdgeWeight> neighbor_weight; // size k, reset via touched list
    std::vector<BlockId> touched;
  };

  PartitionConfig config_;
  NodeWeight max_block_weight_;
  AssignmentArray assignment_;
  BlockWeights weights_;
  std::vector<Scratch> scratch_;
};

} // namespace oms
