#include "oms/partition/ldg.hpp"

#include "oms/stream/checkpoint.hpp"

namespace oms {

LdgPartitioner::LdgPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                               const PartitionConfig& config)
    : config_(config),
      max_block_weight_(max_block_weight(total_node_weight, config.k, config.epsilon)),
      assignment_(num_nodes),
      weights_(static_cast<std::size_t>(config.k)) {
  OMS_ASSERT(config.k >= 1);
}

void LdgPartitioner::prepare(int num_threads) {
  scratch_.resize(static_cast<std::size_t>(num_threads));
  for (auto& s : scratch_) {
    s.neighbor_weight.assign(static_cast<std::size_t>(config_.k), 0);
    s.touched.clear();
  }
}

BlockId LdgPartitioner::assign(const StreamedNode& node, int thread_id,
                               WorkCounters& counters) {
  auto& scratch = scratch_[static_cast<std::size_t>(thread_id)];

  // Gather the weight of already-assigned neighbors per block.
  for (std::size_t i = 0; i < node.neighbors.size(); ++i) {
    counters.neighbor_visits += 1;
    const BlockId nb = assignment_.load(node.neighbors[i]);
    if (nb == kInvalidBlock) {
      continue;
    }
    if (scratch.neighbor_weight[static_cast<std::size_t>(nb)] == 0) {
      scratch.touched.push_back(nb);
    }
    scratch.neighbor_weight[static_cast<std::size_t>(nb)] += node.edge_weights[i];
  }

  // Score all k blocks: attraction * remaining-capacity penalty. The dense
  // view gives the k-wide scan a compile-time unit stride.
  const auto weights = weights_.view<BlockWeights::Layout::kDense>();
  const EdgeWeight* const neighbor_weight = scratch.neighbor_weight.data();
  const NodeWeight max_weight = max_block_weight_;
  counters.score_evaluations += static_cast<std::uint64_t>(config_.k);
  BlockId best = kInvalidBlock;
  double best_score = -1.0;
  NodeWeight best_weight = 0;
  for (BlockId b = 0; b < config_.k; ++b) {
    const NodeWeight w = weights.load(static_cast<std::size_t>(b));
    if (w + node.weight > max_weight) {
      continue;
    }
    const double penalty =
        1.0 - static_cast<double>(w) / static_cast<double>(max_weight);
    const double score =
        static_cast<double>(neighbor_weight[static_cast<std::size_t>(b)]) * penalty;
    // Tie-break towards the lighter block (paper / Stanton-Kliot rule).
    if (best == kInvalidBlock || score > best_score ||
        (score == best_score && w < best_weight)) {
      best = b;
      best_score = score;
      best_weight = w;
    }
  }
  if (best == kInvalidBlock) {
    // All blocks momentarily at capacity (possible only transiently under
    // parallel overshoot): fall back to the globally lightest block.
    best = 0;
    for (BlockId b = 1; b < config_.k; ++b) {
      if (weights.load(static_cast<std::size_t>(b)) <
          weights.load(static_cast<std::size_t>(best))) {
        best = b;
      }
    }
  }

  for (const BlockId b : scratch.touched) {
    scratch.neighbor_weight[static_cast<std::size_t>(b)] = 0;
  }
  scratch.touched.clear();

  weights_.add(static_cast<std::size_t>(best), node.weight);
  assignment_.store(node.id, best);
  counters.layers_traversed += 1;
  return best;
}

std::uint64_t LdgPartitioner::state_bytes() const noexcept {
  return assignment_.footprint_bytes() +
         static_cast<std::uint64_t>(weights_.size() * sizeof(NodeWeight));
}

bool LdgPartitioner::save_stream_state(CheckpointWriter& w) const {
  save_assignment(w, assignment_);
  save_block_weights(w, weights_);
  return true;
}

bool LdgPartitioner::load_stream_state(CheckpointReader& r) {
  load_assignment(r, assignment_);
  load_block_weights(r, weights_);
  return true;
}

} // namespace oms
