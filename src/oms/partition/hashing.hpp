/// \file hashing.hpp
/// \brief The Hashing streaming partitioner of Stanton & Kliot: assign each
///        node to hash(id) mod k in O(1), ignoring the graph structure.
///
/// Following the paper's experimental setup ("All partitions computed by all
/// algorithms were balanced"), a node whose hashed block is already at its
/// capacity Lmax is linearly probed to the next block with room — an O(1)
/// expected-time correction that keeps the balance guarantee without
/// changing the algorithm's character.
#pragma once

#include <vector>

#include "oms/partition/partition_config.hpp"
#include "oms/stream/block_weights.hpp"
#include "oms/stream/one_pass_driver.hpp"

namespace oms {

class HashingPartitioner final : public OnePassAssigner {
public:
  /// \param total_node_weight used to compute Lmax for the overflow probe.
  HashingPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                     const PartitionConfig& config);

  void prepare(int num_threads) override;
  BlockId assign(const StreamedNode& node, int thread_id,
                 WorkCounters& counters) override;
  [[nodiscard]] BlockId block_of(NodeId u) const override { return assignment_[u]; }
  [[nodiscard]] BlockId num_blocks() const override { return config_.k; }
  [[nodiscard]] std::vector<BlockId> take_assignment() override {
    return std::move(assignment_);
  }

  /// State footprint for the memory experiment: assignment + block weights.
  [[nodiscard]] std::uint64_t state_bytes() const noexcept;

  // Checkpoint/resume: assignment + block weights are the whole cross-node
  // state (the hash itself is stateless in the seed).
  [[nodiscard]] bool save_stream_state(CheckpointWriter& w) const override;
  [[nodiscard]] bool load_stream_state(CheckpointReader& r) override;

private:
  PartitionConfig config_;
  NodeWeight max_block_weight_;
  std::vector<BlockId> assignment_;
  BlockWeights weights_;
};

} // namespace oms
