/// \file metrics.hpp
/// \brief Partition quality metrics: edge-cut, imbalance, and validity
///        checking — the objective functions of the paper's GP experiments.
#pragma once

#include <span>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/types.hpp"

namespace oms {

/// Sum of weights of edges whose endpoints lie in different blocks.
[[nodiscard]] Cost edge_cut(const CsrGraph& graph, std::span<const BlockId> partition);

/// Weight of each block.
[[nodiscard]] std::vector<NodeWeight> block_weights_of(
    const CsrGraph& graph, std::span<const BlockId> partition, BlockId k);

/// max_i c(V_i) * k / c(V) - 1; 0 means perfectly balanced.
[[nodiscard]] double imbalance(const CsrGraph& graph, std::span<const BlockId> partition,
                               BlockId k);

/// True iff every block respects Lmax = ceil((1+eps) c(V)/k).
[[nodiscard]] bool is_balanced(const CsrGraph& graph, std::span<const BlockId> partition,
                               BlockId k, double epsilon);

/// Abort with a diagnostic unless the partition is structurally valid:
/// every node assigned to [0, k).
void verify_partition(const CsrGraph& graph, std::span<const BlockId> partition,
                      BlockId k);

/// Number of blocks that actually received at least one node.
[[nodiscard]] BlockId num_non_empty_blocks(std::span<const BlockId> partition, BlockId k);

} // namespace oms
