/// \file metrics.hpp
/// \brief Partition quality metrics — edge-cut, imbalance, and validity for
///        node partitions (the paper's GP experiments), plus the vertex-cut
///        objectives of the streaming edge partitioners (replication factor,
///        edge balance, hierarchical replica cost).
#pragma once

#include <span>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/types.hpp"
#include "oms/util/dense_bitset.hpp"

namespace oms {

/// Sum of weights of edges whose endpoints lie in different blocks.
[[nodiscard]] Cost edge_cut(const CsrGraph& graph, std::span<const BlockId> partition);

/// Weight of each block.
[[nodiscard]] std::vector<NodeWeight> block_weights_of(
    const CsrGraph& graph, std::span<const BlockId> partition, BlockId k);

/// max_i c(V_i) * k / c(V) - 1; 0 means perfectly balanced.
[[nodiscard]] double imbalance(const CsrGraph& graph, std::span<const BlockId> partition,
                               BlockId k);

/// True iff every block respects Lmax = ceil((1+eps) c(V)/k).
[[nodiscard]] bool is_balanced(const CsrGraph& graph, std::span<const BlockId> partition,
                               BlockId k, double epsilon);

/// Abort with a diagnostic unless the partition is structurally valid:
/// every node assigned to [0, k).
void verify_partition(const CsrGraph& graph, std::span<const BlockId> partition,
                      BlockId k);

/// Number of blocks that actually received at least one node.
[[nodiscard]] BlockId num_non_empty_blocks(std::span<const BlockId> partition, BlockId k);

// --- Vertex-cut (edge partitioning) metrics -------------------------------
// A vertex-cut partition is described by its replica table (row = vertex,
// bit = block that holds at least one of the vertex's edges) and the edge
// load per block, both produced by a StreamingEdgePartitioner.

/// Average number of replicas per *occurring* vertex (rows with no replica —
/// isolated ids in a sparse universe — are excluded). 1.0 is the ideal
/// (every vertex whole); k is the worst case.
[[nodiscard]] double replication_factor(const BitsetTable& replicas);

/// Total replicas minus the number of occurring vertices: the vertex-cut
/// analogue of the communication-volume objective (each extra replica is one
/// synchronization channel).
[[nodiscard]] Cost replication_overhead(const BitsetTable& replicas);

/// max_b load(b) * k / sum(load) - 1, the edge-load analogue of
/// imbalance(); 0 means perfectly balanced, k over the loads' size.
[[nodiscard]] double edge_imbalance(std::span<const EdgeWeight> edge_loads);

/// Distance-weighted replica synchronization cost: for every vertex, its
/// lowest-id replica acts as the master and each further replica pays the
/// topology distance to it. With all level distances equal to d this is
/// d * replication_overhead(); hierarchy-aware partitioners lower it by
/// keeping each vertex's replicas inside cheap (inner) modules.
[[nodiscard]] Cost hierarchical_replica_cost(const BitsetTable& replicas,
                                             const SystemHierarchy& topo);

} // namespace oms
