/// \file restream.hpp
/// \brief Restreaming one-pass partitioning (Nishimura & Ugander): run the
///        scoring pass several times over the input; from the second pass on
///        a node is first removed from its current block and then re-placed.
///
/// The paper cites ReLDG/ReFennel as related work and names "remapping" via
/// restreamed multi-section as a natural extension (Section 3.2); this module
/// provides the machinery for both.
#pragma once

#include "oms/graph/csr_graph.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/stream/one_pass_driver.hpp"

namespace oms {

/// Extension of the one-pass interface for assigners that support
/// re-placement of already-assigned nodes.
class RestreamableAssigner : public OnePassAssigner {
public:
  /// Remove \p u (weight \p weight) from its current block; the next assign()
  /// for u re-places it. Only called for nodes already assigned.
  virtual void unassign_node(NodeId u, NodeWeight weight) = 0;
};

/// Result of a restreaming run: per-pass objective trace plus the final
/// assignment (taken from the assigner).
struct RestreamResult {
  std::vector<BlockId> assignment;
  std::vector<Cost> cut_per_pass;
  double elapsed_s = 0.0;
};

/// Run \p passes streaming passes of \p assigner over \p graph (sequential;
/// restreaming is defined on a fixed stream order). Records the edge-cut
/// after every pass.
[[nodiscard]] RestreamResult restream(const CsrGraph& graph,
                                      RestreamableAssigner& assigner, int passes);

/// ReFennel: Fennel wrapped with the restreaming hooks.
class ReFennelPartitioner final : public RestreamableAssigner {
public:
  ReFennelPartitioner(NodeId num_nodes, EdgeIndex num_edges,
                      NodeWeight total_node_weight, const PartitionConfig& config)
      : fennel_(num_nodes, num_edges, total_node_weight, config) {}

  void prepare(int num_threads) override { fennel_.prepare(num_threads); }
  BlockId assign(const StreamedNode& node, int thread_id,
                 WorkCounters& counters) override {
    return fennel_.assign(node, thread_id, counters);
  }
  [[nodiscard]] BlockId block_of(NodeId u) const override { return fennel_.block_of(u); }
  [[nodiscard]] BlockId num_blocks() const override { return fennel_.num_blocks(); }
  [[nodiscard]] std::vector<BlockId> take_assignment() override {
    return fennel_.take_assignment();
  }
  void unassign_node(NodeId u, NodeWeight weight) override {
    fennel_.unassign(u, weight);
  }

private:
  FennelPartitioner fennel_;
};

} // namespace oms
