/// \file checkpoint.hpp
/// \brief Crash-safe checkpoint/resume for streaming partitioning runs.
///
/// A checkpoint is a binary snapshot of everything a streaming pass needs to
/// continue as if it had never stopped: the input position (byte offset +
/// line number of the next unparsed line), the stream progress (nodes
/// delivered), and the partitioner's cross-node state (assignment prefix,
/// block weights, algorithm-specific extras). Because every supported
/// algorithm derives all remaining state deterministically from its config,
/// a killed-and-resumed run is bit-identical to an uninterrupted one — the
/// chaos suite pins that with golden hashes.
///
/// File format (little-endian, all integers fixed-width):
///
///     u64  magic   "OMSCKPT1"
///     u32  version (currently 1)
///     meta: u32 len + algo id bytes, then u64 k, seed, num_nodes,
///           nodes_streamed, input_offset, input_line_no
///     u64  payload length + payload bytes (partitioner-specific)
///     u32  CRC-32 (IEEE) over every preceding byte
///
/// Files are written to `<path>.tmp` and renamed into place, so a crash
/// *during* a checkpoint write leaves the previous snapshot intact. Readers
/// validate magic, version and CRC before touching any field and raise
/// oms::IoError on any mismatch — a corrupt or truncated checkpoint can
/// never silently resume wrong state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oms/stream/one_pass_driver.hpp"
#include "oms/types.hpp"

namespace oms {

class AssignmentArray;
class BlockWeights;
class MetisNodeStream;

/// Append-only byte buffer with typed put_* helpers; the payload side of a
/// partitioner's save_stream_state().
class CheckpointWriter {
public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }
  void put_string(const std::string& s);
  void put_raw(const void* data, std::size_t bytes);

  [[nodiscard]] const std::vector<char>& bytes() const noexcept { return buf_; }

private:
  std::vector<char> buf_;
};

/// Bounds-checked cursor over a checkpoint payload. Every get_* throws
/// oms::IoError when the payload is shorter than the reader expects, so a
/// payload/algorithm mismatch surfaces as a clean error.
class CheckpointReader {
public:
  CheckpointReader(const char* data, std::size_t size) : cur_(data), end_(data + size) {}
  explicit CheckpointReader(const std::vector<char>& bytes)
      : CheckpointReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint32_t get_u32() { return get<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get<std::uint64_t>(); }
  [[nodiscard]] std::int64_t get_i64() { return get<std::int64_t>(); }
  [[nodiscard]] double get_f64() { return get<double>(); }
  [[nodiscard]] std::string get_string();
  void get_raw(void* out, std::size_t bytes);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - cur_);
  }
  /// Throws unless the payload was consumed exactly — trailing bytes mean the
  /// payload belongs to a different (likely newer) serialization.
  void expect_end() const;

private:
  template <typename T>
  [[nodiscard]] T get() {
    T v;
    get_raw(&v, sizeof v);
    return v;
  }

  const char* cur_;
  const char* end_;
};

/// The validated header fields of a checkpoint file.
struct CheckpointMeta {
  std::string algo;                 ///< "oms", "fennel", "ldg", "hashing", "buffered:lp", ...
  std::uint64_t k = 0;
  std::uint64_t seed = 0;
  std::uint64_t num_nodes = 0;      ///< header node count of the input graph
  std::uint64_t nodes_streamed = 0; ///< nodes fully assigned before the snapshot
  std::uint64_t input_offset = 0;   ///< byte offset of the next unparsed line
  std::uint64_t input_line_no = 0;  ///< 1-based line number matching input_offset
};

struct CheckpointState {
  CheckpointMeta meta;
  std::vector<char> payload;
};

/// Atomically (write-then-rename) persist a checkpoint. Throws IoError on any
/// filesystem failure.
void write_checkpoint_file(const std::string& path, const CheckpointMeta& meta,
                           const std::vector<char>& payload);

/// Load and fully validate (magic, version, CRC, structure) a checkpoint.
/// Throws IoError naming the defect otherwise.
[[nodiscard]] CheckpointState read_checkpoint_file(const std::string& path);

/// Throws IoError unless \p meta matches the run being resumed: same
/// algorithm id, k, seed and input node count. Callers decide the exit
/// policy (the CLI maps this to a usage error, exit 2).
void validate_resume(const CheckpointMeta& meta, const std::string& algo,
                     std::uint64_t k, std::uint64_t seed, std::uint64_t num_nodes);

// --- serialization helpers shared by the partitioners' save/load ----------

void save_assignment(CheckpointWriter& w, const AssignmentArray& assignment);
void load_assignment(CheckpointReader& r, AssignmentArray& assignment);
void save_assignment(CheckpointWriter& w, const std::vector<BlockId>& assignment);
void load_assignment(CheckpointReader& r, std::vector<BlockId>& assignment);
void save_block_weights(CheckpointWriter& w, const BlockWeights& weights);
void load_block_weights(CheckpointReader& r, BlockWeights& weights);

// --- checkpointing drivers -------------------------------------------------

struct CheckpointConfig {
  std::string path;                   ///< empty = checkpointing disabled
  std::uint64_t every_nodes = 65536;  ///< snapshot cadence in streamed nodes
};

/// Sequential one-pass streaming with periodic checkpoints and optional
/// resume. \p stream must be freshly constructed (header read, no data
/// consumed); \p resume, when given, must already have passed
/// validate_resume. \p algo/\p seed stamp the written snapshots.
/// FaultSite::kCheckpointDie fires right after a snapshot is durably on disk
/// — the chaos harness uses it as a deterministic stand-in for kill -9.
[[nodiscard]] StreamResult run_one_pass_resumable(MetisNodeStream& stream,
                                                  OnePassAssigner& assigner,
                                                  const std::string& algo,
                                                  std::uint64_t seed,
                                                  const CheckpointConfig& checkpoint,
                                                  const CheckpointState* resume);

} // namespace oms
