#include "oms/stream/buffered_stream_driver.hpp"

#include "oms/stream/metis_stream.hpp"
#include "oms/stream/node_batch.hpp"
#include "oms/stream/pipeline_core.hpp"
#include "oms/util/io_error.hpp"
#include "oms/util/timer.hpp"

namespace oms {

namespace {

/// The balance bound needs the total node weight before any node arrives;
/// the METIS header only carries n, so weighted files cannot be streamed.
void require_unit_weights(const std::string& path, const MetisHeader& header) {
  if (header.has_node_weights) {
    throw IoError(path + ": buffered disk streaming assumes unit node weights "
                         "(load the graph in memory instead)");
  }
}

[[nodiscard]] BufferedResult finish(BufferedPartitioner&& core, Timer& timer) {
  BufferedResult result;
  result.buffers_processed = core.buffers_processed();
  result.assignment = core.take_assignment();
  result.elapsed_s = timer.elapsed_s();
  return result;
}

} // namespace

BufferedResult buffered_partition_from_file(const std::string& path, BlockId k,
                                            const BufferedConfig& config) {
  MetisNodeStream stream(path);
  require_unit_weights(path, stream.header());

  Timer timer;
  BufferedPartitioner core(stream.header().num_nodes,
                           static_cast<NodeWeight>(stream.header().num_nodes), k,
                           config);
  NodeBatch batch;
  while (stream.fill_batch(batch, config.buffer_size) > 0) {
    core.process_buffer(batch);
  }
  return finish(std::move(core), timer);
}

BufferedResult buffered_partition_from_file(const std::string& path, BlockId k,
                                            const BufferedConfig& config,
                                            const PipelineConfig& pipeline) {
  MetisNodeStream stream(path, pipeline.reader_buffer_bytes);
  require_unit_weights(path, stream.header());

  Timer timer;
  BufferedPartitioner core(stream.header().num_nodes,
                           static_cast<NodeWeight>(stream.header().num_nodes), k,
                           config);
  // One consumer: buffers are optimized strictly in stream order while the
  // reader parses ahead (bounded by the ring — backpressure, not buildup).
  run_batched_pipeline<NodeBatch>(
      pipeline.ring_batches, /*consumers=*/1,
      [&](NodeBatch& batch) {
        return stream.fill_batch(batch, config.buffer_size);
      },
      [&](const NodeBatch& batch, int /*thread_id*/) {
        core.process_buffer(batch);
      });
  return finish(std::move(core), timer);
}

} // namespace oms
