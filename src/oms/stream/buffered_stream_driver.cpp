#include "oms/stream/buffered_stream_driver.hpp"

#include <limits>

#include "oms/stream/metis_stream.hpp"
#include "oms/stream/node_batch.hpp"
#include "oms/stream/pipeline_core.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"
#include "oms/util/timer.hpp"

namespace oms {

namespace {

/// The balance bound needs the total node weight before any node arrives;
/// the METIS header only carries n, so weighted files cannot be streamed.
void require_unit_weights(const std::string& path, const MetisHeader& header) {
  if (header.has_node_weights) {
    throw IoError(path + ": buffered disk streaming assumes unit node weights "
                         "(load the graph in memory instead)");
  }
}

[[nodiscard]] BufferedResult finish(BufferedPartitioner&& core, Timer& timer) {
  BufferedResult result;
  result.buffers_processed = core.buffers_processed();
  result.assignment = core.take_assignment();
  result.elapsed_s = timer.elapsed_s();
  return result;
}

} // namespace

BufferedResult buffered_partition_from_file(const std::string& path, BlockId k,
                                            const BufferedConfig& config) {
  MetisNodeStream stream(path);
  require_unit_weights(path, stream.header());

  Timer timer;
  BufferedPartitioner core(stream.header().num_nodes,
                           static_cast<NodeWeight>(stream.header().num_nodes), k,
                           config);
  NodeBatch batch;
  while (stream.fill_batch(batch, config.buffer_size) > 0) {
    core.process_buffer(batch);
  }
  return finish(std::move(core), timer);
}

BufferedResult buffered_partition_from_file(const std::string& path, BlockId k,
                                            const BufferedConfig& config,
                                            const PipelineConfig& pipeline) {
  MetisNodeStream stream(path, pipeline.reader_buffer_bytes);
  require_unit_weights(path, stream.header());

  Timer timer;
  BufferedPartitioner core(stream.header().num_nodes,
                           static_cast<NodeWeight>(stream.header().num_nodes), k,
                           config);
  // One consumer: buffers are optimized strictly in stream order while the
  // reader parses ahead (bounded by the ring — backpressure, not buildup).
  run_batched_pipeline<NodeBatch>(
      pipeline.ring_batches, /*consumers=*/1,
      [&](NodeBatch& batch) {
        return stream.fill_batch(batch, config.buffer_size);
      },
      [&](const NodeBatch& batch, int /*thread_id*/) {
        core.process_buffer(batch);
      },
      pipeline.watchdog_ms);
  return finish(std::move(core), timer);
}

BufferedResult buffered_partition_from_file_resumable(
    const std::string& path, BlockId k, const BufferedConfig& config,
    const CheckpointConfig& checkpoint, const CheckpointState* resume) {
  MetisNodeStream stream(path);
  require_unit_weights(path, stream.header());

  Timer timer;
  BufferedPartitioner core(stream.header().num_nodes,
                           static_cast<NodeWeight>(stream.header().num_nodes), k,
                           config);
  std::uint64_t streamed = 0;
  if (resume != nullptr) {
    CheckpointReader r(resume->payload);
    core.load_stream_state(r);
    r.expect_end();
    streamed = resume->meta.nodes_streamed;
    stream.resume_at(resume->meta.input_offset, resume->meta.input_line_no,
                     static_cast<NodeId>(streamed));
  }

  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t every =
      checkpoint.path.empty() || checkpoint.every_nodes == 0 ? kNever
                                                             : checkpoint.every_nodes;
  std::uint64_t next_snapshot =
      every == kNever ? kNever : (streamed / every + 1) * every;

  NodeBatch batch;
  while (stream.fill_batch(batch, config.buffer_size) > 0) {
    core.process_buffer(batch);
    streamed += batch.size();
    if (streamed >= next_snapshot) {
      CheckpointMeta meta;
      meta.algo = buffered_checkpoint_algo_id(config);
      meta.k = static_cast<std::uint64_t>(k);
      meta.seed = config.seed;
      meta.num_nodes = stream.header().num_nodes;
      meta.nodes_streamed = streamed;
      meta.input_offset = stream.next_offset();
      meta.input_line_no = stream.line_no();
      CheckpointWriter w;
      core.save_stream_state(w);
      write_checkpoint_file(checkpoint.path, meta, w.bytes());
      // Deterministic stand-in for kill -9 right after a durable snapshot.
      if (fault_fires(FaultSite::kCheckpointDie)) {
        throw IoError("injected crash after checkpoint at node " +
                      std::to_string(streamed));
      }
      // One buffer can cross several cadence points; snapshot once per
      // boundary, then catch the schedule up.
      while (next_snapshot <= streamed) {
        next_snapshot += every;
      }
    }
  }
  return finish(std::move(core), timer);
}

} // namespace oms
