/// \file node_batch.hpp
/// \brief A contiguous run of parsed stream nodes, stored flat so one batch
///        is one allocation set that the pipeline recycles forever.
///
/// The pipelined disk reader hands these across the producer/consumer
/// boundary instead of single StreamedNodes: batching amortizes the queue
/// synchronization over thousands of nodes and keeps the adjacency data of a
/// work unit cache-resident for the assigning thread. Node ids inside a
/// batch are consecutive (stream order), so only the first id is stored.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "oms/stream/streamed_node.hpp"
#include "oms/types.hpp"
#include "oms/util/assert.hpp"

namespace oms {

class NodeBatch {
public:
  /// Reset to empty, keeping capacity. \p first_id is the stream id of the
  /// first node that will be appended.
  void reset(NodeId first_id) {
    first_id_ = first_id;
    weights_.clear();
    offsets_.assign(1, 0);
    neighbors_.clear();
    edge_weights_.clear();
  }

  /// The parser appends one node's adjacency directly into these sinks (no
  /// intermediate copy), then seals the slot with commit_node().
  std::vector<NodeId>& neighbor_sink() noexcept { return neighbors_; }
  std::vector<EdgeWeight>& edge_weight_sink() noexcept { return edge_weights_; }
  void commit_node(NodeWeight weight) {
    weights_.push_back(weight);
    offsets_.push_back(neighbors_.size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return weights_.size(); }
  [[nodiscard]] bool empty() const noexcept { return weights_.empty(); }
  [[nodiscard]] NodeId first_id() const noexcept { return first_id_; }

  /// Total adjacency entries buffered (used by the reader to bound batch
  /// growth by arcs, not just node count, so hub nodes don't balloon memory).
  [[nodiscard]] std::size_t num_arcs() const noexcept { return neighbors_.size(); }

  /// Every buffered edge weight in one contiguous span (consumers use it to
  /// detect the all-unit-weights fast path in a single linear scan).
  [[nodiscard]] std::span<const EdgeWeight> all_edge_weights() const noexcept {
    return edge_weights_;
  }

  /// The i-th node as the streaming-model unit. Spans borrow the batch and
  /// stay valid until the next reset().
  [[nodiscard]] StreamedNode node(std::size_t i) const {
    OMS_HEAVY_ASSERT(i < size());
    const std::size_t begin = offsets_[i];
    const std::size_t end = offsets_[i + 1];
    return StreamedNode{
        static_cast<NodeId>(first_id_ + i), weights_[i],
        std::span<const NodeId>(neighbors_.data() + begin, end - begin),
        std::span<const EdgeWeight>(edge_weights_.data() + begin, end - begin)};
  }

private:
  NodeId first_id_ = 0;
  std::vector<NodeWeight> weights_;
  std::vector<std::size_t> offsets_ = {0};
  std::vector<NodeId> neighbors_;
  std::vector<EdgeWeight> edge_weights_;
};

} // namespace oms
