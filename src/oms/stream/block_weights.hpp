/// \file block_weights.hpp
/// \brief Atomically updated per-block weight array — the only shared mutable
///        state of the parallel streaming algorithms (paper Section 3.4).
///
/// The paper makes the weight increment atomic but deliberately accepts that
/// a block may be overshot when several threads pick it simultaneously
/// ("since this is very unlikely, we do not use any synchronization to keep
/// it from happening"). We reproduce exactly that design: relaxed atomic
/// adds, plain reads, no compare-and-swap loops.
///
/// Two layouts:
///  * kDense — one atomic per slot. Right for sequential passes and for flat
///    partitioners (Fennel, LDG) that scan all k weights per node: density
///    keeps the scan inside as few cache lines as possible.
///  * kPadded — one cache line per slot. Right for concurrent multi-section
///    passes, where reads touch only O(b) blocks per layer but *every*
///    thread's assignment read-modify-writes one of the few top-layer
///    blocks; dense packing would put all of those on one line and ping it
///    between cores (false sharing).
///
/// Hot loops must not pay for the flexibility: view<Layout>() returns an
/// accessor whose stride is a compile-time constant (a runtime shift in the
/// indexing measurably slows the k-wide Fennel scan), while the plain
/// load()/add() members stay layout-agnostic for cold paths.
#pragma once

#include <atomic>
#include <memory>

#include "oms/types.hpp"
#include "oms/util/assert.hpp"

namespace oms {

class BlockWeights {
public:
  enum class Layout : std::uint8_t { kDense, kPadded };

  /// 64-byte cache lines / 8-byte atomics: stride 8 slots when padded.
  static constexpr unsigned kPadShift = 3;

  [[nodiscard]] static constexpr unsigned shift_of(Layout layout) noexcept {
    return layout == Layout::kPadded ? kPadShift : 0;
  }

  /// Compile-time-strided accessor for hot loops.
  template <Layout L>
  class View {
  public:
    explicit View(std::atomic<NodeWeight>* base) noexcept : base_(base) {}

    [[nodiscard]] NodeWeight load(std::size_t block) const noexcept {
      return base_[block << shift_of(L)].load(std::memory_order_relaxed);
    }
    void add(std::size_t block, NodeWeight delta) const noexcept {
      base_[block << shift_of(L)].fetch_add(delta, std::memory_order_relaxed);
    }

  private:
    std::atomic<NodeWeight>* base_;
  };

  explicit BlockWeights(std::size_t num_blocks, Layout layout = Layout::kDense)
      : size_(num_blocks),
        shift_(shift_of(layout)),
        weights_(std::make_unique<std::atomic<NodeWeight>[]>(num_blocks << shift_)) {
    // Note on alignment: operator new returns >= 16-byte-aligned storage and
    // the elements are 8 bytes, so with a 64-byte stride no two padded slots
    // can ever share a cache line even if the base is not 64-byte aligned.
    reset();
  }

  /// Re-layout in place, preserving the logical weights. Lets an assigner
  /// pick the layout once the thread count is known (prepare()).
  void set_layout(Layout layout) {
    const unsigned shift = shift_of(layout);
    if (shift == shift_) {
      return;
    }
    auto moved = std::make_unique<std::atomic<NodeWeight>[]>(size_ << shift);
    for (std::size_t i = 0; i < (size_ << shift); ++i) {
      moved[i].store(0, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < size_; ++i) {
      moved[i << shift].store(load(i), std::memory_order_relaxed);
    }
    weights_ = std::move(moved);
    shift_ = shift;
  }

  [[nodiscard]] Layout layout() const noexcept {
    return shift_ == 0 ? Layout::kDense : Layout::kPadded;
  }

  /// The caller must have established the matching layout (see set_layout).
  template <Layout L>
  [[nodiscard]] View<L> view() noexcept {
    OMS_HEAVY_ASSERT(shift_of(L) == shift_);
    return View<L>(weights_.get());
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Allocated bytes (the padded layout trades memory for line exclusivity;
  /// still O(k) with a 64-byte constant — within Theorem 1's state bound).
  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept {
    return static_cast<std::uint64_t>(size_ << shift_) *
           sizeof(std::atomic<NodeWeight>);
  }

  void add(std::size_t block, NodeWeight delta) noexcept {
    OMS_HEAVY_ASSERT(block < size_);
    weights_[block << shift_].fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] NodeWeight load(std::size_t block) const noexcept {
    OMS_HEAVY_ASSERT(block < size_);
    return weights_[block << shift_].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (std::size_t i = 0; i < (size_ << shift_); ++i) {
      weights_[i].store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] NodeWeight total() const noexcept {
    NodeWeight sum = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      sum += load(i);
    }
    return sum;
  }

private:
  std::size_t size_;
  unsigned shift_;
  std::unique_ptr<std::atomic<NodeWeight>[]> weights_;
};

} // namespace oms
