/// \file block_weights.hpp
/// \brief Atomically updated per-block weight array — the only shared mutable
///        state of the parallel streaming algorithms (paper Section 3.4).
///
/// The paper makes the weight increment atomic but deliberately accepts that
/// a block may be overshot when several threads pick it simultaneously
/// ("since this is very unlikely, we do not use any synchronization to keep
/// it from happening"). We reproduce exactly that design: relaxed atomic
/// adds, plain reads, no compare-and-swap loops.
#pragma once

#include <atomic>
#include <memory>

#include "oms/types.hpp"
#include "oms/util/assert.hpp"

namespace oms {

class BlockWeights {
public:
  explicit BlockWeights(std::size_t num_blocks)
      : size_(num_blocks),
        weights_(std::make_unique<std::atomic<NodeWeight>[]>(num_blocks)) {
    for (std::size_t i = 0; i < size_; ++i) {
      weights_[i].store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void add(std::size_t block, NodeWeight delta) noexcept {
    OMS_HEAVY_ASSERT(block < size_);
    weights_[block].fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] NodeWeight load(std::size_t block) const noexcept {
    OMS_HEAVY_ASSERT(block < size_);
    return weights_[block].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      weights_[i].store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] NodeWeight total() const noexcept {
    NodeWeight sum = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      sum += load(i);
    }
    return sum;
  }

private:
  std::size_t size_;
  std::unique_ptr<std::atomic<NodeWeight>[]> weights_;
};

} // namespace oms
