/// \file metis_stream.hpp
/// \brief True disk streaming: parse a METIS graph file node-by-node with
///        O(max degree) buffering and feed each node to a one-pass assigner.
///
/// This realizes the paper's "the algorithm could also be run streaming the
/// graph from hard disk" and is what the memory experiment (Section 4.1)
/// uses: total state is the assignment vector plus block weights, never the
/// whole graph.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "oms/stream/one_pass_driver.hpp"
#include "oms/types.hpp"

namespace oms {

/// Header of a METIS file (enough to size the streaming state and compute
/// Fennel's alpha before any node arrives).
struct MetisHeader {
  NodeId num_nodes = 0;
  EdgeIndex num_edges = 0;
  bool has_node_weights = false;
  bool has_edge_weights = false;
};

/// Sequentially parses a METIS file, exposing one node at a time. The caller
/// never sees more than one adjacency list at once.
class MetisNodeStream {
public:
  explicit MetisNodeStream(const std::string& path);

  [[nodiscard]] const MetisHeader& header() const noexcept { return header_; }

  /// Fetch the next node; false after the last one. The spans inside
  /// \p out remain valid until the next call.
  bool next(StreamedNode& out);

  /// Rewind to the first node (used by restreaming).
  void rewind();

private:
  void read_header();

  std::ifstream in_;
  MetisHeader header_;
  NodeId next_id_ = 0;
  std::string line_;
  std::vector<NodeId> neighbor_buffer_;
  std::vector<EdgeWeight> weight_buffer_;
  std::streampos data_start_{};
};

/// Stream the file through \p assigner (sequential; disk order is the node
/// order). Returns the assignment and timing like run_one_pass.
[[nodiscard]] StreamResult run_one_pass_from_file(const std::string& path,
                                                  OnePassAssigner& assigner);

} // namespace oms
