/// \file metis_stream.hpp
/// \brief True disk streaming: parse a METIS graph file node-by-node with
///        O(max degree) buffering and feed each node to a one-pass assigner.
///
/// This realizes the paper's "the algorithm could also be run streaming the
/// graph from hard disk" and is what the memory experiment (Section 4.1)
/// uses: total state is the assignment vector plus block weights, never the
/// whole graph.
///
/// The reader pulls raw chunks into one reusable buffer and parses integers
/// in place with std::from_chars — no per-line getline, no per-line string
/// copies. Malformed *content* (bad header, out-of-range neighbor, missing
/// edge weight, non-numeric token) raises oms::IoError with the file
/// position, so CLIs fail cleanly instead of aborting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "oms/stream/error_policy.hpp"
#include "oms/stream/line_reader.hpp"
#include "oms/stream/node_batch.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/types.hpp"
#include "oms/util/io_error.hpp"

namespace oms {

/// Header of a METIS file (enough to size the streaming state and compute
/// Fennel's alpha before any node arrives).
struct MetisHeader {
  NodeId num_nodes = 0;
  EdgeIndex num_edges = 0;
  bool has_node_weights = false;
  bool has_edge_weights = false;
};

/// Sequentially parses a METIS file, exposing one node at a time. The caller
/// never sees more than one adjacency list at once.
///
/// Throws oms::IoError from the constructor (unopenable file, malformed
/// header) and from next() (malformed data line).
class MetisNodeStream {
public:
  /// Chunk size of the raw reads; lines longer than the buffer grow it.
  static constexpr std::size_t kDefaultBufferBytes = std::size_t{1} << 18;

  explicit MetisNodeStream(const std::string& path,
                           std::size_t buffer_bytes = kDefaultBufferBytes);

  MetisNodeStream(const MetisNodeStream&) = delete;
  MetisNodeStream& operator=(const MetisNodeStream&) = delete;

  [[nodiscard]] const MetisHeader& header() const noexcept { return header_; }

  /// Fetch the next node; false after the last one. The spans inside
  /// \p out remain valid until the next call.
  bool next(StreamedNode& out);

  /// Chunk handoff for the pipelined driver: parse up to \p max_nodes
  /// consecutive nodes (fewer when \p max_arcs adjacency entries accumulate
  /// first — hub-heavy regions cap batch memory by arcs, not node count)
  /// directly into \p batch's flat storage. Returns the number of nodes
  /// parsed; 0 means the stream is exhausted. \p max_arcs 0 = unbounded.
  std::size_t fill_batch(NodeBatch& batch, std::size_t max_nodes,
                         std::size_t max_arcs = 0);

  /// Rewind to the first node (used by restreaming).
  void rewind();

  // --- checkpoint/resume support (stream/checkpoint.hpp) -----------------

  /// File offset of the first byte next()/fill_batch() has not consumed yet.
  [[nodiscard]] std::uint64_t next_offset() const noexcept {
    return reader_.next_offset();
  }
  /// 1-based number of the line most recently parsed.
  [[nodiscard]] std::uint64_t line_no() const noexcept { return reader_.line_no(); }
  /// Nodes fully delivered so far (the id the next node will get).
  [[nodiscard]] NodeId nodes_delivered() const noexcept { return next_id_; }

  /// Jump to a recorded (offset, line_no) position and continue delivering
  /// nodes from id \p next_id — the stream-side half of a checkpoint resume.
  /// The position must have been captured at a node boundary on the same
  /// file (checkpoints validate that via header count + CRC).
  void resume_at(std::uint64_t offset, std::uint64_t line_no, NodeId next_id);

  // --- malformed-line policy (--on-error) --------------------------------

  /// Set before streaming data lines. Under kSkip a malformed data line is
  /// delivered as an isolated unit-weight node (ids stay aligned) up to the
  /// budget; header errors and I/O failures always abort.
  void set_error_policy(const StreamErrorPolicy& policy) noexcept {
    error_policy_ = policy;
  }
  [[nodiscard]] const StreamErrorStats& error_stats() const noexcept {
    return error_stats_;
  }

private:
  void read_header();
  /// Parse the next data line, appending the adjacency into the given sinks.
  /// False when all header().num_nodes nodes have been delivered. Applies
  /// the error policy: under kSkip a malformed line rolls back its partial
  /// appends and degrades to an isolated node.
  bool parse_next(NodeWeight& weight, std::vector<NodeId>& neighbors,
                  std::vector<EdgeWeight>& edge_weights);
  /// The raw token loop over one data line (throws ContentError via fail()).
  void parse_data_line(std::string_view line, NodeWeight& weight,
                       std::vector<NodeId>& neighbors,
                       std::vector<EdgeWeight>& edge_weights);
  [[noreturn]] void fail(const std::string& message) const;

  BufferedLineReader reader_;
  std::uint64_t data_start_ = 0; ///< file offset of the first data line
  std::uint64_t header_line_no_ = 0;

  MetisHeader header_;
  NodeId next_id_ = 0;
  std::vector<NodeId> neighbor_buffer_;
  std::vector<EdgeWeight> weight_buffer_;
  StreamErrorPolicy error_policy_;
  StreamErrorStats error_stats_;
};

/// Stream the file through \p assigner (sequential; disk order is the node
/// order). Returns the assignment and timing like run_one_pass.
[[nodiscard]] StreamResult run_one_pass_from_file(const std::string& path,
                                                  OnePassAssigner& assigner);

} // namespace oms
