/// \file window_partitioner.hpp
/// \brief Sliding-window streaming partitioning in the style of WStream
///        (Patwary et al., the paper's reference [29]): keep a small window
///        of undecided nodes; when the window is full, permanently assign
///        the *oldest* node using what the window reveals about its
///        neighborhood, then slide on.
///
/// The window lets a node's decision see a little of its *future* (its
/// younger neighbors inside the window still count toward block affinity
/// once those get assigned later — and, conversely, the node's own decision
/// is delayed until some of its neighbors have arrived). Each delayed node's
/// adjacency is stored inside the window itself (a ring of reusable slots),
/// so the partitioner needs no backing graph: it runs one-pass from disk via
/// run_one_pass_from_file exactly like the undelayed algorithms, with state
/// O(window adjacency + k), strictly between one-pass and buffered
/// streaming.
#pragma once

#include <vector>

#include "oms/partition/partition_config.hpp"
#include "oms/stream/block_weights.hpp"
#include "oms/stream/one_pass_driver.hpp"

namespace oms {

struct WindowConfig {
  NodeId window_size = 1024;
  double epsilon = 0.03;
  std::uint64_t seed = 1;
};

/// Implements the one-pass assigner interface so the standard drivers work,
/// but internally delays each decision by up to window_size nodes. assign()
/// returns the block of the node that *leaves* the window (or of the
/// incoming node once the stream drains at take_assignment() time); callers
/// that need the final placement should read the assignment, not the return
/// values. Sequential use only (the window is inherently ordered).
class WindowPartitioner final : public OnePassAssigner {
public:
  WindowPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                    const WindowConfig& config, BlockId k);

  void prepare(int num_threads) override;
  BlockId assign(const StreamedNode& node, int thread_id,
                 WorkCounters& counters) override;
  [[nodiscard]] BlockId block_of(NodeId u) const override { return assignment_[u]; }
  [[nodiscard]] BlockId num_blocks() const override { return k_; }
  [[nodiscard]] std::vector<BlockId> take_assignment() override;

private:
  /// One delayed node, adjacency and all. Slots are recycled as the ring
  /// advances, so their vectors' capacity amortizes to zero allocation.
  struct Slot {
    NodeId id = 0;
    NodeWeight weight = 1;
    std::vector<NodeId> neighbors;
    std::vector<EdgeWeight> edge_weights;
  };

  /// Permanently place the oldest windowed node with an LDG-style score over
  /// its already-assigned neighbors.
  void flush_one(WorkCounters& counters);

  WindowConfig config_;
  BlockId k_;
  NodeWeight max_block_weight_;
  std::vector<BlockId> assignment_;
  BlockWeights weights_;
  std::vector<Slot> ring_; // capacity window_size + 1 (push, then flush)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::vector<EdgeWeight> gather_;
  std::vector<BlockId> touched_;
};

} // namespace oms
