#include "oms/stream/metis_stream.hpp"

#include <limits>

#include "oms/telemetry/metrics.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/timer.hpp"

namespace oms {

MetisNodeStream::MetisNodeStream(const std::string& path, std::size_t buffer_bytes)
    : reader_(path, buffer_bytes) {
  read_header();
}

void MetisNodeStream::fail(const std::string& message) const {
  // ContentError (an IoError subclass) so the skip policy can distinguish a
  // malformed line from I/O machinery failures; every existing catch of
  // IoError still sees it.
  throw ContentError(reader_.path() + ":" + std::to_string(reader_.line_no()) +
                     ": " + message);
}

void MetisNodeStream::read_header() {
  std::string_view line;
  bool found = false;
  while (reader_.next_line(line)) {
    if (!line.empty() && line.front() != '%') {
      found = true;
      break;
    }
  }
  if (!found) {
    fail("missing METIS header");
  }
  const auto bad_header = [this] { fail("malformed METIS header"); };
  IntScanner tokens(line);
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::int64_t fmt = 0;
  if (!tokens.next(n, bad_header) || !tokens.next(m, bad_header)) {
    bad_header();
  }
  tokens.next(fmt, bad_header);
  if (n < 0 || m < 0) {
    fail("negative sizes in METIS header");
  }
  if (n > static_cast<std::int64_t>(std::numeric_limits<NodeId>::max())) {
    fail("node count " + std::to_string(n) + " exceeds the supported maximum");
  }
  if (fmt / 100 != 0) {
    fail("multi-constraint METIS files are unsupported");
  }
  // An optional 4th token is the multi-constraint count; only 1 is workable.
  std::int64_t ncon = 1;
  if (tokens.next(ncon, bad_header) && ncon != 1) {
    fail("multi-constraint METIS files are unsupported");
  }
  std::int64_t junk = 0;
  if (tokens.next(junk, bad_header)) {
    fail("trailing tokens in METIS header");
  }
  header_.num_nodes = static_cast<NodeId>(n);
  header_.num_edges = static_cast<EdgeIndex>(m);
  header_.has_edge_weights = (fmt % 10) == 1;
  header_.has_node_weights = (fmt / 10 % 10) == 1;
  data_start_ = reader_.next_offset();
  header_line_no_ = reader_.line_no();
}

void MetisNodeStream::parse_data_line(std::string_view line, NodeWeight& weight,
                                      std::vector<NodeId>& neighbors,
                                      std::vector<EdgeWeight>& edge_weights) {
  weight = 1;
  IntScanner tokens(line);
  const auto bad_token = [this] { fail("malformed integer token"); };
  std::int64_t value = 0;
  if (header_.has_node_weights && tokens.next(value, bad_token)) {
    weight = value;
  }
  while (tokens.next(value, bad_token)) {
    if (value < 1 || value > static_cast<std::int64_t>(header_.num_nodes)) {
      fail("neighbor id " + std::to_string(value) + " out of range [1, " +
           std::to_string(header_.num_nodes) + "]");
    }
    neighbors.push_back(static_cast<NodeId>(value - 1));
    EdgeWeight w = 1;
    if (header_.has_edge_weights) {
      std::int64_t wt = 1;
      if (!tokens.next(wt, bad_token)) {
        fail("missing edge weight");
      }
      w = wt;
    }
    edge_weights.push_back(w);
  }
}

bool MetisNodeStream::parse_next(NodeWeight& weight, std::vector<NodeId>& neighbors,
                                 std::vector<EdgeWeight>& edge_weights) {
  if (next_id_ >= header_.num_nodes) {
    return false;
  }
  // Comment lines are skipped; an empty line — or a missing trailing line —
  // is an isolated node.
  std::string_view line;
  while (reader_.next_line(line)) {
    if (line.empty() || line.front() != '%') {
      break;
    }
    line = std::string_view();
  }
  const std::size_t neighbors_mark = neighbors.size();
  const std::size_t weights_mark = edge_weights.size();
  try {
    parse_data_line(line, weight, neighbors, edge_weights);
  } catch (const ContentError& error) {
    if (error_policy_.action != StreamErrorPolicy::Action::kSkip) {
      throw;
    }
    error_stats_.record(reader_.line_no(), error.what());
    if (error_stats_.lines_skipped > error_policy_.skip_budget) {
      throw IoError(reader_.path() + ": malformed-line skip budget (" +
                    std::to_string(error_policy_.skip_budget) +
                    ") exhausted; last: " + error.what());
    }
    // Roll back the partial appends and deliver the line as an isolated
    // unit-weight node: the id slot is still consumed, so every later node
    // keeps the id it would have had in a clean file.
    neighbors.resize(neighbors_mark);
    edge_weights.resize(weights_mark);
    weight = 1;
  }
  ++next_id_;
  return true;
}

bool MetisNodeStream::next(StreamedNode& out) {
  neighbor_buffer_.clear();
  weight_buffer_.clear();
  NodeWeight node_weight = 1;
  const NodeId id = next_id_;
  if (!parse_next(node_weight, neighbor_buffer_, weight_buffer_)) {
    return false;
  }
  out = StreamedNode{id, node_weight, neighbor_buffer_, weight_buffer_};
  return true;
}

std::size_t MetisNodeStream::fill_batch(NodeBatch& batch, std::size_t max_nodes,
                                        std::size_t max_arcs) {
  batch.reset(next_id_);
  NodeWeight weight = 1;
  while (batch.size() < max_nodes &&
         (max_arcs == 0 || batch.num_arcs() < max_arcs)) {
    if (!parse_next(weight, batch.neighbor_sink(), batch.edge_weight_sink())) {
      break;
    }
    batch.commit_node(weight);
  }
  telemetry::metric_add(telemetry::Counter::kStreamNodes, batch.size());
  return batch.size();
}

void MetisNodeStream::rewind() {
  reader_.seek(data_start_, header_line_no_);
  next_id_ = 0;
}

void MetisNodeStream::resume_at(std::uint64_t offset, std::uint64_t line_no,
                                NodeId next_id) {
  if (offset < data_start_ || next_id > header_.num_nodes) {
    fail("resume position lies outside the data section");
  }
  reader_.seek(offset, line_no);
  next_id_ = next_id;
}

StreamResult run_one_pass_from_file(const std::string& path,
                                    OnePassAssigner& assigner) {
  MetisNodeStream stream(path);
  assigner.prepare(1);

  StreamResult result;
  Timer timer;
  WorkCounters counters;
  StreamedNode node{};
  // Node counting is batched (flushed every 4096) so the armed-telemetry
  // cost stays off the per-node path; fill_batch() covers pipelined runs.
  std::uint64_t pending_nodes = 0;
  while (stream.next(node)) {
    assigner.assign(node, 0, counters);
    if (++pending_nodes == 4096) {
      telemetry::metric_add(telemetry::Counter::kStreamNodes, pending_nodes);
      pending_nodes = 0;
    }
  }
  if (pending_nodes != 0) {
    telemetry::metric_add(telemetry::Counter::kStreamNodes, pending_nodes);
  }
  telemetry::publish_work(counters);
  result.elapsed_s = timer.elapsed_s();
  result.work = counters;
  result.assignment = assigner.take_assignment();
  return result;
}

} // namespace oms
