#include "oms/stream/metis_stream.hpp"

#include <charconv>

#include "oms/util/assert.hpp"
#include "oms/util/timer.hpp"

namespace oms {
namespace {

/// Whitespace-separated integer scanner (shared logic with io.cpp, kept local
/// to preserve the module's independence from the in-memory loader).
class Tokens {
public:
  explicit Tokens(const std::string& line) noexcept
      : cur_(line.data()), end_(line.data() + line.size()) {}

  bool next(std::int64_t& out) {
    while (cur_ < end_ && (*cur_ == ' ' || *cur_ == '\t' || *cur_ == '\r')) {
      ++cur_;
    }
    if (cur_ >= end_) {
      return false;
    }
    const auto [ptr, ec] = std::from_chars(cur_, end_, out);
    OMS_ASSERT_MSG(ec == std::errc{}, "malformed integer in stream");
    cur_ = ptr;
    return true;
  }

private:
  const char* cur_;
  const char* end_;
};

} // namespace

MetisNodeStream::MetisNodeStream(const std::string& path) : in_(path) {
  OMS_ASSERT_MSG(in_.good(), "cannot open graph stream file");
  read_header();
}

void MetisNodeStream::read_header() {
  while (std::getline(in_, line_)) {
    if (!line_.empty() && line_.front() != '%') {
      break;
    }
  }
  Tokens tokens(line_);
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::int64_t fmt = 0;
  OMS_ASSERT_MSG(tokens.next(n) && tokens.next(m), "malformed METIS header");
  tokens.next(fmt);
  OMS_ASSERT_MSG(fmt / 100 == 0, "multi-constraint files unsupported");
  header_.num_nodes = static_cast<NodeId>(n);
  header_.num_edges = static_cast<EdgeIndex>(m);
  header_.has_edge_weights = (fmt % 10) == 1;
  header_.has_node_weights = (fmt / 10 % 10) == 1;
  data_start_ = in_.tellg();
}

bool MetisNodeStream::next(StreamedNode& out) {
  if (next_id_ >= header_.num_nodes) {
    return false;
  }
  // Missing trailing lines denote isolated nodes.
  line_.clear();
  while (std::getline(in_, line_)) {
    if (line_.empty() || line_.front() != '%') {
      break;
    }
    line_.clear();
  }
  neighbor_buffer_.clear();
  weight_buffer_.clear();
  NodeWeight node_weight = 1;
  Tokens tokens(line_);
  std::int64_t value = 0;
  if (header_.has_node_weights && tokens.next(value)) {
    node_weight = value;
  }
  while (tokens.next(value)) {
    OMS_ASSERT_MSG(value >= 1 && value <= header_.num_nodes,
                   "neighbor id out of range in stream");
    neighbor_buffer_.push_back(static_cast<NodeId>(value - 1));
    EdgeWeight w = 1;
    if (header_.has_edge_weights) {
      std::int64_t wt = 1;
      OMS_ASSERT_MSG(tokens.next(wt), "missing edge weight in stream");
      w = wt;
    }
    weight_buffer_.push_back(w);
  }
  out = StreamedNode{next_id_, node_weight, neighbor_buffer_, weight_buffer_};
  ++next_id_;
  return true;
}

void MetisNodeStream::rewind() {
  in_.clear();
  in_.seekg(data_start_);
  next_id_ = 0;
}

StreamResult run_one_pass_from_file(const std::string& path,
                                    OnePassAssigner& assigner) {
  MetisNodeStream stream(path);
  assigner.prepare(1);

  StreamResult result;
  Timer timer;
  WorkCounters counters;
  StreamedNode node{};
  while (stream.next(node)) {
    assigner.assign(node, 0, counters);
  }
  result.elapsed_s = timer.elapsed_s();
  result.work = counters;
  result.assignment = assigner.take_assignment();
  return result;
}

} // namespace oms
