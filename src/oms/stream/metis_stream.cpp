#include "oms/stream/metis_stream.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <limits>

#include "oms/util/assert.hpp"
#include "oms/util/timer.hpp"

namespace oms {
namespace {

/// Whitespace-separated integer scanner over one borrowed line. Non-numeric
/// bytes are a *content* error, reported through the owner's fail().
class Tokens {
public:
  explicit Tokens(std::string_view line) noexcept
      : cur_(line.data()), end_(line.data() + line.size()) {}

  /// True and \p out filled if another token exists; false at end of line.
  /// \p on_error is invoked (and must not return) on a malformed token.
  template <typename OnError>
  bool next(std::int64_t& out, OnError&& on_error) {
    while (cur_ < end_ && (*cur_ == ' ' || *cur_ == '\t' || *cur_ == '\r')) {
      ++cur_;
    }
    if (cur_ >= end_) {
      return false;
    }
    // Fast path: bare digit runs (every token of a well-formed METIS file).
    // Up to 18 digits cannot overflow int64, so the accumulation needs no
    // per-digit checks; signs and longer runs fall back to from_chars for
    // identical semantics including range errors.
    std::uint64_t value = 0;
    const char* p = cur_;
    while (p < end_ && p - cur_ < 18) {
      const unsigned digit = static_cast<unsigned>(*p) - '0';
      if (digit > 9) {
        break;
      }
      value = value * 10 + digit;
      ++p;
    }
    if (p > cur_ && (p == end_ || (static_cast<unsigned>(*p) - '0') > 9)) {
      out = static_cast<std::int64_t>(value);
      cur_ = p;
      return true;
    }
    const auto [ptr, ec] = std::from_chars(cur_, end_, out);
    if (ec != std::errc{}) {
      on_error();
    }
    cur_ = ptr;
    return true;
  }

private:
  const char* cur_;
  const char* end_;
};

} // namespace

MetisNodeStream::MetisNodeStream(const std::string& path, std::size_t buffer_bytes)
    : file_(std::fopen(path.c_str(), "rb")), path_(path) {
  if (file_ == nullptr) {
    throw IoError("cannot open graph stream file '" + path + "'");
  }
  // The chunk buffer *is* the buffering; a second stdio copy would only cost
  // memcpys. Tiny capacities are allowed (tests use them to exercise the
  // refill seams) but need room for at least one memmove-and-read step.
  buffer_.resize(std::max<std::size_t>(buffer_bytes, 64));
  std::setvbuf(file_.get(), nullptr, _IONBF, 0);
  read_header();
}

void MetisNodeStream::fail(const std::string& message) const {
  throw IoError(path_ + ":" + std::to_string(line_no_) + ": " + message);
}

void MetisNodeStream::refill() {
  if (pos_ > 0) {
    std::memmove(buffer_.data(), buffer_.data() + pos_, end_ - pos_);
    consumed_base_ += pos_;
    end_ -= pos_;
    pos_ = 0;
  }
  if (end_ == buffer_.size()) {
    buffer_.resize(buffer_.size() * 2); // line longer than the buffer: grow
  }
  const std::size_t got =
      std::fread(buffer_.data() + end_, 1, buffer_.size() - end_, file_.get());
  if (got == 0) {
    if (std::ferror(file_.get()) != 0) {
      fail("read error");
    }
    eof_ = true;
  }
  end_ += got;
}

bool MetisNodeStream::next_line(std::string_view& line) {
  while (true) {
    const std::size_t search_from = pos_ + scanned_;
    if (search_from < end_) {
      const void* nl = std::memchr(buffer_.data() + search_from, '\n',
                                   end_ - search_from);
      if (nl != nullptr) {
        const auto nl_pos = static_cast<std::size_t>(
            static_cast<const char*>(nl) - buffer_.data());
        line = std::string_view(buffer_.data() + pos_, nl_pos - pos_);
        pos_ = nl_pos + 1;
        scanned_ = 0;
        ++line_no_;
        return true;
      }
    }
    if (eof_) {
      if (pos_ < end_) { // final line without a trailing newline
        line = std::string_view(buffer_.data() + pos_, end_ - pos_);
        pos_ = end_;
        scanned_ = 0;
        ++line_no_;
        return true;
      }
      return false;
    }
    scanned_ = end_ - pos_; // everything so far holds no newline
    refill();
  }
}

void MetisNodeStream::read_header() {
  std::string_view line;
  bool found = false;
  while (next_line(line)) {
    if (!line.empty() && line.front() != '%') {
      found = true;
      break;
    }
  }
  if (!found) {
    fail("missing METIS header");
  }
  const auto bad_header = [this] { fail("malformed METIS header"); };
  Tokens tokens(line);
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::int64_t fmt = 0;
  if (!tokens.next(n, bad_header) || !tokens.next(m, bad_header)) {
    bad_header();
  }
  tokens.next(fmt, bad_header);
  if (n < 0 || m < 0) {
    fail("negative sizes in METIS header");
  }
  if (n > static_cast<std::int64_t>(std::numeric_limits<NodeId>::max())) {
    fail("node count " + std::to_string(n) + " exceeds the supported maximum");
  }
  if (fmt / 100 != 0) {
    fail("multi-constraint METIS files are unsupported");
  }
  // An optional 4th token is the multi-constraint count; only 1 is workable.
  std::int64_t ncon = 1;
  if (tokens.next(ncon, bad_header) && ncon != 1) {
    fail("multi-constraint METIS files are unsupported");
  }
  std::int64_t junk = 0;
  if (tokens.next(junk, bad_header)) {
    fail("trailing tokens in METIS header");
  }
  header_.num_nodes = static_cast<NodeId>(n);
  header_.num_edges = static_cast<EdgeIndex>(m);
  header_.has_edge_weights = (fmt % 10) == 1;
  header_.has_node_weights = (fmt / 10 % 10) == 1;
  data_start_ = consumed_base_ + pos_;
  header_line_no_ = line_no_;
}

bool MetisNodeStream::parse_next(NodeWeight& weight, std::vector<NodeId>& neighbors,
                                 std::vector<EdgeWeight>& edge_weights) {
  if (next_id_ >= header_.num_nodes) {
    return false;
  }
  // Comment lines are skipped; an empty line — or a missing trailing line —
  // is an isolated node.
  std::string_view line;
  while (next_line(line)) {
    if (line.empty() || line.front() != '%') {
      break;
    }
    line = std::string_view();
  }
  weight = 1;
  Tokens tokens(line);
  const auto bad_token = [this] { fail("malformed integer token"); };
  std::int64_t value = 0;
  if (header_.has_node_weights && tokens.next(value, bad_token)) {
    weight = value;
  }
  while (tokens.next(value, bad_token)) {
    if (value < 1 || value > static_cast<std::int64_t>(header_.num_nodes)) {
      fail("neighbor id " + std::to_string(value) + " out of range [1, " +
           std::to_string(header_.num_nodes) + "]");
    }
    neighbors.push_back(static_cast<NodeId>(value - 1));
    EdgeWeight w = 1;
    if (header_.has_edge_weights) {
      std::int64_t wt = 1;
      if (!tokens.next(wt, bad_token)) {
        fail("missing edge weight");
      }
      w = wt;
    }
    edge_weights.push_back(w);
  }
  ++next_id_;
  return true;
}

bool MetisNodeStream::next(StreamedNode& out) {
  neighbor_buffer_.clear();
  weight_buffer_.clear();
  NodeWeight node_weight = 1;
  const NodeId id = next_id_;
  if (!parse_next(node_weight, neighbor_buffer_, weight_buffer_)) {
    return false;
  }
  out = StreamedNode{id, node_weight, neighbor_buffer_, weight_buffer_};
  return true;
}

std::size_t MetisNodeStream::fill_batch(NodeBatch& batch, std::size_t max_nodes,
                                        std::size_t max_arcs) {
  batch.reset(next_id_);
  NodeWeight weight = 1;
  while (batch.size() < max_nodes &&
         (max_arcs == 0 || batch.num_arcs() < max_arcs)) {
    if (!parse_next(weight, batch.neighbor_sink(), batch.edge_weight_sink())) {
      break;
    }
    batch.commit_node(weight);
  }
  return batch.size();
}

void MetisNodeStream::rewind() {
  // 64-bit seek: std::fseek takes long, which truncates >= 2 GiB offsets on
  // LLP64/LP32 platforms; graphs that size are exactly the disk-streaming
  // use case.
#if defined(_WIN32)
  const int rc = _fseeki64(file_.get(), static_cast<__int64>(data_start_), SEEK_SET);
#else
  const int rc = fseeko(file_.get(), static_cast<off_t>(data_start_), SEEK_SET);
#endif
  if (rc != 0) {
    fail("cannot seek back to the data section");
  }
  pos_ = 0;
  end_ = 0;
  scanned_ = 0;
  eof_ = false;
  consumed_base_ = data_start_;
  line_no_ = header_line_no_;
  next_id_ = 0;
}

StreamResult run_one_pass_from_file(const std::string& path,
                                    OnePassAssigner& assigner) {
  MetisNodeStream stream(path);
  assigner.prepare(1);

  StreamResult result;
  Timer timer;
  WorkCounters counters;
  StreamedNode node{};
  while (stream.next(node)) {
    assigner.assign(node, 0, counters);
  }
  result.elapsed_s = timer.elapsed_s();
  result.work = counters;
  result.assignment = assigner.take_assignment();
  return result;
}

} // namespace oms
