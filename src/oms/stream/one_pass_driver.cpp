#include "oms/stream/one_pass_driver.hpp"

#include <mutex>

#include "oms/telemetry/metrics.hpp"
#include "oms/util/parallel.hpp"
#include "oms/util/timer.hpp"

namespace oms {

StreamResult run_one_pass(const CsrGraph& graph, OnePassAssigner& assigner,
                          int num_threads, std::size_t chunk_size) {
  const int threads = resolve_threads(num_threads);
  assigner.prepare(threads);

  StreamResult result;
  Timer timer;

  if (threads == 1) {
    WorkCounters counters;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      const StreamedNode node{u, graph.node_weight(u), graph.neighbors(u),
                              graph.incident_weights(u)};
      assigner.assign(node, 0, counters);
    }
    result.work = counters;
  } else {
    std::mutex merge_mutex;
    parallel_chunks(graph.num_nodes(), threads, chunk_size,
                    [&](std::size_t begin, std::size_t end, int thread_id) {
                      WorkCounters counters;
                      for (std::size_t i = begin; i < end; ++i) {
                        const auto u = static_cast<NodeId>(i);
                        const StreamedNode node{u, graph.node_weight(u),
                                                graph.neighbors(u),
                                                graph.incident_weights(u)};
                        assigner.assign(node, thread_id, counters);
                      }
                      const std::lock_guard<std::mutex> lock(merge_mutex);
                      result.work += counters;
                    });
  }

  // One end-of-run publish; the in-memory assign loop itself stays free of
  // hooks (it is the BM_Stream* surface the regression gate pins).
  telemetry::metric_add(telemetry::Counter::kStreamNodes, graph.num_nodes());
  telemetry::publish_work(result.work);
  result.elapsed_s = timer.elapsed_s();
  result.assignment = assigner.take_assignment();
  return result;
}

} // namespace oms
