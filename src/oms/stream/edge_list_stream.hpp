/// \file edge_list_stream.hpp
/// \brief True disk streaming of whitespace edge-list graphs (SNAP style):
///        one edge per line, `#` comment lines, self-loops skipped — the
///        input model of distributed graph engines and of the streaming
///        vertex-cut partitioners in oms/edgepart/.
///
/// Unlike a METIS file there is no header: the vertex universe and edge
/// count are only known once the stream ends, so the edge partitioners keep
/// grow-on-demand state (partial degrees, replica rows). The reader shares
/// the buffered raw-read machinery and the oms::IoError contract of
/// MetisNodeStream, including a fill_batch-style chunk-handoff API so the
/// producer/consumer pipeline drives it unchanged.
#pragma once

#include <string>
#include <vector>

#include "oms/stream/error_policy.hpp"
#include "oms/stream/line_reader.hpp"
#include "oms/types.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/io_error.hpp"

namespace oms {

/// The unit of the edge-streaming model: one edge with an optional weight
/// (a third column in the file; 1 when absent).
struct StreamedEdge {
  NodeId u = 0;
  NodeId v = 0;
  EdgeWeight weight = 1;
};

/// A contiguous run of parsed edges — the edge-stream analogue of NodeBatch,
/// recycled forever by the pipeline so a warm run never allocates.
class EdgeBatch {
public:
  void reset() noexcept { edges_.clear(); }
  void push(const StreamedEdge& edge) { edges_.push_back(edge); }

  [[nodiscard]] std::size_t size() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }
  [[nodiscard]] const StreamedEdge& edge(std::size_t i) const noexcept {
    OMS_HEAVY_ASSERT(i < edges_.size());
    return edges_[i];
  }

private:
  std::vector<StreamedEdge> edges_;
};

/// Sequentially parses a SNAP-style edge-list file, exposing one edge at a
/// time. Lines are `u v` or `u v w` with arbitrary whitespace; lines that
/// are empty or start with '#' are comments; self-loops (u == v) are skipped
/// and counted.
///
/// Throws oms::IoError from the constructor (unopenable file) and from
/// next()/fill_batch() (non-numeric endpoint, truncated line with a single
/// endpoint, trailing tokens, out-of-range id, non-positive weight, or a
/// file that ends without a single edge — comments and self-loops only is
/// "empty" too).
class EdgeListStream {
public:
  /// Chunk size of the raw reads; lines longer than the buffer grow it.
  static constexpr std::size_t kDefaultBufferBytes = std::size_t{1} << 18;

  explicit EdgeListStream(const std::string& path,
                          std::size_t buffer_bytes = kDefaultBufferBytes);

  EdgeListStream(const EdgeListStream&) = delete;
  EdgeListStream& operator=(const EdgeListStream&) = delete;

  /// Fetch the next edge; false after the last one. Raises IoError on the
  /// first end-of-file when the stream delivered no edge at all.
  bool next(StreamedEdge& out);

  /// Chunk handoff for the pipelined driver: parse up to \p max_edges edges
  /// into \p batch. Returns the number parsed; 0 means exhausted.
  std::size_t fill_batch(EdgeBatch& batch, std::size_t max_edges);

  /// Rewind to the first edge (restreaming); resets the counters below.
  void rewind();

  /// Edges delivered so far (self-loops and comments excluded).
  [[nodiscard]] EdgeIndex edges_delivered() const noexcept {
    return edges_delivered_;
  }
  /// Self-loop lines skipped so far.
  [[nodiscard]] EdgeIndex self_loops_skipped() const noexcept {
    return self_loops_skipped_;
  }
  /// Largest endpoint id seen so far (0 before any edge).
  [[nodiscard]] NodeId max_vertex_id() const noexcept { return max_vertex_id_; }

  /// Malformed-line policy (--on-error): under kSkip a malformed data line
  /// contributes no edge, up to the budget. Set before streaming.
  void set_error_policy(const StreamErrorPolicy& policy) noexcept {
    error_policy_ = policy;
  }
  [[nodiscard]] const StreamErrorStats& error_stats() const noexcept {
    return error_stats_;
  }

private:
  /// False at end of file; skips comments and self-loops internally and
  /// applies the error policy per data line.
  bool parse_next(StreamedEdge& out);
  /// Parse one non-comment line; true when \p out holds a new edge, false
  /// for whitespace-only lines and self-loops. Throws ContentError.
  bool parse_edge_line(std::string_view line, StreamedEdge& out);
  [[noreturn]] void fail(const std::string& message) const;

  BufferedLineReader reader_;
  EdgeIndex edges_delivered_ = 0;
  EdgeIndex self_loops_skipped_ = 0;
  NodeId max_vertex_id_ = 0;
  bool exhausted_ = false;
  StreamErrorPolicy error_policy_;
  StreamErrorStats error_stats_;
};

} // namespace oms
