/// \file line_reader.hpp
/// \brief The buffered raw-read machinery shared by the disk-streaming
///        parsers (METIS node stream, SNAP edge-list stream).
///
/// One reusable chunk buffer, lines located with memchr, integers parsed in
/// place — no per-line getline, no per-line string copies. Malformed
/// *content* is the caller's concern; this layer only raises oms::IoError
/// for I/O-level failures (unopenable file, read error). Transient read
/// failures (EINTR/EAGAIN, or an injected FaultSite::kReadTransient) are
/// retried with exponential backoff before giving up.
#pragma once

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "oms/telemetry/metrics.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"

namespace oms {

/// Whitespace-separated integer scanner over one borrowed line. Non-numeric
/// bytes are a *content* error, reported through the caller's error handler.
class IntScanner {
public:
  explicit IntScanner(std::string_view line) noexcept
      : cur_(line.data()), end_(line.data() + line.size()) {}

  /// True and \p out filled if another token exists; false at end of line.
  /// \p on_error is invoked (and must not return) on a malformed token.
  template <typename OnError>
  bool next(std::int64_t& out, OnError&& on_error) {
    while (cur_ < end_ && (*cur_ == ' ' || *cur_ == '\t' || *cur_ == '\r')) {
      ++cur_;
    }
    if (cur_ >= end_) {
      return false;
    }
    // Fast path: bare digit runs (every token of a well-formed file). Up to
    // 18 digits cannot overflow int64, so the accumulation needs no
    // per-digit checks; signs and longer runs fall back to from_chars for
    // identical semantics including range errors.
    std::uint64_t value = 0;
    const char* p = cur_;
    while (p < end_ && p - cur_ < 18) {
      const unsigned digit = static_cast<unsigned>(*p) - '0';
      if (digit > 9) {
        break;
      }
      value = value * 10 + digit;
      ++p;
    }
    if (p > cur_ && (p == end_ || (static_cast<unsigned>(*p) - '0') > 9)) {
      out = static_cast<std::int64_t>(value);
      cur_ = p;
      return true;
    }
    const auto [ptr, ec] = std::from_chars(cur_, end_, out);
    if (ec != std::errc{}) {
      on_error();
    }
    cur_ = ptr;
    return true;
  }

private:
  const char* cur_;
  const char* end_;
};

/// Buffered line-by-line file reader. The view returned by next_line()
/// borrows the chunk buffer and dies at the next call; lines longer than the
/// buffer grow it transparently.
class BufferedLineReader {
public:
  explicit BufferedLineReader(const std::string& path, std::size_t buffer_bytes)
      : file_(std::fopen(path.c_str(), "rb")), path_(path) {
    if (file_ == nullptr) {
      throw IoError("cannot open graph stream file '" + path + "'");
    }
    // The chunk buffer *is* the buffering; a second stdio copy would only
    // cost memcpys. Tiny capacities are allowed (tests use them to exercise
    // the refill seams) but need room for one memmove-and-read step.
    buffer_.resize(buffer_bytes < 64 ? 64 : buffer_bytes);
    std::setvbuf(file_.get(), nullptr, _IONBF, 0);
  }

  BufferedLineReader(const BufferedLineReader&) = delete;
  BufferedLineReader& operator=(const BufferedLineReader&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// 1-based number of the line most recently returned by next_line().
  [[nodiscard]] std::uint64_t line_no() const noexcept { return line_no_; }

  /// File offset of the first byte that next_line() has not yet returned.
  [[nodiscard]] std::uint64_t next_offset() const noexcept {
    return consumed_base_ + pos_;
  }

  /// Next raw line (without the newline); false at end of file.
  [[nodiscard]] bool next_line(std::string_view& line) {
    while (true) {
      const std::size_t search_from = pos_ + scanned_;
      if (search_from < end_) {
        const void* nl =
            std::memchr(buffer_.data() + search_from, '\n', end_ - search_from);
        if (nl != nullptr) {
          const auto nl_pos = static_cast<std::size_t>(
              static_cast<const char*>(nl) - buffer_.data());
          line = std::string_view(buffer_.data() + pos_, nl_pos - pos_);
          pos_ = nl_pos + 1;
          scanned_ = 0;
          ++line_no_;
          telemetry::metric_add(telemetry::Counter::kStreamLinesParsed);
          return true;
        }
      }
      if (eof_) {
        if (pos_ < end_) { // final line without a trailing newline
          line = std::string_view(buffer_.data() + pos_, end_ - pos_);
          pos_ = end_;
          scanned_ = 0;
          ++line_no_;
          telemetry::metric_add(telemetry::Counter::kStreamLinesParsed);
          return true;
        }
        return false;
      }
      scanned_ = end_ - pos_; // everything so far holds no newline
      refill();
    }
  }

  /// Seek back to \p offset and resume counting lines from \p line_no (used
  /// by rewind(): the caller remembers where its data section starts).
  void seek(std::uint64_t offset, std::uint64_t line_no) {
    // 64-bit seek: std::fseek takes long, which truncates >= 2 GiB offsets
    // on LLP64/LP32 platforms; graphs that size are exactly the
    // disk-streaming use case.
#if defined(_WIN32)
    const int rc = _fseeki64(file_.get(), static_cast<__int64>(offset), SEEK_SET);
#else
    const int rc = fseeko(file_.get(), static_cast<off_t>(offset), SEEK_SET);
#endif
    if (rc != 0) {
      throw IoError(path_ + ": cannot seek back to the data section");
    }
    pos_ = 0;
    end_ = 0;
    scanned_ = 0;
    eof_ = false;
    consumed_base_ = offset;
    line_no_ = line_no;
  }

private:
  struct FileCloser {
    void operator()(std::FILE* f) const noexcept { std::fclose(f); }
  };

  /// Slide the unconsumed tail to the front and read another chunk.
  void refill() {
    if (pos_ > 0) {
      std::memmove(buffer_.data(), buffer_.data() + pos_, end_ - pos_);
      consumed_base_ += pos_;
      end_ -= pos_;
      pos_ = 0;
    }
    if (end_ == buffer_.size()) {
      buffer_.resize(buffer_.size() * 2); // line longer than the buffer: grow
    }
    const std::size_t got = read_with_retry(buffer_.size() - end_);
    if (got == 0) {
      eof_ = true;
      return;
    }
    if (fault_fires(FaultSite::kReadCorrupt)) {
      corrupt_chunk(got);
    }
    end_ += got;
  }

  /// One fread of up to \p want bytes into buffer_[end_..], retrying transient
  /// failures (EINTR/EAGAIN from a flaky mount or signal, or an injected
  /// kReadTransient) with exponential backoff. Hard errors — anything that
  /// persists past kMaxReadRetries, or a non-transient errno — throw IoError.
  [[nodiscard]] std::size_t read_with_retry(std::size_t want) {
    static constexpr int kMaxReadRetries = 4;
    for (int attempt = 0;; ++attempt) {
      bool failed;
      bool transient;
      // Injected failures are decided *before* the fread: a simulated failure
      // after a successful read would advance the file position and silently
      // drop the bytes it returned.
      if (fault_fires(FaultSite::kReadError)) {
        failed = true;
        transient = false;
      } else if (fault_fires(FaultSite::kReadTransient)) {
        failed = true;
        transient = true;
      } else {
        // kReadShort: deliver a 1-byte read. Not a failure — the caller must
        // make progress on arbitrarily short reads without losing bytes.
        const std::size_t ask = fault_fires(FaultSite::kReadShort) ? 1 : want;
        errno = 0;
        const std::size_t got =
            std::fread(buffer_.data() + end_, 1, ask, file_.get());
        failed = got == 0 && std::ferror(file_.get()) != 0;
        transient = failed && (errno == EINTR || errno == EAGAIN);
        if (!failed) {
          telemetry::metric_add(telemetry::Counter::kStreamBytesRead, got);
          return got;
        }
        std::clearerr(file_.get());
      }
      if (!transient || attempt >= kMaxReadRetries) {
        throw IoError(path_ + ":" + std::to_string(line_no_) + ": read error" +
                      (transient ? " (transient, retries exhausted)" : ""));
      }
      telemetry::metric_add(telemetry::Counter::kStreamReadRetries);
      std::this_thread::sleep_for(std::chrono::milliseconds(1LL << attempt));
    }
  }

  /// kReadCorrupt payload: flip the last non-newline byte of the fresh chunk
  /// to 'x'. Deliberately never a '\n' — merging two lines could yield bytes
  /// that still parse, i.e. a *silent* corruption, whereas the contract under
  /// test is "corruption surfaces as a content error or a changed result,
  /// never a hang or crash".
  void corrupt_chunk(std::size_t got) {
    for (std::size_t i = end_ + got; i > end_; --i) {
      if (buffer_[i - 1] != '\n') {
        buffer_[i - 1] = 'x';
        return;
      }
    }
  }

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  std::vector<char> buffer_;
  std::size_t pos_ = 0;     ///< first unconsumed byte in buffer_
  std::size_t end_ = 0;     ///< one past the last valid byte in buffer_
  std::size_t scanned_ = 0; ///< bytes past pos_ already searched for '\n'
  bool eof_ = false;
  std::uint64_t consumed_base_ = 0; ///< file offset of buffer_[0]
  std::uint64_t line_no_ = 0;
};

} // namespace oms
