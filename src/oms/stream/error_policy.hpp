/// \file error_policy.hpp
/// \brief Malformed-line policy for the streaming parsers (--on-error).
///
/// Long disk-streaming runs die today on the first malformed data line. For
/// exploratory runs over scraped or partially damaged inputs, the parsers
/// can instead *skip* such lines under a bounded budget: a skipped METIS
/// line becomes an isolated unit-weight node (the id slot is still consumed,
/// keeping every later id aligned), a skipped edge-list line contributes no
/// edge. Only content defects (oms::ContentError — bad tokens, out-of-range
/// ids) are skippable; I/O failures and header errors always abort. The
/// budget guards against "skipping" a file that simply is not the expected
/// format: once exhausted, the run aborts with a clean IoError.
#pragma once

#include <cstdint>
#include <string>

namespace oms {

/// What to do when a *data* line fails to parse.
struct StreamErrorPolicy {
  enum class Action : std::uint8_t {
    kAbort, ///< rethrow the ContentError (the default, and the old behavior)
    kSkip,  ///< drop the line, record it, continue — until the budget runs out
  };

  Action action = Action::kAbort;
  /// Max lines skipped before the run aborts anyway.
  std::uint64_t skip_budget = 100;
};

/// End-of-run accounting of skipped lines, surfaced by the CLI as a summary.
struct StreamErrorStats {
  std::uint64_t lines_skipped = 0;
  std::uint64_t first_line = 0; ///< 1-based line number of the first skip
  std::string first_message;    ///< parser message of the first skip

  void record(std::uint64_t line, const char* message) {
    if (lines_skipped == 0) {
      first_line = line;
      first_message = message;
    }
    ++lines_skipped;
  }
};

} // namespace oms
