/// \file one_pass_driver.hpp
/// \brief The streaming loop shared by every one-pass algorithm: iterate the
///        nodes in stream order and ask an assigner for a permanent block.
///
/// Sequential and shared-memory parallel (vertex-centric, static-chunked
/// OpenMP — paper Section 3.4) drivers are provided. Assigners must be
/// thread-compatible: assign() may be called concurrently for different
/// nodes; all shared state they keep must be atomic (see BlockWeights).
#pragma once

#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/stream/streamed_node.hpp"
#include "oms/types.hpp"
#include "oms/util/work_counters.hpp"

namespace oms {

class CheckpointWriter;
class CheckpointReader;

/// Interface implemented by Hashing, LDG, Fennel and the online recursive
/// multi-section. One instance handles one pass over one graph.
class OnePassAssigner {
public:
  virtual ~OnePassAssigner() = default;

  /// Called once before the pass with the number of worker threads, so the
  /// assigner can size per-thread scratch buffers.
  virtual void prepare(int num_threads) = 0;

  /// Permanently place \p node; thread_id indexes the scratch buffers.
  /// Returns the chosen block in [0, k).
  virtual BlockId assign(const StreamedNode& node, int thread_id,
                         WorkCounters& counters) = 0;

  /// Current assignment of a node (kInvalidBlock if not yet streamed).
  [[nodiscard]] virtual BlockId block_of(NodeId u) const = 0;

  /// Number of target blocks k.
  [[nodiscard]] virtual BlockId num_blocks() const = 0;

  /// Release the final assignment vector (assigner is done afterwards).
  [[nodiscard]] virtual std::vector<BlockId> take_assignment() = 0;

  /// Checkpoint support (stream/checkpoint.hpp): serialize / restore every
  /// piece of state that is not derivable from the construction config, so a
  /// resumed pass continues bit-identically. Both default to "unsupported"
  /// (return false); the resumable driver turns that into a clean IoError.
  /// load_stream_state is called after prepare() on a freshly constructed
  /// assigner with identical config.
  [[nodiscard]] virtual bool save_stream_state(CheckpointWriter& /*writer*/) const {
    return false;
  }
  [[nodiscard]] virtual bool load_stream_state(CheckpointReader& /*reader*/) {
    return false;
  }
};

/// Result of a streaming pass.
struct StreamResult {
  std::vector<BlockId> assignment;
  double elapsed_s = 0.0;
  WorkCounters work;
};

/// Stream \p graph in node-id order through \p assigner.
/// \param num_threads 1 = sequential (deterministic); 0 = all hardware
///        threads; >1 = that many OpenMP threads (vertex-centric chunks).
/// \param chunk_size granularity of the parallel decomposition: 0 = one
///        maximal contiguous chunk per thread (the paper's setup); a
///        positive value deals chunks of that many nodes to threads
///        round-robin, smoothing degree skew on hub-heavy streams.
[[nodiscard]] StreamResult run_one_pass(const CsrGraph& graph, OnePassAssigner& assigner,
                                        int num_threads = 1,
                                        std::size_t chunk_size = 0);

} // namespace oms
