#include "oms/stream/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

#include "oms/stream/block_weights.hpp"
#include "oms/stream/metis_stream.hpp"
#include "oms/telemetry/metrics.hpp"
#include "oms/util/assignment_array.hpp"
#include "oms/util/crc32.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"
#include "oms/util/timer.hpp"

namespace oms {

namespace {

/// "OMSCKPT1" little-endian.
constexpr std::uint64_t kCheckpointMagic = 0x3154504B43534D4FULL;
constexpr std::uint32_t kCheckpointVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void put_meta(CheckpointWriter& w, const CheckpointMeta& meta) {
  w.put_string(meta.algo);
  w.put_u64(meta.k);
  w.put_u64(meta.seed);
  w.put_u64(meta.num_nodes);
  w.put_u64(meta.nodes_streamed);
  w.put_u64(meta.input_offset);
  w.put_u64(meta.input_line_no);
}

[[nodiscard]] CheckpointMeta get_meta(CheckpointReader& r) {
  CheckpointMeta meta;
  meta.algo = r.get_string();
  meta.k = r.get_u64();
  meta.seed = r.get_u64();
  meta.num_nodes = r.get_u64();
  meta.nodes_streamed = r.get_u64();
  meta.input_offset = r.get_u64();
  meta.input_line_no = r.get_u64();
  return meta;
}

} // namespace

void CheckpointWriter::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_raw(s.data(), s.size());
}

void CheckpointWriter::put_raw(const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  buf_.insert(buf_.end(), p, p + bytes);
}

std::string CheckpointReader::get_string() {
  const std::uint32_t len = get_u32();
  if (len > remaining()) {
    throw IoError("checkpoint: truncated string field");
  }
  std::string s(cur_, len);
  cur_ += len;
  return s;
}

void CheckpointReader::get_raw(void* out, std::size_t bytes) {
  if (bytes > remaining()) {
    throw IoError("checkpoint: truncated payload");
  }
  std::memcpy(out, cur_, bytes);
  cur_ += bytes;
}

void CheckpointReader::expect_end() const {
  if (cur_ != end_) {
    throw IoError("checkpoint: " + std::to_string(remaining()) +
                  " unexpected trailing payload bytes");
  }
}

void write_checkpoint_file(const std::string& path, const CheckpointMeta& meta,
                           const std::vector<char>& payload) {
  const telemetry::TraceSpan span(telemetry::Hist::kStageCheckpointWrite);
  CheckpointWriter w;
  w.put_u64(kCheckpointMagic);
  w.put_u32(kCheckpointVersion);
  put_meta(w, meta);
  w.put_u64(payload.size());
  w.put_raw(payload.data(), payload.size());
  const std::uint32_t crc = crc32(w.bytes().data(), w.bytes().size());

  // tmp + rename: a crash mid-write can only lose the snapshot in progress,
  // never corrupt the previous one.
  const std::string tmp = path + ".tmp";
  {
    const FilePtr file(std::fopen(tmp.c_str(), "wb"));
    if (file == nullptr) {
      throw IoError("cannot open checkpoint file '" + tmp + "' for writing");
    }
    if (std::fwrite(w.bytes().data(), 1, w.bytes().size(), file.get()) !=
            w.bytes().size() ||
        std::fwrite(&crc, 1, sizeof crc, file.get()) != sizeof crc ||
        std::fflush(file.get()) != 0) {
      throw IoError("write error on checkpoint file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError("cannot move checkpoint into place at '" + path + "'");
  }
  telemetry::metric_add(telemetry::Counter::kCheckpointSnapshots);
  telemetry::metric_add(telemetry::Counter::kCheckpointBytes,
                        w.bytes().size() + sizeof crc);
}

CheckpointState read_checkpoint_file(const std::string& path) {
  const FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    throw IoError("cannot open checkpoint file '" + path + "'");
  }
  std::vector<char> bytes;
  char chunk[1 << 16];
  while (true) {
    const std::size_t got = std::fread(chunk, 1, sizeof chunk, file.get());
    bytes.insert(bytes.end(), chunk, chunk + got);
    if (got < sizeof chunk) {
      if (std::ferror(file.get()) != 0) {
        throw IoError("read error on checkpoint file '" + path + "'");
      }
      break;
    }
  }

  if (bytes.size() < sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t)) {
    throw IoError("checkpoint '" + path + "': file too short to be a checkpoint");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof stored_crc,
              sizeof stored_crc);
  const std::size_t body = bytes.size() - sizeof stored_crc;

  CheckpointReader r(bytes.data(), body);
  if (r.get_u64() != kCheckpointMagic) {
    throw IoError("checkpoint '" + path + "': bad magic (not a checkpoint file)");
  }
  if (const std::uint32_t version = r.get_u32(); version != kCheckpointVersion) {
    throw IoError("checkpoint '" + path + "': unsupported version " +
                  std::to_string(version) + " (expected " +
                  std::to_string(kCheckpointVersion) + ")");
  }
  if (crc32(bytes.data(), body) != stored_crc) {
    throw IoError("checkpoint '" + path + "': CRC mismatch (truncated or corrupt)");
  }

  CheckpointState state;
  state.meta = get_meta(r);
  const std::uint64_t payload_len = r.get_u64();
  if (payload_len != r.remaining()) {
    throw IoError("checkpoint '" + path + "': payload length mismatch");
  }
  state.payload.resize(payload_len);
  r.get_raw(state.payload.data(), payload_len);
  return state;
}

void validate_resume(const CheckpointMeta& meta, const std::string& algo,
                     std::uint64_t k, std::uint64_t seed, std::uint64_t num_nodes) {
  if (meta.algo != algo) {
    throw IoError("checkpoint was written by algorithm '" + meta.algo +
                  "', this run uses '" + algo + "'");
  }
  if (meta.k != k) {
    throw IoError("checkpoint has k=" + std::to_string(meta.k) +
                  ", this run uses k=" + std::to_string(k));
  }
  if (meta.seed != seed) {
    throw IoError("checkpoint has seed=" + std::to_string(meta.seed) +
                  ", this run uses seed=" + std::to_string(seed));
  }
  if (meta.num_nodes != num_nodes) {
    throw IoError("checkpoint input has " + std::to_string(meta.num_nodes) +
                  " nodes, this input has " + std::to_string(num_nodes));
  }
}

void save_assignment(CheckpointWriter& w, const AssignmentArray& assignment) {
  w.put_u64(assignment.size());
  for (std::size_t u = 0; u < assignment.size(); ++u) {
    const BlockId b = assignment.load(static_cast<NodeId>(u));
    w.put_raw(&b, sizeof b);
  }
}

void load_assignment(CheckpointReader& r, AssignmentArray& assignment) {
  if (r.get_u64() != assignment.size()) {
    throw IoError("checkpoint: assignment size mismatch");
  }
  for (std::size_t u = 0; u < assignment.size(); ++u) {
    BlockId b = kInvalidBlock;
    r.get_raw(&b, sizeof b);
    assignment.store(static_cast<NodeId>(u), b);
  }
}

void save_assignment(CheckpointWriter& w, const std::vector<BlockId>& assignment) {
  w.put_u64(assignment.size());
  w.put_raw(assignment.data(), assignment.size() * sizeof(BlockId));
}

void load_assignment(CheckpointReader& r, std::vector<BlockId>& assignment) {
  if (r.get_u64() != assignment.size()) {
    throw IoError("checkpoint: assignment size mismatch");
  }
  r.get_raw(assignment.data(), assignment.size() * sizeof(BlockId));
}

void save_block_weights(CheckpointWriter& w, const BlockWeights& weights) {
  w.put_u64(weights.size());
  for (std::size_t b = 0; b < weights.size(); ++b) {
    w.put_i64(weights.load(b));
  }
}

void load_block_weights(CheckpointReader& r, BlockWeights& weights) {
  if (r.get_u64() != weights.size()) {
    throw IoError("checkpoint: block weight count mismatch");
  }
  weights.reset();
  for (std::size_t b = 0; b < weights.size(); ++b) {
    weights.add(b, r.get_i64());
  }
}

StreamResult run_one_pass_resumable(MetisNodeStream& stream,
                                    OnePassAssigner& assigner,
                                    const std::string& algo, std::uint64_t seed,
                                    const CheckpointConfig& checkpoint,
                                    const CheckpointState* resume) {
  // prepare() first: it may re-layout the block weights, and load must land
  // in the final layout.
  assigner.prepare(1);

  std::uint64_t streamed = 0;
  if (resume != nullptr) {
    CheckpointReader r(resume->payload);
    if (!assigner.load_stream_state(r)) {
      throw IoError("algorithm '" + algo + "' does not support checkpoint/resume");
    }
    r.expect_end();
    streamed = resume->meta.nodes_streamed;
    stream.resume_at(resume->meta.input_offset, resume->meta.input_line_no,
                     static_cast<NodeId>(streamed));
  }

  const std::uint64_t every =
      checkpoint.path.empty() || checkpoint.every_nodes == 0
          ? std::numeric_limits<std::uint64_t>::max()
          : checkpoint.every_nodes;
  std::uint64_t next_snapshot =
      every == std::numeric_limits<std::uint64_t>::max()
          ? every
          : (streamed / every + 1) * every;

  StreamResult result;
  Timer timer;
  WorkCounters counters;
  StreamedNode node{};
  std::uint64_t pending_nodes = 0;
  while (stream.next(node)) {
    assigner.assign(node, 0, counters);
    ++streamed;
    if (++pending_nodes == 4096) {
      telemetry::metric_add(telemetry::Counter::kStreamNodes, pending_nodes);
      pending_nodes = 0;
    }
    if (streamed >= next_snapshot) {
      CheckpointMeta meta;
      meta.algo = algo;
      meta.k = static_cast<std::uint64_t>(assigner.num_blocks());
      meta.seed = seed;
      meta.num_nodes = stream.header().num_nodes;
      meta.nodes_streamed = streamed;
      meta.input_offset = stream.next_offset();
      meta.input_line_no = stream.line_no();
      CheckpointWriter w;
      if (!assigner.save_stream_state(w)) {
        throw IoError("algorithm '" + algo + "' does not support checkpoint/resume");
      }
      write_checkpoint_file(checkpoint.path, meta, w.bytes());
      // The deterministic stand-in for kill -9: the snapshot is durable, the
      // process dies before assigning another node.
      if (fault_fires(FaultSite::kCheckpointDie)) {
        throw IoError("injected crash after checkpoint at node " +
                      std::to_string(streamed));
      }
      next_snapshot += every;
    }
  }
  if (pending_nodes != 0) {
    telemetry::metric_add(telemetry::Counter::kStreamNodes, pending_nodes);
  }
  telemetry::publish_work(counters);
  result.elapsed_s = timer.elapsed_s();
  result.work = counters;
  result.assignment = assigner.take_assignment();
  return result;
}

} // namespace oms
