/// \file streamed_node.hpp
/// \brief The unit of the one-pass streaming model: a node arriving together
///        with its full adjacency list (Stanton & Kliot's model, which the
///        paper and all its baselines use).
#pragma once

#include <span>

#include "oms/types.hpp"

namespace oms {

struct StreamedNode {
  NodeId id;
  NodeWeight weight;
  std::span<const NodeId> neighbors;
  std::span<const EdgeWeight> edge_weights;
};

} // namespace oms
