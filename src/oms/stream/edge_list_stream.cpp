#include "oms/stream/edge_list_stream.hpp"

#include <limits>

namespace oms {
namespace {

// kInvalidNode is reserved as the "no node" sentinel, so the largest usable
// endpoint id is one below it.
constexpr std::int64_t kMaxEndpoint =
    static_cast<std::int64_t>(std::numeric_limits<NodeId>::max()) - 1;

} // namespace

EdgeListStream::EdgeListStream(const std::string& path, std::size_t buffer_bytes)
    : reader_(path, buffer_bytes) {}

void EdgeListStream::fail(const std::string& message) const {
  // ContentError so the skip policy can catch malformed lines; plain IoError
  // catches (I/O failures, CLI error channel) still see it unchanged.
  throw ContentError(reader_.path() + ":" + std::to_string(reader_.line_no()) +
                     ": " + message);
}

bool EdgeListStream::parse_edge_line(std::string_view line, StreamedEdge& out) {
  const auto bad_token = [this] { fail("malformed integer token in edge line"); };
  IntScanner tokens(line);
  std::int64_t u = 0;
  std::int64_t v = 0;
  if (!tokens.next(u, bad_token)) {
    return false; // whitespace-only line
  }
  if (!tokens.next(v, bad_token)) {
    fail("truncated edge line (one endpoint)");
  }
  if (u < 0 || u > kMaxEndpoint || v < 0 || v > kMaxEndpoint) {
    fail("endpoint id out of range [0, " + std::to_string(kMaxEndpoint) + "]");
  }
  std::int64_t w = 1;
  if (tokens.next(w, bad_token)) {
    if (w < 1) {
      fail("non-positive edge weight " + std::to_string(w));
    }
    std::int64_t junk = 0;
    if (tokens.next(junk, bad_token)) {
      fail("trailing tokens in edge line");
    }
  }
  if (u == v) {
    ++self_loops_skipped_;
    return false;
  }
  out.u = static_cast<NodeId>(u);
  out.v = static_cast<NodeId>(v);
  out.weight = w;
  if (out.u > max_vertex_id_) {
    max_vertex_id_ = out.u;
  }
  if (out.v > max_vertex_id_) {
    max_vertex_id_ = out.v;
  }
  ++edges_delivered_;
  return true;
}

bool EdgeListStream::parse_next(StreamedEdge& out) {
  std::string_view line;
  while (reader_.next_line(line)) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    try {
      if (parse_edge_line(line, out)) {
        return true;
      }
    } catch (const ContentError& error) {
      if (error_policy_.action != StreamErrorPolicy::Action::kSkip) {
        throw;
      }
      error_stats_.record(reader_.line_no(), error.what());
      if (error_stats_.lines_skipped > error_policy_.skip_budget) {
        throw IoError(reader_.path() + ": malformed-line skip budget (" +
                      std::to_string(error_policy_.skip_budget) +
                      ") exhausted; last: " + error.what());
      }
      // A skipped edge-list line simply contributes no edge.
    }
  }
  // First end-of-file: a stream that produced nothing is a malformed input
  // (a typo'd path full of comments should not silently "partition" zero
  // edges), reported through the same IoError channel as parse errors.
  if (!exhausted_) {
    exhausted_ = true;
    if (edges_delivered_ == 0) {
      fail("empty edge list (no edges before end of file)");
    }
  }
  return false;
}

bool EdgeListStream::next(StreamedEdge& out) { return parse_next(out); }

std::size_t EdgeListStream::fill_batch(EdgeBatch& batch, std::size_t max_edges) {
  batch.reset();
  StreamedEdge edge;
  while (batch.size() < max_edges) {
    if (!parse_next(edge)) {
      break;
    }
    batch.push(edge);
  }
  return batch.size();
}

void EdgeListStream::rewind() {
  reader_.seek(0, 0);
  edges_delivered_ = 0;
  self_loops_skipped_ = 0;
  max_vertex_id_ = 0;
  exhausted_ = false;
}

} // namespace oms
