/// \file pipeline_core.hpp
/// \brief The producer/consumer ring shared by every pipelined disk stream:
///        a reader thread fills recycled batch buffers, consumer threads
///        drain them, errors from either side are rethrown on the caller.
///
/// Extracted from the METIS node pipeline (PR 3) so the edge-list stream —
/// and any future batch-shaped ingest — reuses the exact shutdown and error
/// protocol instead of re-deriving it: two bounded queues close the loop,
/// ring_batches bounds the parse-ahead (backpressure on both sides), and
/// after warm-up no allocation happens on either path.
///
/// Failure hardening (PR 7): an optional watchdog bounds every queue wait so
/// a dead peer thread surfaces as IoError instead of a hang; a consumer
/// error aborts (close + discard) both queues so siblings and the producer
/// stop at their next queue operation; and when the producer thread cannot
/// be spawned at all the pipeline degrades to a sequential fill/consume loop
/// on the calling thread — same results, no parallelism.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "oms/telemetry/metrics.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"
#include "oms/util/parallel.hpp"

namespace oms {

/// Run a batched producer/consumer pipeline to completion.
///
/// \param ring_batches batches circulating between producer and consumers.
/// \param consumers    consumer thread count; the calling thread is consumer
///                     0, so the pipeline costs exactly `consumers` extra
///                     threads minus one plus the reader.
/// \param fill         invoked on the producer thread: fill(batch) parses
///                     the next chunk into \p batch and returns the element
///                     count; 0 means the stream is exhausted.
/// \param consume      invoked on consumer threads: consume(batch,
///                     thread_id) processes one batch.
/// \param watchdog_ms  bound on any single queue wait; 0 (default) disables.
///                     A timeout means a peer thread died without closing
///                     its queue and is reported as IoError.
///
/// An exception thrown by \p fill wakes the consumers (they drain what was
/// parsed, then stop) and is rethrown here after all threads joined; an
/// exception from \p consume stops the siblings and the producer the same
/// way. Fill errors take precedence, matching "the parse failed first".
template <typename Batch, typename Fill, typename Consume>
void run_batched_pipeline(std::size_t ring_batches, int consumers, Fill&& fill,
                          Consume&& consume, std::uint64_t watchdog_ms = 0) {
  using BatchPtr = std::unique_ptr<Batch>;
  BoundedQueue<BatchPtr> free_q(ring_batches);
  BoundedQueue<BatchPtr> filled_q(ring_batches);
  if (watchdog_ms != 0) {
    free_q.set_watchdog(std::chrono::milliseconds(watchdog_ms));
    filled_q.set_watchdog(std::chrono::milliseconds(watchdog_ms));
  }
  for (std::size_t i = 0; i < ring_batches; ++i) {
    (void)free_q.push(std::make_unique<Batch>());
  }

  std::mutex error_mutex;
  std::exception_ptr fill_error;
  std::exception_ptr consume_error;

  const auto producer_loop = [&] {
    try {
      BatchPtr batch;
      while (true) {
        // Telemetry: the time spent waiting for a recycled batch is exactly
        // the backpressure the consumers exert on the reader. Clock reads
        // happen only with a registry armed.
        if (telemetry::enabled()) [[unlikely]] {
          const std::uint64_t t0 = telemetry::now_ns();
          const bool ok = free_q.pop(batch);
          telemetry::metric_add(telemetry::Counter::kPipelineProducerStallNs,
                                telemetry::now_ns() - t0);
          if (!ok) {
            break;
          }
        } else if (!free_q.pop(batch)) {
          break;
        }
        fault_sleep(FaultSite::kFillDelay);
        {
          const telemetry::TraceSpan span(telemetry::Hist::kStageParse);
          if (fill(*batch) == 0) {
            break; // stream exhausted
          }
        }
        if (!filled_q.push(std::move(batch))) {
          break; // a consumer failed and closed the queues
        }
        if (telemetry::enabled()) [[unlikely]] {
          telemetry::gauge_max(telemetry::Gauge::kPipelineQueueDepthMax,
                               filled_q.size());
        }
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      fill_error = std::current_exception();
    }
    // Wakes the consumers; they drain what was parsed, then stop. An IoError
    // therefore surfaces on the caller, never as a deadlocked pipeline.
    filled_q.close();
  };

  // Graceful degradation: if the OS refuses the producer thread (or the
  // injected thread.spawn fault simulates that), run the whole stream
  // sequentially on the calling thread. Identical results, no parallelism —
  // strictly better than failing a multi-hour run over a transient
  // resource limit.
  std::thread producer;
  if (!fault_fires(FaultSite::kThreadSpawn)) {
    try {
      producer = std::thread(producer_loop);
    } catch (const std::system_error&) {
    }
  }
  if (!producer.joinable()) {
    Batch batch;
    while (true) {
      fault_sleep(FaultSite::kFillDelay);
      {
        const telemetry::TraceSpan span(telemetry::Hist::kStageParse);
        if (fill(batch) == 0) {
          return;
        }
      }
      if (fault_fires(FaultSite::kConsumeThrow)) {
        throw IoError("injected consumer fault");
      }
      {
        const telemetry::TraceSpan span(telemetry::Hist::kStageAssign);
        consume(batch, 0);
      }
      telemetry::metric_add(telemetry::Counter::kPipelineBatches);
    }
  }

  const auto consume_loop = [&](int thread_id) {
    try {
      BatchPtr batch;
      while (true) {
        // Telemetry mirror of the producer side: waits on the filled queue
        // measure reader-bound (or sibling-starved) consumers.
        if (telemetry::enabled()) [[unlikely]] {
          const std::uint64_t t0 = telemetry::now_ns();
          const bool ok = filled_q.pop(batch);
          const std::uint64_t waited = telemetry::now_ns() - t0;
          telemetry::metric_add(telemetry::Counter::kPipelineConsumerWaitNs,
                                waited);
          telemetry::hist_record(telemetry::Hist::kPipelineQueueWait, waited);
          if (!ok) {
            break;
          }
        } else if (!filled_q.pop(batch)) {
          break;
        }
        if (fault_fires(FaultSite::kConsumeThrow)) {
          throw IoError("injected consumer fault");
        }
        {
          const telemetry::TraceSpan span(telemetry::Hist::kStageAssign);
          consume(*batch, thread_id);
        }
        telemetry::metric_add(telemetry::Counter::kPipelineBatches);
        if (!free_q.push(std::move(batch))) {
          break;
        }
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (consume_error == nullptr) {
          consume_error = std::current_exception();
        }
      }
      // abort(), not close(): discard the parsed backlog so sibling
      // consumers stop at their next pop instead of draining batches whose
      // results will be thrown away, and the producer's push/pop unblock
      // immediately. The first error recorded above is the one rethrown.
      filled_q.abort();
      free_q.abort();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(consumers) - 1);
  for (int t = 1; t < consumers; ++t) {
    // A failed worker spawn degrades to fewer consumers (the calling thread
    // is always consumer 0); correctness never depends on the count.
    if (fault_fires(FaultSite::kThreadSpawn)) {
      break;
    }
    try {
      workers.emplace_back(consume_loop, t);
    } catch (const std::system_error&) {
      break;
    }
  }
  consume_loop(0);
  for (std::thread& w : workers) {
    w.join();
  }
  free_q.close(); // producer may still be waiting for a recycled batch
  producer.join();

  if (fill_error != nullptr) {
    std::rethrow_exception(fill_error);
  }
  if (consume_error != nullptr) {
    std::rethrow_exception(consume_error);
  }
}

} // namespace oms
