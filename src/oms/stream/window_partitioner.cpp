#include "oms/stream/window_partitioner.hpp"

#include "oms/telemetry/metrics.hpp"
#include "oms/util/assert.hpp"

namespace oms {

WindowPartitioner::WindowPartitioner(NodeId num_nodes, NodeWeight total_node_weight,
                                     const WindowConfig& config, BlockId k)
    : config_(config),
      k_(k),
      max_block_weight_(max_block_weight(total_node_weight, k, config.epsilon)),
      assignment_(num_nodes, kInvalidBlock),
      weights_(static_cast<std::size_t>(k)),
      ring_(static_cast<std::size_t>(config.window_size) + 1),
      gather_(static_cast<std::size_t>(k), 0) {
  OMS_ASSERT(k >= 1);
  OMS_ASSERT(config.window_size >= 1);
}

void WindowPartitioner::prepare(int num_threads) {
  OMS_ASSERT_MSG(num_threads == 1, "the sliding window is sequential by nature");
}

BlockId WindowPartitioner::assign(const StreamedNode& node, int /*thread_id*/,
                                  WorkCounters& counters) {
  Slot& slot = ring_[(head_ + count_) % ring_.size()];
  slot.id = node.id;
  slot.weight = node.weight;
  slot.neighbors.assign(node.neighbors.begin(), node.neighbors.end());
  slot.edge_weights.assign(node.edge_weights.begin(), node.edge_weights.end());
  ++count_;
  if (count_ > config_.window_size) {
    flush_one(counters);
  }
  // The caller-visible return value is the newest *committed* node's block;
  // the true result lives in the assignment array.
  return count_ == 0 ? assignment_[node.id] : kInvalidBlock;
}

void WindowPartitioner::flush_one(WorkCounters& counters) {
  telemetry::metric_add(telemetry::Counter::kWindowEvictions);
  const Slot& slot = ring_[head_];
  head_ = (head_ + 1) % ring_.size();
  --count_;

  for (const BlockId b : touched_) {
    gather_[static_cast<std::size_t>(b)] = 0;
  }
  touched_.clear();
  for (std::size_t i = 0; i < slot.neighbors.size(); ++i) {
    counters.neighbor_visits += 1;
    const BlockId b = assignment_[slot.neighbors[i]];
    if (b == kInvalidBlock) {
      continue;
    }
    if (gather_[static_cast<std::size_t>(b)] == 0) {
      touched_.push_back(b);
    }
    gather_[static_cast<std::size_t>(b)] += slot.edge_weights[i];
  }

  BlockId best = kInvalidBlock;
  double best_score = -1.0;
  NodeWeight best_weight = 0;
  for (BlockId b = 0; b < k_; ++b) {
    counters.score_evaluations += 1;
    const NodeWeight w = weights_.load(static_cast<std::size_t>(b));
    if (w + slot.weight > max_block_weight_) {
      continue;
    }
    const double score =
        static_cast<double>(gather_[static_cast<std::size_t>(b)]) *
        (1.0 - static_cast<double>(w) / static_cast<double>(max_block_weight_));
    if (best == kInvalidBlock || score > best_score ||
        (score == best_score && w < best_weight)) {
      best = b;
      best_score = score;
      best_weight = w;
    }
  }
  if (best == kInvalidBlock) {
    best = 0;
    for (BlockId b = 1; b < k_; ++b) {
      if (weights_.load(static_cast<std::size_t>(b)) <
          weights_.load(static_cast<std::size_t>(best))) {
        best = b;
      }
    }
  }
  weights_.add(static_cast<std::size_t>(best), slot.weight);
  assignment_[slot.id] = best;
  counters.layers_traversed += 1;
}

std::vector<BlockId> WindowPartitioner::take_assignment() {
  WorkCounters drain;
  while (count_ > 0) {
    flush_one(drain);
  }
  return std::move(assignment_);
}

} // namespace oms
