/// \file buffered_stream_driver.hpp
/// \brief Disk-native buffered streaming partitioning: drive the
///        BufferedPartitioner core from METIS files via MetisNodeStream
///        batches, never materializing the graph — O(buffer + k) state
///        beyond the assignment vector.
///
/// Two drivers over the same core:
///  * sequential — fill_batch() / process_buffer() alternate on one thread;
///  * pipelined  — the pipeline_core producer/consumer ring parses the next
///    buffers on a reader thread while the (single) consumer builds and
///    refines the current model, so ingest overlaps optimization exactly
///    like the one-pass pipeline. Buffers are always committed in stream
///    order, so both drivers — and the in-memory buffered_partition() —
///    produce bit-identical partitions on the same file.
///
/// Both drivers honor config.engine: the default lp engine or the
/// multilevel inner engine (contract / initial-partition / refine per
/// buffer). The multilevel engine keys its per-buffer seed off the buffer
/// index alone, so it too is deterministic across all three entry points.
#pragma once

#include <string>

#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/stream/pipeline.hpp"

namespace oms {

/// Algorithm id stamped into buffered checkpoints; resume validation refuses
/// a checkpoint written by the other inner engine.
[[nodiscard]] inline const char* buffered_checkpoint_algo_id(
    const BufferedConfig& config) noexcept {
  return config.engine == BufferedEngine::kMultilevel ? "buffered:multilevel"
                                                      : "buffered:lp";
}

/// Stream \p path buffer by buffer through the buffered partitioner.
/// Requires unit node weights (the balance bound Lmax must be known before
/// the pass; the header only reveals n); throws oms::IoError otherwise, and
/// for any malformed content, like every disk driver.
[[nodiscard]] BufferedResult buffered_partition_from_file(
    const std::string& path, BlockId k, const BufferedConfig& config);

/// Same decisions, pipelined: a reader thread parses buffer b+1..b+ring
/// while the consumer optimizes buffer b. The model build is inherently
/// sequential, so \p pipeline.assign_threads is ignored (always 1 consumer);
/// batch_nodes is governed by config.buffer_size. IoError from the reader
/// thread is rethrown on the caller after all threads joined.
[[nodiscard]] BufferedResult buffered_partition_from_file(
    const std::string& path, BlockId k, const BufferedConfig& config,
    const PipelineConfig& pipeline);

/// Sequential buffered streaming with periodic checkpoints and optional
/// resume. Snapshots land at buffer boundaries — the first boundary at or
/// past each multiple of \p checkpoint.every_nodes — so resuming re-enters
/// the stream exactly between two process_buffer() calls; the result is
/// bit-identical to the uninterrupted drivers. \p resume must already have
/// passed validate_resume against buffered_checkpoint_algo_id(config).
[[nodiscard]] BufferedResult buffered_partition_from_file_resumable(
    const std::string& path, BlockId k, const BufferedConfig& config,
    const CheckpointConfig& checkpoint, const CheckpointState* resume);

} // namespace oms
