/// \file pipeline.hpp
/// \brief Pipelined disk streaming: a producer thread parses the METIS file
///        into reusable NodeBatch buffers while consumer threads run the
///        one-pass assigner — ingest and assignment overlap instead of
///        interleaving on one core.
///
/// This is the producer/consumer structure of buffered streaming
/// partitioning (Faraj & Schulz, "Buffered Streaming Graph Partitioning")
/// applied to the raw ingest path: the sequential driver alternates
/// parse-a-node / assign-a-node, so disk-backed runs pay parse + assign in
/// series; the pipeline pays max(parse, assign) plus one batch handoff per
/// few thousand nodes.
///
/// Ordering contract: parse-ahead reorders *work*, never *decisions*. With
/// one assign thread, batches are consumed strictly in stream order, so the
/// assignment is bit-identical to run_one_pass_from_file (pinned by the
/// golden-hash suite). With several assign threads, whole batches are dealt
/// to threads like the chunked in-memory parallel driver, with the same
/// Section 3.4 overshoot semantics.
#pragma once

#include <cstddef>
#include <string>

#include "oms/stream/metis_stream.hpp"
#include "oms/stream/one_pass_driver.hpp"

namespace oms {

/// Tuning knobs for the pipelined file driver. The defaults target "disk
/// stream with one reader and one assigner": batches big enough to amortize
/// the queue handoff, a ring deep enough to ride out parse/assign jitter.
struct PipelineConfig {
  /// Consumer (assignment) threads. 1 keeps stream order exactly and is
  /// bit-identical to the sequential driver; >1 trades determinism for
  /// throughput exactly like run_one_pass(..., num_threads > 1).
  int assign_threads = 1;

  /// Max nodes per batch. Also the parallel decomposition grain when
  /// assign_threads > 1 (one batch = one chunk).
  std::size_t batch_nodes = 4096;

  /// Max adjacency entries per batch: hub-heavy regions close a batch early
  /// so its memory stays bounded by arcs, not by the degree distribution.
  /// 0 = no arc cap.
  std::size_t batch_arcs = 1 << 18;

  /// Batches circulating between the reader and the consumers. Bounds the
  /// parse-ahead: the reader blocks once this many batches are parsed but
  /// not yet assigned (backpressure).
  std::size_t ring_batches = 4;

  /// Raw read chunk of the underlying MetisNodeStream.
  std::size_t reader_buffer_bytes = MetisNodeStream::kDefaultBufferBytes;

  /// Watchdog on every pipeline queue wait, in milliseconds; 0 disables. A
  /// timeout means a peer thread died without closing its queue and surfaces
  /// as oms::IoError instead of a hang.
  std::uint64_t watchdog_ms = 0;

  /// Malformed-line policy applied to the underlying stream (--on-error).
  StreamErrorPolicy error_policy;

  /// When non-null, receives the end-of-run skip accounting (only meaningful
  /// under StreamErrorPolicy::Action::kSkip). Not owned.
  StreamErrorStats* error_stats_out = nullptr;
};

/// Stream \p path through \p assigner with parse/assign overlap. Total
/// memory beyond the assigner's own state is O(ring_batches * batch size).
/// IoError raised by the parser mid-stream is rethrown here, on the calling
/// thread, after all pipeline threads have been joined.
[[nodiscard]] StreamResult run_one_pass_from_file(const std::string& path,
                                                  OnePassAssigner& assigner,
                                                  const PipelineConfig& config);

} // namespace oms
