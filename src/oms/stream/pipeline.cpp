#include "oms/stream/pipeline.hpp"

#include <vector>

#include "oms/stream/node_batch.hpp"
#include "oms/stream/pipeline_core.hpp"
#include "oms/util/parallel.hpp"
#include "oms/util/timer.hpp"

namespace oms {

StreamResult run_one_pass_from_file(const std::string& path,
                                    OnePassAssigner& assigner,
                                    const PipelineConfig& config) {
  const int consumers = resolve_threads(config.assign_threads);
  MetisNodeStream stream(path, config.reader_buffer_bytes);
  stream.set_error_policy(config.error_policy);
  assigner.prepare(consumers);

  StreamResult result;
  Timer timer;

  // Per-thread counter slots merged after the join; each consumer accumulates
  // into a stack-local inside the batch loop so the shared vector is written
  // once per batch, not once per node (no false sharing on the hot path).
  std::vector<WorkCounters> counters(static_cast<std::size_t>(consumers));
  run_batched_pipeline<NodeBatch>(
      config.ring_batches, consumers,
      [&](NodeBatch& batch) {
        return stream.fill_batch(batch, config.batch_nodes, config.batch_arcs);
      },
      [&](const NodeBatch& batch, int thread_id) {
        WorkCounters local;
        const std::size_t count = batch.size();
        for (std::size_t i = 0; i < count; ++i) {
          assigner.assign(batch.node(i), thread_id, local);
        }
        counters[static_cast<std::size_t>(thread_id)] += local;
      },
      config.watchdog_ms);
  for (const WorkCounters& c : counters) {
    result.work += c;
  }
  telemetry::publish_work(result.work);
  if (config.error_stats_out != nullptr) {
    *config.error_stats_out = stream.error_stats();
  }

  result.elapsed_s = timer.elapsed_s();
  result.assignment = assigner.take_assignment();
  return result;
}

} // namespace oms
