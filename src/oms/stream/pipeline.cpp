#include "oms/stream/pipeline.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "oms/stream/node_batch.hpp"
#include "oms/util/parallel.hpp"
#include "oms/util/timer.hpp"

namespace oms {

StreamResult run_one_pass_from_file(const std::string& path,
                                    OnePassAssigner& assigner,
                                    const PipelineConfig& config) {
  const int consumers = resolve_threads(config.assign_threads);
  MetisNodeStream stream(path, config.reader_buffer_bytes);
  assigner.prepare(consumers);

  StreamResult result;
  Timer timer;

  // Two rings close the loop: the reader pops an empty batch from free_q,
  // parses into it, pushes it to filled_q; a consumer assigns it and hands
  // the buffer back. ring_batches bounds the parse-ahead (backpressure on
  // both sides), and after warm-up no allocation happens on either path.
  using BatchPtr = std::unique_ptr<NodeBatch>;
  BoundedQueue<BatchPtr> free_q(config.ring_batches);
  BoundedQueue<BatchPtr> filled_q(config.ring_batches);
  for (std::size_t i = 0; i < config.ring_batches; ++i) {
    (void)free_q.push(std::make_unique<NodeBatch>());
  }

  std::mutex error_mutex;
  std::exception_ptr parse_error;
  std::exception_ptr assign_error;

  std::thread producer([&] {
    try {
      BatchPtr batch;
      while (free_q.pop(batch)) {
        if (stream.fill_batch(*batch, config.batch_nodes, config.batch_arcs) == 0) {
          break; // stream exhausted
        }
        if (!filled_q.push(std::move(batch))) {
          break; // a consumer failed and closed the queues
        }
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      parse_error = std::current_exception();
    }
    // Wakes the consumers; they drain what was parsed, then stop. An IoError
    // therefore surfaces on the caller, never as a deadlocked pipeline.
    filled_q.close();
  });

  std::mutex merge_mutex;
  const auto consume = [&](int thread_id) {
    WorkCounters counters;
    try {
      BatchPtr batch;
      while (filled_q.pop(batch)) {
        const std::size_t count = batch->size();
        for (std::size_t i = 0; i < count; ++i) {
          assigner.assign(batch->node(i), thread_id, counters);
        }
        if (!free_q.push(std::move(batch))) {
          break;
        }
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (assign_error == nullptr) {
          assign_error = std::current_exception();
        }
      }
      filled_q.close(); // stop sibling consumers
      free_q.close();   // unblock the producer
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    result.work += counters;
  };

  // The calling thread is consumer 0, so the default config costs exactly
  // one extra thread (the parser).
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(consumers) - 1);
  for (int t = 1; t < consumers; ++t) {
    workers.emplace_back(consume, t);
  }
  consume(0);
  for (std::thread& w : workers) {
    w.join();
  }
  free_q.close(); // producer may still be waiting for a recycled batch
  producer.join();

  if (parse_error != nullptr) {
    std::rethrow_exception(parse_error);
  }
  if (assign_error != nullptr) {
    std::rethrow_exception(assign_error);
  }

  result.elapsed_s = timer.elapsed_s();
  result.assignment = assigner.take_assignment();
  return result;
}

} // namespace oms
