#include "oms/multilevel/greedy_mapping.hpp"

#include <algorithm>
#include <limits>

#include "oms/util/assert.hpp"

namespace oms {

std::vector<BlockId> greedy_block_to_pe(const BlockGraph& block_graph,
                                        const SystemHierarchy& topology) {
  const BlockId k = block_graph.k;
  OMS_ASSERT_MSG(k == topology.num_pes(), "one PE per block required");

  std::vector<BlockId> perm(static_cast<std::size_t>(k), kInvalidBlock);
  std::vector<bool> pe_used(static_cast<std::size_t>(k), false);
  std::vector<bool> block_placed(static_cast<std::size_t>(k), false);
  // Connectivity of each unplaced block to the placed set (updated online).
  std::vector<EdgeWeight> tie(static_cast<std::size_t>(k), 0);

  // Seed: the block with the largest total communication volume, on PE 0
  // (all PEs are equivalent before anything else is placed).
  BlockId seed = 0;
  EdgeWeight seed_volume = -1;
  for (BlockId b = 0; b < k; ++b) {
    EdgeWeight volume = 0;
    for (const auto& [c, w] : block_graph.adjacency[static_cast<std::size_t>(b)]) {
      volume += w;
    }
    if (volume > seed_volume) {
      seed = b;
      seed_volume = volume;
    }
  }
  const auto place = [&](BlockId block, BlockId pe) {
    perm[static_cast<std::size_t>(block)] = pe;
    pe_used[static_cast<std::size_t>(pe)] = true;
    block_placed[static_cast<std::size_t>(block)] = true;
    for (const auto& [c, w] : block_graph.adjacency[static_cast<std::size_t>(block)]) {
      tie[static_cast<std::size_t>(c)] += w;
    }
  };
  place(seed, 0);

  for (BlockId round = 1; round < k; ++round) {
    // Strongest unplaced block; isolated blocks (tie 0) come last, by index.
    BlockId next = kInvalidBlock;
    EdgeWeight best_tie = -1;
    for (BlockId b = 0; b < k; ++b) {
      if (!block_placed[static_cast<std::size_t>(b)] &&
          tie[static_cast<std::size_t>(b)] > best_tie) {
        next = b;
        best_tie = tie[static_cast<std::size_t>(b)];
      }
    }
    OMS_ASSERT(next != kInvalidBlock);

    // Free PE minimizing the added communication cost to placed neighbors.
    BlockId best_pe = kInvalidBlock;
    std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
    for (BlockId pe = 0; pe < k; ++pe) {
      if (pe_used[static_cast<std::size_t>(pe)]) {
        continue;
      }
      std::int64_t cost = 0;
      for (const auto& [c, w] :
           block_graph.adjacency[static_cast<std::size_t>(next)]) {
        if (block_placed[static_cast<std::size_t>(c)]) {
          cost += static_cast<std::int64_t>(w) *
                  topology.distance(pe, perm[static_cast<std::size_t>(c)]);
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_pe = pe;
      }
    }
    place(next, best_pe);
  }
  return perm;
}

std::vector<BlockId> apply_greedy_mapping(const CsrGraph& graph,
                                          std::vector<BlockId>& partition,
                                          const SystemHierarchy& topology) {
  const BlockGraph block_graph =
      BlockGraph::build(graph, partition, topology.num_pes());
  std::vector<BlockId> perm = greedy_block_to_pe(block_graph, topology);
  for (BlockId& pe : partition) {
    pe = perm[static_cast<std::size_t>(pe)];
  }
  return perm;
}

} // namespace oms
