#include "oms/multilevel/multilevel_partitioner.hpp"

#include <algorithm>

#include "oms/multilevel/contraction.hpp"
#include "oms/multilevel/inner_kernels.hpp"
#include "oms/multilevel/label_propagation.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/util/assert.hpp"

namespace oms {

std::vector<BlockId> bfs_band_partition(const CsrGraph& graph, BlockId k,
                                        NodeWeight max_block_weight,
                                        std::uint64_t seed) {
  // No outside base weights: every block starts empty (the template's n == 0
  // guard also covers the empty graph, which used to hit next_below(0) UB).
  return bfs_band_impl(graph, k, max_block_weight, {}, seed);
}

MultilevelResult multilevel_partition(const CsrGraph& graph, BlockId k,
                                      const MultilevelConfig& config) {
  OMS_ASSERT(k >= 1);
  if (graph.num_nodes() == 0) {
    // Nothing to partition: coarsening, initial partitioning and refinement
    // are all vacuous (and bfs_band on n == 0 must not roll the RNG).
    MultilevelResult empty;
    empty.peak_graph_bytes = graph.memory_footprint_bytes();
    return empty;
  }
  if (k == 1) {
    MultilevelResult trivial;
    trivial.partition.assign(graph.num_nodes(), 0);
    trivial.peak_graph_bytes = graph.memory_footprint_bytes();
    return trivial;
  }
  const NodeWeight lmax = max_block_weight(graph.total_node_weight(), k,
                                           config.epsilon);

  // --- Coarsening -------------------------------------------------------
  // The hierarchy owns each coarse level; level 0 aliases the input graph.
  std::vector<Contraction> hierarchy;
  const CsrGraph* current = &graph;
  std::uint64_t live_bytes = graph.memory_footprint_bytes();
  std::uint64_t peak_bytes = live_bytes;
  const NodeId target = std::max<NodeId>(
      config.coarse_floor,
      static_cast<NodeId>(std::min<std::int64_t>(
          static_cast<std::int64_t>(config.coarsening_factor) * k,
          static_cast<std::int64_t>(graph.num_nodes()))));

  LabelPropagationConfig lp;
  lp.seed = config.seed;
  // Cluster weight cap derived from the coarsening target: with cap W/target,
  // clustering yields at least ~target clusters (unit weights), so it cannot
  // overshoot the coarsest size the initial partitioner is tuned for — the
  // overshoot guard below is then a genuine safety stop for weighted graphs,
  // not the every-time exit the old W/(4k) cap made it. The cap also keeps
  // coarse nodes small enough that a balanced k-way partition stays feasible
  // (target >= coarsening_factor * k).
  const NodeWeight max_cluster_weight = std::max<NodeWeight>(
      1, graph.total_node_weight() / std::max<NodeId>(1, target));

  for (int level = 0; level < config.max_levels; ++level) {
    if (current->num_nodes() <= target) {
      break;
    }
    lp.seed = config.seed + static_cast<std::uint64_t>(level) + 1;
    const std::vector<NodeId> cluster =
        lp_clustering(*current, max_cluster_weight, lp);
    const NodeId num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
    if (num_clusters >= current->num_nodes() ||
        num_clusters < target / 2 + 1) {
      // No progress, or the clustering would overshoot the coarsening target
      // by more than 2x: stop coarsening *before* contracting. (The old code
      // only stopped in the no-progress case and contracted the overshooting
      // clustering anyway, leaving a coarsest graph far below the size the
      // initial partitioner was tuned for.)
      break;
    }
    hierarchy.push_back(contract(*current, cluster));
    current = &hierarchy.back().coarse;
    live_bytes += current->memory_footprint_bytes();
    peak_bytes = std::max(peak_bytes, live_bytes);
  }

  // Balance bound per level: coarse nodes can be heavy, so a strict Lmax may
  // be unachievable at coarse levels (bin-packing granularity). The standard
  // remedy is Lmax + (max node weight) there; the finest level re-enforces
  // the strict bound, which is always achievable for unit node weights.
  const auto bound_for = [lmax](const CsrGraph& level_graph) {
    NodeWeight heaviest = 1;
    for (NodeId u = 0; u < level_graph.num_nodes(); ++u) {
      heaviest = std::max(heaviest, level_graph.node_weight(u));
    }
    return heaviest <= 1 ? lmax : lmax + heaviest;
  };

  // --- Initial partitioning ---------------------------------------------
  // Best of several seeds: the coarsest graph is small, so repeated initial
  // partitioning is cheap and buys noticeable quality (standard multilevel
  // practice).
  const NodeWeight coarsest_bound = bound_for(*current);
  LabelPropagationConfig refine;
  refine.max_iterations = config.refinement_iterations;

  std::vector<BlockId> partition;
  Cost best_cut = 0;
  for (int attempt = 0; attempt < config.initial_attempts; ++attempt) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(attempt) * 101;
    std::vector<BlockId> candidate =
        bfs_band_partition(*current, k, coarsest_bound, seed);
    rebalance(*current, candidate, k, coarsest_bound);
    refine.seed = seed ^ 0x9e3779b9ULL;
    lp_refinement(*current, candidate, k, coarsest_bound, refine);
    const Cost cut = edge_cut(*current, candidate);
    if (attempt == 0 || cut < best_cut) {
      best_cut = cut;
      partition = std::move(candidate);
    }
  }
  refine.seed = config.seed ^ 0x9e3779b9ULL;

  // --- Uncoarsening -------------------------------------------------------
  for (std::size_t level = hierarchy.size(); level-- > 0;) {
    partition = project_partition(hierarchy[level].fine_to_coarse, partition);
    const CsrGraph& fine =
        (level == 0) ? graph : hierarchy[level - 1].coarse;
    const NodeWeight bound = bound_for(fine);
    refine.seed += 1;
    lp_refinement(fine, partition, k, bound, refine);
    rebalance(fine, partition, k, bound);
  }
  if (hierarchy.empty()) {
    // No uncoarsening happened: enforce the strict input-level bound now.
    rebalance(graph, partition, k, bound_for(graph));
  }

  MultilevelResult result;
  result.partition = std::move(partition);
  result.levels_used = static_cast<int>(hierarchy.size());
  result.peak_graph_bytes = peak_bytes;
  return result;
}

} // namespace oms
