#include "oms/multilevel/multilevel_partitioner.hpp"

#include <algorithm>
#include <queue>

#include "oms/multilevel/contraction.hpp"
#include "oms/multilevel/label_propagation.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/random.hpp"

namespace oms {

std::vector<BlockId> bfs_band_partition(const CsrGraph& graph, BlockId k,
                                        NodeWeight max_block_weight,
                                        std::uint64_t seed) {
  const NodeId n = graph.num_nodes();
  std::vector<BlockId> partition(n, kInvalidBlock);
  std::vector<bool> visited(n, false);
  std::vector<NodeWeight> block_weight(static_cast<std::size_t>(k), 0);

  Rng rng(seed);
  BlockId current = 0;
  const auto place = [&](NodeId u) {
    // Advance to the next block with room; wrap once if needed.
    for (BlockId probes = 0; probes < k; ++probes) {
      const BlockId b = (current + probes) % k;
      if (block_weight[static_cast<std::size_t>(b)] + graph.node_weight(u) <=
          max_block_weight) {
        current = b;
        block_weight[static_cast<std::size_t>(b)] += graph.node_weight(u);
        partition[u] = b;
        return;
      }
    }
    // All full (only possible with eps == 0 and awkward weights): lightest.
    BlockId lightest = 0;
    for (BlockId b = 1; b < k; ++b) {
      if (block_weight[static_cast<std::size_t>(b)] <
          block_weight[static_cast<std::size_t>(lightest)]) {
        lightest = b;
      }
    }
    block_weight[static_cast<std::size_t>(lightest)] += graph.node_weight(u);
    partition[u] = lightest;
  };

  std::queue<NodeId> queue;
  const auto start = static_cast<NodeId>(rng.next_below(n));
  for (NodeId offset = 0; offset < n; ++offset) {
    const NodeId root = (start + offset) % n;
    if (visited[root]) {
      continue;
    }
    visited[root] = true;
    queue.push(root);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      place(u);
      for (const NodeId v : graph.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push(v);
        }
      }
    }
  }
  return partition;
}

MultilevelResult multilevel_partition(const CsrGraph& graph, BlockId k,
                                      const MultilevelConfig& config) {
  OMS_ASSERT(k >= 1);
  const NodeWeight lmax = max_block_weight(graph.total_node_weight(), k,
                                           config.epsilon);

  // --- Coarsening -------------------------------------------------------
  // The hierarchy owns each coarse level; level 0 aliases the input graph.
  std::vector<Contraction> hierarchy;
  const CsrGraph* current = &graph;
  std::uint64_t live_bytes = graph.memory_footprint_bytes();
  std::uint64_t peak_bytes = live_bytes;
  const NodeId target = std::max<NodeId>(
      config.coarse_floor,
      static_cast<NodeId>(std::min<std::int64_t>(
          static_cast<std::int64_t>(config.coarsening_factor) * k,
          static_cast<std::int64_t>(graph.num_nodes()))));

  LabelPropagationConfig lp;
  lp.seed = config.seed;
  // Cluster weight cap: keep coarse nodes small enough that a balanced
  // k-way partition of the coarsest graph remains feasible.
  const NodeWeight max_cluster_weight =
      std::max<NodeWeight>(1, graph.total_node_weight() / std::max<BlockId>(1, 4 * k));

  for (int level = 0; level < config.max_levels; ++level) {
    if (current->num_nodes() <= target) {
      break;
    }
    lp.seed = config.seed + static_cast<std::uint64_t>(level) + 1;
    const std::vector<NodeId> cluster =
        lp_clustering(*current, max_cluster_weight, lp);
    const NodeId num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
    if (num_clusters >= current->num_nodes() ||
        num_clusters < target / 2 + 1) {
      // No progress, or overshooting the target: stop coarsening here.
      if (num_clusters >= current->num_nodes()) {
        break;
      }
    }
    hierarchy.push_back(contract(*current, cluster));
    current = &hierarchy.back().coarse;
    live_bytes += current->memory_footprint_bytes();
    peak_bytes = std::max(peak_bytes, live_bytes);
  }

  // Balance bound per level: coarse nodes can be heavy, so a strict Lmax may
  // be unachievable at coarse levels (bin-packing granularity). The standard
  // remedy is Lmax + (max node weight) there; the finest level re-enforces
  // the strict bound, which is always achievable for unit node weights.
  const auto bound_for = [lmax](const CsrGraph& level_graph) {
    NodeWeight heaviest = 1;
    for (NodeId u = 0; u < level_graph.num_nodes(); ++u) {
      heaviest = std::max(heaviest, level_graph.node_weight(u));
    }
    return heaviest <= 1 ? lmax : lmax + heaviest;
  };

  // --- Initial partitioning ---------------------------------------------
  // Best of several seeds: the coarsest graph is small, so repeated initial
  // partitioning is cheap and buys noticeable quality (standard multilevel
  // practice).
  const NodeWeight coarsest_bound = bound_for(*current);
  LabelPropagationConfig refine;
  refine.max_iterations = config.refinement_iterations;

  std::vector<BlockId> partition;
  Cost best_cut = 0;
  for (int attempt = 0; attempt < config.initial_attempts; ++attempt) {
    const std::uint64_t seed = config.seed + static_cast<std::uint64_t>(attempt) * 101;
    std::vector<BlockId> candidate =
        bfs_band_partition(*current, k, coarsest_bound, seed);
    rebalance(*current, candidate, k, coarsest_bound);
    refine.seed = seed ^ 0x9e3779b9ULL;
    lp_refinement(*current, candidate, k, coarsest_bound, refine);
    const Cost cut = edge_cut(*current, candidate);
    if (attempt == 0 || cut < best_cut) {
      best_cut = cut;
      partition = std::move(candidate);
    }
  }
  refine.seed = config.seed ^ 0x9e3779b9ULL;

  // --- Uncoarsening -------------------------------------------------------
  for (std::size_t level = hierarchy.size(); level-- > 0;) {
    partition = project_partition(hierarchy[level].fine_to_coarse, partition);
    const CsrGraph& fine =
        (level == 0) ? graph : hierarchy[level - 1].coarse;
    const NodeWeight bound = bound_for(fine);
    refine.seed += 1;
    lp_refinement(fine, partition, k, bound, refine);
    rebalance(fine, partition, k, bound);
  }
  if (hierarchy.empty()) {
    // No uncoarsening happened: enforce the strict input-level bound now.
    rebalance(graph, partition, k, bound_for(graph));
  }

  MultilevelResult result;
  result.partition = std::move(partition);
  result.levels_used = static_cast<int>(hierarchy.size());
  result.peak_graph_bytes = peak_bytes;
  return result;
}

} // namespace oms
