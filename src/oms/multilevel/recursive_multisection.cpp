#include "oms/multilevel/recursive_multisection.hpp"

#include <algorithm>
#include <cmath>

#include "oms/multilevel/block_swap.hpp"
#include "oms/multilevel/contraction.hpp"
#include "oms/multilevel/label_propagation.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/util/assert.hpp"

namespace oms {
namespace {

struct Recursion {
  const CsrGraph& graph;
  const std::vector<std::int64_t> extents_td; // outermost level first
  MultilevelConfig ml;
  std::vector<BlockId>& mapping;

  /// Solve the subproblem over \p nodes (original ids): split into
  /// extents_td[depth] parts, recurse; leaves receive PEs starting at
  /// \p pe_offset.
  void solve(const std::vector<NodeId>& nodes, std::size_t depth, BlockId pe_offset) {
    if (depth == extents_td.size()) {
      for (const NodeId u : nodes) {
        mapping[u] = pe_offset;
      }
      return;
    }
    const auto parts = static_cast<BlockId>(extents_td[depth]);
    std::int64_t leaves_below = 1;
    for (std::size_t d = depth + 1; d < extents_td.size(); ++d) {
      leaves_below *= extents_td[d];
    }
    if (parts == 1) {
      solve(nodes, depth + 1, pe_offset);
      return;
    }

    const InducedSubgraph sub = induced_subgraph(graph, nodes);
    MultilevelConfig local = ml;
    local.seed = ml.seed + depth * 7919 + static_cast<std::uint64_t>(pe_offset);
    const MultilevelResult result = multilevel_partition(sub.graph, parts, local);

    std::vector<std::vector<NodeId>> buckets(static_cast<std::size_t>(parts));
    for (NodeId local_u = 0; local_u < sub.graph.num_nodes(); ++local_u) {
      buckets[static_cast<std::size_t>(result.partition[local_u])].push_back(
          sub.to_parent[local_u]);
    }
    for (BlockId b = 0; b < parts; ++b) {
      solve(buckets[static_cast<std::size_t>(b)], depth + 1,
            pe_offset + b * static_cast<BlockId>(leaves_below));
    }
  }
};

} // namespace

IntMapResult offline_recursive_multisection(const CsrGraph& graph,
                                            const SystemHierarchy& topology,
                                            const IntMapConfig& config) {
  const BlockId k = topology.num_pes();
  IntMapResult result;
  result.mapping.assign(graph.num_nodes(), kInvalidBlock);

  // Attenuate epsilon so that l nested (1 + eps_level) factors compound to at
  // most the requested (1 + eps) overall.
  const auto levels = static_cast<double>(topology.num_levels());
  MultilevelConfig ml = config.multilevel;
  ml.epsilon = std::pow(1.0 + config.multilevel.epsilon, 1.0 / levels) - 1.0;
  ml.seed = config.seed;

  std::vector<NodeId> all_nodes(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    all_nodes[u] = u;
  }
  Recursion recursion{graph, topology.extents_top_down(), ml, result.mapping};
  recursion.solve(all_nodes, 0, 0);

  // Ceil-rounding inside nested subproblems can overshoot the global bound
  // by a node or two; enforce it exactly, as the paper's tools do.
  const NodeWeight lmax = max_block_weight(graph.total_node_weight(), k,
                                           config.multilevel.epsilon);
  rebalance(graph, result.mapping, k, lmax);

  if (config.swap_refinement) {
    BlockSwapConfig swap;
    swap.max_rounds = config.swap_rounds;
    swap.seed = config.seed;
    swap_refine_mapping(graph, topology, result.mapping, swap);
  }

  // Peak memory: the full graph plus the largest induced subgraph chain is
  // dominated by ~2x the input CSR; report the input footprint as the floor.
  result.peak_graph_bytes = graph.memory_footprint_bytes() * 2;
  return result;
}

} // namespace oms
