/// \file multilevel_partitioner.hpp
/// \brief "KaMinParLite": an internal-memory multilevel k-way partitioner
///        serving as the paper's KaMinPar reference point — far better cuts
///        than any streaming algorithm, at far higher memory cost, with
///        balance always enforced.
///
/// Pipeline: size-constrained LP coarsening -> BFS-band initial k-way
/// partition on the coarsest graph -> uncoarsening with size-constrained LP
/// refinement and a greedy rebalancer at every level.
#pragma once

#include <cstdint>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/types.hpp"

namespace oms {

struct MultilevelConfig {
  double epsilon = 0.03;
  std::uint64_t seed = 1;
  /// Coarsening stops at max(coarse_floor, coarsening_factor * k) nodes.
  NodeId coarse_floor = 256;
  int coarsening_factor = 2;
  int refinement_iterations = 5;
  int max_levels = 40;
  /// Initial partitions tried on the coarsest graph (best cut wins).
  int initial_attempts = 3;
};

struct MultilevelResult {
  std::vector<BlockId> partition;
  int levels_used = 0;
  /// Peak of the summed CSR footprints alive at once — the reason streaming
  /// beats this approach on memory (Section 4.1).
  std::uint64_t peak_graph_bytes = 0;
};

/// Balanced k-way partition of \p graph (always satisfies the epsilon
/// constraint on return).
[[nodiscard]] MultilevelResult multilevel_partition(const CsrGraph& graph, BlockId k,
                                                    const MultilevelConfig& config);

/// BFS-band initial partitioning used on the coarsest level (exposed for
/// tests): walk the graph in BFS order filling blocks 0..k-1 up to Lmax.
[[nodiscard]] std::vector<BlockId> bfs_band_partition(const CsrGraph& graph, BlockId k,
                                                      NodeWeight max_block_weight,
                                                      std::uint64_t seed);

} // namespace oms
