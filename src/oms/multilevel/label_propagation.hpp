/// \file label_propagation.hpp
/// \brief Size-constrained label propagation — the workhorse of the
///        internal-memory baseline: used as clustering for coarsening and as
///        k-way refinement during uncoarsening (the same roles it plays in
///        KaMinPar, which this baseline stands in for).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/types.hpp"

namespace oms {

struct LabelPropagationConfig {
  int max_iterations = 5;
  std::uint64_t seed = 1;
};

/// Clustering for coarsening: every node starts as its own cluster; nodes
/// greedily join the neighboring cluster with the heaviest connection,
/// subject to cluster weights staying below \p max_cluster_weight.
/// Returns cluster ids renumbered densely to [0, num_clusters).
[[nodiscard]] std::vector<NodeId> lp_clustering(const CsrGraph& graph,
                                                NodeWeight max_cluster_weight,
                                                const LabelPropagationConfig& config);

/// k-way refinement: move nodes to the adjacent block with the highest
/// positive gain (connection-weight delta), subject to the balance
/// constraint max_block_weight. Modifies \p partition in place and returns
/// the number of nodes moved.
std::size_t lp_refinement(const CsrGraph& graph, std::vector<BlockId>& partition,
                          BlockId k, NodeWeight max_block_weight,
                          const LabelPropagationConfig& config);

/// Greedy balancer: while some block exceeds \p max_block_weight, move the
/// node with the smallest cut-increase out of the heaviest block into the
/// lightest block with room. Guarantees the balance constraint on return
/// (possible whenever k * max_block_weight >= c(V)).
void rebalance(const CsrGraph& graph, std::vector<BlockId>& partition, BlockId k,
               NodeWeight max_block_weight);

} // namespace oms
