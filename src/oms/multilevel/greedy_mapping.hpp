/// \file greedy_mapping.hpp
/// \brief Greedy one-to-one block-to-PE mapping construction in the spirit
///        of Mueller-Merbach / GreedyAllC (the paper's related work,
///        Section 2.2): place the most communication-heavy block first, then
///        repeatedly place the block with the strongest ties to already
///        placed blocks onto the free PE that minimizes the added cost.
///
/// This upgrades the "two-phase" baselines (partition with a
/// hierarchy-oblivious algorithm, then map block i -> PE i) from the identity
/// mapping the paper uses for Fennel to a proper constructive mapping — and
/// lets the benches quantify how much of OMS's advantage survives even
/// against that stronger two-phase pipeline.
#pragma once

#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/multilevel/block_swap.hpp"
#include "oms/types.hpp"

namespace oms {

/// Compute a block->PE permutation for the k blocks of \p partition.
/// Returns perm with perm[b] = PE hosting block b.
[[nodiscard]] std::vector<BlockId> greedy_block_to_pe(const BlockGraph& block_graph,
                                                      const SystemHierarchy& topology);

/// Convenience: build the block graph from \p partition, construct the greedy
/// permutation and rewrite the node mapping in place. Returns the permutation.
std::vector<BlockId> apply_greedy_mapping(const CsrGraph& graph,
                                          std::vector<BlockId>& partition,
                                          const SystemHierarchy& topology);

} // namespace oms
