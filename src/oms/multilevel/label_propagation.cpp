#include "oms/multilevel/label_propagation.hpp"

#include <algorithm>
#include <numeric>

#include "oms/util/assert.hpp"
#include "oms/util/random.hpp"

namespace oms {
namespace {

/// Sparse gather of connection weights keyed by label; reset via touched list.
class ConnectionGather {
public:
  explicit ConnectionGather(std::size_t universe) : weight_(universe, 0) {}

  void add(std::size_t label, EdgeWeight w) {
    if (weight_[label] == 0) {
      touched_.push_back(label);
    }
    weight_[label] += w;
  }

  [[nodiscard]] EdgeWeight get(std::size_t label) const { return weight_[label]; }
  [[nodiscard]] const std::vector<std::size_t>& touched() const { return touched_; }

  void clear() {
    for (const std::size_t label : touched_) {
      weight_[label] = 0;
    }
    touched_.clear();
  }

private:
  std::vector<EdgeWeight> weight_;
  std::vector<std::size_t> touched_;
};

} // namespace

std::vector<NodeId> lp_clustering(const CsrGraph& graph,
                                  NodeWeight max_cluster_weight,
                                  const LabelPropagationConfig& config) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> cluster(n);
  std::iota(cluster.begin(), cluster.end(), NodeId{0});
  std::vector<NodeWeight> cluster_weight(n);
  for (NodeId u = 0; u < n; ++u) {
    cluster_weight[u] = graph.node_weight(u);
  }

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(config.seed);
  ConnectionGather gather(n);

  for (int iteration = 0; iteration < config.max_iterations; ++iteration) {
    rng.shuffle(order);
    std::size_t moved = 0;
    for (const NodeId u : order) {
      const auto neigh = graph.neighbors(u);
      if (neigh.empty()) {
        continue;
      }
      const auto weights = graph.incident_weights(u);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        gather.add(cluster[neigh[i]], weights[i]);
      }
      const NodeId current = cluster[u];
      NodeId best = current;
      EdgeWeight best_connection = gather.get(current);
      for (const std::size_t candidate : gather.touched()) {
        const auto c = static_cast<NodeId>(candidate);
        if (c == current) {
          continue;
        }
        if (cluster_weight[c] + graph.node_weight(u) > max_cluster_weight) {
          continue;
        }
        const EdgeWeight connection = gather.get(candidate);
        if (connection > best_connection ||
            (connection == best_connection && c < best)) {
          best = c;
          best_connection = connection;
        }
      }
      gather.clear();
      if (best != current) {
        cluster_weight[current] -= graph.node_weight(u);
        cluster_weight[best] += graph.node_weight(u);
        cluster[u] = best;
        ++moved;
      }
    }
    if (moved == 0) {
      break;
    }
  }

  // Dense renumbering of surviving cluster ids.
  std::vector<NodeId> remap(n, kInvalidNode);
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    NodeId& slot = remap[cluster[u]];
    if (slot == kInvalidNode) {
      slot = next++;
    }
    cluster[u] = slot;
  }
  return cluster;
}

std::size_t lp_refinement(const CsrGraph& graph, std::vector<BlockId>& partition,
                          BlockId k, NodeWeight max_block_weight,
                          const LabelPropagationConfig& config) {
  const NodeId n = graph.num_nodes();
  OMS_ASSERT(partition.size() == n);
  std::vector<NodeWeight> block_weight(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < n; ++u) {
    block_weight[static_cast<std::size_t>(partition[u])] += graph.node_weight(u);
  }

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(config.seed);
  ConnectionGather gather(static_cast<std::size_t>(k));
  std::size_t total_moved = 0;

  for (int iteration = 0; iteration < config.max_iterations; ++iteration) {
    rng.shuffle(order);
    std::size_t moved = 0;
    for (const NodeId u : order) {
      const auto neigh = graph.neighbors(u);
      if (neigh.empty()) {
        continue;
      }
      const auto weights = graph.incident_weights(u);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        gather.add(static_cast<std::size_t>(partition[neigh[i]]), weights[i]);
      }
      const auto current = static_cast<std::size_t>(partition[u]);
      const EdgeWeight internal = gather.get(current);
      std::size_t best = current;
      EdgeWeight best_connection = internal;
      NodeWeight best_weight = block_weight[current];
      for (const std::size_t candidate : gather.touched()) {
        if (candidate == current) {
          continue;
        }
        if (block_weight[candidate] + graph.node_weight(u) > max_block_weight) {
          continue;
        }
        const EdgeWeight connection = gather.get(candidate);
        // Strict gain, or zero gain towards a lighter block (helps balance
        // without hurting the cut).
        if (connection > best_connection ||
            (connection == best_connection &&
             block_weight[candidate] < best_weight)) {
          best = candidate;
          best_connection = connection;
          best_weight = block_weight[candidate];
        }
      }
      gather.clear();
      if (best != current) {
        block_weight[current] -= graph.node_weight(u);
        block_weight[best] += graph.node_weight(u);
        partition[u] = static_cast<BlockId>(best);
        ++moved;
      }
    }
    total_moved += moved;
    if (moved == 0) {
      break;
    }
  }
  return total_moved;
}

void rebalance(const CsrGraph& graph, std::vector<BlockId>& partition, BlockId k,
               NodeWeight max_block_weight) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeWeight> block_weight(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < n; ++u) {
    block_weight[static_cast<std::size_t>(partition[u])] += graph.node_weight(u);
  }

  // Collect nodes of overweight blocks, lightest first, and push them to the
  // lightest block that can take them.
  for (BlockId b = 0; b < k; ++b) {
    if (block_weight[static_cast<std::size_t>(b)] <= max_block_weight) {
      continue;
    }
    std::vector<NodeId> members;
    for (NodeId u = 0; u < n; ++u) {
      if (partition[u] == b) {
        members.push_back(u);
      }
    }
    // Moving low-degree nodes first tends to cost the least cut.
    std::sort(members.begin(), members.end(), [&](NodeId a, NodeId c) {
      return graph.degree(a) < graph.degree(c);
    });
    for (const NodeId u : members) {
      if (block_weight[static_cast<std::size_t>(b)] <= max_block_weight) {
        break;
      }
      BlockId target = kInvalidBlock;
      for (BlockId t = 0; t < k; ++t) {
        if (t == b) {
          continue;
        }
        if (block_weight[static_cast<std::size_t>(t)] + graph.node_weight(u) >
            max_block_weight) {
          continue;
        }
        if (target == kInvalidBlock ||
            block_weight[static_cast<std::size_t>(t)] <
                block_weight[static_cast<std::size_t>(target)]) {
          target = t;
        }
      }
      OMS_ASSERT_MSG(target != kInvalidBlock,
                     "rebalance impossible: total capacity below total weight");
      block_weight[static_cast<std::size_t>(b)] -= graph.node_weight(u);
      block_weight[static_cast<std::size_t>(target)] += graph.node_weight(u);
      partition[u] = target;
    }
  }
}

} // namespace oms
