#include "oms/multilevel/label_propagation.hpp"

#include <algorithm>
#include <numeric>

#include "oms/multilevel/inner_kernels.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/random.hpp"

namespace oms {

std::vector<NodeId> lp_clustering(const CsrGraph& graph,
                                  NodeWeight max_cluster_weight,
                                  const LabelPropagationConfig& config) {
  return lp_cluster_impl(graph, max_cluster_weight, config.max_iterations,
                         config.seed);
}

std::size_t lp_refinement(const CsrGraph& graph, std::vector<BlockId>& partition,
                          BlockId k, NodeWeight max_block_weight,
                          const LabelPropagationConfig& config) {
  const NodeId n = graph.num_nodes();
  OMS_ASSERT(partition.size() == n);
  std::vector<NodeWeight> block_weight(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < n; ++u) {
    block_weight[static_cast<std::size_t>(partition[u])] += graph.node_weight(u);
  }

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(config.seed);
  ConnectionGather gather(static_cast<std::size_t>(k));
  std::size_t total_moved = 0;

  for (int iteration = 0; iteration < config.max_iterations; ++iteration) {
    rng.shuffle(order);
    std::size_t moved = 0;
    for (const NodeId u : order) {
      const auto neigh = graph.neighbors(u);
      if (neigh.empty()) {
        continue;
      }
      const auto weights = graph.incident_weights(u);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        gather.add(static_cast<std::size_t>(partition[neigh[i]]), weights[i]);
      }
      const auto current = static_cast<std::size_t>(partition[u]);
      const EdgeWeight internal = gather.get(current);
      const NodeWeight u_weight = graph.node_weight(u);
      std::size_t best = current;
      EdgeWeight best_connection = internal;
      // Post-move weight of the best option so far: staying leaves the
      // current block at its full weight (u included); moving to a candidate
      // puts u's weight there. Comparing both sides post-move makes the
      // zero-gain tiebreak actually balance-improving — the old code
      // compared the candidate *without* u against the current block *with*
      // u, firing "towards a lighter block" on blocks that end up heavier.
      NodeWeight best_weight = block_weight[current];
      for (const std::size_t candidate : gather.touched()) {
        if (candidate == current) {
          continue;
        }
        const NodeWeight candidate_weight = block_weight[candidate] + u_weight;
        if (candidate_weight > max_block_weight) {
          continue;
        }
        const EdgeWeight connection = gather.get(candidate);
        // Strict gain, or zero gain towards a lighter (post-move) block
        // (helps balance without hurting the cut).
        if (connection > best_connection ||
            (connection == best_connection && candidate_weight < best_weight)) {
          best = candidate;
          best_connection = connection;
          best_weight = candidate_weight;
        }
      }
      gather.clear();
      if (best != current) {
        block_weight[current] -= u_weight;
        block_weight[best] += u_weight;
        partition[u] = static_cast<BlockId>(best);
        ++moved;
      }
    }
    total_moved += moved;
    if (moved == 0) {
      break;
    }
  }
  return total_moved;
}

void rebalance(const CsrGraph& graph, std::vector<BlockId>& partition, BlockId k,
               NodeWeight max_block_weight) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeWeight> block_weight(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < n; ++u) {
    block_weight[static_cast<std::size_t>(partition[u])] += graph.node_weight(u);
  }

  // Collect nodes of overweight blocks, lightest first, and push them to the
  // lightest block that can take them.
  for (BlockId b = 0; b < k; ++b) {
    if (block_weight[static_cast<std::size_t>(b)] <= max_block_weight) {
      continue;
    }
    std::vector<NodeId> members;
    for (NodeId u = 0; u < n; ++u) {
      if (partition[u] == b) {
        members.push_back(u);
      }
    }
    // Moving low-degree nodes first tends to cost the least cut.
    std::sort(members.begin(), members.end(), [&](NodeId a, NodeId c) {
      return graph.degree(a) < graph.degree(c);
    });
    for (const NodeId u : members) {
      if (block_weight[static_cast<std::size_t>(b)] <= max_block_weight) {
        break;
      }
      BlockId target = kInvalidBlock;
      for (BlockId t = 0; t < k; ++t) {
        if (t == b) {
          continue;
        }
        if (block_weight[static_cast<std::size_t>(t)] + graph.node_weight(u) >
            max_block_weight) {
          continue;
        }
        if (target == kInvalidBlock ||
            block_weight[static_cast<std::size_t>(t)] <
                block_weight[static_cast<std::size_t>(target)]) {
          target = t;
        }
      }
      OMS_ASSERT_MSG(target != kInvalidBlock,
                     "rebalance impossible: total capacity below total weight");
      block_weight[static_cast<std::size_t>(b)] -= graph.node_weight(u);
      block_weight[static_cast<std::size_t>(target)] += graph.node_weight(u);
      partition[u] = target;
    }
  }
}

} // namespace oms
