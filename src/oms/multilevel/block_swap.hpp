/// \file block_swap.hpp
/// \brief Pairwise block-swap local search on the mapping objective J —
///        the Brandfass-style refinement the paper's offline mapping tools
///        finish with. Works on the contracted block communication graph,
///        so each swap evaluation costs O(deg of the two blocks).
#pragma once

#include <cstdint>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/types.hpp"

namespace oms {

struct BlockSwapConfig {
  int max_rounds = 10;
  std::uint64_t seed = 1;
};

/// Aggregated communication between blocks of a partition: entry (b, c, w)
/// means blocks b and c exchange total volume w (each unordered pair once).
struct BlockGraph {
  BlockId k = 0;
  std::vector<std::vector<std::pair<BlockId, EdgeWeight>>> adjacency;

  [[nodiscard]] static BlockGraph build(const CsrGraph& graph,
                                        const std::vector<BlockId>& partition,
                                        BlockId k);
};

/// Hill-climb the PE permutation of the blocks: try swapping the PEs of block
/// pairs that communicate, accept strict improvements of J, stop after a full
/// round without improvement (or max_rounds). The node mapping is updated in
/// place. Returns the number of accepted swaps.
std::size_t swap_refine_mapping(const CsrGraph& graph, const SystemHierarchy& topology,
                                std::vector<BlockId>& mapping,
                                const BlockSwapConfig& config);

} // namespace oms
