#include "oms/multilevel/block_swap.hpp"

#include <unordered_map>

#include "oms/util/assert.hpp"
#include "oms/util/random.hpp"

namespace oms {

BlockGraph BlockGraph::build(const CsrGraph& graph,
                             const std::vector<BlockId>& partition, BlockId k) {
  OMS_ASSERT(partition.size() == graph.num_nodes());
  BlockGraph bg;
  bg.k = k;
  bg.adjacency.resize(static_cast<std::size_t>(k));

  std::vector<std::unordered_map<BlockId, EdgeWeight>> accum(
      static_cast<std::size_t>(k));
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    const BlockId bu = partition[u];
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const BlockId bv = partition[neigh[i]];
      if (bu < bv) { // each fine edge once, each unordered block pair once
        accum[static_cast<std::size_t>(bu)][bv] += weights[i];
      }
    }
  }
  for (BlockId b = 0; b < k; ++b) {
    for (const auto& [c, w] : accum[static_cast<std::size_t>(b)]) {
      bg.adjacency[static_cast<std::size_t>(b)].emplace_back(c, w);
      bg.adjacency[static_cast<std::size_t>(c)].emplace_back(b, w);
    }
  }
  return bg;
}

namespace {

/// Cost change of block x's incident communication if x moved from PE
/// perm[x] to PE new_pe (partner y excluded: its term is swap-invariant
/// because D is symmetric).
[[nodiscard]] std::int64_t move_delta(const BlockGraph& bg,
                                      const SystemHierarchy& topology,
                                      const std::vector<BlockId>& perm, BlockId x,
                                      BlockId new_pe, BlockId partner) {
  std::int64_t delta = 0;
  for (const auto& [c, w] : bg.adjacency[static_cast<std::size_t>(x)]) {
    if (c == partner) {
      continue;
    }
    delta += static_cast<std::int64_t>(w) *
             (topology.distance(new_pe, perm[static_cast<std::size_t>(c)]) -
              topology.distance(perm[static_cast<std::size_t>(x)],
                                perm[static_cast<std::size_t>(c)]));
  }
  return delta;
}

} // namespace

std::size_t swap_refine_mapping(const CsrGraph& graph, const SystemHierarchy& topology,
                                std::vector<BlockId>& mapping,
                                const BlockSwapConfig& config) {
  const BlockId k = topology.num_pes();
  const BlockGraph bg = BlockGraph::build(graph, mapping, k);

  // perm[b] = PE currently hosting block b (blocks are named by their
  // original PE, so perm starts as the identity).
  std::vector<BlockId> perm(static_cast<std::size_t>(k));
  for (BlockId b = 0; b < k; ++b) {
    perm[static_cast<std::size_t>(b)] = b;
  }

  Rng rng(config.seed);
  std::size_t accepted = 0;
  for (int round = 0; round < config.max_rounds; ++round) {
    std::size_t round_accepted = 0;

    const auto try_swap = [&](BlockId x, BlockId y) {
      if (x == y) {
        return;
      }
      const std::int64_t delta =
          move_delta(bg, topology, perm, x, perm[static_cast<std::size_t>(y)], y) +
          move_delta(bg, topology, perm, y, perm[static_cast<std::size_t>(x)], x);
      if (delta < 0) {
        std::swap(perm[static_cast<std::size_t>(x)],
                  perm[static_cast<std::size_t>(y)]);
        ++round_accepted;
      }
    };

    // Communicating pairs are the most promising candidates (Brandfass'
    // "only consider pairs that can reduce the objective").
    for (BlockId b = 0; b < k; ++b) {
      for (const auto& [c, w] : bg.adjacency[static_cast<std::size_t>(b)]) {
        if (b < c) {
          try_swap(b, c);
        }
      }
    }
    // A sprinkle of random pairs escapes purely local structure.
    for (BlockId i = 0; i < k; ++i) {
      try_swap(static_cast<BlockId>(rng.next_below(static_cast<std::uint64_t>(k))),
               static_cast<BlockId>(rng.next_below(static_cast<std::uint64_t>(k))));
    }

    accepted += round_accepted;
    if (round_accepted == 0) {
      break;
    }
  }

  for (auto& pe : mapping) {
    pe = perm[static_cast<std::size_t>(pe)];
  }
  return accepted;
}

} // namespace oms
