/// \file buffer_multilevel.hpp
/// \brief HeiStream-proper inner engine for the buffered streaming core: run
///        a full multilevel scheme (LP-clustering coarsening, best-of-seeds
///        initial partitioning, projection + LP refinement back down) over
///        one buffer-local model graph per buffer.
///
/// The model graph is BufferedPartitioner's arena-backed buffer-local CSR:
/// an intra-buffer adjacency plus, per node, block-aggregated "super-edges"
/// toward the already-committed rest of the graph. Unlike HeiStream's
/// formulation, committed blocks are NOT materialized as k fixed super-node
/// vertices; instead the per-node block-affinity lists are coarsened
/// alongside the graph (summed per coarse node), which keeps every level's
/// size independent of k and lets clustering merge on intra edges only.
///
/// The engine object persists across buffers and reuses all of its level
/// arenas, so steady-state processing allocates nothing. All randomness is
/// derived from (config seed, caller-provided salt), making results
/// identical across the in-memory, disk-sequential and disk-pipelined entry
/// points, which feed identical buffers in identical order.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "oms/multilevel/inner_kernels.hpp"
#include "oms/types.hpp"

namespace oms {

/// Read-only view of one buffer's model graph, pointing into the buffered
/// core's arenas. \p intra_weight may be null (all intra arcs weight 1).
struct BufferModelView {
  std::uint32_t num_nodes = 0;
  const std::uint32_t* intra_offset = nullptr; // num_nodes + 1
  const std::uint32_t* intra_target = nullptr; // local node indices, symmetric
  const EdgeWeight* intra_weight = nullptr;    // null => unit weights
  const NodeWeight* node_weight = nullptr;     // num_nodes
  const std::uint32_t* super_offset = nullptr; // num_nodes + 1
  const BlockId* super_block = nullptr;        // aggregated per-block arcs
  const EdgeWeight* super_weight = nullptr;
};

struct BufferMultilevelConfig {
  /// Stop coarsening once a level has at most max(coarse_floor,
  /// coarsening_factor * k) nodes.
  NodeId coarse_floor = 128;
  int coarsening_factor = 2;
  int max_levels = 20;
  /// Clustering sweeps per coarsening level.
  int clustering_iterations = 1;
  /// Independent BFS-band seeds tried at the coarsest level of the *first*
  /// buffer (the projected incoming greedy partition is always an additional
  /// candidate, and the only one on later buffers).
  int initial_attempts = 3;
  /// Per-node visit budget of the active-set refinement on each level.
  int refinement_iterations = 2;
  std::uint64_t seed = 1;
};

/// Multilevel improvement engine over buffer-local models. One instance per
/// BufferedPartitioner; improve() is called once per buffer.
class BufferMultilevel {
public:
  BufferMultilevel(BlockId k, const BufferMultilevelConfig& config);

  /// Improve \p partition (the greedy placement of this buffer, one entry per
  /// model node, all in [0, k)) in place and update \p block_weight (global
  /// per-block weights, buffer contribution included) to match.
  ///
  /// \param lmax  strict per-block weight bound at the finest level; coarse
  ///              levels relax it by their heaviest node (bin packing).
  /// \param dist  optional k*k row-major block distance matrix. When null the
  ///              engine minimizes the edge-cut objective; when set it
  ///              minimizes the process-mapping objective J (connection
  ///              weights scored by layer distance).
  /// \param salt  per-buffer value (e.g. the buffer index) mixed into the
  ///              seed so every buffer gets fresh but reproducible RNG.
  ///
  /// The result is never worse than the incoming partition under the active
  /// objective (the engine falls back to the input if its own result loses).
  void improve(const BufferModelView& model, std::span<BlockId> partition,
               std::span<NodeWeight> block_weight, NodeWeight lmax,
               const std::int64_t* dist, std::uint64_t salt);

  /// Checkpoint support: the adaptive backoff counters are the engine's only
  /// cross-buffer state (everything else is a per-buffer arena); restoring
  /// them makes a resumed stream decide identically to an uninterrupted one.
  [[nodiscard]] std::pair<std::int64_t, std::uint64_t> backoff_state() const noexcept {
    return {fail_streak_, skip_until_};
  }
  void restore_backoff(std::int64_t fail_streak, std::uint64_t skip_until) noexcept {
    fail_streak_ = static_cast<int>(fail_streak);
    skip_until_ = skip_until;
  }

private:
  /// One coarse level's graph + coarsened affinity lists (arena, reused).
  struct Level {
    std::uint32_t n = 0;
    std::vector<std::uint32_t> xadj;
    std::vector<std::uint32_t> adjncy;
    std::vector<EdgeWeight> adjwgt;
    std::vector<NodeWeight> vwgt;
    std::vector<std::uint32_t> aff_offset;
    std::vector<BlockId> aff_block;
    std::vector<EdgeWeight> aff_weight;
    std::vector<NodeId> cluster_of_fine; // finer level node -> this level
  };

  /// Adapter satisfying the inner_kernels graph concept over raw arrays.
  struct GraphView {
    std::uint32_t n;
    const std::uint32_t* xadj;
    const std::uint32_t* adjncy;
    const EdgeWeight* adjwgt; // null => unit
    const NodeWeight* vwgt;

    struct ArcWeights {
      const EdgeWeight* w;
      EdgeWeight operator[](std::size_t i) const { return w != nullptr ? w[i] : 1; }
    };

    [[nodiscard]] NodeId num_nodes() const { return n; }
    [[nodiscard]] NodeWeight node_weight(NodeId u) const { return vwgt[u]; }
    [[nodiscard]] std::span<const std::uint32_t> neighbors(NodeId u) const {
      return {adjncy + xadj[u], xadj[u + 1] - xadj[u]};
    }
    [[nodiscard]] ArcWeights incident_weights(NodeId u) const {
      return {adjwgt != nullptr ? adjwgt + xadj[u] : nullptr};
    }
  };

  struct AffinityView {
    const std::uint32_t* offset;
    const BlockId* block;
    const EdgeWeight* weight;
  };

  [[nodiscard]] static GraphView view_of(const Level& level);
  [[nodiscard]] static AffinityView affinity_of(const Level& level);

  /// Aggregate (graph + affinities + node weights) of \p fine under
  /// \p cluster into \p out; also projects \p part (a partition of the fine
  /// level) to the coarse level by weight-plurality vote into next_part_.
  void contract_level(const GraphView& fine, const AffinityView& aff,
                      const std::vector<NodeId>& cluster, NodeId num_clusters,
                      const std::vector<BlockId>& part, Level& out);

  /// Recompute cur_weight_ = base committed weights + this level's
  /// contribution under \p part.
  void reset_weights(const GraphView& graph, const std::vector<BlockId>& part);

  /// Active-set LP refinement over one level: seeded with the (shuffled)
  /// boundary nodes, a node re-enters when an in-level neighbor moves, and no
  /// node is visited more than refinement_iterations times. Moves respect
  /// cur_weight_ <= bound. Cut mode (dist == null) maximizes connection with
  /// the zero-gain lighter-block tiebreak; J mode scores all k blocks by
  /// sum(conn[b'] * (dist_max - dist[b][b'])).
  void refine_level(const GraphView& graph, const AffinityView& aff,
                    std::vector<BlockId>& part, NodeWeight bound,
                    const std::int64_t* dist, Rng& rng);

  /// Objective value of \p part on one level: edge cut (plus cut affinity
  /// weight) in cut mode, J (distance-weighted connection volume) in J mode.
  /// Intra arcs are symmetric and counted once (u < v). Lower is better.
  [[nodiscard]] Cost model_cost(const GraphView& graph, const AffinityView& aff,
                                const std::vector<BlockId>& part,
                                const std::int64_t* dist) const;

  /// model_cost for two partitions in one traversal (the commit decision
  /// needs both, and the model reads dominate the arithmetic).
  [[nodiscard]] std::pair<Cost, Cost> model_cost_pair(
      const GraphView& graph, const AffinityView& aff,
      const std::vector<BlockId>& part_a, const std::vector<BlockId>& part_b,
      const std::int64_t* dist) const;

  BlockId k_;
  BufferMultilevelConfig config_;
  std::int64_t dist_max_ = 0; // max entry of dist, valid while dist != null

  // Adaptive backoff over the stream: consecutive buffers whose V-cycle
  // failed to substantively beat the lp-refined incoming partition, and the
  // buffer index (salt) before which improve() returns immediately.
  int fail_streak_ = 0;
  std::uint64_t skip_until_ = 0;

  std::vector<Level> levels_; // grows to the deepest hierarchy seen, reused
  std::vector<NodeWeight> base_;       // committed weights minus this buffer
  std::vector<NodeWeight> cur_weight_; // base_ + current level contribution
  std::vector<BlockId> cur_part_;      // partition at the current level
  std::vector<BlockId> next_part_;     // projection scratch
  std::vector<BlockId> cand_part_;     // initial-partitioning candidate
  std::vector<BlockId> best_part_;     // best coarsest candidate
  std::vector<BlockId> incoming_;      // input partition (never-worse fallback)
  std::vector<std::uint32_t> order_;   // refinement seed order (boundary nodes)
  std::vector<std::uint32_t> queue_;   // active-set ring buffer
  std::vector<std::uint8_t> in_queue_;
  std::vector<std::uint8_t> visits_left_; // per-node refinement budget
  std::vector<std::uint32_t> member_offset_; // contraction buckets
  std::vector<std::uint32_t> member_cursor_;
  std::vector<std::uint32_t> member_;
  ConnectionGather gather_nodes_;  // keyed by coarse node id
  ConnectionGather gather_blocks_; // keyed by block id
};

} // namespace oms
