#include "oms/multilevel/contraction.hpp"

#include <algorithm>

#include "oms/graph/graph_builder.hpp"
#include "oms/util/assert.hpp"

namespace oms {

Contraction contract(const CsrGraph& graph, const std::vector<NodeId>& cluster) {
  const NodeId n = graph.num_nodes();
  OMS_ASSERT(cluster.size() == n);
  NodeId num_coarse = 0;
  for (const NodeId c : cluster) {
    num_coarse = std::max(num_coarse, c + 1);
  }

  std::vector<NodeWeight> coarse_weight(num_coarse, 0);
  for (NodeId u = 0; u < n; ++u) {
    coarse_weight[cluster[u]] += graph.node_weight(u);
  }

  GraphBuilder builder(num_coarse);
  for (NodeId c = 0; c < num_coarse; ++c) {
    builder.set_node_weight(c, coarse_weight[c]);
  }
  for (NodeId u = 0; u < n; ++u) {
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    const NodeId cu = cluster[u];
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const NodeId cv = cluster[neigh[i]];
      // Each fine edge is seen from both endpoints; keep one direction so
      // the merged coarse weight equals the sum of crossing fine weights.
      if (u < neigh[i] && cu != cv) {
        builder.add_edge(cu, cv, weights[i]);
      }
    }
  }

  Contraction result{std::move(builder).build(), cluster};
  return result;
}

std::vector<BlockId> project_partition(const std::vector<NodeId>& fine_to_coarse,
                                       const std::vector<BlockId>& coarse_partition) {
  std::vector<BlockId> fine(fine_to_coarse.size());
  for (std::size_t u = 0; u < fine_to_coarse.size(); ++u) {
    fine[u] = coarse_partition[fine_to_coarse[u]];
  }
  return fine;
}

InducedSubgraph induced_subgraph(const CsrGraph& graph,
                                 const std::vector<NodeId>& nodes) {
  std::vector<NodeId> to_local(graph.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    OMS_ASSERT_MSG(to_local[nodes[i]] == kInvalidNode, "duplicate node in subset");
    to_local[nodes[i]] = static_cast<NodeId>(i);
  }

  GraphBuilder builder(static_cast<NodeId>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId u = nodes[i];
    builder.set_node_weight(static_cast<NodeId>(i), graph.node_weight(u));
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    for (std::size_t j = 0; j < neigh.size(); ++j) {
      const NodeId local_v = to_local[neigh[j]];
      if (local_v != kInvalidNode && static_cast<NodeId>(i) < local_v) {
        builder.add_edge(static_cast<NodeId>(i), local_v, weights[j]);
      }
    }
  }
  return InducedSubgraph{std::move(builder).build(), nodes};
}

} // namespace oms
