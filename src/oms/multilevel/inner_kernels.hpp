/// \file inner_kernels.hpp
/// \brief The multilevel module's inner algorithms as templates over a
///        minimal graph concept, so the same code runs on a full CsrGraph
///        (multilevel_partition) and on the buffered core's arena-backed
///        buffer-local model (BufferMultilevel) without copying either into
///        the other's representation.
///
/// Graph concept:
///   NodeId num_nodes();
///   NodeWeight node_weight(NodeId u);
///   <range of NodeId> neighbors(NodeId u);
///   <indexable by arc position> incident_weights(NodeId u);
#pragma once

#include <cstdint>
#include <numeric>
#include <queue>
#include <span>
#include <vector>

#include "oms/types.hpp"
#include "oms/util/random.hpp"

namespace oms {

/// Sparse gather of connection weights keyed by label; reset via touched list.
class ConnectionGather {
public:
  explicit ConnectionGather(std::size_t universe) : weight_(universe, 0) {}

  void add(std::size_t label, EdgeWeight w) {
    if (weight_[label] == 0) {
      touched_.push_back(label);
    }
    weight_[label] += w;
  }

  [[nodiscard]] EdgeWeight get(std::size_t label) const { return weight_[label]; }
  [[nodiscard]] const std::vector<std::size_t>& touched() const { return touched_; }

  void clear() {
    for (const std::size_t label : touched_) {
      weight_[label] = 0;
    }
    touched_.clear();
  }

  /// Widen the universe (the buffered engine reuses one gather across buffers
  /// whose sizes differ). Keeps the all-zero invariant.
  void ensure_universe(std::size_t universe) {
    if (weight_.size() < universe) {
      weight_.resize(universe, 0);
    }
  }

private:
  std::vector<EdgeWeight> weight_;
  std::vector<std::size_t> touched_;
};

/// Size-constrained label-propagation clustering (the coarsening workhorse):
/// every node starts as its own cluster; nodes greedily join the neighboring
/// cluster with the heaviest connection, subject to the weight cap. Returns
/// cluster ids renumbered densely to [0, num_clusters).
template <typename Graph>
[[nodiscard]] std::vector<NodeId> lp_cluster_impl(const Graph& graph,
                                                  NodeWeight max_cluster_weight,
                                                  int max_iterations,
                                                  std::uint64_t seed) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> cluster(n);
  std::iota(cluster.begin(), cluster.end(), NodeId{0});
  std::vector<NodeWeight> cluster_weight(n);
  for (NodeId u = 0; u < n; ++u) {
    cluster_weight[u] = graph.node_weight(u);
  }

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(seed);
  ConnectionGather gather(n);

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    rng.shuffle(order);
    std::size_t moved = 0;
    for (const NodeId u : order) {
      const auto neigh = graph.neighbors(u);
      if (neigh.empty()) {
        continue;
      }
      const auto weights = graph.incident_weights(u);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        gather.add(cluster[neigh[i]], weights[i]);
      }
      const NodeId current = cluster[u];
      NodeId best = current;
      EdgeWeight best_connection = gather.get(current);
      for (const std::size_t candidate : gather.touched()) {
        const auto c = static_cast<NodeId>(candidate);
        if (c == current) {
          continue;
        }
        if (cluster_weight[c] + graph.node_weight(u) > max_cluster_weight) {
          continue;
        }
        const EdgeWeight connection = gather.get(candidate);
        if (connection > best_connection ||
            (connection == best_connection && c < best)) {
          best = c;
          best_connection = connection;
        }
      }
      gather.clear();
      if (best != current) {
        cluster_weight[current] -= graph.node_weight(u);
        cluster_weight[best] += graph.node_weight(u);
        cluster[u] = best;
        ++moved;
      }
    }
    if (moved == 0) {
      break;
    }
  }

  // Dense renumbering of surviving cluster ids.
  std::vector<NodeId> remap(n, kInvalidNode);
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    NodeId& slot = remap[cluster[u]];
    if (slot == kInvalidNode) {
      slot = next++;
    }
    cluster[u] = slot;
  }
  return cluster;
}

/// BFS-band initial partitioning: walk the graph in BFS order filling blocks
/// 0..k-1 up to the capacity left by \p base_block_weight (weight already
/// committed to each block from outside the graph; empty = all zero, the
/// classic from-scratch case). Returns an empty partition for n == 0 — the
/// empty graph must not roll the RNG (next_below(0) is UB).
template <typename Graph>
[[nodiscard]] std::vector<BlockId> bfs_band_impl(
    const Graph& graph, BlockId k, NodeWeight max_block_weight,
    std::span<const NodeWeight> base_block_weight, std::uint64_t seed) {
  const NodeId n = graph.num_nodes();
  std::vector<BlockId> partition(n, kInvalidBlock);
  if (n == 0) {
    return partition;
  }
  std::vector<bool> visited(n, false);
  std::vector<NodeWeight> block_weight(base_block_weight.begin(),
                                       base_block_weight.end());
  block_weight.resize(static_cast<std::size_t>(k), 0);

  Rng rng(seed);
  BlockId current = 0;
  const auto place = [&](NodeId u) {
    // Advance to the next block with room; wrap once if needed.
    for (BlockId probes = 0; probes < k; ++probes) {
      const BlockId b = (current + probes) % k;
      if (block_weight[static_cast<std::size_t>(b)] + graph.node_weight(u) <=
          max_block_weight) {
        current = b;
        block_weight[static_cast<std::size_t>(b)] += graph.node_weight(u);
        partition[u] = b;
        return;
      }
    }
    // All full (only possible with eps == 0 and awkward weights): lightest.
    BlockId lightest = 0;
    for (BlockId b = 1; b < k; ++b) {
      if (block_weight[static_cast<std::size_t>(b)] <
          block_weight[static_cast<std::size_t>(lightest)]) {
        lightest = b;
      }
    }
    block_weight[static_cast<std::size_t>(lightest)] += graph.node_weight(u);
    partition[u] = lightest;
  };

  std::queue<NodeId> queue;
  const auto start = static_cast<NodeId>(rng.next_below(n));
  for (NodeId offset = 0; offset < n; ++offset) {
    const NodeId root = (start + offset) % n;
    if (visited[root]) {
      continue;
    }
    visited[root] = true;
    queue.push(root);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      place(u);
      for (const NodeId v : graph.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push(v);
        }
      }
    }
  }
  return partition;
}

} // namespace oms
