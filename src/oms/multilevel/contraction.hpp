/// \file contraction.hpp
/// \brief Graph contraction and partition projection for the multilevel
///        baseline: clusters become coarse nodes (weights summed), parallel
///        coarse edges merge (weights summed), intra-cluster edges vanish.
#pragma once

#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/types.hpp"

namespace oms {

/// Result of contracting a graph by a cluster map.
struct Contraction {
  CsrGraph coarse;
  std::vector<NodeId> fine_to_coarse; ///< size n_fine
};

/// \param cluster dense cluster ids in [0, num_clusters), e.g. from
///        lp_clustering.
[[nodiscard]] Contraction contract(const CsrGraph& graph,
                                   const std::vector<NodeId>& cluster);

/// Pull a coarse partition back to the finer level.
[[nodiscard]] std::vector<BlockId> project_partition(
    const std::vector<NodeId>& fine_to_coarse,
    const std::vector<BlockId>& coarse_partition);

/// Induced subgraph over \p nodes (used by the offline recursive
/// multi-section to recurse into a block). Preserves node and edge weights.
struct InducedSubgraph {
  CsrGraph graph;
  std::vector<NodeId> to_parent; ///< new id -> id in the parent graph
};

[[nodiscard]] InducedSubgraph induced_subgraph(const CsrGraph& graph,
                                               const std::vector<NodeId>& nodes);

} // namespace oms
