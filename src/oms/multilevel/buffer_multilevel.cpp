#include "oms/multilevel/buffer_multilevel.hpp"

#include <algorithm>
#include <numeric>

#include "oms/telemetry/metrics.hpp"
#include "oms/util/assert.hpp"

namespace oms {

BufferMultilevel::BufferMultilevel(BlockId k, const BufferMultilevelConfig& config)
    : k_(k),
      config_(config),
      base_(static_cast<std::size_t>(k), 0),
      cur_weight_(static_cast<std::size_t>(k), 0),
      gather_nodes_(0),
      gather_blocks_(static_cast<std::size_t>(k)) {
  OMS_ASSERT(k >= 1);
}

BufferMultilevel::GraphView BufferMultilevel::view_of(const Level& level) {
  return {level.n, level.xadj.data(), level.adjncy.data(), level.adjwgt.data(),
          level.vwgt.data()};
}

BufferMultilevel::AffinityView BufferMultilevel::affinity_of(const Level& level) {
  return {level.aff_offset.data(), level.aff_block.data(),
          level.aff_weight.data()};
}

void BufferMultilevel::contract_level(const GraphView& fine,
                                      const AffinityView& aff,
                                      const std::vector<NodeId>& cluster,
                                      NodeId num_clusters,
                                      const std::vector<BlockId>& part,
                                      Level& out) {
  const std::uint32_t n = fine.n;

  // Bucket fine nodes by coarse id so each coarse node's aggregates come from
  // one contiguous member scan.
  member_offset_.assign(num_clusters + 1, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    ++member_offset_[cluster[u] + 1];
  }
  for (NodeId c = 0; c < num_clusters; ++c) {
    member_offset_[c + 1] += member_offset_[c];
  }
  member_cursor_.assign(member_offset_.begin(), member_offset_.end());
  member_.resize(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    member_[member_cursor_[cluster[u]]++] = u;
  }

  out.n = num_clusters;
  out.xadj.resize(num_clusters + 1);
  out.xadj[0] = 0;
  out.adjncy.clear();
  out.adjwgt.clear();
  out.aff_offset.resize(num_clusters + 1);
  out.aff_offset[0] = 0;
  out.aff_block.clear();
  out.aff_weight.clear();
  out.vwgt.assign(num_clusters, 0);
  out.cluster_of_fine.assign(cluster.begin(), cluster.end());
  next_part_.resize(num_clusters);

  gather_nodes_.ensure_universe(num_clusters);
  gather_blocks_.ensure_universe(static_cast<std::size_t>(k_));

  for (NodeId c = 0; c < num_clusters; ++c) {
    const std::uint32_t begin = member_offset_[c];
    const std::uint32_t end = member_offset_[c + 1];

    // Coarse adjacency: merge parallel edges, drop intra-cluster arcs.
    NodeWeight vw = 0;
    for (std::uint32_t idx = begin; idx < end; ++idx) {
      const std::uint32_t u = member_[idx];
      vw += fine.node_weight(u);
      const auto neigh = fine.neighbors(u);
      const auto arc_w = fine.incident_weights(u);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        const NodeId cv = cluster[neigh[i]];
        if (cv != c) {
          gather_nodes_.add(cv, arc_w[i]);
        }
      }
    }
    out.vwgt[c] = vw;
    for (const std::size_t t : gather_nodes_.touched()) {
      out.adjncy.push_back(static_cast<std::uint32_t>(t));
      out.adjwgt.push_back(gather_nodes_.get(t));
    }
    out.xadj[c + 1] = static_cast<std::uint32_t>(out.adjncy.size());
    gather_nodes_.clear();

    // Coarse affinities: sum the members' per-block super-edges.
    for (std::uint32_t idx = begin; idx < end; ++idx) {
      const std::uint32_t u = member_[idx];
      for (std::uint32_t e = aff.offset[u]; e < aff.offset[u + 1]; ++e) {
        gather_blocks_.add(static_cast<std::size_t>(aff.block[e]),
                           aff.weight[e]);
      }
    }
    for (const std::size_t t : gather_blocks_.touched()) {
      out.aff_block.push_back(static_cast<BlockId>(t));
      out.aff_weight.push_back(gather_blocks_.get(t));
    }
    out.aff_offset[c + 1] = static_cast<std::uint32_t>(out.aff_block.size());
    gather_blocks_.clear();

    // Project the fine partition up by node-weight plurality (ties to the
    // smallest block id, independent of gather insertion order).
    for (std::uint32_t idx = begin; idx < end; ++idx) {
      const std::uint32_t u = member_[idx];
      gather_blocks_.add(static_cast<std::size_t>(part[u]),
                         fine.node_weight(u));
    }
    std::size_t best_block = static_cast<std::size_t>(k_);
    EdgeWeight best_votes = -1;
    for (const std::size_t t : gather_blocks_.touched()) {
      const EdgeWeight votes = gather_blocks_.get(t);
      if (votes > best_votes || (votes == best_votes && t < best_block)) {
        best_block = t;
        best_votes = votes;
      }
    }
    next_part_[c] = static_cast<BlockId>(best_block);
    gather_blocks_.clear();
  }
}

void BufferMultilevel::reset_weights(const GraphView& graph,
                                     const std::vector<BlockId>& part) {
  cur_weight_ = base_;
  for (std::uint32_t u = 0; u < graph.n; ++u) {
    cur_weight_[static_cast<std::size_t>(part[u])] += graph.node_weight(u);
  }
}

void BufferMultilevel::refine_level(const GraphView& graph,
                                    const AffinityView& aff,
                                    std::vector<BlockId>& part,
                                    NodeWeight bound, const std::int64_t* dist,
                                    Rng& rng) {
  const std::uint32_t n = graph.n;
  if (config_.refinement_iterations <= 0) {
    return;
  }
  gather_blocks_.ensure_universe(static_cast<std::size_t>(k_));

  // Active-set sweep (the lp engine's trick, ported to the V-cycle): only
  // boundary nodes — some neighbor or affinity in another block — can gain
  // from a move, and after the seeding pass a node re-enters only when an
  // in-level neighbor moved. On mesh-like levels the boundary is a small
  // fraction of the level, which is where the full-sweep variant burned most
  // of its time. The seed order is shuffled once for symmetry breaking;
  // processing is FIFO and deterministic.
  order_.clear();
  for (std::uint32_t u = 0; u < n; ++u) {
    const BlockId current = part[u];
    bool boundary = false;
    for (const std::uint32_t v : graph.neighbors(u)) {
      if (part[v] != current) {
        boundary = true;
        break;
      }
    }
    if (!boundary) {
      for (std::uint32_t e = aff.offset[u]; e < aff.offset[u + 1]; ++e) {
        if (aff.block[e] != current) {
          boundary = true;
          break;
        }
      }
    }
    if (boundary) {
      order_.push_back(u);
    }
  }
  rng.shuffle(order_);

  queue_.resize(n);
  in_queue_.assign(n, 0);
  visits_left_.assign(
      n, static_cast<std::uint8_t>(std::min(config_.refinement_iterations, 255)));
  std::size_t head = 0;
  std::size_t count = order_.size();
  std::size_t tail = count % n;
  std::copy(order_.begin(), order_.end(), queue_.begin());
  if (count == n) {
    tail = 0;
  }
  for (const std::uint32_t u : order_) {
    in_queue_[u] = 1;
  }

  while (count > 0) {
    const std::uint32_t u = queue_[head];
    head = head + 1 == n ? 0 : head + 1;
    --count;
    in_queue_[u] = 0;
    --visits_left_[u];

    {
      const auto neigh = graph.neighbors(u);
      const auto arc_w = graph.incident_weights(u);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        gather_blocks_.add(static_cast<std::size_t>(part[neigh[i]]), arc_w[i]);
      }
      for (std::uint32_t e = aff.offset[u]; e < aff.offset[u + 1]; ++e) {
        gather_blocks_.add(static_cast<std::size_t>(aff.block[e]),
                           aff.weight[e]);
      }
      const auto& touched = gather_blocks_.touched();
      if (touched.empty()) {
        gather_blocks_.clear();
        continue; // isolated within the model: nothing to gain anywhere
      }
      const BlockId current = part[u];
      const NodeWeight u_weight = graph.node_weight(u);
      BlockId best = current;

      if (dist == nullptr) {
        // Edge-cut mode: only connected blocks can win; zero-gain moves break
        // ties towards the lighter post-move block.
        EdgeWeight best_connection =
            gather_blocks_.get(static_cast<std::size_t>(current));
        NodeWeight best_weight = cur_weight_[static_cast<std::size_t>(current)];
        for (const std::size_t candidate : touched) {
          const auto b = static_cast<BlockId>(candidate);
          if (b == current) {
            continue;
          }
          const NodeWeight candidate_weight = cur_weight_[candidate] + u_weight;
          if (candidate_weight > bound) {
            continue;
          }
          const EdgeWeight connection = gather_blocks_.get(candidate);
          if (connection > best_connection ||
              (connection == best_connection &&
               candidate_weight < best_weight)) {
            best = b;
            best_connection = connection;
            best_weight = candidate_weight;
          }
        }
      } else {
        // Mapping mode: every block is a candidate — a block with no direct
        // connection can still be best when it sits close (cheap distance) to
        // the blocks u communicates with. gain(b) = sum over connected b' of
        // conn(b') * (dist_max - d(b, b')); maximizing it minimizes J.
        const auto gain_of = [&](BlockId b) {
          const std::int64_t* row =
              dist + static_cast<std::size_t>(b) * static_cast<std::size_t>(k_);
          std::int64_t gain = 0;
          for (const std::size_t t : touched) {
            gain += gather_blocks_.get(t) * (dist_max_ - row[t]);
          }
          return gain;
        };
        std::int64_t best_gain = gain_of(current);
        NodeWeight best_weight = cur_weight_[static_cast<std::size_t>(current)];
        for (BlockId b = 0; b < k_; ++b) {
          if (b == current) {
            continue;
          }
          const NodeWeight candidate_weight =
              cur_weight_[static_cast<std::size_t>(b)] + u_weight;
          if (candidate_weight > bound) {
            continue;
          }
          const std::int64_t gain = gain_of(b);
          if (gain > best_gain ||
              (gain == best_gain && candidate_weight < best_weight)) {
            best = b;
            best_gain = gain;
            best_weight = candidate_weight;
          }
        }
      }

      gather_blocks_.clear();
      if (best != current) {
        cur_weight_[static_cast<std::size_t>(current)] -= u_weight;
        cur_weight_[static_cast<std::size_t>(best)] += u_weight;
        part[u] = best;
        // The move invalidated the neighbors' cached local optimum: revisit
        // them (bounded by the per-node budget).
        for (const std::uint32_t v : graph.neighbors(u)) {
          if (in_queue_[v] == 0 && visits_left_[v] > 0) {
            in_queue_[v] = 1;
            queue_[tail] = v;
            tail = tail + 1 == n ? 0 : tail + 1;
            ++count;
          }
        }
      }
    }
  }
}

Cost BufferMultilevel::model_cost(const GraphView& graph,
                                  const AffinityView& aff,
                                  const std::vector<BlockId>& part,
                                  const std::int64_t* dist) const {
  Cost total = 0;
  for (std::uint32_t u = 0; u < graph.n; ++u) {
    const BlockId bu = part[u];
    const std::int64_t* row =
        dist != nullptr
            ? dist + static_cast<std::size_t>(bu) * static_cast<std::size_t>(k_)
            : nullptr;
    const auto neigh = graph.neighbors(u);
    const auto arc_w = graph.incident_weights(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const std::uint32_t v = neigh[i];
      if (v <= u) {
        continue; // symmetric intra arcs: count each edge once
      }
      if (dist != nullptr) {
        total += arc_w[i] * row[static_cast<std::size_t>(part[v])];
      } else if (part[v] != bu) {
        total += arc_w[i];
      }
    }
    for (std::uint32_t e = aff.offset[u]; e < aff.offset[u + 1]; ++e) {
      const BlockId b = aff.block[e];
      if (dist != nullptr) {
        total += aff.weight[e] * row[static_cast<std::size_t>(b)];
      } else if (b != bu) {
        total += aff.weight[e];
      }
    }
  }
  return total;
}

std::pair<Cost, Cost> BufferMultilevel::model_cost_pair(
    const GraphView& graph, const AffinityView& aff,
    const std::vector<BlockId>& part_a, const std::vector<BlockId>& part_b,
    const std::int64_t* dist) const {
  // One traversal of the model scores both partitions: the adjacency and
  // affinity arrays are the expensive reads, and they are shared.
  Cost total_a = 0;
  Cost total_b = 0;
  for (std::uint32_t u = 0; u < graph.n; ++u) {
    const BlockId au = part_a[u];
    const BlockId bu = part_b[u];
    const std::int64_t* row_a =
        dist != nullptr
            ? dist + static_cast<std::size_t>(au) * static_cast<std::size_t>(k_)
            : nullptr;
    const std::int64_t* row_b =
        dist != nullptr
            ? dist + static_cast<std::size_t>(bu) * static_cast<std::size_t>(k_)
            : nullptr;
    const auto neigh = graph.neighbors(u);
    const auto arc_w = graph.incident_weights(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const std::uint32_t v = neigh[i];
      if (v <= u) {
        continue; // symmetric intra arcs: count each edge once
      }
      if (dist != nullptr) {
        total_a += arc_w[i] * row_a[static_cast<std::size_t>(part_a[v])];
        total_b += arc_w[i] * row_b[static_cast<std::size_t>(part_b[v])];
      } else {
        if (part_a[v] != au) {
          total_a += arc_w[i];
        }
        if (part_b[v] != bu) {
          total_b += arc_w[i];
        }
      }
    }
    for (std::uint32_t e = aff.offset[u]; e < aff.offset[u + 1]; ++e) {
      const BlockId b = aff.block[e];
      if (dist != nullptr) {
        total_a += aff.weight[e] * row_a[static_cast<std::size_t>(b)];
        total_b += aff.weight[e] * row_b[static_cast<std::size_t>(b)];
      } else {
        if (b != au) {
          total_a += aff.weight[e];
        }
        if (b != bu) {
          total_b += aff.weight[e];
        }
      }
    }
  }
  return {total_a, total_b};
}

void BufferMultilevel::improve(const BufferModelView& model,
                               std::span<BlockId> partition,
                               std::span<NodeWeight> block_weight,
                               NodeWeight lmax, const std::int64_t* dist,
                               std::uint64_t salt) {
  const std::uint32_t n = model.num_nodes;
  if (n == 0 || k_ <= 1) {
    return;
  }
  // Adaptive backoff: on streams where the V-cycle keeps failing to beat the
  // lp-refined incoming partition (weakly structured graphs), stop paying for
  // it — skip upcoming buffers, retrying periodically in case the stream's
  // character changes. The state advances identically for identical buffer
  // sequences, so entry-point parity is preserved.
  if (salt < skip_until_) {
    telemetry::metric_add(telemetry::Counter::kMultilevelBackoffSkips);
    return;
  }
  OMS_ASSERT(partition.size() == n);
  OMS_ASSERT(block_weight.size() == static_cast<std::size_t>(k_));

  const GraphView finest{n, model.intra_offset, model.intra_target,
                         model.intra_weight, model.node_weight};
  const AffinityView finest_aff{model.super_offset, model.super_block,
                                model.super_weight};

  // Committed base weights: what the earlier buffers put into each block.
  base_.assign(block_weight.begin(), block_weight.end());
  NodeWeight buffer_weight = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    const NodeWeight w = finest.node_weight(u);
    base_[static_cast<std::size_t>(partition[u])] -= w;
    buffer_weight += w;
  }

  if (dist != nullptr) {
    dist_max_ = 0;
    const std::size_t kk =
        static_cast<std::size_t>(k_) * static_cast<std::size_t>(k_);
    for (std::size_t i = 0; i < kk; ++i) {
      dist_max_ = std::max(dist_max_, dist[i]);
    }
  }

  const std::uint64_t run_seed = hash_combine(config_.seed, salt);
  Rng rng(run_seed);

  incoming_.assign(partition.begin(), partition.end());
  cur_part_.assign(partition.begin(), partition.end());

  // --- Coarsening ---------------------------------------------------------
  const NodeId target = std::max<NodeId>(
      config_.coarse_floor,
      static_cast<NodeId>(std::min<std::int64_t>(
          static_cast<std::int64_t>(config_.coarsening_factor) * k_,
          static_cast<std::int64_t>(n))));
  // Cap derived from the coarsening target (cf. multilevel_partitioner.cpp):
  // clustering then cannot overshoot the target for unit node weights.
  const NodeWeight max_cluster_weight =
      std::max<NodeWeight>(1, buffer_weight / std::max<NodeId>(1, target));

  int num_levels = 0;
  GraphView cur = finest;
  AffinityView cur_aff = finest_aff;
  while (num_levels < config_.max_levels && cur.n > target) {
    const std::vector<NodeId> cluster = lp_cluster_impl(
        cur, max_cluster_weight, config_.clustering_iterations,
        hash_combine(run_seed, static_cast<std::uint64_t>(num_levels) + 1));
    const NodeId num_clusters =
        *std::max_element(cluster.begin(), cluster.end()) + 1;
    if (num_clusters >= cur.n || num_clusters < target / 2 + 1) {
      break; // no progress, or overshooting the target by more than 2x
    }
    if (levels_.size() <= static_cast<std::size_t>(num_levels)) {
      levels_.emplace_back();
    }
    Level& out = levels_[static_cast<std::size_t>(num_levels)];
    contract_level(cur, cur_aff, cluster, num_clusters, cur_part_, out);
    cur_part_.swap(next_part_); // projected incoming partition, coarse side
    cur = view_of(out);
    cur_aff = affinity_of(out);
    ++num_levels;
  }

  // Coarse nodes can be heavy, so a strict Lmax may be unachievable above the
  // finest level (bin-packing granularity); relax by the heaviest node there.
  const auto bound_for = [lmax](const GraphView& g) {
    NodeWeight heaviest = 1;
    for (std::uint32_t u = 0; u < g.n; ++u) {
      heaviest = std::max(heaviest, g.node_weight(u));
    }
    return heaviest <= 1 ? lmax : lmax + heaviest;
  };

  // --- Initial partitioning at the coarsest level -------------------------
  // Candidates: the incoming greedy placement projected up (never start from
  // worse than what the stream already has), plus a few BFS-band partitions
  // seeded over the committed base weights. Each candidate is refined, and
  // the best under the active objective wins.
  const NodeWeight coarse_bound =
      num_levels == 0 ? lmax : bound_for(cur);
  cand_part_ = cur_part_;
  reset_weights(cur, cand_part_);
  refine_level(cur, cur_aff, cand_part_, coarse_bound, dist, rng);
  Cost best_cost = model_cost(cur, cur_aff, cand_part_, dist);
  best_part_ = cand_part_;
  // From-scratch BFS candidates only make sense on the first buffer, where
  // the greedy placement had no committed structure to anchor to. On later
  // buffers a from-scratch repartition can win the *local* model objective
  // by a hair while scrambling the global block geometry the stream has been
  // building — every future buffer then pays for the incoherence.
  const int attempts = salt == 0 ? config_.initial_attempts : 0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    cand_part_ = bfs_band_impl(
        cur, k_, coarse_bound, base_,
        hash_combine(run_seed, 0x1000 + static_cast<std::uint64_t>(attempt)));
    reset_weights(cur, cand_part_);
    refine_level(cur, cur_aff, cand_part_, coarse_bound, dist, rng);
    const Cost cost = model_cost(cur, cur_aff, cand_part_, dist);
    if (cost < best_cost) {
      best_cost = cost;
      best_part_.swap(cand_part_);
    }
  }
  cur_part_ = best_part_;

  // --- Uncoarsening -------------------------------------------------------
  for (int li = num_levels - 1; li >= 0; --li) {
    const Level& coarse = levels_[static_cast<std::size_t>(li)];
    const GraphView fine =
        li == 0 ? finest : view_of(levels_[static_cast<std::size_t>(li - 1)]);
    const AffinityView fine_aff =
        li == 0 ? finest_aff
                : affinity_of(levels_[static_cast<std::size_t>(li - 1)]);
    next_part_.resize(fine.n);
    for (std::uint32_t u = 0; u < fine.n; ++u) {
      next_part_[u] = cur_part_[coarse.cluster_of_fine[u]];
    }
    cur_part_.swap(next_part_);
    const NodeWeight bound = li == 0 ? lmax : bound_for(fine);
    reset_weights(fine, cur_part_);
    refine_level(fine, fine_aff, cur_part_, bound, dist, rng);
  }

  // --- Finest-level balance repair ----------------------------------------
  // Coarse levels ran with a relaxed bound, so blocks can exceed Lmax here.
  // Evict buffer nodes from overweight blocks into the best connected (or
  // lightest) block with room; best-effort, like the lp engine's fallback.
  reset_weights(finest, cur_part_); // cur_weight_ may track a losing candidate
  for (int pass = 0; pass < 2; ++pass) {
    bool any_overweight = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      const BlockId current = cur_part_[u];
      if (cur_weight_[static_cast<std::size_t>(current)] <= lmax) {
        continue;
      }
      any_overweight = true;
      const NodeWeight u_weight = finest.node_weight(u);
      const auto neigh = finest.neighbors(u);
      const auto arc_w = finest.incident_weights(u);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        gather_blocks_.add(static_cast<std::size_t>(cur_part_[neigh[i]]),
                           arc_w[i]);
      }
      for (std::uint32_t e = finest_aff.offset[u]; e < finest_aff.offset[u + 1];
           ++e) {
        gather_blocks_.add(static_cast<std::size_t>(finest_aff.block[e]),
                           finest_aff.weight[e]);
      }
      BlockId target_block = kInvalidBlock;
      EdgeWeight target_connection = -1;
      NodeWeight target_weight = 0;
      for (BlockId b = 0; b < k_; ++b) {
        if (b == current) {
          continue;
        }
        const NodeWeight candidate_weight =
            cur_weight_[static_cast<std::size_t>(b)] + u_weight;
        if (candidate_weight > lmax) {
          continue;
        }
        const EdgeWeight connection =
            gather_blocks_.get(static_cast<std::size_t>(b));
        if (target_block == kInvalidBlock || connection > target_connection ||
            (connection == target_connection &&
             candidate_weight < target_weight)) {
          target_block = b;
          target_connection = connection;
          target_weight = candidate_weight;
        }
      }
      gather_blocks_.clear();
      if (target_block != kInvalidBlock) {
        cur_weight_[static_cast<std::size_t>(current)] -= u_weight;
        cur_weight_[static_cast<std::size_t>(target_block)] += u_weight;
        cur_part_[u] = target_block;
      }
    }
    if (!any_overweight) {
      break;
    }
  }

  // --- Never-worse guarantee and write-back -------------------------------
  // Commit only substantive improvements (~1.6% of the incoming model cost):
  // a marginal win on the buffer-local model is noise relative to what the
  // model cannot see (edges to future nodes), and committing it reshuffles
  // the global block geometry later buffers anchor to. Marginal/failed
  // buffers feed the backoff counter instead.
  const auto [final_cost, incoming_cost] =
      model_cost_pair(finest, finest_aff, cur_part_, incoming_, dist);
  const bool commit = final_cost < incoming_cost - incoming_cost / 64;
  telemetry::metric_add(commit ? telemetry::Counter::kMultilevelCommitsAccepted
                               : telemetry::Counter::kMultilevelCommitsRejected);
  if (commit) {
    fail_streak_ = 0;
  } else {
    ++fail_streak_;
    if (fail_streak_ >= 2) {
      const int exponent = std::min(fail_streak_ - 2, 2);
      skip_until_ = salt + 1 + (std::uint64_t{1} << exponent);
    }
  }
  const std::vector<BlockId>& winner = commit ? cur_part_ : incoming_;
  reset_weights(finest, winner);
  std::copy(winner.begin(), winner.end(), partition.begin());
  std::copy(cur_weight_.begin(), cur_weight_.end(), block_weight.begin());
}

} // namespace oms
