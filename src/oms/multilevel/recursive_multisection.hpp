/// \file recursive_multisection.hpp
/// \brief "IntMapLite": the *offline* recursive multi-section mapper the
///        paper uses as its internal-memory mapping reference — partition
///        the whole graph into a_l blocks with the multilevel partitioner,
///        recurse into every block for a_{l-1}, ..., then improve the
///        block-to-PE assignment with pairwise-swap local search
///        (Brandfass-style), all with the full graph in memory.
#pragma once

#include <cstdint>

#include "oms/graph/csr_graph.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/multilevel/multilevel_partitioner.hpp"
#include "oms/types.hpp"

namespace oms {

struct IntMapConfig {
  MultilevelConfig multilevel;
  bool swap_refinement = true;
  int swap_rounds = 10;
  std::uint64_t seed = 1;
};

struct IntMapResult {
  std::vector<BlockId> mapping; ///< node -> PE
  std::uint64_t peak_graph_bytes = 0;
};

/// Map \p graph onto \p topology. The returned mapping respects the global
/// balance constraint (per-level epsilons are attenuated so imbalance does
/// not compound across the recursion; a final rebalance enforces the bound).
[[nodiscard]] IntMapResult offline_recursive_multisection(
    const CsrGraph& graph, const SystemHierarchy& topology, const IntMapConfig& config);

} // namespace oms
