/// \file ordering.hpp
/// \brief Node orderings for streaming. The one-pass algorithms consume nodes
///        in id order, so re-numbering the graph changes the stream order.
///        Supports the paper's "natural given order" default plus the orders
///        studied in the prioritized-streaming literature it cites
///        (random, BFS, degree).
#pragma once

#include <cstdint>
#include <vector>

#include "oms/graph/csr_graph.hpp"

namespace oms {

enum class StreamOrder : std::uint8_t {
  kNatural,          ///< ids as given (the paper's default)
  kRandom,           ///< uniformly random permutation
  kBfs,              ///< breadth-first order from node 0 (locality-friendly)
  kDegreeAscending,  ///< smallest degree first
  kDegreeDescending, ///< largest degree first (close to "prioritized" static order)
};

/// Permutation perm[new_id] = old_id realizing the requested order.
[[nodiscard]] std::vector<NodeId> make_order(const CsrGraph& graph, StreamOrder order,
                                             std::uint64_t seed = 1);

/// Renumber the graph so that streaming it in id order equals streaming the
/// original in perm order. perm[new_id] = old_id must be a permutation.
[[nodiscard]] CsrGraph apply_order(const CsrGraph& graph,
                                   const std::vector<NodeId>& perm);

/// Human-readable name for logs and bench tables.
[[nodiscard]] const char* stream_order_name(StreamOrder order) noexcept;

} // namespace oms
