#include "oms/graph/graph_builder.hpp"

#include <algorithm>
#include <numeric>

namespace oms {

GraphBuilder::GraphBuilder(NodeId num_nodes)
    : num_nodes_(num_nodes), node_weights_(num_nodes, NodeWeight{1}) {}

void GraphBuilder::add_edge(NodeId u, NodeId v, EdgeWeight weight) {
  OMS_ASSERT_MSG(u < num_nodes_ && v < num_nodes_, "edge endpoint out of range");
  OMS_ASSERT_MSG(weight > 0, "edge weights must be positive");
  if (u == v) {
    return; // self-loops are dropped, matching the paper's preprocessing
  }
  if (u > v) {
    std::swap(u, v);
  }
  edges_.push_back({u, v, weight});
}

void GraphBuilder::set_node_weight(NodeId u, NodeWeight weight) {
  OMS_ASSERT_MSG(u < num_nodes_, "node id out of range");
  OMS_ASSERT_MSG(weight >= 0, "node weights must be non-negative");
  node_weights_[u] = weight;
}

CsrGraph GraphBuilder::build() && {
  // Canonicalize: sort (u, v) pairs, merge duplicates by summing weights.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].u == edges_[i].u && edges_[out - 1].v == edges_[i].v) {
      edges_[out - 1].w += edges_[i].w;
    } else {
      edges_[out++] = edges_[i];
    }
  }
  edges_.resize(out);

  // Counting pass for CSR offsets (each undirected edge -> two arcs).
  std::vector<EdgeIndex> xadj(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const Edge& e : edges_) {
    ++xadj[e.u + 1];
    ++xadj[e.v + 1];
  }
  std::partial_sum(xadj.begin(), xadj.end(), xadj.begin());

  std::vector<NodeId> adjncy(edges_.size() * 2);
  std::vector<EdgeWeight> adjwgt(edges_.size() * 2);
  std::vector<EdgeIndex> cursor(xadj.begin(), xadj.end() - 1);
  for (const Edge& e : edges_) {
    adjncy[cursor[e.u]] = e.v;
    adjwgt[cursor[e.u]] = e.w;
    ++cursor[e.u];
    adjncy[cursor[e.v]] = e.u;
    adjwgt[cursor[e.v]] = e.w;
    ++cursor[e.v];
  }
  // Edges were emitted in sorted (u, v) order, so each u's list already has
  // its higher neighbors sorted; arcs from the v side arrive in u order too,
  // but the two interleave, so a per-node sort is still required.
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const auto begin = static_cast<std::ptrdiff_t>(xadj[u]);
    const auto end = static_cast<std::ptrdiff_t>(xadj[u + 1]);
    std::vector<std::pair<NodeId, EdgeWeight>> entries;
    entries.reserve(static_cast<std::size_t>(end - begin));
    for (std::ptrdiff_t i = begin; i < end; ++i) {
      entries.emplace_back(adjncy[static_cast<std::size_t>(i)],
                           adjwgt[static_cast<std::size_t>(i)]);
    }
    std::sort(entries.begin(), entries.end());
    for (std::ptrdiff_t i = begin; i < end; ++i) {
      const auto& [v, w] = entries[static_cast<std::size_t>(i - begin)];
      adjncy[static_cast<std::size_t>(i)] = v;
      adjwgt[static_cast<std::size_t>(i)] = w;
    }
  }

  return CsrGraph(std::move(xadj), std::move(adjncy), std::move(adjwgt),
                  std::move(node_weights_));
}

} // namespace oms
