/// \file csr_graph.hpp
/// \brief Immutable undirected graph in compressed sparse row form.
///
/// This is the in-memory substrate every algorithm in the library consumes:
/// the streaming drivers iterate its adjacency arrays in node order (the
/// paper's "natural order" stream), the multilevel baselines contract it,
/// and the metrics evaluate partitions against it.
///
/// Invariants (checked by validate(), heavy parts under OMS_HEAVY_ASSERTS):
///  * no self-loops, no parallel edges;
///  * adjacency is symmetric: v in N(u)  <=>  u in N(v), with equal weights;
///  * each adjacency list is sorted by neighbor id;
///  * all node weights >= 0 and all edge weights > 0.
#pragma once

#include <span>
#include <vector>

#include "oms/types.hpp"
#include "oms/util/assert.hpp"

namespace oms {

class CsrGraph {
public:
  CsrGraph() = default;

  /// Assemble from raw CSR arrays. Prefer GraphBuilder, which establishes the
  /// invariants; this constructor only spot-checks shapes.
  CsrGraph(std::vector<EdgeIndex> xadj, std::vector<NodeId> adjncy,
           std::vector<EdgeWeight> adjwgt, std::vector<NodeWeight> vwgt);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(vwgt_.size());
  }

  /// Number of undirected edges (each stored twice internally).
  [[nodiscard]] EdgeIndex num_edges() const noexcept {
    return static_cast<EdgeIndex>(adjncy_.size() / 2);
  }

  /// Number of directed arcs (2 * num_edges()); the size of the CSR arrays.
  [[nodiscard]] EdgeIndex num_arcs() const noexcept {
    return static_cast<EdgeIndex>(adjncy_.size());
  }

  [[nodiscard]] EdgeIndex degree(NodeId u) const noexcept {
    OMS_HEAVY_ASSERT(u < num_nodes());
    return xadj_[u + 1] - xadj_[u];
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    OMS_HEAVY_ASSERT(u < num_nodes());
    return {adjncy_.data() + xadj_[u], static_cast<std::size_t>(degree(u))};
  }

  [[nodiscard]] std::span<const EdgeWeight> incident_weights(NodeId u) const noexcept {
    OMS_HEAVY_ASSERT(u < num_nodes());
    return {adjwgt_.data() + xadj_[u], static_cast<std::size_t>(degree(u))};
  }

  [[nodiscard]] NodeWeight node_weight(NodeId u) const noexcept {
    OMS_HEAVY_ASSERT(u < num_nodes());
    return vwgt_[u];
  }

  [[nodiscard]] NodeWeight total_node_weight() const noexcept {
    return total_node_weight_;
  }

  /// Sum of weights over undirected edges.
  [[nodiscard]] EdgeWeight total_edge_weight() const noexcept {
    return total_edge_weight_;
  }

  [[nodiscard]] EdgeIndex max_degree() const noexcept { return max_degree_; }

  /// Raw arrays, for I/O and contraction kernels.
  [[nodiscard]] std::span<const EdgeIndex> raw_xadj() const noexcept { return xadj_; }
  [[nodiscard]] std::span<const NodeId> raw_adjncy() const noexcept { return adjncy_; }
  [[nodiscard]] std::span<const EdgeWeight> raw_adjwgt() const noexcept { return adjwgt_; }
  [[nodiscard]] std::span<const NodeWeight> raw_vwgt() const noexcept { return vwgt_; }

  /// True if every node weight is 1 and every edge weight is 1.
  [[nodiscard]] bool is_unit_weighted() const noexcept;

  /// Full invariant scan (O(n + m log d)); aborts with a diagnostic on
  /// violation. Used by tests and by GraphBuilder in heavy-assert builds.
  void validate() const;

  /// Approximate heap footprint in bytes (for the memory experiment).
  [[nodiscard]] std::uint64_t memory_footprint_bytes() const noexcept;

private:
  std::vector<EdgeIndex> xadj_;     // size n+1
  std::vector<NodeId> adjncy_;      // size 2m
  std::vector<EdgeWeight> adjwgt_;  // size 2m
  std::vector<NodeWeight> vwgt_;    // size n
  NodeWeight total_node_weight_ = 0;
  EdgeWeight total_edge_weight_ = 0;
  EdgeIndex max_degree_ = 0;
};

} // namespace oms
