#include "oms/graph/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "oms/graph/graph_builder.hpp"
#include "oms/util/random.hpp"

namespace oms {

std::vector<NodeId> make_order(const CsrGraph& graph, StreamOrder order,
                               std::uint64_t seed) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});

  switch (order) {
    case StreamOrder::kNatural:
      break;
    case StreamOrder::kRandom: {
      Rng rng(seed);
      rng.shuffle(perm);
      break;
    }
    case StreamOrder::kBfs: {
      std::vector<bool> visited(n, false);
      std::vector<NodeId> bfs;
      bfs.reserve(n);
      std::queue<NodeId> queue;
      for (NodeId root = 0; root < n; ++root) {
        if (visited[root]) {
          continue;
        }
        visited[root] = true;
        queue.push(root);
        while (!queue.empty()) {
          const NodeId u = queue.front();
          queue.pop();
          bfs.push_back(u);
          for (const NodeId v : graph.neighbors(u)) {
            if (!visited[v]) {
              visited[v] = true;
              queue.push(v);
            }
          }
        }
      }
      perm = std::move(bfs);
      break;
    }
    case StreamOrder::kDegreeAscending:
    case StreamOrder::kDegreeDescending: {
      const bool ascending = order == StreamOrder::kDegreeAscending;
      std::stable_sort(perm.begin(), perm.end(), [&](NodeId a, NodeId b) {
        return ascending ? graph.degree(a) < graph.degree(b)
                         : graph.degree(a) > graph.degree(b);
      });
      break;
    }
  }
  return perm;
}

CsrGraph apply_order(const CsrGraph& graph, const std::vector<NodeId>& perm) {
  const NodeId n = graph.num_nodes();
  OMS_ASSERT_MSG(perm.size() == n, "permutation size mismatch");
  std::vector<NodeId> inverse(n, kInvalidNode);
  for (NodeId new_id = 0; new_id < n; ++new_id) {
    const NodeId old_id = perm[new_id];
    OMS_ASSERT_MSG(old_id < n && inverse[old_id] == kInvalidNode,
                   "perm is not a permutation");
    inverse[old_id] = new_id;
  }

  GraphBuilder builder(n);
  for (NodeId new_u = 0; new_u < n; ++new_u) {
    const NodeId old_u = perm[new_u];
    builder.set_node_weight(new_u, graph.node_weight(old_u));
    const auto neigh = graph.neighbors(old_u);
    const auto weights = graph.incident_weights(old_u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const NodeId new_v = inverse[neigh[i]];
      if (new_u < new_v) {
        builder.add_edge(new_u, new_v, weights[i]);
      }
    }
  }
  return std::move(builder).build();
}

const char* stream_order_name(StreamOrder order) noexcept {
  switch (order) {
    case StreamOrder::kNatural: return "natural";
    case StreamOrder::kRandom: return "random";
    case StreamOrder::kBfs: return "bfs";
    case StreamOrder::kDegreeAscending: return "degree-asc";
    case StreamOrder::kDegreeDescending: return "degree-desc";
  }
  return "unknown";
}

} // namespace oms
