#include "oms/graph/io.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>
#include <vector>

#include "oms/graph/graph_builder.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/crc32.hpp"
#include "oms/util/io_error.hpp"

namespace oms {
namespace {

/// Binary graph cache, version 2: v1 plus a trailing CRC-32 over every
/// preceding byte and a strict (==, not >=) length check, so truncation,
/// appended garbage and bit flips all surface as IoError instead of a
/// silently wrong graph. v1 files ("OMSGRAP1") are refused with a message
/// telling the user to regenerate — caches are cheap, silent risk is not.
constexpr std::uint64_t kBinaryMagicV1 = 0x4f4d5347'52415031ULL; // "OMSGRAP1"
constexpr std::uint64_t kBinaryMagicV2 = 0x4f4d5347'52415032ULL; // "OMSGRAP2"

/// Input defects (malformed bytes, truncation, unopenable paths) raise
/// IoError with the file position so CLIs fail cleanly; OMS_ASSERT remains
/// only on the *write* side, where a failure means a broken environment, not
/// broken user input.
[[noreturn]] void io_fail(const std::string& path, std::uint64_t line_no,
                          const std::string& message) {
  if (line_no == 0) {
    throw IoError(path + ": " + message);
  }
  throw IoError(path + ":" + std::to_string(line_no) + ": " + message);
}

/// Incremental whitespace-separated integer scanner over one line.
class LineTokens {
public:
  explicit LineTokens(std::string_view line) noexcept : rest_(line) {}

  /// Next integer token; false when the line is exhausted. \p on_error is
  /// invoked (and must not return) on a malformed token.
  template <typename OnError>
  bool next(std::int64_t& out, OnError&& on_error) {
    while (!rest_.empty() && (rest_.front() == ' ' || rest_.front() == '\t' ||
                              rest_.front() == '\r')) {
      rest_.remove_prefix(1);
    }
    if (rest_.empty()) {
      return false;
    }
    const auto [ptr, ec] = std::from_chars(rest_.data(), rest_.data() + rest_.size(), out);
    if (ec != std::errc{}) {
      on_error();
    }
    rest_.remove_prefix(static_cast<std::size_t>(ptr - rest_.data()));
    return true;
  }

private:
  std::string_view rest_;
};

/// Header lookup: skip comments *and* blank lines.
bool next_content_line(std::istream& in, std::string& line, std::uint64_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.front() != '%') {
      return true;
    }
  }
  return false;
}

/// Data lines: skip only comments — an *empty* line is an isolated node and
/// must consume its slot, otherwise every following adjacency list would
/// shift onto the wrong node.
bool next_data_line(std::istream& in, std::string& line, std::uint64_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() != '%') {
      return true;
    }
  }
  return false;
}

} // namespace

void write_metis(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  OMS_ASSERT_MSG(out.good(), "cannot open file for writing");

  bool node_weights = false;
  bool edge_weights = false;
  for (NodeId u = 0; u < graph.num_nodes() && !node_weights; ++u) {
    node_weights = graph.node_weight(u) != 1;
  }
  for (const EdgeWeight w : graph.raw_adjwgt()) {
    if (w != 1) {
      edge_weights = true;
      break;
    }
  }

  out << graph.num_nodes() << ' ' << graph.num_edges();
  if (node_weights || edge_weights) {
    out << ' ' << (node_weights ? '1' : '0') << (edge_weights ? '1' : '0');
  }
  out << '\n';

  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    std::ostringstream line;
    if (node_weights) {
      line << graph.node_weight(u);
    }
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      if (node_weights || i > 0) {
        line << ' ';
      }
      line << (neigh[i] + 1);
      if (edge_weights) {
        line << ' ' << weights[i];
      }
    }
    out << line.str() << '\n';
  }
  OMS_ASSERT_MSG(out.good(), "write failure");
}

void write_edge_list(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  OMS_ASSERT_MSG(out.good(), "cannot open file for writing");

  bool edge_weights = false;
  for (const EdgeWeight w : graph.raw_adjwgt()) {
    if (w != 1) {
      edge_weights = true;
      break;
    }
  }

  out << "# edge list of " << graph.num_nodes() << " nodes, "
      << graph.num_edges() << " edges\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      if (neigh[i] <= u) {
        continue; // each undirected edge once, u < v
      }
      out << u << ' ' << neigh[i];
      if (edge_weights) {
        out << ' ' << weights[i];
      }
      out << '\n';
    }
  }
  OMS_ASSERT_MSG(out.good(), "write failure");
}

CsrGraph read_metis(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw IoError("cannot open graph file '" + path + "'");
  }

  std::uint64_t line_no = 0;
  std::string line;
  if (!next_content_line(in, line, line_no)) {
    io_fail(path, line_no, "missing METIS header");
  }
  const auto bad_header = [&] { io_fail(path, line_no, "malformed METIS header"); };
  LineTokens header(line);
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::int64_t fmt = 0;
  if (!header.next(n, bad_header) || !header.next(m, bad_header)) {
    bad_header();
  }
  header.next(fmt, bad_header); // optional
  if (n < 0 || m < 0) {
    io_fail(path, line_no, "negative sizes in METIS header");
  }
  if (n > static_cast<std::int64_t>(std::numeric_limits<NodeId>::max())) {
    io_fail(path, line_no,
            "node count " + std::to_string(n) + " exceeds the supported maximum");
  }
  const bool has_edge_weights = (fmt % 10) == 1;
  const bool has_node_weights = (fmt / 10 % 10) == 1;
  if (fmt / 100 != 0) {
    io_fail(path, line_no, "multi-constraint METIS files are unsupported");
  }
  // Same header contract as the streaming reader (metis_stream.cpp): an
  // optional 4th token is the constraint count, and only 1 is workable —
  // silently consuming one weight per node and parsing the rest as neighbor
  // ids would corrupt the graph, not reject it.
  std::int64_t ncon = 1;
  if (header.next(ncon, bad_header) && ncon != 1) {
    io_fail(path, line_no, "multi-constraint METIS files are unsupported");
  }
  std::int64_t junk = 0;
  if (header.next(junk, bad_header)) {
    io_fail(path, line_no, "trailing tokens in METIS header");
  }

  GraphBuilder builder(static_cast<NodeId>(n));
  const auto bad_token = [&] { io_fail(path, line_no, "malformed integer token"); };
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    // Missing trailing lines mean isolated nodes; treat EOF as empty lines.
    if (!next_data_line(in, line, line_no)) {
      break;
    }
    LineTokens tokens(line);
    std::int64_t value = 0;
    if (has_node_weights) {
      if (!tokens.next(value, bad_token)) {
        io_fail(path, line_no, "missing node weight");
      }
      builder.set_node_weight(u, value);
    }
    while (tokens.next(value, bad_token)) {
      if (value < 1 || value > n) {
        io_fail(path, line_no, "neighbor id " + std::to_string(value) +
                                   " out of range [1, " + std::to_string(n) + "]");
      }
      const auto v = static_cast<NodeId>(value - 1);
      EdgeWeight w = 1;
      if (has_edge_weights) {
        std::int64_t wt = 0;
        if (!tokens.next(wt, bad_token)) {
          io_fail(path, line_no, "missing edge weight");
        }
        w = wt;
      }
      // METIS lists every edge from both endpoints; record the canonical
      // direction only so GraphBuilder does not double the weights.
      if (u < v) {
        builder.add_edge(u, v, w);
      }
    }
  }
  CsrGraph graph = std::move(builder).build();
  if (graph.num_edges() != static_cast<EdgeIndex>(m)) {
    io_fail(path, 0,
            "edge count disagrees with METIS header (header says " +
                std::to_string(m) + ", file has " +
                std::to_string(graph.num_edges()) + ")");
  }
  return graph;
}

void write_binary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  OMS_ASSERT_MSG(out.good(), "cannot open file for writing");
  const std::uint64_t magic = kBinaryMagicV2;
  const std::uint64_t n = graph.num_nodes();
  const std::uint64_t arcs = graph.num_arcs();
  std::uint32_t crc = crc32_init();
  const auto write_raw = [&out, &crc](const void* data, std::size_t bytes) {
    crc = crc32_update(crc, data, bytes);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  };
  write_raw(&magic, sizeof magic);
  write_raw(&n, sizeof n);
  write_raw(&arcs, sizeof arcs);
  write_raw(graph.raw_xadj().data(), graph.raw_xadj().size() * sizeof(EdgeIndex));
  write_raw(graph.raw_adjncy().data(), graph.raw_adjncy().size() * sizeof(NodeId));
  write_raw(graph.raw_adjwgt().data(), graph.raw_adjwgt().size() * sizeof(EdgeWeight));
  write_raw(graph.raw_vwgt().data(), graph.raw_vwgt().size() * sizeof(NodeWeight));
  const std::uint32_t checksum = crc32_final(crc);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  OMS_ASSERT_MSG(out.good(), "write failure");
}

CsrGraph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw IoError("cannot open graph file '" + path + "'");
  }
  std::uint64_t magic = 0;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  std::uint32_t crc = crc32_init();
  const auto read_raw = [&in, &path, &crc](void* data, std::size_t bytes) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (!in.good()) {
      io_fail(path, 0, "truncated binary graph file");
    }
    crc = crc32_update(crc, data, bytes);
  };
  read_raw(&magic, sizeof magic);
  if (magic == kBinaryMagicV1) {
    io_fail(path, 0,
            "binary graph file uses the unchecksummed v1 format; regenerate "
            "it with write_binary()");
  }
  if (magic != kBinaryMagicV2) {
    io_fail(path, 0, "bad magic in binary graph file");
  }
  read_raw(&n, sizeof n);
  read_raw(&arcs, sizeof arcs);
  // Sanity-check the advertised sizes against the actual payload before
  // allocating: a corrupt header must raise IoError, not bad_alloc. The 2^48
  // ceiling keeps the expected-bytes arithmetic below from wrapping.
  if (n >= (std::uint64_t{1} << 48) || arcs >= (std::uint64_t{1} << 48)) {
    io_fail(path, 0, "implausible sizes in binary graph header");
  }
  const auto payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(payload_start);
  const std::uint64_t expected_bytes =
      (n + 1) * sizeof(EdgeIndex) + arcs * sizeof(NodeId) +
      arcs * sizeof(EdgeWeight) + n * sizeof(NodeWeight);
  // Strict equality: payload + trailing CRC and nothing else. A too-long
  // file means the header does not describe this payload (e.g. concatenated
  // or half-overwritten caches), which the CRC alone could even pass if the
  // extra bytes were never read.
  if (n > static_cast<std::uint64_t>(std::numeric_limits<NodeId>::max()) ||
      static_cast<std::uint64_t>(file_end - payload_start) <
          expected_bytes + sizeof(std::uint32_t)) {
    io_fail(path, 0, "truncated binary graph file");
  }
  if (static_cast<std::uint64_t>(file_end - payload_start) >
      expected_bytes + sizeof(std::uint32_t)) {
    io_fail(path, 0, "binary graph file longer than its header describes");
  }
  std::vector<EdgeIndex> xadj(n + 1);
  std::vector<NodeId> adjncy(arcs);
  std::vector<EdgeWeight> adjwgt(arcs);
  std::vector<NodeWeight> vwgt(n);
  read_raw(xadj.data(), xadj.size() * sizeof(EdgeIndex));
  read_raw(adjncy.data(), adjncy.size() * sizeof(NodeId));
  read_raw(adjwgt.data(), adjwgt.size() * sizeof(EdgeWeight));
  read_raw(vwgt.data(), vwgt.size() * sizeof(NodeWeight));
  const std::uint32_t computed = crc32_final(crc);
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (!in.good() || stored != computed) {
    io_fail(path, 0, "CRC mismatch in binary graph file (corrupt bytes)");
  }
  return CsrGraph(std::move(xadj), std::move(adjncy), std::move(adjwgt),
                  std::move(vwgt));
}

} // namespace oms
