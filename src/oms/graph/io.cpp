#include "oms/graph/io.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "oms/graph/graph_builder.hpp"
#include "oms/util/assert.hpp"

namespace oms {
namespace {

/// Incremental whitespace-separated integer scanner over one line.
class LineTokens {
public:
  explicit LineTokens(std::string_view line) noexcept : rest_(line) {}

  /// Next integer token; false when the line is exhausted.
  bool next(std::int64_t& out) {
    while (!rest_.empty() && (rest_.front() == ' ' || rest_.front() == '\t' ||
                              rest_.front() == '\r')) {
      rest_.remove_prefix(1);
    }
    if (rest_.empty()) {
      return false;
    }
    const auto [ptr, ec] = std::from_chars(rest_.data(), rest_.data() + rest_.size(), out);
    OMS_ASSERT_MSG(ec == std::errc{}, "malformed integer token in graph file");
    rest_.remove_prefix(static_cast<std::size_t>(ptr - rest_.data()));
    return true;
  }

private:
  std::string_view rest_;
};

/// Header lookup: skip comments *and* blank lines.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() != '%') {
      return true;
    }
  }
  return false;
}

/// Data lines: skip only comments — an *empty* line is an isolated node and
/// must consume its slot, otherwise every following adjacency list would
/// shift onto the wrong node.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (line.empty() || line.front() != '%') {
      return true;
    }
  }
  return false;
}

} // namespace

void write_metis(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  OMS_ASSERT_MSG(out.good(), "cannot open file for writing");

  bool node_weights = false;
  bool edge_weights = false;
  for (NodeId u = 0; u < graph.num_nodes() && !node_weights; ++u) {
    node_weights = graph.node_weight(u) != 1;
  }
  for (const EdgeWeight w : graph.raw_adjwgt()) {
    if (w != 1) {
      edge_weights = true;
      break;
    }
  }

  out << graph.num_nodes() << ' ' << graph.num_edges();
  if (node_weights || edge_weights) {
    out << ' ' << (node_weights ? '1' : '0') << (edge_weights ? '1' : '0');
  }
  out << '\n';

  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    std::ostringstream line;
    if (node_weights) {
      line << graph.node_weight(u);
    }
    const auto neigh = graph.neighbors(u);
    const auto weights = graph.incident_weights(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      if (node_weights || i > 0) {
        line << ' ';
      }
      line << (neigh[i] + 1);
      if (edge_weights) {
        line << ' ' << weights[i];
      }
    }
    out << line.str() << '\n';
  }
  OMS_ASSERT_MSG(out.good(), "write failure");
}

CsrGraph read_metis(const std::string& path) {
  std::ifstream in(path);
  OMS_ASSERT_MSG(in.good(), "cannot open graph file");

  std::string line;
  OMS_ASSERT_MSG(next_content_line(in, line), "missing METIS header");
  LineTokens header(line);
  std::int64_t n = 0;
  std::int64_t m = 0;
  std::int64_t fmt = 0;
  OMS_ASSERT_MSG(header.next(n) && header.next(m), "malformed METIS header");
  header.next(fmt); // optional
  OMS_ASSERT_MSG(n >= 0 && m >= 0, "negative sizes in METIS header");
  const bool has_edge_weights = (fmt % 10) == 1;
  const bool has_node_weights = (fmt / 10 % 10) == 1;
  OMS_ASSERT_MSG(fmt / 100 % 10 == 0, "multi-weight METIS files are not supported");

  GraphBuilder builder(static_cast<NodeId>(n));
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    // Missing trailing lines mean isolated nodes; treat EOF as empty lines.
    if (!next_data_line(in, line)) {
      break;
    }
    LineTokens tokens(line);
    std::int64_t value = 0;
    if (has_node_weights) {
      OMS_ASSERT_MSG(tokens.next(value), "missing node weight");
      builder.set_node_weight(u, value);
    }
    while (tokens.next(value)) {
      OMS_ASSERT_MSG(value >= 1 && value <= n, "neighbor id out of range");
      const auto v = static_cast<NodeId>(value - 1);
      EdgeWeight w = 1;
      if (has_edge_weights) {
        std::int64_t wt = 0;
        OMS_ASSERT_MSG(tokens.next(wt), "missing edge weight");
        w = wt;
      }
      // METIS lists every edge from both endpoints; record the canonical
      // direction only so GraphBuilder does not double the weights.
      if (u < v) {
        builder.add_edge(u, v, w);
      }
    }
  }
  CsrGraph graph = std::move(builder).build();
  OMS_ASSERT_MSG(graph.num_edges() == static_cast<EdgeIndex>(m),
                 "edge count disagrees with METIS header");
  return graph;
}

void write_binary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  OMS_ASSERT_MSG(out.good(), "cannot open file for writing");
  const std::uint64_t magic = 0x4f4d5347'52415031ULL; // "OMSGRAP1"
  const std::uint64_t n = graph.num_nodes();
  const std::uint64_t arcs = graph.num_arcs();
  const auto write_raw = [&out](const void* data, std::size_t bytes) {
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  };
  write_raw(&magic, sizeof magic);
  write_raw(&n, sizeof n);
  write_raw(&arcs, sizeof arcs);
  write_raw(graph.raw_xadj().data(), graph.raw_xadj().size() * sizeof(EdgeIndex));
  write_raw(graph.raw_adjncy().data(), graph.raw_adjncy().size() * sizeof(NodeId));
  write_raw(graph.raw_adjwgt().data(), graph.raw_adjwgt().size() * sizeof(EdgeWeight));
  write_raw(graph.raw_vwgt().data(), graph.raw_vwgt().size() * sizeof(NodeWeight));
  OMS_ASSERT_MSG(out.good(), "write failure");
}

CsrGraph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  OMS_ASSERT_MSG(in.good(), "cannot open graph file");
  std::uint64_t magic = 0;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  const auto read_raw = [&in](void* data, std::size_t bytes) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    OMS_ASSERT_MSG(in.good(), "truncated binary graph file");
  };
  read_raw(&magic, sizeof magic);
  OMS_ASSERT_MSG(magic == 0x4f4d5347'52415031ULL, "bad magic in binary graph file");
  read_raw(&n, sizeof n);
  read_raw(&arcs, sizeof arcs);
  std::vector<EdgeIndex> xadj(n + 1);
  std::vector<NodeId> adjncy(arcs);
  std::vector<EdgeWeight> adjwgt(arcs);
  std::vector<NodeWeight> vwgt(n);
  read_raw(xadj.data(), xadj.size() * sizeof(EdgeIndex));
  read_raw(adjncy.data(), adjncy.size() * sizeof(NodeId));
  read_raw(adjwgt.data(), adjwgt.size() * sizeof(EdgeWeight));
  read_raw(vwgt.data(), vwgt.size() * sizeof(NodeWeight));
  return CsrGraph(std::move(xadj), std::move(adjncy), std::move(adjwgt),
                  std::move(vwgt));
}

} // namespace oms
