#include "oms/graph/csr_graph.hpp"

#include <algorithm>

namespace oms {

CsrGraph::CsrGraph(std::vector<EdgeIndex> xadj, std::vector<NodeId> adjncy,
                   std::vector<EdgeWeight> adjwgt, std::vector<NodeWeight> vwgt)
    : xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      adjwgt_(std::move(adjwgt)),
      vwgt_(std::move(vwgt)) {
  OMS_ASSERT_MSG(xadj_.size() == vwgt_.size() + 1, "xadj must have n+1 entries");
  OMS_ASSERT_MSG(xadj_.front() == 0, "xadj must start at 0");
  OMS_ASSERT_MSG(xadj_.back() == adjncy_.size(), "xadj must end at |adjncy|");
  OMS_ASSERT_MSG(adjwgt_.size() == adjncy_.size(), "one weight per arc");
  OMS_ASSERT_MSG(adjncy_.size() % 2 == 0, "arcs must pair up into undirected edges");

  for (const NodeWeight w : vwgt_) {
    OMS_ASSERT_MSG(w >= 0, "negative node weight");
    total_node_weight_ += w;
  }
  EdgeWeight arc_weight_sum = 0;
  for (const EdgeWeight w : adjwgt_) {
    OMS_ASSERT_MSG(w > 0, "edge weights must be positive");
    arc_weight_sum += w;
  }
  OMS_ASSERT_MSG(arc_weight_sum % 2 == 0, "asymmetric arc weights");
  total_edge_weight_ = arc_weight_sum / 2;

  for (NodeId u = 0; u < num_nodes(); ++u) {
    max_degree_ = std::max(max_degree_, degree(u));
  }
  OMS_HEAVY_ASSERT((validate(), true));
}

bool CsrGraph::is_unit_weighted() const noexcept {
  const bool nodes_unit =
      std::all_of(vwgt_.begin(), vwgt_.end(), [](NodeWeight w) { return w == 1; });
  const bool edges_unit =
      std::all_of(adjwgt_.begin(), adjwgt_.end(), [](EdgeWeight w) { return w == 1; });
  return nodes_unit && edges_unit;
}

void CsrGraph::validate() const {
  for (NodeId u = 0; u < num_nodes(); ++u) {
    OMS_ASSERT_MSG(xadj_[u] <= xadj_[u + 1], "xadj must be non-decreasing");
    const auto neigh = neighbors(u);
    const auto weights = incident_weights(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const NodeId v = neigh[i];
      OMS_ASSERT_MSG(v < num_nodes(), "neighbor id out of range");
      OMS_ASSERT_MSG(v != u, "self-loop present");
      if (i > 0) {
        OMS_ASSERT_MSG(neigh[i - 1] < v, "adjacency not sorted / parallel edge");
      }
      // Symmetry: find u in N(v) with the same weight.
      const auto back = neighbors(v);
      const auto it = std::lower_bound(back.begin(), back.end(), u);
      OMS_ASSERT_MSG(it != back.end() && *it == u, "missing reverse arc");
      const auto back_pos = static_cast<std::size_t>(it - back.begin());
      OMS_ASSERT_MSG(incident_weights(v)[back_pos] == weights[i],
                     "asymmetric edge weight");
    }
  }
}

std::uint64_t CsrGraph::memory_footprint_bytes() const noexcept {
  return static_cast<std::uint64_t>(xadj_.capacity() * sizeof(EdgeIndex) +
                                    adjncy_.capacity() * sizeof(NodeId) +
                                    adjwgt_.capacity() * sizeof(EdgeWeight) +
                                    vwgt_.capacity() * sizeof(NodeWeight));
}

} // namespace oms
