/// \file graph_builder.hpp
/// \brief Edge-list accumulator that establishes the CsrGraph invariants:
///        it symmetrizes, drops self-loops, merges parallel edges (summing
///        weights), and sorts adjacency lists.
///
/// This mirrors the preprocessing the paper applies to its benchmark graphs
/// ("removing parallel edges, self loops, and directions").
#pragma once

#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/types.hpp"

namespace oms {

class GraphBuilder {
public:
  /// \param num_nodes  final node count; all edge endpoints must be < it.
  explicit GraphBuilder(NodeId num_nodes);

  /// Record an undirected edge {u, v}; direction and duplicates are fine,
  /// self-loops are silently dropped. Weights of duplicates are summed.
  void add_edge(NodeId u, NodeId v, EdgeWeight weight = 1);

  /// Override the (default unit) weight of a node.
  void set_node_weight(NodeId u, NodeWeight weight);

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_recorded_edges() const noexcept {
    return edges_.size();
  }

  /// Produce the finished graph. The builder is consumed.
  [[nodiscard]] CsrGraph build() &&;

private:
  struct Edge {
    NodeId u;
    NodeId v;
    EdgeWeight w;
  };

  NodeId num_nodes_;
  std::vector<Edge> edges_;
  std::vector<NodeWeight> node_weights_;
};

} // namespace oms
