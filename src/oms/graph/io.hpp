/// \file io.hpp
/// \brief Graph serialization: METIS text format (the de-facto standard the
///        paper's benchmark graphs ship in) and a compact binary format used
///        by the disk-streaming experiments.
#pragma once

#include <string>

#include "oms/graph/csr_graph.hpp"

namespace oms {

/// Write in METIS format. The fmt field is chosen automatically:
/// "" for unit weights, "1" for edge weights, "10" for node weights, "11" for
/// both. Node ids are 1-based in the file, per the format.
void write_metis(const CsrGraph& graph, const std::string& path);

/// Read a METIS file produced by write_metis (or any well-formed METIS graph
/// with fmt in {"", "0", "1", "10", "11"}). Comment lines (%) are skipped.
/// Throws oms::IoError (with file:line position) on unopenable paths and
/// malformed content — bad header, non-numeric token, out-of-range neighbor,
/// missing weight, edge count disagreeing with the header.
[[nodiscard]] CsrGraph read_metis(const std::string& path);

/// Compact binary round-trip (little-endian host assumed; this is a cache
/// format, not an interchange format). Version 2 ("OMSGRAP2") appends a
/// CRC-32 over the whole file and the length must match the header exactly.
/// read_binary throws oms::IoError on unopenable paths, bad magic (including
/// unchecksummed v1 files, which must be regenerated), implausible sizes,
/// truncation, trailing garbage, and CRC mismatch.
void write_binary(const CsrGraph& graph, const std::string& path);
[[nodiscard]] CsrGraph read_binary(const std::string& path);

/// Write as a SNAP-style whitespace edge list (`u v` or `u v w` per line,
/// 0-based ids, each undirected edge once with u < v) — the input of
/// EdgeListStream and the vertex-cut partitioners. Unit weights omit the
/// third column.
void write_edge_list(const CsrGraph& graph, const std::string& path);

} // namespace oms
