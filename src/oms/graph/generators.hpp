/// \file generators.hpp
/// \brief Deterministic graph generators standing in for the paper's
///        benchmark families (Table 1): meshes, roads, social networks,
///        citations, web graphs, circuits, and the artificial rggX / delX
///        instances.
///
/// Every generator is pure in its (parameters, seed) inputs, so experiments
/// are reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "oms/graph/csr_graph.hpp"

namespace oms::gen {

/// rows x cols 2D grid mesh (4-neighborhood); \p periodic wraps both axes.
/// Family stand-in: FEM meshes / structured circuits.
[[nodiscard]] CsrGraph grid_2d(NodeId rows, NodeId cols, bool periodic = false);

/// nx x ny x nz 3D grid (6-neighborhood). Family stand-in: volume meshes
/// (ML_Laplace, HV15R style).
[[nodiscard]] CsrGraph grid_3d(NodeId nx, NodeId ny, NodeId nz);

/// Random geometric graph in the unit square: nodes are random points,
/// edges connect pairs closer than \p radius. radius <= 0 selects the
/// paper's rggX default 0.55 * sqrt(ln n / n).
[[nodiscard]] CsrGraph random_geometric(NodeId num_nodes, std::uint64_t seed,
                                        double radius = 0.0);

/// Delaunay triangulation of \p num_nodes random points in the unit square
/// (the paper's delX family). Proper incremental Bowyer-Watson construction;
/// node ids follow a spatially sorted insertion order, giving the id locality
/// the DIMACS instances exhibit.
[[nodiscard]] CsrGraph delaunay(NodeId num_nodes, std::uint64_t seed);

/// Barabasi-Albert preferential attachment with \p edges_per_node out-edges
/// per arriving node. Family stand-in: citation / social networks
/// (coAuthorsDBLP, soc-LiveJournal style degree skew).
[[nodiscard]] CsrGraph barabasi_albert(NodeId num_nodes, NodeId edges_per_node,
                                       std::uint64_t seed);

/// R-MAT with n = 2^scale nodes and ~edge_factor * n undirected edges,
/// default partition probabilities (0.57, 0.19, 0.19, 0.05). Family stand-in:
/// web crawls and netlist-like skewed graphs (eu-2005, FullChip).
[[nodiscard]] CsrGraph rmat(std::uint32_t scale, NodeId edge_factor, std::uint64_t seed,
                            double a = 0.57, double b = 0.19, double c = 0.19);

/// G(n, m) uniform random graph.
[[nodiscard]] CsrGraph erdos_renyi(NodeId num_nodes, EdgeIndex num_edges,
                                   std::uint64_t seed);

/// Watts-Strogatz small world: ring lattice with \p lattice_degree neighbors
/// per side, each edge rewired with probability \p beta.
[[nodiscard]] CsrGraph watts_strogatz(NodeId num_nodes, NodeId lattice_degree,
                                      double beta, std::uint64_t seed);

/// Road-network stand-in (italy-osm style): planar grid with a fraction of
/// edges removed and sparse diagonal shortcuts added, keeping degree ~2-4.
[[nodiscard]] CsrGraph road_network(NodeId rows, NodeId cols, std::uint64_t seed);

} // namespace oms::gen
