/// \file delaunay.cpp
/// \brief Incremental Bowyer-Watson Delaunay triangulation of random points
///        in the unit square — the generator behind the paper's delX family.
///
/// Implementation notes:
///  * points are inserted in spatially sorted (grid snake) order so that the
///    walk-based point location starting from the last created triangle is
///    short, giving near-linear total construction time;
///  * predicates use double arithmetic; random points are in generic
///    position with overwhelming probability, which is sufficient for a
///    workload generator (ties break conservatively);
///  * triangles store, for each corner, the neighbor triangle across the
///    opposite edge, which makes cavity search and re-triangulation O(size
///    of cavity).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "oms/graph/generators.hpp"
#include "oms/graph/graph_builder.hpp"
#include "oms/util/random.hpp"

namespace oms::gen {
namespace {

struct Point {
  double x;
  double y;
};

/// > 0 if (a, b, c) makes a counter-clockwise turn.
double orient(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// > 0 if d lies strictly inside the circumcircle of CCW triangle (a, b, c).
double in_circle(const Point& a, const Point& b, const Point& c, const Point& d) {
  const double adx = a.x - d.x;
  const double ady = a.y - d.y;
  const double bdx = b.x - d.x;
  const double bdy = b.y - d.y;
  const double cdx = c.x - d.x;
  const double cdy = c.y - d.y;
  const double ad = adx * adx + ady * ady;
  const double bd = bdx * bdx + bdy * bdy;
  const double cd = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) +
         ad * (bdx * cdy - bdy * cdx);
}

struct Triangle {
  std::uint32_t v[3];  // corners, CCW
  std::int32_t n[3];   // n[i] = triangle across the edge opposite v[i]; -1 = hull
  bool alive = true;
};

class BowyerWatson {
public:
  explicit BowyerWatson(std::vector<Point> points) : points_(std::move(points)) {
    const auto n = static_cast<std::uint32_t>(points_.size());
    // Super-triangle comfortably containing the unit square.
    points_.push_back({-30.0, -30.0});
    points_.push_back({31.0, -30.0});
    points_.push_back({0.5, 60.0});
    super0_ = n;
    Triangle root{};
    root.v[0] = n;
    root.v[1] = n + 1;
    root.v[2] = n + 2;
    root.n[0] = root.n[1] = root.n[2] = -1;
    triangles_.push_back(root);
  }

  void insert(std::uint32_t p) {
    const std::int32_t start = locate(points_[p]);
    find_cavity(start, p);
    retriangulate(p);
  }

  /// Emit all edges between real (non-super) points.
  template <typename EmitEdge>
  void for_each_edge(EmitEdge&& emit) const {
    for (const Triangle& t : triangles_) {
      if (!t.alive) {
        continue;
      }
      for (int i = 0; i < 3; ++i) {
        const std::uint32_t a = t.v[i];
        const std::uint32_t b = t.v[(i + 1) % 3];
        if (a < b && a < super0_ && b < super0_) {
          emit(a, b);
        }
      }
    }
  }

private:
  /// Walk from the most recently created triangle towards \p p.
  [[nodiscard]] std::int32_t locate(const Point& p) const {
    std::int32_t t = hint_;
    // The walk always terminates for points inside the super-triangle, but a
    // step budget guards against predicate degeneracies; on exhaustion we
    // fall back to a linear scan.
    std::size_t budget = triangles_.size() * 4 + 64;
    while (budget-- > 0) {
      const Triangle& tri = triangles_[static_cast<std::size_t>(t)];
      bool moved = false;
      for (int i = 0; i < 3 && !moved; ++i) {
        const Point& a = points_[tri.v[(i + 1) % 3]];
        const Point& b = points_[tri.v[(i + 2) % 3]];
        if (orient(a, b, p) < 0 && tri.n[i] >= 0) {
          t = tri.n[i];
          moved = true;
        }
      }
      if (!moved) {
        return t;
      }
    }
    for (std::size_t i = 0; i < triangles_.size(); ++i) {
      const Triangle& tri = triangles_[i];
      if (!tri.alive) {
        continue;
      }
      if (orient(points_[tri.v[0]], points_[tri.v[1]], p) >= 0 &&
          orient(points_[tri.v[1]], points_[tri.v[2]], p) >= 0 &&
          orient(points_[tri.v[2]], points_[tri.v[0]], p) >= 0) {
        return static_cast<std::int32_t>(i);
      }
    }
    OMS_ASSERT_MSG(false, "delaunay: point location failed");
    return 0;
  }

  /// BFS over triangles whose circumcircle contains p; records the cavity's
  /// directed boundary edges together with the outside neighbor across each.
  void find_cavity(std::int32_t start, std::uint32_t p) {
    cavity_.clear();
    boundary_.clear();
    stack_.clear();
    stack_.push_back(start);
    triangles_[static_cast<std::size_t>(start)].alive = false;
    cavity_.push_back(start);
    while (!stack_.empty()) {
      const std::int32_t ti = stack_.back();
      stack_.pop_back();
      const Triangle tri = triangles_[static_cast<std::size_t>(ti)];
      for (int i = 0; i < 3; ++i) {
        const std::int32_t over = tri.n[i];
        const std::uint32_t ea = tri.v[(i + 1) % 3];
        const std::uint32_t eb = tri.v[(i + 2) % 3];
        if (over < 0) {
          boundary_.push_back({ea, eb, -1});
          continue;
        }
        Triangle& other = triangles_[static_cast<std::size_t>(over)];
        if (!other.alive) {
          continue; // already part of the cavity
        }
        if (in_circle(points_[other.v[0]], points_[other.v[1]], points_[other.v[2]],
                      points_[p]) > 0) {
          other.alive = false;
          cavity_.push_back(over);
          stack_.push_back(over);
        } else {
          boundary_.push_back({ea, eb, over});
        }
      }
    }
  }

  /// Fan the cavity boundary to p; dead cavity slots are recycled.
  void retriangulate(std::uint32_t p) {
    // For each boundary vertex remember the new triangle waiting for its
    // second p-edge link: vertex -> (triangle index, corner slot).
    link_.clear();
    std::size_t recycle = 0;
    for (const BoundaryEdge& edge : boundary_) {
      std::int32_t ti;
      if (recycle < cavity_.size()) {
        ti = cavity_[recycle++];
      } else {
        ti = static_cast<std::int32_t>(triangles_.size());
        triangles_.emplace_back();
      }
      Triangle& t = triangles_[static_cast<std::size_t>(ti)];
      t.alive = true;
      t.v[0] = edge.a;
      t.v[1] = edge.b;
      t.v[2] = p;
      t.n[2] = edge.outside; // across (a, b)
      t.n[0] = t.n[1] = -1;
      if (edge.outside >= 0) {
        // Fix the back-pointer of the surviving outside triangle.
        Triangle& out = triangles_[static_cast<std::size_t>(edge.outside)];
        for (int i = 0; i < 3; ++i) {
          const std::uint32_t oa = out.v[(i + 1) % 3];
          const std::uint32_t ob = out.v[(i + 2) % 3];
          if ((oa == edge.a && ob == edge.b) || (oa == edge.b && ob == edge.a)) {
            out.n[i] = ti;
            break;
          }
        }
      }
      // New triangle edges touching p: (b, p) opposite corner 0 and (p, a)
      // opposite corner 1. Each boundary vertex appears in exactly two
      // boundary edges, so matching by vertex links the fan.
      link_fan(edge.b, ti, 0);
      link_fan(edge.a, ti, 1);
      hint_ = ti;
    }
    // Any unrecycled cavity slots stay dead (tombstones; cheap and simple).
  }

  void link_fan(std::uint32_t vertex, std::int32_t ti, int slot) {
    const auto it = link_.find(vertex);
    if (it == link_.end()) {
      link_.emplace(vertex, std::pair<std::int32_t, int>{ti, slot});
      return;
    }
    const auto [other_ti, other_slot] = it->second;
    triangles_[static_cast<std::size_t>(ti)].n[slot] = other_ti;
    triangles_[static_cast<std::size_t>(other_ti)].n[other_slot] = ti;
    link_.erase(it);
  }

  struct BoundaryEdge {
    std::uint32_t a;
    std::uint32_t b;
    std::int32_t outside;
  };

  std::vector<Point> points_;
  std::vector<Triangle> triangles_;
  std::uint32_t super0_ = 0;
  std::int32_t hint_ = 0;
  std::vector<std::int32_t> cavity_;
  std::vector<BoundaryEdge> boundary_;
  std::vector<std::int32_t> stack_;
  std::unordered_map<std::uint32_t, std::pair<std::int32_t, int>> link_;
};

} // namespace

CsrGraph delaunay(NodeId num_nodes, std::uint64_t seed) {
  OMS_ASSERT(num_nodes >= 3);
  Rng rng(seed);
  std::vector<Point> points(num_nodes);
  for (auto& p : points) {
    p = {rng.next_double(), rng.next_double()};
  }

  // Spatial snake sort: grid cells left-to-right, alternating row direction.
  // Insertion locality keeps the location walks short, and the sorted order
  // becomes the node id order (id locality like the DIMACS instances).
  const auto cells = static_cast<std::uint32_t>(
      std::max(1.0, std::sqrt(static_cast<double>(num_nodes) / 4.0)));
  std::vector<std::uint32_t> order(num_nodes);
  for (NodeId i = 0; i < num_nodes; ++i) {
    order[i] = i;
  }
  const auto cell_key = [&](std::uint32_t i) {
    auto cx = static_cast<std::uint64_t>(points[i].x * cells);
    auto cy = static_cast<std::uint64_t>(points[i].y * cells);
    cx = std::min<std::uint64_t>(cx, cells - 1);
    cy = std::min<std::uint64_t>(cy, cells - 1);
    const std::uint64_t col = (cy % 2 == 0) ? cx : (cells - 1 - cx);
    return cy * cells + col;
  };
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return cell_key(a) < cell_key(b);
  });
  std::vector<Point> sorted(num_nodes);
  for (NodeId i = 0; i < num_nodes; ++i) {
    sorted[i] = points[order[i]];
  }

  BowyerWatson bw(std::move(sorted));
  for (NodeId i = 0; i < num_nodes; ++i) {
    bw.insert(i);
  }

  GraphBuilder builder(num_nodes);
  bw.for_each_edge([&](std::uint32_t a, std::uint32_t b) { builder.add_edge(a, b); });
  return std::move(builder).build();
}

} // namespace oms::gen
