#include "oms/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "oms/graph/graph_builder.hpp"
#include "oms/util/random.hpp"

namespace oms::gen {

CsrGraph grid_2d(NodeId rows, NodeId cols, bool periodic) {
  OMS_ASSERT(rows >= 1 && cols >= 1);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  GraphBuilder builder(rows * cols);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        builder.add_edge(id(r, c), id(r, c + 1));
      } else if (periodic && cols > 2) {
        builder.add_edge(id(r, c), id(r, 0));
      }
      if (r + 1 < rows) {
        builder.add_edge(id(r, c), id(r + 1, c));
      } else if (periodic && rows > 2) {
        builder.add_edge(id(r, c), id(0, c));
      }
    }
  }
  return std::move(builder).build();
}

CsrGraph grid_3d(NodeId nx, NodeId ny, NodeId nz) {
  OMS_ASSERT(nx >= 1 && ny >= 1 && nz >= 1);
  const auto id = [ny, nz](NodeId x, NodeId y, NodeId z) {
    return (x * ny + y) * nz + z;
  };
  GraphBuilder builder(nx * ny * nz);
  for (NodeId x = 0; x < nx; ++x) {
    for (NodeId y = 0; y < ny; ++y) {
      for (NodeId z = 0; z < nz; ++z) {
        if (x + 1 < nx) {
          builder.add_edge(id(x, y, z), id(x + 1, y, z));
        }
        if (y + 1 < ny) {
          builder.add_edge(id(x, y, z), id(x, y + 1, z));
        }
        if (z + 1 < nz) {
          builder.add_edge(id(x, y, z), id(x, y, z + 1));
        }
      }
    }
  }
  return std::move(builder).build();
}

CsrGraph random_geometric(NodeId num_nodes, std::uint64_t seed, double radius) {
  OMS_ASSERT(num_nodes >= 2);
  if (radius <= 0.0) {
    radius = 0.55 * std::sqrt(std::log(static_cast<double>(num_nodes)) /
                              static_cast<double>(num_nodes));
  }
  Rng rng(seed);
  std::vector<double> xs(num_nodes);
  std::vector<double> ys(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    xs[u] = rng.next_double();
    ys[u] = rng.next_double();
  }

  // Bucket points into cells of side >= radius; only 3x3 neighborhoods can
  // contain edges, which keeps generation near-linear.
  const auto cells = static_cast<NodeId>(std::max(1.0, std::floor(1.0 / radius)));
  const double cell_size = 1.0 / static_cast<double>(cells);
  std::vector<std::vector<NodeId>> buckets(static_cast<std::size_t>(cells) * cells);
  const auto cell_of = [&](NodeId u) {
    auto cx = static_cast<NodeId>(xs[u] / cell_size);
    auto cy = static_cast<NodeId>(ys[u] / cell_size);
    cx = std::min(cx, cells - 1);
    cy = std::min(cy, cells - 1);
    return std::pair<NodeId, NodeId>{cx, cy};
  };
  for (NodeId u = 0; u < num_nodes; ++u) {
    const auto [cx, cy] = cell_of(u);
    buckets[cx * cells + cy].push_back(u);
  }

  GraphBuilder builder(num_nodes);
  const double radius_sq = radius * radius;
  for (NodeId u = 0; u < num_nodes; ++u) {
    const auto [cx, cy] = cell_of(u);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const auto nx = static_cast<std::int64_t>(cx) + dx;
        const auto ny = static_cast<std::int64_t>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) {
          continue;
        }
        for (const NodeId v : buckets[static_cast<std::size_t>(nx) * cells +
                                      static_cast<std::size_t>(ny)]) {
          if (v <= u) {
            continue; // each pair once
          }
          const double ddx = xs[u] - xs[v];
          const double ddy = ys[u] - ys[v];
          if (ddx * ddx + ddy * ddy <= radius_sq) {
            builder.add_edge(u, v);
          }
        }
      }
    }
  }
  return std::move(builder).build();
}

CsrGraph barabasi_albert(NodeId num_nodes, NodeId edges_per_node, std::uint64_t seed) {
  OMS_ASSERT(edges_per_node >= 1);
  OMS_ASSERT(num_nodes > edges_per_node);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);

  // "Repeated nodes" implementation: endpoints picks a node with probability
  // proportional to its current degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(num_nodes) * edges_per_node * 2);

  // Seed clique over the first edges_per_node + 1 nodes.
  for (NodeId u = 0; u <= edges_per_node; ++u) {
    for (NodeId v = u + 1; v <= edges_per_node; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<NodeId> chosen;
  for (NodeId u = edges_per_node + 1; u < num_nodes; ++u) {
    chosen.clear();
    while (chosen.size() < edges_per_node) {
      const NodeId target = endpoints[rng.next_below(endpoints.size())];
      chosen.insert(target); // set-semantics avoids parallel edges
    }
    for (const NodeId v : chosen) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return std::move(builder).build();
}

CsrGraph rmat(std::uint32_t scale, NodeId edge_factor, std::uint64_t seed, double a,
              double b, double c) {
  OMS_ASSERT(scale >= 1 && scale < 31);
  OMS_ASSERT(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0);
  const NodeId n = NodeId{1} << scale;
  const auto target_edges = static_cast<EdgeIndex>(n) * edge_factor;
  Rng rng(seed);
  GraphBuilder builder(n);
  for (EdgeIndex e = 0; e < target_edges; ++e) {
    NodeId u = 0;
    NodeId v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      // Mild per-level noise keeps the degree distribution from collapsing
      // into exact powers of two (standard Graph500-style smoothing).
      const double noise = 0.95 + 0.1 * rng.next_double();
      const double p = rng.next_double();
      const double aa = a * noise;
      const double bb = b * noise;
      const double cc = c * noise;
      u <<= 1;
      v <<= 1;
      if (p < aa) {
        // top-left: no bits set
      } else if (p < aa + bb) {
        v |= 1;
      } else if (p < aa + bb + cc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) {
      builder.add_edge(u, v); // duplicates merge in the builder
    }
  }
  return std::move(builder).build();
}

CsrGraph erdos_renyi(NodeId num_nodes, EdgeIndex num_edges, std::uint64_t seed) {
  OMS_ASSERT(num_nodes >= 2);
  const auto max_edges =
      static_cast<EdgeIndex>(num_nodes) * (num_nodes - 1) / 2;
  OMS_ASSERT_MSG(num_edges <= max_edges / 2,
                 "erdos_renyi: rejection sampling needs density <= 1/2");
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    const auto u = static_cast<NodeId>(rng.next_below(num_nodes));
    const auto v = static_cast<NodeId>(rng.next_below(num_nodes));
    if (u == v) {
      continue;
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
                              std::max(u, v);
    if (seen.insert(key).second) {
      builder.add_edge(u, v);
    }
  }
  return std::move(builder).build();
}

CsrGraph watts_strogatz(NodeId num_nodes, NodeId lattice_degree, double beta,
                        std::uint64_t seed) {
  OMS_ASSERT(num_nodes > 2 * lattice_degree);
  OMS_ASSERT(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  std::unordered_set<std::uint64_t> present;
  const auto key = [](NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
  };
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId j = 1; j <= lattice_degree; ++j) {
      const NodeId v = (u + j) % num_nodes;
      edges.emplace_back(u, v);
      present.insert(key(u, v));
    }
  }
  for (auto& [u, v] : edges) {
    if (!rng.next_bool(beta)) {
      continue;
    }
    // Rewire the far endpoint to a uniform non-neighbor.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto w = static_cast<NodeId>(rng.next_below(num_nodes));
      if (w == u || w == v || present.contains(key(u, w))) {
        continue;
      }
      present.erase(key(u, v));
      present.insert(key(u, w));
      v = w;
      break;
    }
  }
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) {
    builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

CsrGraph road_network(NodeId rows, NodeId cols, std::uint64_t seed) {
  OMS_ASSERT(rows >= 2 && cols >= 2);
  Rng rng(seed);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  GraphBuilder builder(rows * cols);
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      // Keep ~88% of grid edges: sparse, mostly-degree-<=4, road-like.
      if (c + 1 < cols && !rng.next_bool(0.12)) {
        builder.add_edge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows && !rng.next_bool(0.12)) {
        builder.add_edge(id(r, c), id(r + 1, c));
      }
      // Occasional diagonal shortcut (highway ramps, bridges).
      if (r + 1 < rows && c + 1 < cols && rng.next_bool(0.03)) {
        builder.add_edge(id(r, c), id(r + 1, c + 1));
      }
    }
  }
  return std::move(builder).build();
}

} // namespace oms::gen
