/// \file oms.hpp
/// \brief The public umbrella header.
///
/// One include for downstream users and the bundled tools: the unified
/// partitioning API (PartitionRequest -> Partitioner -> PartitionArtifact),
/// the artifact snapshot format, the service protocol behind oms_serve, the
/// shared CLI front end, and the error types of both failure channels.
/// Internal subsystem headers (drivers, partitioner internals, streams)
/// remain includable individually, but new code should not need them:
/// everything below is the supported surface.
#pragma once

#include "oms/api/partition_artifact.hpp" // the immutable result + snapshot io
#include "oms/api/partition_request.hpp"  // the one request struct + InvalidRequest
#include "oms/api/partitioner.hpp"        // the facade: partition(request)
#include "oms/cli/parse_request.hpp"      // flags -> PartitionRequest + UsageError
#include "oms/graph/io.hpp"               // read_metis / write_metis / binary cache
#include "oms/partition/metrics.hpp"      // edge_cut / imbalance / mapping_cost / ...
#include "oms/service/client.hpp"         // ServiceClient: self-healing daemon client
#include "oms/service/protocol.hpp"       // the oms_serve wire protocol
#include "oms/service/service.hpp"        // PartitionService + serve loops
#include "oms/telemetry/metrics.hpp"      // MetricsRegistry / TraceSpan / hooks
#include "oms/telemetry/progress.hpp"     // --progress stderr heartbeat
#include "oms/util/io_error.hpp"          // IoError / ContentError
