/// \file service.hpp
/// \brief Partition-as-a-service: a PartitionArtifact served over the frame
///        protocol of protocol.hpp.
///
/// PartitionService::handle() is the pure core — request body in, reply body
/// out, never throws, no I/O except an explicit kSnapshot — so the whole
/// malformed-frame matrix is testable without a socket. The serve_* loops
/// add the transport: a single blocking fd pair (stdin/stdout) or a
/// Unix-domain socket with one thread per connection. Lookups touch only the
/// immutable artifact, so concurrent connections need no locking; the only
/// shared mutable state is the served-requests counter (relaxed atomic).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "oms/api/partition_artifact.hpp"

namespace oms::service {

/// A reply body plus the connection-control verdict the transport obeys.
struct Reply {
  std::vector<char> body;
  bool shutdown = false; ///< kShutdown acknowledged: stop the whole server
};

class PartitionService {
public:
  /// Takes ownership of the artifact; the service answers from it verbatim.
  explicit PartitionService(PartitionArtifact artifact)
      : artifact_(std::move(artifact)) {}

  [[nodiscard]] const PartitionArtifact& artifact() const noexcept {
    return artifact_;
  }

  /// Answer one request body (the frame payload, without the length prefix).
  /// Total function: malformed bodies yield typed error replies (kBadFrame /
  /// kBadOp / kOutOfRange / kIo), never an exception. Thread-safe.
  [[nodiscard]] Reply handle(const char* body, std::size_t size) const;

  /// Requests answered so far (any status), across all connections.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

private:
  PartitionArtifact artifact_;
  mutable std::atomic<std::uint64_t> requests_{0};
};

/// Serve one blocking connection: read frames from \p in_fd, write replies
/// to \p out_fd until EOF, an unrecoverable framing violation (oversized
/// length prefix — an error reply is sent first), or kShutdown.
/// Returns true iff kShutdown was received (the caller stops the server).
bool serve_stream(const PartitionService& service, int in_fd, int out_fd);

/// Bind \p socket_path (an existing stale socket file is replaced), accept
/// connections with one serve_stream thread each, and return once any
/// connection sends kShutdown. Throws oms::IoError on socket setup failure.
void serve_unix_socket(const PartitionService& service,
                       const std::string& socket_path);

} // namespace oms::service
