/// \file service.hpp
/// \brief Partition-as-a-service: a PartitionArtifact served over the frame
///        protocol of protocol.hpp, hardened for long-lived daemons.
///
/// PartitionService::handle() is the pure core — request body in, reply body
/// out, never throws, no I/O except an explicit kSnapshot — so the whole
/// malformed-frame matrix is testable without a socket. The serve_* loops
/// add the transport and its production armor:
///
///  * Bounded connections: serve_unix_socket admits at most
///    ServeOptions::max_conns concurrent sessions. Excess connections get a
///    single unsolicited kOverloaded reply and a close — accept-time
///    admission control instead of unbounded thread spawning. Finished
///    worker threads are reaped eagerly on every accept-loop pass, so a
///    long-lived daemon holds at most max_conns thread handles.
///  * Deadlines: ServeOptions/SessionOptions::idle_timeout_ms converts a
///    slow-loris or dead-peer connection into a clean close (counted in the
///    service.timeouts metric) instead of a worker parked forever in read().
///  * Graceful drain: request_drain() (async-signal-safe; oms_serve calls it
///    from its SIGTERM/SIGINT handlers) stops admission, answers in-flight
///    requests, replies kShuttingDown to frames and connections arriving
///    after the drain began, then lets the serve loops return cleanly.
///  * Socket liveness probe: serve_unix_socket refuses to unlink a socket
///    path another live daemon is accepting on — only genuinely stale
///    sockets (dead owner) are replaced.
///  * Torn clients: reply writes use MSG_NOSIGNAL on sockets (and oms_serve
///    ignores SIGPIPE), so a client hanging up mid-reply costs one
///    connection, not the process.
///
/// Lookups touch only the immutable artifact, so concurrent connections need
/// no locking; the only shared mutable state is the served-requests counter
/// (relaxed atomic) and the connection-slot bookkeeping of the accept loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "oms/api/partition_artifact.hpp"

namespace oms::service {

/// A reply body plus the connection-control verdict the transport obeys.
struct Reply {
  std::vector<char> body;
  bool shutdown = false; ///< kShutdown acknowledged: stop the whole server
};

class PartitionService {
public:
  /// Takes ownership of the artifact; the service answers from it verbatim.
  explicit PartitionService(PartitionArtifact artifact)
      : artifact_(std::move(artifact)) {}

  [[nodiscard]] const PartitionArtifact& artifact() const noexcept {
    return artifact_;
  }

  /// Answer one request body (the frame payload, without the length prefix).
  /// Total function: malformed bodies yield typed error replies (kBadFrame /
  /// kBadOp / kOutOfRange / kIo), never an exception. Thread-safe.
  [[nodiscard]] Reply handle(const char* body, std::size_t size) const;

  /// Requests answered so far (any status), across all connections.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

private:
  PartitionArtifact artifact_;
  mutable std::atomic<std::uint64_t> requests_{0};
};

// --- graceful drain ---------------------------------------------------------

/// Ask every serve loop in the process to drain: stop admitting, answer
/// in-flight requests, reply kShuttingDown to anything new, return.
/// Async-signal-safe (one relaxed atomic store) — the intended caller is a
/// SIGTERM/SIGINT handler.
void request_drain() noexcept;

/// True once request_drain() was called (and until reset_drain()).
[[nodiscard]] bool drain_requested() noexcept;

/// Re-arm after a drain (tests; a drained daemon process simply exits).
void reset_drain() noexcept;

// --- transports -------------------------------------------------------------

/// Per-session knobs shared by both transports.
struct SessionOptions {
  /// Maximum milliseconds to sit idle between frames (or mid-frame without
  /// progress) before the connection is closed; 0 = wait forever.
  int idle_timeout_ms = 0;
  /// Optional per-server stop flag (the socket transport passes its own);
  /// treated like a drain once set.
  const std::atomic<bool>* stop = nullptr;
};

/// Serve one blocking connection: read frames from \p in_fd, write replies
/// to \p out_fd until EOF, an idle-deadline expiry, a drain, an
/// unrecoverable framing violation (oversized length prefix — an error reply
/// is sent first), or kShutdown. Returns true iff kShutdown was received
/// (the caller stops the server).
bool serve_stream(const PartitionService& service, int in_fd, int out_fd,
                  const SessionOptions& options);
bool serve_stream(const PartitionService& service, int in_fd, int out_fd);

/// Accept-loop configuration of the Unix-socket transport.
struct ServeOptions {
  int max_conns = 64;      ///< concurrent session cap (shed kOverloaded past it)
  int idle_timeout_ms = 0; ///< per-session deadline; 0 = none
  int backlog = 16;        ///< listen(2) backlog
};

/// Bind \p socket_path (a genuinely stale socket file is replaced; a socket
/// another live daemon still answers on is refused with IoError), accept
/// connections into a bounded pool of serve_stream workers, and return once
/// any connection sends kShutdown or a drain was requested and every
/// in-flight session finished. Throws oms::IoError on socket setup failure.
void serve_unix_socket(const PartitionService& service,
                       const std::string& socket_path,
                       const ServeOptions& options);
void serve_unix_socket(const PartitionService& service,
                       const std::string& socket_path);

} // namespace oms::service
