/// \file protocol.hpp
/// \brief The oms_serve wire protocol: length-prefixed binary frames over a
///        byte stream (Unix socket or stdin/stdout).
///
/// Frame:   u32 body_len (little-endian) | body_len bytes
/// Request: u32 opcode | operands
/// Reply:   u32 status | payload
///
/// Requests (operands -> OK payload):
///   kWhere    u64 id            -> u32 block
///   kRank     u64 id            -> u32 leaf id in the multisection tree
///   kBatch    u32 n, n x u64 id -> u32 n, n x u32 block (kInvalidEntry
///                                  for out-of-range ids; a batch never
///                                  fails item-wise)
///   kStats    (none)            -> u32 edge_partition, u32 k, u64 items,
///                                  u64 num_nodes, u64 num_edges,
///                                  u64 requests_served, f64 elapsed_s,
///                                  string algo
///   kSnapshot string path       -> (empty; artifact persisted to path)
///   kShutdown (none)            -> (empty; server stops after the reply)
///   kMetrics  (none)            -> string json ("oms.metrics.v1" document
///                                  scraped from the armed MetricsRegistry;
///                                  all-zero when telemetry is disarmed)
///
/// strings are u32 byte length + bytes (CheckpointWriter::put_string).
/// Every error reply carries string message after the status. Malformed
/// input of any kind gets a *typed error reply*, never a crash: truncated
/// or trailing operand bytes -> kBadFrame, an unknown opcode -> kBadOp, a
/// single out-of-range id -> kOutOfRange, a body length over kMaxFrameBytes
/// -> kTooLarge (after which the connection closes — an oversized length
/// prefix cannot be resynchronized), a failed snapshot write -> kIo.
///
/// Two statuses are *admission verdicts* rather than answers to a request,
/// and both are followed by the server closing the connection:
///   kOverloaded   — the daemon is at --max-conns; sent once, unsolicited,
///                   immediately after accept. Retry later (ServiceClient
///                   backs off and reconnects automatically).
///   kShuttingDown — the daemon is draining (SIGTERM/SIGINT or a SHUTDOWN
///                   frame elsewhere): sent to connections accepted during
///                   the drain and to any frame arriving on an established
///                   session after the drain began. In-flight requests are
///                   still answered normally. Do not retry against this
///                   socket; the daemon exits once in-flight work finishes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace oms::service {

/// Upper bound on a frame body; a length prefix beyond it is a protocol
/// violation (kTooLarge), not an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class Op : std::uint32_t {
  kWhere = 1,
  kRank = 2,
  kBatch = 3,
  kStats = 4,
  kSnapshot = 5,
  kShutdown = 6,
  kMetrics = 7,
};

enum class Status : std::uint32_t {
  kOk = 0,
  kBadFrame = 1,     ///< body truncated, trailing bytes, or too short
  kBadOp = 2,        ///< unknown opcode
  kOutOfRange = 3,   ///< kWhere/kRank id outside the artifact
  kTooLarge = 4,     ///< frame body length over kMaxFrameBytes
  kIo = 5,           ///< snapshot write failed
  kOverloaded = 6,   ///< shed at accept: the daemon is at --max-conns (retry)
  kShuttingDown = 7, ///< the daemon is draining; connection closes (no retry)
};

/// Stable lower-case name of a status ("ok", "overloaded", ...) for client
/// diagnostics and logs; "unknown" for values outside the enum.
[[nodiscard]] const char* status_name(Status status) noexcept;

/// Per-item sentinel in kBatch replies for ids outside the artifact.
inline constexpr std::uint32_t kInvalidEntry = 0xffffffffu;

// --- client-side encoders (tests, bench, scripted sessions) ----------------

/// Wrap a request/reply body in its length-prefixed frame.
[[nodiscard]] std::vector<char> frame(std::span<const char> body);

[[nodiscard]] std::vector<char> encode_where(std::uint64_t id);
[[nodiscard]] std::vector<char> encode_rank(std::uint64_t id);
[[nodiscard]] std::vector<char> encode_batch(std::span<const std::uint64_t> ids);
[[nodiscard]] std::vector<char> encode_stats();
[[nodiscard]] std::vector<char> encode_snapshot(const std::string& path);
[[nodiscard]] std::vector<char> encode_shutdown();
[[nodiscard]] std::vector<char> encode_metrics();

} // namespace oms::service
