#include "oms/service/protocol.hpp"

#include "oms/stream/checkpoint.hpp"

namespace oms::service {
namespace {

[[nodiscard]] std::vector<char> op_only(Op op) {
  CheckpointWriter w;
  w.put_u32(static_cast<std::uint32_t>(op));
  return w.bytes();
}

} // namespace

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadFrame: return "bad-frame";
    case Status::kBadOp: return "bad-op";
    case Status::kOutOfRange: return "out-of-range";
    case Status::kTooLarge: return "too-large";
    case Status::kIo: return "io";
    case Status::kOverloaded: return "overloaded";
    case Status::kShuttingDown: return "shutting-down";
  }
  return "unknown";
}

std::vector<char> frame(std::span<const char> body) {
  CheckpointWriter w;
  w.put_u32(static_cast<std::uint32_t>(body.size()));
  w.put_raw(body.data(), body.size());
  return w.bytes();
}

std::vector<char> encode_where(std::uint64_t id) {
  CheckpointWriter w;
  w.put_u32(static_cast<std::uint32_t>(Op::kWhere));
  w.put_u64(id);
  return w.bytes();
}

std::vector<char> encode_rank(std::uint64_t id) {
  CheckpointWriter w;
  w.put_u32(static_cast<std::uint32_t>(Op::kRank));
  w.put_u64(id);
  return w.bytes();
}

std::vector<char> encode_batch(std::span<const std::uint64_t> ids) {
  CheckpointWriter w;
  w.put_u32(static_cast<std::uint32_t>(Op::kBatch));
  w.put_u32(static_cast<std::uint32_t>(ids.size()));
  for (const std::uint64_t id : ids) {
    w.put_u64(id);
  }
  return w.bytes();
}

std::vector<char> encode_stats() { return op_only(Op::kStats); }

std::vector<char> encode_snapshot(const std::string& path) {
  CheckpointWriter w;
  w.put_u32(static_cast<std::uint32_t>(Op::kSnapshot));
  w.put_string(path);
  return w.bytes();
}

std::vector<char> encode_shutdown() { return op_only(Op::kShutdown); }

std::vector<char> encode_metrics() { return op_only(Op::kMetrics); }

} // namespace oms::service
