#include "oms/service/service.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include "oms/service/protocol.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/telemetry/metrics.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"

namespace oms::service {
namespace {

[[nodiscard]] std::vector<char> error_reply(Status status,
                                            const std::string& message) {
  CheckpointWriter w;
  w.put_u32(static_cast<std::uint32_t>(status));
  w.put_string(message);
  return w.bytes();
}

/// Per-opcode telemetry counter. A request counts under its opcode as soon
/// as the opcode parses (typed error replies included); frames too short to
/// carry one, and unknown opcodes, count as invalid.
[[nodiscard]] telemetry::Counter op_counter(Op op) noexcept {
  switch (op) {
    case Op::kWhere: return telemetry::Counter::kServiceReqWhere;
    case Op::kRank: return telemetry::Counter::kServiceReqRank;
    case Op::kBatch: return telemetry::Counter::kServiceReqBatch;
    case Op::kStats: return telemetry::Counter::kServiceReqStats;
    case Op::kSnapshot: return telemetry::Counter::kServiceReqSnapshot;
    case Op::kShutdown: return telemetry::Counter::kServiceReqShutdown;
    case Op::kMetrics: return telemetry::Counter::kServiceReqMetrics;
  }
  return telemetry::Counter::kServiceReqInvalid;
}

} // namespace

Reply PartitionService::handle(const char* body, std::size_t size) const {
  const telemetry::TraceSpan span(telemetry::Hist::kServiceRequest);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Reply reply;
  CheckpointReader r(body, size);
  CheckpointWriter ok;
  ok.put_u32(static_cast<std::uint32_t>(Status::kOk));
  std::string snapshot_path;
  try {
    // Operand parsing rides the bounds-checked CheckpointReader: a short
    // body throws IoError from any get_*, trailing bytes from expect_end —
    // both are kBadFrame. No operand escapes validation before use.
    const auto op = static_cast<Op>(r.get_u32());
    telemetry::metric_add(op_counter(op));
    switch (op) {
      case Op::kWhere:
      case Op::kRank: {
        const std::uint64_t id = r.get_u64();
        r.expect_end();
        const std::int64_t answer = op == Op::kWhere
                                        ? static_cast<std::int64_t>(artifact_.where(id))
                                        : artifact_.rank_of(id);
        if (answer < 0) {
          reply.body = error_reply(
              Status::kOutOfRange,
              "id " + std::to_string(id) + " outside the artifact (holds " +
                  std::to_string(artifact_.assignment.size()) + " items)");
          return reply;
        }
        ok.put_u32(static_cast<std::uint32_t>(answer));
        break;
      }
      case Op::kBatch: {
        const std::uint32_t count = r.get_u32();
        // 8 bytes per id: a count the body cannot actually hold is a framing
        // lie, caught before any allocation sized by it.
        if (std::uint64_t{count} * 8 > r.remaining()) {
          throw IoError("batch count larger than the frame body");
        }
        ok.put_u32(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const BlockId b = artifact_.where(r.get_u64());
          ok.put_u32(b == kInvalidBlock ? kInvalidEntry
                                        : static_cast<std::uint32_t>(b));
        }
        r.expect_end();
        break;
      }
      case Op::kStats: {
        r.expect_end();
        ok.put_u32(artifact_.edge_partition ? 1 : 0);
        ok.put_u32(static_cast<std::uint32_t>(artifact_.k));
        ok.put_u64(artifact_.assignment.size());
        ok.put_u64(artifact_.num_nodes);
        ok.put_u64(artifact_.num_edges);
        ok.put_u64(requests_served());
        ok.put_f64(artifact_.elapsed_s);
        ok.put_string(artifact_.algo);
        break;
      }
      case Op::kSnapshot: {
        snapshot_path = r.get_string();
        r.expect_end();
        break; // the write happens below, outside the kBadFrame catch
      }
      case Op::kShutdown: {
        r.expect_end();
        reply.shutdown = true;
        break;
      }
      case Op::kMetrics: {
        r.expect_end();
        // The reply is always a valid "oms.metrics.v1" document; a daemon
        // running without telemetry armed reports all-zero metrics rather
        // than an error, so clients need no capability probe.
        const telemetry::MetricsRegistry* reg =
            telemetry::MetricsRegistry::armed();
        const telemetry::MetricsSnapshot snap =
            reg != nullptr ? reg->scrape() : telemetry::MetricsSnapshot{};
        ok.put_string(snap.to_json());
        break;
      }
      default:
        reply.body = error_reply(
            Status::kBadOp,
            "unknown opcode " + std::to_string(static_cast<std::uint32_t>(op)));
        return reply;
    }
  } catch (const IoError& e) {
    telemetry::metric_add(telemetry::Counter::kServiceReqInvalid);
    reply.body = error_reply(Status::kBadFrame, e.what());
    reply.shutdown = false; // a malformed kShutdown shuts nothing down
    return reply;
  }
  if (!snapshot_path.empty()) {
    try {
      write_artifact(artifact_, snapshot_path);
    } catch (const IoError& e) {
      reply.body = error_reply(Status::kIo, e.what());
      return reply;
    }
  }
  reply.body = ok.bytes();
  return reply;
}

// --- graceful drain ---------------------------------------------------------

namespace {
/// Process-global drain latch: one relaxed store from a signal handler flips
/// every serve loop into drain mode at its next poll slice.
std::atomic<bool> g_drain{false};
} // namespace

void request_drain() noexcept { g_drain.store(true, std::memory_order_relaxed); }

bool drain_requested() noexcept {
  return g_drain.load(std::memory_order_relaxed);
}

void reset_drain() noexcept { g_drain.store(false, std::memory_order_relaxed); }

// --- transport helpers ------------------------------------------------------

namespace {

/// Granularity of every blocking wait: deadlines and the drain latch are
/// re-checked at least this often, so a drain never waits on a silent peer.
constexpr int kPollSliceMs = 25;

[[nodiscard]] bool session_draining(const SessionOptions& options) noexcept {
  return drain_requested() ||
         (options.stop != nullptr &&
          options.stop->load(std::memory_order_acquire));
}

enum class ReadStatus {
  kOk,      ///< all requested bytes arrived
  kClosed,  ///< EOF or read error: the peer is gone
  kTimeout, ///< the idle deadline expired without progress
  kDrain,   ///< a drain began before the first byte arrived
};

/// Read exactly \p bytes with the session's idle deadline and the drain
/// latch enforced at poll granularity. The deadline is per-progress: any
/// arriving byte resets it (a slow-but-alive peer survives, a stalled one
/// does not). \p drain_breaks is set only at a frame boundary — once a
/// frame's first byte arrived, the frame is in flight and drains wait for it.
[[nodiscard]] ReadStatus read_exact(int fd, void* out, std::size_t bytes,
                                    const SessionOptions& options,
                                    bool drain_breaks) {
  auto* cur = static_cast<char*>(out);
  int idle_ms = 0;
  while (bytes > 0) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) {
        continue; // the next pass re-checks the drain latch
      }
      return ReadStatus::kClosed;
    }
    if (ready == 0) {
      if (drain_breaks && session_draining(options)) {
        return ReadStatus::kDrain;
      }
      idle_ms += kPollSliceMs;
      if (options.idle_timeout_ms > 0 && idle_ms >= options.idle_timeout_ms) {
        return ReadStatus::kTimeout;
      }
      continue;
    }
    if (fault_fires(FaultSite::kSvcRead)) {
      return ReadStatus::kClosed; // injected torn read
    }
    const ssize_t got = ::read(fd, cur, bytes);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) {
        continue;
      }
      return ReadStatus::kClosed;
    }
    cur += got;
    bytes -= static_cast<std::size_t>(got);
    idle_ms = 0;
    drain_breaks = false; // the frame is in flight now; finish it
  }
  return ReadStatus::kOk;
}

/// True iff \p fd is a socket — reply writes on sockets use MSG_NOSIGNAL so
/// a peer that hung up mid-reply yields EPIPE, not a process-killing SIGPIPE.
/// (Pipes cannot take MSG_NOSIGNAL; oms_serve additionally ignores SIGPIPE
/// process-wide for its stdio transport.)
[[nodiscard]] bool fd_is_socket(int fd) noexcept {
  int type = 0;
  socklen_t len = sizeof type;
  return ::getsockopt(fd, SOL_SOCKET, SO_TYPE, &type, &len) == 0;
}

[[nodiscard]] bool write_all(int fd, const void* data, std::size_t bytes,
                             bool is_socket) {
  if (fault_fires(FaultSite::kSvcWrite)) {
    return false; // injected torn write: the caller drops the connection
  }
  const auto* cur = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t put = is_socket ? ::send(fd, cur, bytes, MSG_NOSIGNAL)
                                  : ::write(fd, cur, bytes);
    if (put <= 0) {
      if (put < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    cur += put;
    bytes -= static_cast<std::size_t>(put);
  }
  return true;
}

[[nodiscard]] bool send_reply(int fd, const std::vector<char>& body,
                              bool is_socket) {
  const std::vector<char> framed = frame(body);
  return write_all(fd, framed.data(), framed.size(), is_socket);
}

/// The kShuttingDown close of a session or a drained-off accept.
void send_drain_reply(int fd, bool is_socket) {
  telemetry::metric_add(telemetry::Counter::kServiceDrains);
  (void)send_reply(fd,
                   error_reply(Status::kShuttingDown,
                               "daemon is draining; no new requests accepted"),
                   is_socket);
}

} // namespace

bool serve_stream(const PartitionService& service, int in_fd, int out_fd,
                  const SessionOptions& options) {
  const bool out_is_socket = fd_is_socket(out_fd);
  std::vector<char> body;
  for (;;) {
    // Frame boundary: the drain decision point. Everything accepted before
    // this line is in flight and gets answered; everything after is refused.
    if (session_draining(options)) {
      send_drain_reply(out_fd, out_is_socket);
      return false;
    }
    if (fault_fires(FaultSite::kSvcSlow)) {
      // Simulate a stalled peer (slow loris): burn the idle budget in poll
      // slices. With a deadline configured this must end in the same clean
      // timeout close a real stalled client gets; without one it is jitter.
      if (options.idle_timeout_ms > 0) {
        for (int waited = 0; waited < options.idle_timeout_ms;
             waited += kPollSliceMs) {
          std::this_thread::sleep_for(std::chrono::milliseconds(kPollSliceMs));
        }
        telemetry::metric_add(telemetry::Counter::kServiceTimeouts);
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * kPollSliceMs));
    }
    std::uint32_t body_len = 0;
    switch (read_exact(in_fd, &body_len, sizeof body_len, options,
                       /*drain_breaks=*/true)) {
      case ReadStatus::kClosed:
        return false; // client hung up (or died mid-prefix)
      case ReadStatus::kTimeout:
        telemetry::metric_add(telemetry::Counter::kServiceTimeouts);
        return false; // dead or stalled peer: reclaim the worker
      case ReadStatus::kDrain:
        send_drain_reply(out_fd, out_is_socket);
        return false;
      case ReadStatus::kOk:
        break;
    }
    if (body_len > kMaxFrameBytes) {
      // The declared length is the only way to find the next frame, so an
      // implausible one is unrecoverable: answer with the typed error, then
      // drop the connection instead of consuming gigabytes looking for it.
      (void)send_reply(out_fd,
                       error_reply(Status::kTooLarge,
                                   "frame body of " + std::to_string(body_len) +
                                       " bytes exceeds the limit of " +
                                       std::to_string(kMaxFrameBytes)),
                       out_is_socket);
      return false;
    }
    body.resize(body_len);
    if (body_len > 0) {
      switch (read_exact(in_fd, body.data(), body_len, options,
                         /*drain_breaks=*/false)) {
        case ReadStatus::kClosed:
        case ReadStatus::kDrain:
          return false; // truncated frame: client died mid-send
        case ReadStatus::kTimeout:
          telemetry::metric_add(telemetry::Counter::kServiceTimeouts);
          return false;
        case ReadStatus::kOk:
          break;
      }
    }
    const Reply reply = service.handle(body.data(), body.size());
    if (!send_reply(out_fd, reply.body, out_is_socket)) {
      return false;
    }
    if (reply.shutdown) {
      return true;
    }
  }
}

bool serve_stream(const PartitionService& service, int in_fd, int out_fd) {
  return serve_stream(service, in_fd, out_fd, SessionOptions{});
}

namespace {

/// One connection's thread handle plus its completion latch; the accept loop
/// joins finished workers eagerly, so at most max_conns slots ever exist.
struct Worker {
  std::thread thread;
  std::atomic<bool> done{false};
};

/// Refuse to steal a socket another live daemon still answers on: only a
/// connect() that the kernel refuses proves the previous owner is dead.
void probe_stale_socket(const sockaddr_un& addr, const std::string& path) {
  if (::access(path.c_str(), F_OK) != 0) {
    return; // nothing there: a fresh bind
  }
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) {
    return; // cannot probe; fall through to the bind, which will report
  }
  const bool live = ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                              sizeof addr) == 0;
  ::close(probe);
  if (live) {
    throw IoError("refusing to replace '" + path +
                  "': another daemon is accepting connections on it");
  }
  ::unlink(path.c_str()); // genuinely stale: the owner is gone
}

/// Admission-time refusal: one unsolicited typed reply, then close. The
/// client's next read gets the verdict instead of a silent reset.
void shed_connection(int conn, Status status, const std::string& message) {
  (void)send_reply(conn, error_reply(status, message), /*is_socket=*/true);
  ::close(conn);
}

} // namespace

void serve_unix_socket(const PartitionService& service,
                       const std::string& socket_path,
                       const ServeOptions& options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw IoError("socket path too long for AF_UNIX: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  probe_stale_socket(addr, socket_path);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw IoError(std::string("socket(AF_UNIX): ") + std::strerror(errno));
  }
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, options.backlog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd);
    throw IoError("cannot listen on '" + socket_path + "': " + reason);
  }

  const int max_conns = options.max_conns > 0 ? options.max_conns : 1;
  std::atomic<bool> stop{false};
  SessionOptions session;
  session.idle_timeout_ms = options.idle_timeout_ms;
  session.stop = &stop;

  std::vector<std::unique_ptr<Worker>> slots;
  slots.reserve(static_cast<std::size_t>(max_conns));
  const auto reap_finished = [&slots] {
    for (auto it = slots.begin(); it != slots.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = slots.erase(it);
      } else {
        ++it;
      }
    }
    telemetry::gauge_set(telemetry::Gauge::kServiceConnsActive, slots.size());
  };

  for (;;) {
    reap_finished();
    const bool stopping =
        stop.load(std::memory_order_acquire) || drain_requested();
    if (stopping && slots.empty()) {
      break; // drained: every in-flight session answered and reaped
    }
    pollfd p{};
    p.fd = listen_fd;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) {
        continue; // a signal (probably the drain request) — re-check
      }
      break;
    }
    if (ready == 0) {
      continue; // poll slice: re-check stop/drain and reap
    }
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      if (stop.load(std::memory_order_acquire) || drain_requested()) {
        // The kShutdown worker shut the listen fd down; wait out the
        // remaining sessions at poll cadence instead of spinning on it.
        std::this_thread::sleep_for(std::chrono::milliseconds(kPollSliceMs));
        continue;
      }
      break; // real accept failure on a live server
    }
    if (fault_fires(FaultSite::kSvcAccept)) {
      ::close(conn); // injected accept-path death: the daemon keeps serving
      continue;
    }
    // Re-check AFTER accept: a kShutdown or drain decided while this
    // connection sat in the backlog must not spawn a session past the drain
    // decision (the shutdown race).
    if (stop.load(std::memory_order_acquire) || drain_requested()) {
      telemetry::metric_add(telemetry::Counter::kServiceDrains);
      shed_connection(conn, Status::kShuttingDown,
                      "daemon is draining; no new connections accepted");
      continue;
    }
    if (static_cast<int>(slots.size()) >= max_conns) {
      telemetry::metric_add(telemetry::Counter::kServiceConnsRejected);
      shed_connection(conn, Status::kOverloaded,
                      "daemon is at its connection limit of " +
                          std::to_string(max_conns) + "; retry with backoff");
      continue;
    }
    telemetry::metric_add(telemetry::Counter::kServiceConnsAccepted);
    auto worker = std::make_unique<Worker>();
    Worker* w = worker.get();
    slots.push_back(std::move(worker));
    telemetry::gauge_set(telemetry::Gauge::kServiceConnsActive, slots.size());
    w->thread = std::thread([&service, &stop, &session, listen_fd, conn, w] {
      if (serve_stream(service, conn, conn, session)) {
        stop.store(true, std::memory_order_release);
        // Unblock the accept() so the server loop can wind down.
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      ::close(conn);
      w->done.store(true, std::memory_order_release);
    });
  }
  for (const std::unique_ptr<Worker>& worker : slots) {
    worker->thread.join();
  }
  telemetry::gauge_set(telemetry::Gauge::kServiceConnsActive, 0);
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
}

void serve_unix_socket(const PartitionService& service,
                       const std::string& socket_path) {
  serve_unix_socket(service, socket_path, ServeOptions{});
}

} // namespace oms::service
