#include "oms/service/service.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "oms/service/protocol.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/telemetry/metrics.hpp"
#include "oms/util/io_error.hpp"

namespace oms::service {
namespace {

[[nodiscard]] std::vector<char> error_reply(Status status,
                                            const std::string& message) {
  CheckpointWriter w;
  w.put_u32(static_cast<std::uint32_t>(status));
  w.put_string(message);
  return w.bytes();
}

/// Per-opcode telemetry counter. A request counts under its opcode as soon
/// as the opcode parses (typed error replies included); frames too short to
/// carry one, and unknown opcodes, count as invalid.
[[nodiscard]] telemetry::Counter op_counter(Op op) noexcept {
  switch (op) {
    case Op::kWhere: return telemetry::Counter::kServiceReqWhere;
    case Op::kRank: return telemetry::Counter::kServiceReqRank;
    case Op::kBatch: return telemetry::Counter::kServiceReqBatch;
    case Op::kStats: return telemetry::Counter::kServiceReqStats;
    case Op::kSnapshot: return telemetry::Counter::kServiceReqSnapshot;
    case Op::kShutdown: return telemetry::Counter::kServiceReqShutdown;
    case Op::kMetrics: return telemetry::Counter::kServiceReqMetrics;
  }
  return telemetry::Counter::kServiceReqInvalid;
}

} // namespace

Reply PartitionService::handle(const char* body, std::size_t size) const {
  const telemetry::TraceSpan span(telemetry::Hist::kServiceRequest);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Reply reply;
  CheckpointReader r(body, size);
  CheckpointWriter ok;
  ok.put_u32(static_cast<std::uint32_t>(Status::kOk));
  std::string snapshot_path;
  try {
    // Operand parsing rides the bounds-checked CheckpointReader: a short
    // body throws IoError from any get_*, trailing bytes from expect_end —
    // both are kBadFrame. No operand escapes validation before use.
    const auto op = static_cast<Op>(r.get_u32());
    telemetry::metric_add(op_counter(op));
    switch (op) {
      case Op::kWhere:
      case Op::kRank: {
        const std::uint64_t id = r.get_u64();
        r.expect_end();
        const std::int64_t answer = op == Op::kWhere
                                        ? static_cast<std::int64_t>(artifact_.where(id))
                                        : artifact_.rank_of(id);
        if (answer < 0) {
          reply.body = error_reply(
              Status::kOutOfRange,
              "id " + std::to_string(id) + " outside the artifact (holds " +
                  std::to_string(artifact_.assignment.size()) + " items)");
          return reply;
        }
        ok.put_u32(static_cast<std::uint32_t>(answer));
        break;
      }
      case Op::kBatch: {
        const std::uint32_t count = r.get_u32();
        // 8 bytes per id: a count the body cannot actually hold is a framing
        // lie, caught before any allocation sized by it.
        if (std::uint64_t{count} * 8 > r.remaining()) {
          throw IoError("batch count larger than the frame body");
        }
        ok.put_u32(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const BlockId b = artifact_.where(r.get_u64());
          ok.put_u32(b == kInvalidBlock ? kInvalidEntry
                                        : static_cast<std::uint32_t>(b));
        }
        r.expect_end();
        break;
      }
      case Op::kStats: {
        r.expect_end();
        ok.put_u32(artifact_.edge_partition ? 1 : 0);
        ok.put_u32(static_cast<std::uint32_t>(artifact_.k));
        ok.put_u64(artifact_.assignment.size());
        ok.put_u64(artifact_.num_nodes);
        ok.put_u64(artifact_.num_edges);
        ok.put_u64(requests_served());
        ok.put_f64(artifact_.elapsed_s);
        ok.put_string(artifact_.algo);
        break;
      }
      case Op::kSnapshot: {
        snapshot_path = r.get_string();
        r.expect_end();
        break; // the write happens below, outside the kBadFrame catch
      }
      case Op::kShutdown: {
        r.expect_end();
        reply.shutdown = true;
        break;
      }
      case Op::kMetrics: {
        r.expect_end();
        // The reply is always a valid "oms.metrics.v1" document; a daemon
        // running without telemetry armed reports all-zero metrics rather
        // than an error, so clients need no capability probe.
        const telemetry::MetricsRegistry* reg =
            telemetry::MetricsRegistry::armed();
        const telemetry::MetricsSnapshot snap =
            reg != nullptr ? reg->scrape() : telemetry::MetricsSnapshot{};
        ok.put_string(snap.to_json());
        break;
      }
      default:
        reply.body = error_reply(
            Status::kBadOp,
            "unknown opcode " + std::to_string(static_cast<std::uint32_t>(op)));
        return reply;
    }
  } catch (const IoError& e) {
    telemetry::metric_add(telemetry::Counter::kServiceReqInvalid);
    reply.body = error_reply(Status::kBadFrame, e.what());
    reply.shutdown = false; // a malformed kShutdown shuts nothing down
    return reply;
  }
  if (!snapshot_path.empty()) {
    try {
      write_artifact(artifact_, snapshot_path);
    } catch (const IoError& e) {
      reply.body = error_reply(Status::kIo, e.what());
      return reply;
    }
  }
  reply.body = ok.bytes();
  return reply;
}

namespace {

/// Loop read() until exactly \p bytes arrived. False on EOF or error; a
/// clean EOF *between* frames is the normal way a client leaves.
[[nodiscard]] bool read_exact(int fd, void* out, std::size_t bytes) {
  auto* cur = static_cast<char*>(out);
  while (bytes > 0) {
    const ssize_t got = ::read(fd, cur, bytes);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    cur += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

[[nodiscard]] bool write_all(int fd, const void* data, std::size_t bytes) {
  const auto* cur = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t put = ::write(fd, cur, bytes);
    if (put <= 0) {
      if (put < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    cur += put;
    bytes -= static_cast<std::size_t>(put);
  }
  return true;
}

[[nodiscard]] bool send_reply(int fd, const std::vector<char>& body) {
  const std::vector<char> framed = frame(body);
  return write_all(fd, framed.data(), framed.size());
}

} // namespace

bool serve_stream(const PartitionService& service, int in_fd, int out_fd) {
  std::vector<char> body;
  for (;;) {
    std::uint32_t body_len = 0;
    if (!read_exact(in_fd, &body_len, sizeof body_len)) {
      return false; // client hung up (or died mid-prefix)
    }
    if (body_len > kMaxFrameBytes) {
      // The declared length is the only way to find the next frame, so an
      // implausible one is unrecoverable: answer with the typed error, then
      // drop the connection instead of consuming gigabytes looking for it.
      (void)send_reply(out_fd,
                       error_reply(Status::kTooLarge,
                                   "frame body of " + std::to_string(body_len) +
                                       " bytes exceeds the limit of " +
                                       std::to_string(kMaxFrameBytes)));
      return false;
    }
    body.resize(body_len);
    if (body_len > 0 && !read_exact(in_fd, body.data(), body_len)) {
      return false; // truncated frame: client died mid-send
    }
    const Reply reply = service.handle(body.data(), body.size());
    if (!send_reply(out_fd, reply.body)) {
      return false;
    }
    if (reply.shutdown) {
      return true;
    }
  }
}

void serve_unix_socket(const PartitionService& service,
                       const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw IoError("socket path too long for AF_UNIX: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw IoError(std::string("socket(AF_UNIX): ") + std::strerror(errno));
  }
  ::unlink(socket_path.c_str()); // replace a stale socket from a dead server
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd);
    throw IoError("cannot listen on '" + socket_path + "': " + reason);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (;;) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR && !stop.load(std::memory_order_acquire)) {
        continue;
      }
      break; // listen fd shut down by the kShutdown handler below
    }
    workers.emplace_back([&service, &stop, listen_fd, conn] {
      if (serve_stream(service, conn, conn)) {
        stop.store(true, std::memory_order_release);
        // Unblock the accept() so the server loop can wind down.
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      ::close(conn);
    });
    if (stop.load(std::memory_order_acquire)) {
      break;
    }
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
}

} // namespace oms::service
