/// \file client.hpp
/// \brief ServiceClient: a self-healing client for the oms_serve daemon.
///
/// The daemon side (service.hpp) survives misbehaving clients; this is the
/// mirror image — a client that survives a misbehaving transport. Every
/// request goes through one retry loop with:
///
///  * connect timeouts (non-blocking connect + poll, ClientConfig::
///    connect_timeout_ms) and per-request reply deadlines
///    (request_timeout_ms), so a wedged daemon costs bounded time;
///  * bounded exponential backoff with deterministic jitter between
///    attempts (backoff_base_ms doubling up to backoff_cap_ms);
///  * automatic reconnect on torn connections — a daemon that drops the
///    session mid-reply (crash, injected fault, restart) is transparent as
///    long as a retry attempt remains, and every request in this protocol
///    is an idempotent read, so resending is always safe;
///  * typed surfacing of the admission verdicts: kOverloaded is retried
///    with backoff (the daemon asked for exactly that), kShuttingDown is
///    returned immediately (the daemon is going away — retrying the same
///    socket is pointless).
///
/// request() returns the reply's Status for callers that want the verdict;
/// the typed helpers (where / rank / batch / stats) throw oms::IoError on
/// anything but kOk. Transport failure that outlives every attempt throws
/// IoError naming the last error. Not thread-safe: one ServiceClient per
/// thread (the daemon end multiplexes connections, not the client).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "oms/service/protocol.hpp"
#include "oms/util/random.hpp"

namespace oms::service {

struct ClientConfig {
  int connect_timeout_ms = 2000; ///< non-blocking connect deadline
  int request_timeout_ms = 5000; ///< whole-reply deadline per attempt
  int max_attempts = 4;          ///< total tries per request (1 = no retry)
  int backoff_base_ms = 10;      ///< first retry delay; doubles per attempt
  int backoff_cap_ms = 500;      ///< upper bound on a single backoff
  std::uint64_t jitter_seed = 0x636c69656e74ULL; ///< deterministic jitter rng
};

/// A decoded reply: the status word plus the remaining payload bytes.
struct ClientReply {
  Status status = Status::kOk;
  std::vector<char> payload;
};

/// Decoded kStats payload (the ping/health-check surface).
struct ClientStats {
  bool edge_partition = false;
  std::uint32_t k = 0;
  std::uint64_t items = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t requests_served = 0;
  double elapsed_s = 0.0;
  std::string algo;
};

class ServiceClient {
public:
  explicit ServiceClient(std::string socket_path, ClientConfig config = {});
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Send one request body and return the decoded reply, retrying through
  /// torn connections and kOverloaded verdicts as configured. Throws
  /// oms::IoError once every attempt failed at the transport level.
  [[nodiscard]] ClientReply request(std::span<const char> body);

  // Typed helpers: throw oms::IoError on any non-kOk status (the message
  // names it via status_name), including kShuttingDown.
  [[nodiscard]] std::uint32_t where(std::uint64_t id);
  [[nodiscard]] std::uint32_t rank(std::uint64_t id);
  [[nodiscard]] std::vector<std::uint32_t> batch(std::span<const std::uint64_t> ids);
  [[nodiscard]] ClientStats stats();

  /// Connections (re-)established so far — 1 on a healthy session; more
  /// means the retry machinery healed a torn connection.
  [[nodiscard]] int connects() const noexcept { return connects_; }

  /// Drop the current connection (the next request reconnects).
  void disconnect() noexcept;

private:
  void ensure_connected();            ///< throws TransportError internally
  void backoff(int attempt) noexcept; ///< sleep with jitter before a retry

  std::string socket_path_;
  ClientConfig config_;
  Rng jitter_;
  int fd_ = -1;
  int connects_ = 0;
};

} // namespace oms::service
