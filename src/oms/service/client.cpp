#include "oms/service/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "oms/stream/checkpoint.hpp"
#include "oms/util/io_error.hpp"

namespace oms::service {
namespace {

/// Internal retry trigger: any transport-level failure of one attempt. Never
/// escapes request() — the last one is converted into the final IoError.
struct TransportError {
  std::string what;
};

[[nodiscard]] TransportError transport_error(const std::string& context) {
  return TransportError{context + ": " + std::strerror(errno)};
}

/// Wait for \p events on \p fd within \p timeout_ms; false on timeout/error.
[[nodiscard]] bool poll_for(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int ready = ::poll(&p, 1, timeout_ms);
    if (ready > 0) {
      return true;
    }
    if (ready == 0) {
      return false;
    }
    if (errno != EINTR) {
      return false;
    }
  }
}

} // namespace

ServiceClient::ServiceClient(std::string socket_path, ClientConfig config)
    : socket_path_(std::move(socket_path)),
      config_(config),
      jitter_(config.jitter_seed) {}

ServiceClient::~ServiceClient() { disconnect(); }

void ServiceClient::disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::ensure_connected() {
  if (fd_ >= 0) {
    return;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof addr.sun_path) {
    throw IoError("socket path too long for AF_UNIX: '" + socket_path_ + "'");
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    throw transport_error("socket(AF_UNIX)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      ::close(fd);
      throw transport_error("connect('" + socket_path_ + "')");
    }
    // Non-blocking connect in flight: wait for writability, then read the
    // verdict out of SO_ERROR — the standard deadline-bounded connect.
    if (!poll_for(fd, POLLOUT, config_.connect_timeout_ms)) {
      ::close(fd);
      throw TransportError{"connect('" + socket_path_ + "'): timed out after " +
                           std::to_string(config_.connect_timeout_ms) + " ms"};
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      errno = err != 0 ? err : errno;
      throw transport_error("connect('" + socket_path_ + "')");
    }
  }
  // Back to blocking: writes block briefly at worst; reads go through poll.
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0) {
    (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  fd_ = fd;
  ++connects_;
}

void ServiceClient::backoff(int attempt) noexcept {
  // Exponential with full-range jitter over the upper half: deterministic
  // for a given jitter_seed, spread out across clients with different ones.
  std::int64_t delay = config_.backoff_base_ms;
  for (int i = 1; i < attempt && delay < config_.backoff_cap_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<std::int64_t>(delay, config_.backoff_cap_ms);
  if (delay <= 0) {
    return;
  }
  const std::int64_t jittered =
      delay / 2 +
      static_cast<std::int64_t>(jitter_.next_below(
          static_cast<std::uint64_t>(delay / 2 + 1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

ClientReply ServiceClient::request(std::span<const char> body) {
  const std::vector<char> framed = frame(body);
  std::string last_error = "no attempt made";
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    if (attempt > 1) {
      backoff(attempt - 1);
    }
    try {
      ensure_connected();
      // Write the frame; a torn write means the daemon (or its worker) died.
      const char* cur = framed.data();
      std::size_t bytes = framed.size();
      while (bytes > 0) {
        const ssize_t put = ::send(fd_, cur, bytes, MSG_NOSIGNAL);
        if (put <= 0) {
          if (put < 0 && errno == EINTR) {
            continue;
          }
          if (put < 0 && (errno == EPIPE || errno == ECONNRESET)) {
            // The daemon closed first — an admission verdict (kOverloaded /
            // kShuttingDown) may already sit in the receive buffer. Fall
            // through and read it before declaring the attempt torn.
            break;
          }
          throw transport_error("send");
        }
        cur += put;
        bytes -= static_cast<std::size_t>(put);
      }
      // Read one framed reply under the request deadline.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(config_.request_timeout_ms);
      const auto read_exactly = [&](void* out, std::size_t want) {
        auto* dst = static_cast<char*>(out);
        while (want > 0) {
          const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
          if (left.count() <= 0 ||
              !poll_for(fd_, POLLIN, static_cast<int>(left.count()))) {
            throw TransportError{"request timed out after " +
                                 std::to_string(config_.request_timeout_ms) +
                                 " ms"};
          }
          const ssize_t got = ::read(fd_, dst, want);
          if (got <= 0) {
            if (got < 0 && errno == EINTR) {
              continue;
            }
            if (got == 0) {
              throw TransportError{"connection torn mid-reply"};
            }
            throw transport_error("read");
          }
          dst += got;
          want -= static_cast<std::size_t>(got);
        }
      };
      std::uint32_t reply_len = 0;
      read_exactly(&reply_len, sizeof reply_len);
      if (reply_len > kMaxFrameBytes) {
        throw TransportError{"reply frame of " + std::to_string(reply_len) +
                             " bytes exceeds the protocol limit"};
      }
      std::vector<char> reply(reply_len);
      if (reply_len > 0) {
        read_exactly(reply.data(), reply_len);
      }
      if (reply.size() < sizeof(std::uint32_t)) {
        throw TransportError{"reply too short to carry a status"};
      }
      std::uint32_t status_word = 0;
      std::memcpy(&status_word, reply.data(), sizeof status_word);
      const auto status = static_cast<Status>(status_word);
      if (status == Status::kOverloaded) {
        // The daemon shed this connection at admission and closed it; this
        // is its explicit "retry with backoff" signal — obey it if an
        // attempt remains, surface it typed otherwise.
        disconnect();
        if (attempt < config_.max_attempts) {
          last_error = "daemon overloaded";
          continue;
        }
      }
      if (status == Status::kShuttingDown) {
        // The daemon is draining: the connection is gone and retrying the
        // same socket cannot succeed. Surface immediately.
        disconnect();
      }
      ClientReply out;
      out.status = status;
      out.payload.assign(reply.begin() + sizeof status_word, reply.end());
      return out;
    } catch (const TransportError& e) {
      disconnect();
      last_error = e.what;
    }
  }
  throw IoError("service request failed after " +
                std::to_string(config_.max_attempts) + " attempt(s) to '" +
                socket_path_ + "': " + last_error);
}

namespace {

[[nodiscard]] ClientReply expect_ok(ClientReply reply, const char* op) {
  if (reply.status != Status::kOk) {
    CheckpointReader r(reply.payload);
    std::string message;
    try {
      message = r.get_string();
    } catch (const IoError&) {
      message = "(no message)";
    }
    throw IoError(std::string(op) + ": daemon replied " +
                  status_name(reply.status) + ": " + message);
  }
  return reply;
}

} // namespace

std::uint32_t ServiceClient::where(std::uint64_t id) {
  const ClientReply reply = expect_ok(request(encode_where(id)), "WHERE");
  CheckpointReader r(reply.payload);
  return r.get_u32();
}

std::uint32_t ServiceClient::rank(std::uint64_t id) {
  const ClientReply reply = expect_ok(request(encode_rank(id)), "RANK");
  CheckpointReader r(reply.payload);
  return r.get_u32();
}

std::vector<std::uint32_t> ServiceClient::batch(
    std::span<const std::uint64_t> ids) {
  const ClientReply reply = expect_ok(request(encode_batch(ids)), "BATCH");
  CheckpointReader r(reply.payload);
  const std::uint32_t count = r.get_u32();
  std::vector<std::uint32_t> blocks(count);
  for (std::uint32_t& block : blocks) {
    block = r.get_u32();
  }
  r.expect_end();
  return blocks;
}

ClientStats ServiceClient::stats() {
  const ClientReply reply = expect_ok(request(encode_stats()), "STATS");
  CheckpointReader r(reply.payload);
  ClientStats out;
  out.edge_partition = r.get_u32() != 0;
  out.k = r.get_u32();
  out.items = r.get_u64();
  out.num_nodes = r.get_u64();
  out.num_edges = r.get_u64();
  out.requests_served = r.get_u64();
  out.elapsed_s = r.get_f64();
  out.algo = r.get_string();
  r.expect_end();
  return out;
}

} // namespace oms::service
