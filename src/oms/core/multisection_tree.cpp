#include "oms/core/multisection_tree.hpp"

#include <algorithm>
#include <cmath>

namespace oms {

template <typename ChildCount>
void MultisectionTree::build(ChildCount&& children_of) {
  OMS_ASSERT(k_ >= 1);
  blocks_.clear();
  // Lemma 1: at most 2k blocks when all extents are >= 2; reserving up front
  // keeps the BFS expansion from copying the block array log(k) times.
  blocks_.reserve(2 * static_cast<std::size_t>(k_));
  Block root;
  root.leaf_begin = 0;
  root.leaf_end = k_;
  root.depth = 0;
  blocks_.push_back(root);

  // Magic-number computation costs a wide division each; blocks of one layer
  // share (t, c), so memoize on the previous block's shape (a handful of
  // recomputations per tree instead of one per block).
  std::int64_t memo_t = -1;
  std::int64_t memo_c = -1;
  FastDiv32 memo_div_big;
  FastDiv32 memo_div_small;
  FastMod64 memo_mod_children;

  // Iterative BFS-style expansion; children of a block are contiguous.
  for (std::size_t id = 0; id < blocks_.size(); ++id) {
    // Copy the POD: push_back below may reallocate the vector.
    const Block current = blocks_[id];
    const std::int64_t t = current.num_leaves();
    if (t <= 1) {
      continue; // leaf of the multi-section tree = one final block
    }
    const std::int64_t c = children_of(current.depth, t);
    OMS_ASSERT_MSG(c >= 1 && c <= t, "child count must lie in [1, t]");
    blocks_[id].first_child = static_cast<std::int32_t>(blocks_.size());
    blocks_[id].num_children = static_cast<std::int32_t>(c);

    const std::int64_t small = t / c;
    const std::int64_t big = t % c;
    if (t != memo_t || c != memo_c) {
      memo_t = t;
      memo_c = c;
      memo_div_big = FastDiv32::of(static_cast<std::uint32_t>(small + 1));
      memo_div_small = FastDiv32::of(static_cast<std::uint32_t>(small));
      memo_mod_children = FastMod64::of(static_cast<std::uint32_t>(c));
    }
    blocks_[id].num_big = static_cast<std::int32_t>(big);
    blocks_[id].big_boundary = static_cast<BlockId>(big * (small + 1));
    blocks_[id].div_big = memo_div_big;
    blocks_[id].div_small = memo_div_small;
    blocks_[id].mod_children = memo_mod_children;
    BlockId cursor = current.leaf_begin;
    for (std::int64_t child = 0; child < c; ++child) {
      Block b;
      b.parent = static_cast<std::int32_t>(id);
      b.leaf_begin = cursor;
      b.leaf_end = cursor + static_cast<BlockId>(child < big ? small + 1 : small);
      b.depth = current.depth + 1;
      cursor = b.leaf_end;
      height_ = std::max(height_, b.depth);
      blocks_.push_back(b);
    }
    OMS_ASSERT(cursor == current.leaf_end);
  }
}

MultisectionTree MultisectionTree::regular(
    std::span<const std::int64_t> extents_top_down) {
  OMS_ASSERT_MSG(!extents_top_down.empty(), "hierarchy needs at least one level");
  MultisectionTree tree;
  std::int64_t k = 1;
  for (const std::int64_t a : extents_top_down) {
    OMS_ASSERT_MSG(a >= 1, "extents must be >= 1");
    k *= a;
  }
  tree.k_ = static_cast<BlockId>(k);
  tree.build([&](std::int32_t depth, std::int64_t t) {
    OMS_ASSERT_MSG(static_cast<std::size_t>(depth) < extents_top_down.size(),
                   "regular tree deeper than the hierarchy");
    const std::int64_t a = extents_top_down[static_cast<std::size_t>(depth)];
    OMS_ASSERT_MSG(t % a == 0, "regular hierarchy must divide evenly");
    return a;
  });
  return tree;
}

MultisectionTree MultisectionTree::b_section(BlockId k, int base) {
  OMS_ASSERT_MSG(base >= 2, "b-section requires base >= 2");
  MultisectionTree tree;
  tree.k_ = k;
  tree.build([base](std::int32_t /*depth*/, std::int64_t t) {
    return std::min<std::int64_t>(base, t);
  });
  return tree;
}

void MultisectionTree::finalize(NodeWeight lmax, double alpha_global,
                                bool adapted_alpha) {
  OMS_ASSERT(lmax >= 0);
  capacity_.resize(blocks_.size());
  penalty_factor_.resize(blocks_.size());
  for (std::size_t id = 0; id < blocks_.size(); ++id) {
    Block& b = blocks_[id];
    b.capacity = static_cast<NodeWeight>(b.num_leaves()) * lmax;
    b.alpha = adapted_alpha
                  ? alpha_global / std::sqrt(static_cast<double>(b.num_leaves()))
                  : alpha_global;
    // fennel_penalty(alpha, 1.5, w) evaluates ((alpha * 1.5) * sqrt(w));
    // baking the left factor keeps the scorer bit-identical.
    b.penalty_factor = b.alpha * 1.5;
    capacity_[id] = b.capacity;
    penalty_factor_[id] = b.penalty_factor;
  }
  // The sparse-candidate scan inside the Fennel scorer needs every sibling
  // to share (capacity, alpha) — true iff the children split evenly — plus a
  // strictly increasing penalty and weights that fit its 32-bit key half.
  for (Block& b : blocks_) {
    if (b.is_leaf()) {
      continue;
    }
    const auto first = static_cast<std::size_t>(b.first_child);
    b.fennel_key_scan = b.num_big == 0 && penalty_factor_[first] > 0.0 &&
                        capacity_[first] >= 0 &&
                        capacity_[first] < (NodeWeight{1} << 31);
  }
}

std::size_t MultisectionTree::leaf_block_id(BlockId leaf) const noexcept {
  OMS_ASSERT(leaf >= 0 && leaf < k_);
  std::size_t id = 0;
  while (!blocks_[id].is_leaf()) {
    const Block& current = blocks_[id];
    const std::int32_t child = child_index_of_leaf(current, leaf);
    id = static_cast<std::size_t>(current.first_child + child);
  }
  return id;
}

} // namespace oms
