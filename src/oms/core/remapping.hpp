/// \file remapping.hpp
/// \brief Iterative *remapping* by restreaming the online multi-section —
///        the extension the paper sketches in Section 3.2 ("it is possible
///        to iteratively improve a process mapping solution through multiple
///        passes ... coupling our algorithm with restreaming algorithms such
///        as ReFennel") and defers to future work.
///
/// From the second pass on, each node is first removed from every block on
/// its root-to-leaf path and then re-placed; it now sees the *complete*
/// placement of all its neighbors instead of only the already-streamed
/// prefix, which is where the improvement comes from.
#pragma once

#include <vector>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/csr_graph.hpp"
#include "oms/types.hpp"

namespace oms {

struct RemapResult {
  std::vector<BlockId> assignment;
  /// Edge-cut after each pass (mapping cost is the caller's to evaluate
  /// against its topology; the cut trace is topology-independent).
  std::vector<Cost> cut_per_pass;
  double elapsed_s = 0.0;
};

/// Run \p passes restreaming passes of \p oms over \p graph (sequential; the
/// restreaming model is defined on a fixed stream order). The assigner must
/// be freshly constructed. The final assignment stays balanced because every
/// re-placement goes through the same capacity checks as the first pass.
[[nodiscard]] RemapResult remap_multisection(const CsrGraph& graph,
                                             OnlineMultisection& oms, int passes);

} // namespace oms
