/// \file offline_reference.cpp
/// \brief The l-pass offline recursive multi-section (paper Section 3.1).
///
/// Pass d assigns every node from its depth-d block to one of that block's
/// children, exactly as the online algorithm does in its d-th descent step.
/// Because a pass-d decision only depends on nodes streamed earlier *in that
/// same pass*, the online single-pass compression is equivalent — the
/// property this reference exists to let tests verify.
#include <algorithm>

#include "oms/core/online_multisection.hpp"

namespace oms {

std::vector<BlockId> OnlineMultisection::run_offline_multipass(const CsrGraph& graph) {
  OMS_ASSERT_MSG(graph.num_nodes() == assignment_.size(),
                 "graph does not match the assigner's node count");
  // Reset all streaming state.
  weights_.reset();
  assignment_.fill(kInvalidBlock);
  prepare(1);
  auto& gathered = scratch_.front().gathered;
  WorkCounters counters;

  // current_block[u] = tree block u is assigned to so far (root initially).
  std::vector<std::size_t> current_block(graph.num_nodes(), 0);
  // prepare(1) above forced the dense layout.
  const auto weights_view = weights_.view<BlockWeights::Layout::kDense>();

  for (std::int32_t pass = 0; pass < tree_.height(); ++pass) {
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      const std::size_t parent_id = current_block[u];
      const MultisectionTree::Block& parent = tree_.block(parent_id);
      if (parent.is_leaf()) {
        continue; // shallower branch of a heterogeneous tree
      }
      const StreamedNode node{u, graph.node_weight(u), graph.neighbors(u),
                              graph.incident_weights(u)};
      const auto children = static_cast<std::size_t>(parent.num_children);
      const ScorerKind scorer = (parent.depth < config_.quality_layers)
                                    ? config_.scorer
                                    : ScorerKind::kHashing;
      if (scorer != ScorerKind::kHashing) {
        std::fill_n(gathered.begin(), children, EdgeWeight{0});
        for (std::size_t i = 0; i < node.neighbors.size(); ++i) {
          // A neighbor contributes iff this pass already moved it into one of
          // parent's children — the multi-pass analogue of "assigned below
          // this subtree".
          const std::size_t nb = current_block[node.neighbors[i]];
          if (tree_.block(nb).parent == static_cast<std::int32_t>(parent_id)) {
            const auto idx = static_cast<std::size_t>(
                nb - static_cast<std::size_t>(parent.first_child));
            gathered[idx] += node.edge_weights[i];
          }
        }
      }
      const std::int32_t choice = pick_child(
          weights_view, parent, node,
          std::span<const EdgeWeight>(gathered.data(), children), scorer, parent_id,
          scratch_.front().touched_children.data(), counters);
      const auto child_id = static_cast<std::size_t>(parent.first_child + choice);
      weights_.add(child_id, node.weight);
      current_block[u] = child_id;
    }
  }

  std::vector<BlockId> result(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const MultisectionTree::Block& leaf = tree_.block(current_block[u]);
    OMS_ASSERT_MSG(leaf.is_leaf(), "node did not reach a leaf");
    result[u] = leaf.leaf_begin;
    assignment_.store(u, result[u]);
  }
  return result;
}

} // namespace oms
