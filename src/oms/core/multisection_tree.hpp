/// \file multisection_tree.hpp
/// \brief The hierarchy of blocks and sub-blocks the online recursive
///        multi-section descends (paper Sections 3.1 and 3.3).
///
/// Two construction modes:
///  * regular(extents_top_down): one layer per hierarchy level — the root has
///    a_l children, each of those a_{l-1}, ...; used when a topology
///    S = a1:...:al is given (process mapping / OMS);
///  * b_section(k, b): Algorithm 2's artificial hierarchy for arbitrary k —
///    every block covering t > 1 final blocks gets min(b, t) children whose
///    leaf ranges split as evenly as possible, larger ranges first (this is
///    exactly the paper's midpoint split for b = 2); used for general graph
///    partitioning (nh-OMS).
///
/// Every block stores the half-open range [leaf_begin, leaf_end) of final
/// blocks it covers. From that range, finalize() derives the heterogeneous
/// capacity t * Lmax and the adapted Fennel constant alpha / sqrt(t)
/// (Section 3.3: the alpha of a block is "sqrt(t) times smaller than the
/// alpha from the original k-way partitioning problem").
///
/// Lemma 1: with all extents >= 2 the tree holds at most 2k blocks, so block
/// weights take O(k) space.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "oms/types.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/fastdiv.hpp"

namespace oms {

class MultisectionTree {
public:
  struct Block {
    std::int32_t parent = -1;      ///< -1 for the root
    std::int32_t first_child = -1; ///< children are contiguous; -1 for leaves
    std::int32_t num_children = 0;
    BlockId leaf_begin = 0; ///< first final block covered
    BlockId leaf_end = 0;   ///< one past the last final block covered
    std::int32_t depth = 0; ///< root = 0
    NodeWeight capacity = 0;
    double alpha = 0.0;
    /// alpha * gamma for the tuned gamma = 3/2, precomputed by finalize() so
    /// the Fennel scorer is one multiply and one (cached) sqrt per child.
    double penalty_factor = 0.0;
    // Descent accelerators, fixed at construction (internal blocks only):
    // children split num_leaves() into `num_big` ranges of size small+1
    // followed by ranges of size small; `big_boundary` = num_big*(small+1).
    FastDiv32 div_big;     ///< exact division by small + 1
    FastDiv32 div_small;   ///< exact division by small
    BlockId big_boundary = 0;
    std::int32_t num_big = 0;
    FastMod64 mod_children; ///< exact hash % num_children (hashing layers)
    /// Children all cover the same leaf count (=> one shared capacity and
    /// Fennel alpha) and the penalty is strictly increasing — the conditions
    /// under which the scorer may use the sparse-candidate key scan.
    bool fennel_key_scan = false;

    [[nodiscard]] BlockId num_leaves() const noexcept { return leaf_end - leaf_begin; }
    [[nodiscard]] bool is_leaf() const noexcept { return num_children == 0; }
  };

  /// Regular hierarchy; \p extents_top_down = (a_l, a_{l-1}, ..., a_1).
  /// Extents of 1 are allowed (the paper's S = 4:16:r sweep includes r = 1)
  /// and produce single-child pass-through layers.
  [[nodiscard]] static MultisectionTree regular(
      std::span<const std::int64_t> extents_top_down);

  /// Algorithm 2 generalized to base \p b >= 2 for arbitrary \p k >= 1.
  [[nodiscard]] static MultisectionTree b_section(BlockId k, int base);

  /// Compute capacities (t * Lmax) and per-block Fennel alphas. With
  /// \p adapted_alpha false, every block keeps the flat k-way alpha (the
  /// ablation baseline the paper tunes against). Also fills the dense
  /// capacity/penalty side arrays the scorer scans.
  void finalize(NodeWeight lmax, double alpha_global, bool adapted_alpha);

  /// Hot per-block scalars, stored densely so the per-child score loop scans
  /// 8-byte slots instead of striding whole Block structs.
  [[nodiscard]] NodeWeight capacity_of(std::size_t id) const noexcept {
    OMS_HEAVY_ASSERT(id < capacity_.size());
    return capacity_[id];
  }
  [[nodiscard]] double penalty_factor_of(std::size_t id) const noexcept {
    OMS_HEAVY_ASSERT(id < penalty_factor_.size());
    return penalty_factor_[id];
  }

  [[nodiscard]] const Block& root() const noexcept { return blocks_.front(); }
  [[nodiscard]] const Block& block(std::size_t id) const noexcept {
    OMS_HEAVY_ASSERT(id < blocks_.size());
    return blocks_[id];
  }
  [[nodiscard]] std::size_t num_blocks() const noexcept { return blocks_.size(); }
  [[nodiscard]] BlockId num_final_blocks() const noexcept { return k_; }
  [[nodiscard]] std::int32_t height() const noexcept { return height_; }

  /// Index (within \p parent's children) of the child whose leaf range
  /// contains \p leaf. O(1) and division-free: children split the parent
  /// range evenly with the larger parts first, and both range widths carry a
  /// precomputed exact-division magic.
  [[nodiscard]] static std::int32_t child_index_of_leaf(const Block& parent,
                                                        BlockId leaf) noexcept {
    OMS_HEAVY_ASSERT(leaf >= parent.leaf_begin && leaf < parent.leaf_end);
    const auto offset = static_cast<std::uint32_t>(leaf - parent.leaf_begin);
    if (offset < static_cast<std::uint32_t>(parent.big_boundary)) {
      return static_cast<std::int32_t>(parent.div_big.divide(offset));
    }
    return parent.num_big +
           static_cast<std::int32_t>(parent.div_small.divide(
               offset - static_cast<std::uint32_t>(parent.big_boundary)));
  }

  /// Tree-block id of the leaf covering final block \p leaf (descends from
  /// the root in O(height)).
  [[nodiscard]] std::size_t leaf_block_id(BlockId leaf) const noexcept;

  /// Sum over internal blocks of their child counts — the paper's
  /// sum_i prod_{r>=i} a_r bound from Lemma 1 is num_blocks() - 1.
  [[nodiscard]] std::size_t num_non_root_blocks() const noexcept {
    return blocks_.size() - 1;
  }

private:
  /// \p children_of(depth, num_leaves) -> child count for an internal block.
  template <typename ChildCount>
  void build(ChildCount&& children_of);

  std::vector<Block> blocks_;
  std::vector<NodeWeight> capacity_;     // mirrors Block::capacity, dense
  std::vector<double> penalty_factor_;   // mirrors Block::penalty_factor, dense
  BlockId k_ = 0;
  std::int32_t height_ = 0;
};

} // namespace oms
