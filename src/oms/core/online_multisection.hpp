/// \file online_multisection.hpp
/// \brief Algorithm 1 of the paper: assign every streamed node permanently by
///        descending the multi-section tree layer by layer — recursive
///        multi-section "on the fly", in a single pass.
///
/// The assigner implements the generic one-pass interface, so the same
/// drivers (sequential, OpenMP-parallel, disk-streaming) used by the
/// baselines run it unchanged.
///
/// Two modes:
///  * OMS   — a SystemHierarchy is given; the leaf order equals the PE
///    numbering, so the produced partition *is* the process mapping;
///  * nh-OMS — only k is given; an artificial base-b hierarchy (Algorithm 2)
///    turns the multi-section into a general graph partitioner with running
///    time O((m + n b) log_b k) (Theorem 4) instead of Fennel's O(m + n k).
#pragma once

#include <span>
#include <vector>

#include "oms/core/multisection_tree.hpp"
#include "oms/graph/csr_graph.hpp"
#include "oms/core/oms_config.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/stream/block_weights.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/assignment_array.hpp"
#include "oms/util/sqrt_cache.hpp"

namespace oms {

class OnlineMultisection final : public OnePassAssigner {
public:
  /// OMS mode: multi-section along the given topology.
  OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                     NodeWeight total_node_weight, const SystemHierarchy& topology,
                     const OmsConfig& config);

  /// nh-OMS mode: artificial base-b hierarchy over k final blocks.
  OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                     NodeWeight total_node_weight, BlockId k, const OmsConfig& config);

  // --- OnePassAssigner ------------------------------------------------
  void prepare(int num_threads) override;
  BlockId assign(const StreamedNode& node, int thread_id,
                 WorkCounters& counters) override;
  [[nodiscard]] BlockId block_of(NodeId u) const override {
    return assignment_.load(u);
  }
  [[nodiscard]] BlockId num_blocks() const override {
    return tree_.num_final_blocks();
  }
  [[nodiscard]] std::vector<BlockId> take_assignment() override {
    return assignment_.take();
  }

  // --- introspection ----------------------------------------------------
  [[nodiscard]] const MultisectionTree& tree() const noexcept { return tree_; }
  [[nodiscard]] const OmsConfig& config() const noexcept { return config_; }
  /// Weight currently accumulated in a tree block (leaf weights are the
  /// final block weights).
  [[nodiscard]] NodeWeight tree_block_weight(std::size_t block_id) const noexcept {
    return weights_.load(block_id);
  }
  /// Streaming state footprint: assignment + O(k) tree weights (Theorem 1).
  [[nodiscard]] std::uint64_t state_bytes() const noexcept;

  /// Restreaming support (remapping extension, Section 3.2): remove a node
  /// from every block on its root-to-leaf path so it can be re-placed.
  void unassign(NodeId u, NodeWeight weight);

  // Checkpoint/resume: assignment + per-tree-block weights; the tree and the
  // descent are deterministic functions of the config.
  [[nodiscard]] bool save_stream_state(CheckpointWriter& w) const override;
  [[nodiscard]] bool load_stream_state(CheckpointReader& r) override;

  /// The paper's *offline* recursive multi-section: height() successive
  /// passes over the graph, one tree layer per pass. Section 3.1 argues the
  /// online algorithm "produces exactly the same result as the version with
  /// l passes"; this reference implementation exists so tests can verify
  /// that equivalence bit-for-bit. Resets all assigner state.
  [[nodiscard]] std::vector<BlockId> run_offline_multipass(const CsrGraph& graph);

private:
  OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                     NodeWeight total_node_weight, MultisectionTree tree,
                     const OmsConfig& config);

  /// The descent body, stamped out per weight layout so the per-child weight
  /// loads carry a compile-time stride (a runtime stride measurably slows
  /// the wide layers). assign() dispatches once per node.
  template <typename WeightsView>
  BlockId assign_impl(WeightsView weights, const StreamedNode& node, int thread_id,
                      WorkCounters& counters);

  /// Pick a child of \p parent for \p node; gathered[i] holds the weight of
  /// node's neighbors already assigned below child i. \p touched_scratch
  /// must hold at least parent.num_children slots (used by the sparse
  /// Fennel key scan). Defined in online_multisection.cpp; the dense
  /// instantiation is exported for the offline reference.
  template <typename WeightsView>
  [[nodiscard]] std::int32_t pick_child(WeightsView weights,
                                        const MultisectionTree::Block& parent,
                                        const StreamedNode& node,
                                        std::span<const EdgeWeight> gathered,
                                        ScorerKind scorer, std::size_t parent_id,
                                        std::int32_t* touched_scratch,
                                        WorkCounters& counters) const;

  /// Per-thread descent state. `gathered` holds the per-child attraction of
  /// the current layer; `leaves`/`edge_weights` hold the shrinking frontier:
  /// the (final-block, edge-weight) pairs of the node's already-assigned
  /// neighbors that survive inside the subtree chosen so far. The neighbor
  /// list itself is scanned exactly once, at the top quality layer; deeper
  /// layers touch only survivors, so gather work per node is
  /// O(deg + survivors * layers) instead of O(deg * layers).
  struct DescentScratch {
    std::vector<EdgeWeight> gathered;
    std::vector<BlockId> leaves;
    std::vector<EdgeWeight> edge_weights;
    std::vector<std::int32_t> touched_children; // sparse-scan candidates
  };

  MultisectionTree tree_;
  OmsConfig config_;
  AssignmentArray assignment_;
  BlockWeights weights_; // one per tree block, atomics (Section 3.4)
  SqrtCache sqrt_; // covers [0, root capacity]: every Fennel penalty argument
  std::vector<DescentScratch> scratch_; // per thread
  std::int32_t max_children_ = 0;
};

} // namespace oms
