#include "oms/core/remapping.hpp"

#include "oms/partition/metrics.hpp"
#include "oms/util/timer.hpp"

namespace oms {

RemapResult remap_multisection(const CsrGraph& graph, OnlineMultisection& oms,
                               int passes) {
  OMS_ASSERT(passes >= 1);
  oms.prepare(1);

  RemapResult result;
  Timer timer;
  WorkCounters counters;
  std::vector<BlockId> snapshot(graph.num_nodes());
  for (int pass = 0; pass < passes; ++pass) {
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      if (pass > 0) {
        oms.unassign(u, graph.node_weight(u));
      }
      const StreamedNode node{u, graph.node_weight(u), graph.neighbors(u),
                              graph.incident_weights(u)};
      oms.assign(node, 0, counters);
    }
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      snapshot[u] = oms.block_of(u);
    }
    result.cut_per_pass.push_back(edge_cut(graph, snapshot));
  }
  result.elapsed_s = timer.elapsed_s();
  result.assignment = oms.take_assignment();
  return result;
}

} // namespace oms
