/// \file oms_config.hpp
/// \brief Configuration of the online recursive multi-section, with the
///        paper's tuned defaults (Section 4, "Parameter Tuning").
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

namespace oms {

/// Scoring function used inside each partitioning subproblem of the
/// multi-section (paper Section 3.2).
enum class ScorerKind : std::uint8_t {
  kFennel,  ///< additive penalty with adapted alpha (the tuned default)
  kLdg,     ///< multiplicative remaining-capacity penalty
  kHashing, ///< structure-oblivious O(1) choice
};

[[nodiscard]] constexpr const char* scorer_name(ScorerKind kind) noexcept {
  switch (kind) {
    case ScorerKind::kFennel: return "fennel";
    case ScorerKind::kLdg: return "ldg";
    case ScorerKind::kHashing: return "hashing";
  }
  return "unknown";
}

struct OmsConfig {
  /// Allowed imbalance; the paper fixes 3% in every experiment.
  double epsilon = 0.03;

  /// Seed for the Hashing scorer and any tie randomization.
  std::uint64_t seed = 1;

  /// Scorer for the non-hashed layers. Tuning result: Fennel beats LDG by
  /// 3.89% mapping quality and 0.19% edge-cut on average.
  ScorerKind scorer = ScorerKind::kFennel;

  /// Adapted per-subproblem alpha_i = alpha / sqrt(prod_{r<i} a_r) instead of
  /// the flat k-way alpha. Tuning result: 9.7% better mappings, 3.1% faster.
  bool adapted_alpha = true;

  /// Base b of the artificial hierarchy when no topology is given (nh-OMS).
  /// Tuning result: b = 4 is 16.7% faster and cuts 3.2% fewer edges than b=2.
  int base = 4;

  /// Hybrid mapping (Theorem 3): the h *top* descent layers use `scorer`,
  /// all deeper layers use Hashing. The default solves every layer with the
  /// quality scorer.
  int quality_layers = std::numeric_limits<int>::max();

  /// Replace the k-way Fennel constant alpha = sqrt(k) m / n^(3/2) with an
  /// explicit value (the adapted_alpha scaling still applies on top).
  /// Useful for objective ablations and for graphs far outside Fennel's
  /// sparse-graph calibration regime.
  std::optional<double> alpha_override;
};

} // namespace oms
