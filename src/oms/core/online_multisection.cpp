#include "oms/core/online_multisection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "oms/partition/partition_config.hpp"
#include "oms/util/random.hpp"

namespace oms {
namespace {

[[nodiscard]] MultisectionTree make_finalized_tree(MultisectionTree tree, NodeId n,
                                                   EdgeIndex m,
                                                   NodeWeight total_node_weight,
                                                   const OmsConfig& config) {
  const BlockId k = tree.num_final_blocks();
  const NodeWeight lmax = max_block_weight(total_node_weight, k, config.epsilon);
  const double alpha_global =
      config.alpha_override.value_or(FennelParams::standard(n, m, k).alpha);
  tree.finalize(lmax, alpha_global, config.adapted_alpha);
  return tree;
}

} // namespace

OnlineMultisection::OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                                       NodeWeight total_node_weight,
                                       const SystemHierarchy& topology,
                                       const OmsConfig& config)
    : OnlineMultisection(
          num_nodes, num_edges, total_node_weight,
          MultisectionTree::regular(topology.extents_top_down()), config) {}

OnlineMultisection::OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                                       NodeWeight total_node_weight, BlockId k,
                                       const OmsConfig& config)
    : OnlineMultisection(num_nodes, num_edges, total_node_weight,
                         MultisectionTree::b_section(k, config.base), config) {}

OnlineMultisection::OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                                       NodeWeight total_node_weight,
                                       MultisectionTree tree, const OmsConfig& config)
    : tree_(make_finalized_tree(std::move(tree), num_nodes, num_edges,
                                total_node_weight, config)),
      config_(config),
      assignment_(num_nodes, kInvalidBlock),
      weights_(tree_.num_blocks()) {
  for (std::size_t id = 0; id < tree_.num_blocks(); ++id) {
    max_children_ = std::max(max_children_, tree_.block(id).num_children);
  }
}

void OnlineMultisection::prepare(int num_threads) {
  scratch_.assign(static_cast<std::size_t>(num_threads),
                  std::vector<EdgeWeight>(static_cast<std::size_t>(max_children_), 0));
}

BlockId OnlineMultisection::assign(const StreamedNode& node, int thread_id,
                                   WorkCounters& counters) {
  auto& gathered = scratch_[static_cast<std::size_t>(thread_id)];

  std::size_t current = 0; // root
  while (!tree_.block(current).is_leaf()) {
    const MultisectionTree::Block& parent = tree_.block(current);
    const auto children = static_cast<std::size_t>(parent.num_children);
    const ScorerKind scorer = (parent.depth < config_.quality_layers)
                                  ? config_.scorer
                                  : ScorerKind::kHashing;

    // Gather neighbor attraction per candidate child. Hashing ignores the
    // neighborhood entirely (that is what makes the hybrid layers cheap —
    // Theorem 3's O(1) per hashed layer).
    if (scorer != ScorerKind::kHashing) {
      std::fill_n(gathered.begin(), children, EdgeWeight{0});
      for (std::size_t i = 0; i < node.neighbors.size(); ++i) {
        counters.neighbor_visits += 1;
        const BlockId leaf = assignment_[node.neighbors[i]];
        if (leaf == kInvalidBlock || leaf < parent.leaf_begin ||
            leaf >= parent.leaf_end) {
          continue; // unassigned, or assigned outside this subtree
        }
        const std::int32_t child = tree_.child_index_of_leaf(parent, leaf);
        gathered[static_cast<std::size_t>(child)] += node.edge_weights[i];
      }
    }

    const std::int32_t choice = pick_child(
        parent, node, std::span<const EdgeWeight>(gathered.data(), children), scorer,
        current, counters);
    const auto child_id = static_cast<std::size_t>(parent.first_child + choice);
    weights_.add(child_id, node.weight);
    counters.layers_traversed += 1;
    current = child_id;
  }

  const BlockId final_block = tree_.block(current).leaf_begin;
  assignment_[node.id] = final_block;
  return final_block;
}

std::int32_t OnlineMultisection::pick_child(const MultisectionTree::Block& parent,
                                            const StreamedNode& node,
                                            std::span<const EdgeWeight> gathered,
                                            ScorerKind scorer, std::size_t parent_id,
                                            WorkCounters& counters) const {
  const std::int32_t children = parent.num_children;
  const auto first = static_cast<std::size_t>(parent.first_child);
  if (children == 1) {
    return 0; // pass-through layer (extent 1 in the hierarchy)
  }

  if (scorer == ScorerKind::kHashing) {
    // One hash, then forward probing on capacity overflow (same balance
    // fallback as the flat Hashing baseline).
    const std::uint64_t h = hash_combine(
        static_cast<std::uint64_t>(node.id) ^ config_.seed, parent_id);
    const auto start = static_cast<std::int32_t>(
        h % static_cast<std::uint64_t>(children));
    counters.score_evaluations += 1;
    for (std::int32_t probe = 0; probe < children; ++probe) {
      const std::int32_t idx = (start + probe) % children;
      const MultisectionTree::Block& child = tree_.block(first +
                                                         static_cast<std::size_t>(idx));
      if (weights_.load(first + static_cast<std::size_t>(idx)) + node.weight <=
          child.capacity) {
        return idx;
      }
    }
  } else {
    std::int32_t best = -1;
    double best_score = 0.0;
    NodeWeight best_weight = 0;
    for (std::int32_t idx = 0; idx < children; ++idx) {
      counters.score_evaluations += 1;
      const std::size_t child_id = first + static_cast<std::size_t>(idx);
      const MultisectionTree::Block& child = tree_.block(child_id);
      const NodeWeight w = weights_.load(child_id);
      if (w + node.weight > child.capacity) {
        continue;
      }
      double score = 0.0;
      const auto attraction =
          static_cast<double>(gathered[static_cast<std::size_t>(idx)]);
      if (scorer == ScorerKind::kFennel) {
        score = attraction - fennel_penalty(child.alpha, 1.5, w);
      } else { // LDG
        score = attraction *
                (1.0 - static_cast<double>(w) / static_cast<double>(child.capacity));
      }
      if (best < 0 || score > best_score ||
          (score == best_score && w < best_weight)) {
        best = idx;
        best_score = score;
        best_weight = w;
      }
    }
    if (best >= 0) {
      return best;
    }
  }

  // Every child is (transiently, under parallel overshoot) at capacity:
  // take the one with the most remaining room.
  std::int32_t fallback = 0;
  NodeWeight best_room = std::numeric_limits<NodeWeight>::min();
  for (std::int32_t idx = 0; idx < children; ++idx) {
    const std::size_t child_id = first + static_cast<std::size_t>(idx);
    const NodeWeight room = tree_.block(child_id).capacity - weights_.load(child_id);
    if (room > best_room) {
      best_room = room;
      fallback = idx;
    }
  }
  return fallback;
}

void OnlineMultisection::unassign(NodeId u, NodeWeight weight) {
  const BlockId leaf = assignment_[u];
  OMS_ASSERT_MSG(leaf != kInvalidBlock, "unassign of a never-assigned node");
  std::size_t id = tree_.leaf_block_id(leaf);
  while (tree_.block(id).parent >= 0) {
    weights_.add(id, -weight);
    id = static_cast<std::size_t>(tree_.block(id).parent);
  }
  assignment_[u] = kInvalidBlock;
}

std::uint64_t OnlineMultisection::state_bytes() const noexcept {
  return static_cast<std::uint64_t>(assignment_.capacity() * sizeof(BlockId) +
                                    weights_.size() * sizeof(NodeWeight) +
                                    tree_.num_blocks() * sizeof(MultisectionTree::Block));
}

} // namespace oms
