#include "oms/core/online_multisection.hpp"

#include "oms/stream/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "oms/partition/partition_config.hpp"
#include "oms/partition/sparse_select.hpp"
#include "oms/util/random.hpp"

namespace oms {
namespace {

[[nodiscard]] MultisectionTree make_finalized_tree(MultisectionTree tree, NodeId n,
                                                   EdgeIndex m,
                                                   NodeWeight total_node_weight,
                                                   const OmsConfig& config) {
  const BlockId k = tree.num_final_blocks();
  const NodeWeight lmax = max_block_weight(total_node_weight, k, config.epsilon);
  const double alpha_global =
      config.alpha_override.value_or(FennelParams::standard(n, m, k).alpha);
  tree.finalize(lmax, alpha_global, config.adapted_alpha);
  return tree;
}

} // namespace

OnlineMultisection::OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                                       NodeWeight total_node_weight,
                                       const SystemHierarchy& topology,
                                       const OmsConfig& config)
    : OnlineMultisection(
          num_nodes, num_edges, total_node_weight,
          MultisectionTree::regular(topology.extents_top_down()), config) {}

OnlineMultisection::OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                                       NodeWeight total_node_weight, BlockId k,
                                       const OmsConfig& config)
    : OnlineMultisection(num_nodes, num_edges, total_node_weight,
                         MultisectionTree::b_section(k, config.base), config) {}

OnlineMultisection::OnlineMultisection(NodeId num_nodes, EdgeIndex num_edges,
                                       NodeWeight total_node_weight,
                                       MultisectionTree tree, const OmsConfig& config)
    : tree_(make_finalized_tree(std::move(tree), num_nodes, num_edges,
                                total_node_weight, config)),
      config_(config),
      assignment_(num_nodes),
      weights_(tree_.num_blocks()),
      sqrt_(tree_.root().capacity) {
  for (std::size_t id = 0; id < tree_.num_blocks(); ++id) {
    max_children_ = std::max(max_children_, tree_.block(id).num_children);
  }
}

void OnlineMultisection::prepare(int num_threads) {
  // Sequential passes scan sibling weights densely; concurrent passes hammer
  // the few top-layer counters from every thread, so spread them one per
  // cache line (Section 3.4's shared state, minus the false sharing).
  weights_.set_layout(num_threads > 1 ? BlockWeights::Layout::kPadded
                                      : BlockWeights::Layout::kDense);
  scratch_.assign(static_cast<std::size_t>(num_threads), DescentScratch{});
  for (DescentScratch& s : scratch_) {
    s.gathered.assign(static_cast<std::size_t>(max_children_), 0);
    s.touched_children.assign(static_cast<std::size_t>(max_children_), 0);
  }
}

BlockId OnlineMultisection::assign(const StreamedNode& node, int thread_id,
                                   WorkCounters& counters) {
  if (weights_.layout() == BlockWeights::Layout::kPadded) {
    return assign_impl(weights_.view<BlockWeights::Layout::kPadded>(), node,
                       thread_id, counters);
  }
  return assign_impl(weights_.view<BlockWeights::Layout::kDense>(), node, thread_id,
                     counters);
}

template <typename WeightsView>
BlockId OnlineMultisection::assign_impl(WeightsView weights, const StreamedNode& node,
                                        int thread_id, WorkCounters& counters) {
  DescentScratch& scratch = scratch_[static_cast<std::size_t>(thread_id)];
  EdgeWeight* const gathered = scratch.gathered.data();

  // Frontier of (leaf, edge-weight) pairs of already-assigned neighbors that
  // still lie inside the subtree descended into so far. Filled by a single
  // scan of the neighbor list at the top quality layer, then filtered in
  // place as each layer narrows the subtree.
  std::size_t frontier = 0;
  bool frontier_built = false;

  std::size_t current = 0; // root
  while (!tree_.block(current).is_leaf()) {
    const MultisectionTree::Block& parent = tree_.block(current);
    const auto children = static_cast<std::size_t>(parent.num_children);
    const ScorerKind scorer = (parent.depth < config_.quality_layers)
                                  ? config_.scorer
                                  : ScorerKind::kHashing;

    // Gather neighbor attraction per candidate child. Hashing ignores the
    // neighborhood entirely (that is what makes the hybrid layers cheap —
    // Theorem 3's O(1) per hashed layer); quality layers form a prefix of
    // the descent, so the frontier is never needed again once hashing starts.
    if (scorer != ScorerKind::kHashing) {
      std::fill_n(gathered, children, EdgeWeight{0});
      if (!frontier_built) {
        frontier_built = true;
        const std::size_t degree = node.neighbors.size();
        if (scratch.leaves.size() < degree) {
          scratch.leaves.resize(degree);
          scratch.edge_weights.resize(degree);
        }
        counters.neighbor_visits += degree;
        for (std::size_t i = 0; i < degree; ++i) {
          const BlockId leaf = assignment_.load(node.neighbors[i]);
          if (leaf == kInvalidBlock || leaf < parent.leaf_begin ||
              leaf >= parent.leaf_end) {
            continue; // unassigned, or assigned outside this subtree
          }
          const EdgeWeight w = node.edge_weights[i];
          const std::int32_t child = MultisectionTree::child_index_of_leaf(parent, leaf);
          gathered[static_cast<std::size_t>(child)] += w;
          scratch.leaves[frontier] = leaf;
          scratch.edge_weights[frontier] = w;
          ++frontier;
        }
      } else {
        counters.neighbor_visits += frontier;
        std::size_t kept = 0;
        for (std::size_t i = 0; i < frontier; ++i) {
          const BlockId leaf = scratch.leaves[i];
          if (leaf < parent.leaf_begin || leaf >= parent.leaf_end) {
            continue; // assigned outside the subtree chosen last layer
          }
          const EdgeWeight w = scratch.edge_weights[i];
          const std::int32_t child = MultisectionTree::child_index_of_leaf(parent, leaf);
          gathered[static_cast<std::size_t>(child)] += w;
          scratch.leaves[kept] = leaf;
          scratch.edge_weights[kept] = w;
          ++kept;
        }
        frontier = kept;
      }
    }

    const std::int32_t choice = pick_child(
        weights, parent, node, std::span<const EdgeWeight>(gathered, children),
        scorer, current, scratch.touched_children.data(), counters);
    const auto child_id = static_cast<std::size_t>(parent.first_child + choice);
    weights.add(child_id, node.weight);
    counters.layers_traversed += 1;
    current = child_id;
  }

  const BlockId final_block = tree_.block(current).leaf_begin;
  assignment_.store(node.id, final_block);
  return final_block;
}

template <typename WeightsView>
std::int32_t OnlineMultisection::pick_child(WeightsView weights,
                                            const MultisectionTree::Block& parent,
                                            const StreamedNode& node,
                                            std::span<const EdgeWeight> gathered,
                                            ScorerKind scorer, std::size_t parent_id,
                                            std::int32_t* touched_scratch,
                                            WorkCounters& counters) const {
  const std::int32_t children = parent.num_children;
  const auto first = static_cast<std::size_t>(parent.first_child);
  if (children == 1) {
    return 0; // pass-through layer (extent 1 in the hierarchy)
  }

  if (scorer == ScorerKind::kHashing) {
    // One hash, then forward probing on capacity overflow (same balance
    // fallback as the flat Hashing baseline). The reduction of the 64-bit
    // hash uses the block's precomputed magic instead of a hardware divide,
    // and the probe wraps by conditional subtraction — both exact.
    const std::uint64_t h = hash_combine(
        static_cast<std::uint64_t>(node.id) ^ config_.seed, parent_id);
    const auto start = static_cast<std::int32_t>(parent.mod_children.mod(h));
    counters.score_evaluations += 1;
    for (std::int32_t probe = 0; probe < children; ++probe) {
      std::int32_t idx = start + probe;
      if (idx >= children) {
        idx -= children;
      }
      const std::size_t child_id = first + static_cast<std::size_t>(idx);
      if (weights.load(child_id) + node.weight <= tree_.capacity_of(child_id)) {
        return idx;
      }
    }
  } else if (scorer == ScorerKind::kFennel && parent.fennel_key_scan) {
    // Exact sparse-candidate selection (see sparse_select.hpp): siblings
    // share (capacity, alpha) on key-scan layers, so the winner among the
    // children is recoverable from the attracted children plus the
    // lexicographic-(weight, index)-min zero-attraction child. Bit-identical
    // to the dense loop below.
    counters.score_evaluations += static_cast<std::uint64_t>(children);
    const std::int32_t best = sparse_fennel_select(
        children, node.weight, tree_.capacity_of(first),
        tree_.penalty_factor_of(first), sqrt_,
        [&](std::int32_t idx) {
          return weights.load(first + static_cast<std::size_t>(idx));
        },
        [&](std::int32_t idx) { return gathered[static_cast<std::size_t>(idx)]; },
        touched_scratch);
    if (best >= 0) {
      return best;
    }
  } else {
    counters.score_evaluations += static_cast<std::uint64_t>(children);
    std::int32_t best = -1;
    double best_score = 0.0;
    NodeWeight best_weight = 0;
    for (std::int32_t idx = 0; idx < children; ++idx) {
      const std::size_t child_id = first + static_cast<std::size_t>(idx);
      const NodeWeight capacity = tree_.capacity_of(child_id);
      const NodeWeight w = weights.load(child_id);
      if (w + node.weight > capacity) {
        continue;
      }
      double score = 0.0;
      const auto attraction =
          static_cast<double>(gathered[static_cast<std::size_t>(idx)]);
      if (scorer == ScorerKind::kFennel) {
        score = attraction - tree_.penalty_factor_of(child_id) * sqrt_(w);
      } else { // LDG
        score = attraction *
                (1.0 - static_cast<double>(w) / static_cast<double>(capacity));
      }
      if (best < 0 || score > best_score ||
          (score == best_score && w < best_weight)) {
        best = idx;
        best_score = score;
        best_weight = w;
      }
    }
    if (best >= 0) {
      return best;
    }
  }

  // Every child is (transiently, under parallel overshoot) at capacity:
  // take the one with the most remaining room.
  std::int32_t fallback = 0;
  NodeWeight best_room = std::numeric_limits<NodeWeight>::min();
  for (std::int32_t idx = 0; idx < children; ++idx) {
    const std::size_t child_id = first + static_cast<std::size_t>(idx);
    const NodeWeight room = tree_.capacity_of(child_id) - weights.load(child_id);
    if (room > best_room) {
      best_room = room;
      fallback = idx;
    }
  }
  return fallback;
}

// The offline multipass reference (offline_reference.cpp) scores through the
// same pick_child; it always runs sequentially, i.e. on the dense layout.
template std::int32_t
OnlineMultisection::pick_child(BlockWeights::View<BlockWeights::Layout::kDense>,
                               const MultisectionTree::Block&, const StreamedNode&,
                               std::span<const EdgeWeight>, ScorerKind, std::size_t,
                               std::int32_t*, WorkCounters&) const;

void OnlineMultisection::unassign(NodeId u, NodeWeight weight) {
  const BlockId leaf = assignment_.load(u);
  OMS_ASSERT_MSG(leaf != kInvalidBlock, "unassign of a never-assigned node");
  std::size_t id = tree_.leaf_block_id(leaf);
  while (tree_.block(id).parent >= 0) {
    weights_.add(id, -weight);
    id = static_cast<std::size_t>(tree_.block(id).parent);
  }
  assignment_.store(u, kInvalidBlock);
}

std::uint64_t OnlineMultisection::state_bytes() const noexcept {
  return assignment_.footprint_bytes() + weights_.footprint_bytes() +
         static_cast<std::uint64_t>(tree_.num_blocks() *
                                    sizeof(MultisectionTree::Block));
}

bool OnlineMultisection::save_stream_state(CheckpointWriter& w) const {
  save_assignment(w, assignment_);
  save_block_weights(w, weights_);
  return true;
}

bool OnlineMultisection::load_stream_state(CheckpointReader& r) {
  load_assignment(r, assignment_);
  load_block_weights(r, weights_);
  return true;
}

} // namespace oms
