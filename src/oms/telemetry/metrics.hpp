/// \file metrics.hpp
/// \brief The observability spine: a process-global MetricsRegistry of named
///        counters, gauges and fixed-bucket latency histograms, plus RAII
///        trace spans recording per-stage wall time into it.
///
/// The hooks (metric_add / gauge_* / hist_record / TraceSpan) are compiled
/// permanently into the hot paths — the pipeline core, the line reader, the
/// stream drivers, the service request loop — but cost exactly one relaxed
/// atomic pointer load and a predicted-not-taken branch while no registry is
/// armed, mirroring the fault-injection arming pattern (fault_injection.hpp).
/// The gated BM_* benches run with the hooks in and must not move;
/// BM_TelemetryOverhead pins the armed-vs-disarmed delta.
///
/// When a registry IS armed, updates land in per-thread shards (relaxed
/// atomics on thread-partitioned cache lines, so concurrent pipeline
/// consumers and service connections never contend) and are merged on
/// scrape(). Hot loops should still prefer batch-granularity updates — one
/// metric_add per parsed batch or processed buffer, not per node.
///
/// Arming is process-global and follows the fault-plan contract: arm before
/// the instrumented threads start, disarm after they joined (thread creation
/// and joining provide the ordering the relaxed hook load relies on). The
/// CLI tools (--metrics-out / --progress), oms_serve and the telemetry tests
/// are the intended users; library runs without one armed pay nothing.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>

#include "oms/util/work_counters.hpp"

namespace oms::telemetry {

/// Monotonic counters. Enum order is the stable JSON schema order.
enum class Counter : std::uint16_t {
  kStreamBytesRead = 0,  ///< raw bytes delivered by the buffered line reader
  kStreamReadRetries,    ///< transient raw-read failures retried with backoff
  kStreamLinesParsed,    ///< lines the reader handed to a parser
  kStreamNodes,          ///< nodes streamed (disk node streams)
  kStreamEdges,          ///< edges streamed (disk edge-list streams)
  kPipelineBatches,      ///< batches consumed by the pipeline
  kPipelineProducerStallNs, ///< producer blocked waiting for a recycled batch
  kPipelineConsumerWaitNs,  ///< consumers blocked waiting for a parsed batch
  kWorkScoreEvaluations, ///< WorkCounters: candidate block scores evaluated
  kWorkNeighborVisits,   ///< WorkCounters: neighbor inspections
  kWorkLayersTraversed,  ///< WorkCounters: tree layers descended
  kBufferedBuffers,      ///< buffers the buffered core built and committed
  kMultilevelCommitsAccepted, ///< V-cycle results that beat the lp candidate
  kMultilevelCommitsRejected, ///< V-cycle results discarded (lp kept)
  kMultilevelBackoffSkips,    ///< buffers skipped by the V-cycle backoff
  kWindowEvictions,      ///< sliding-window delayed commits (ring evictions)
  kCheckpointSnapshots,  ///< checkpoint files written
  kCheckpointBytes,      ///< bytes written into checkpoint files
  kServiceReqWhere,      ///< service requests by opcode...
  kServiceReqRank,
  kServiceReqBatch,
  kServiceReqStats,
  kServiceReqSnapshot,
  kServiceReqShutdown,
  kServiceReqMetrics,
  kServiceReqInvalid,    ///< ...plus malformed frames / unknown opcodes
  kServiceConnsAccepted, ///< connections admitted to a worker slot
  kServiceConnsRejected, ///< connections shed with kOverloaded at accept
  kServiceTimeouts,      ///< connections closed by the idle/read deadline
  kServiceDrains,        ///< kShuttingDown replies sent while draining
  kCount
};

/// Last-value / high-watermark gauges.
enum class Gauge : std::uint16_t {
  kProgressTotalItems = 0, ///< announced stream size (0 = unknown), for ETA
  kPipelineQueueDepthMax,  ///< high watermark of the filled-batch queue
  kServiceConnsActive,     ///< connections currently owning a worker slot
  kCount
};

/// Fixed-bucket latency histograms (nanoseconds; log2 buckets). Trace spans
/// record into these, so each one doubles as a per-stage wall-time total
/// (sum) and invocation count.
enum class Hist : std::uint16_t {
  kStageParse = 0,       ///< pipeline producer: parsing one batch
  kStageAssign,          ///< pipeline consumer: assigning one batch
  kStageBufferBuild,     ///< buffered core: model build + greedy placement
  kStageBufferRefine,    ///< buffered core: active-set lp refinement
  kStageMultilevel,      ///< buffered core: multilevel V-cycle improve()
  kStageCheckpointWrite, ///< one checkpoint snapshot (serialize + fsync path)
  kPipelineQueueWait,    ///< distribution of consumer waits on the filled queue
  kServiceRequest,       ///< service: one handle() call, any opcode
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);
inline constexpr int kNumGauges = static_cast<int>(Gauge::kCount);
inline constexpr int kNumHists = static_cast<int>(Hist::kCount);

/// Log2 buckets: bucket i counts values in [2^i, 2^(i+1)) ns (bucket 0 also
/// holds 0), the last bucket is open-ended. 40 buckets reach ~18 minutes.
inline constexpr int kHistogramBuckets = 40;

/// Stable wire/JSON names (index == enum value).
[[nodiscard]] const char* counter_name(Counter c) noexcept;
[[nodiscard]] const char* gauge_name(Gauge g) noexcept;
[[nodiscard]] const char* hist_name(Hist h) noexcept;

/// Bucket of \p value: floor(log2) clamped to the open-ended last bucket.
[[nodiscard]] constexpr int histogram_bucket(std::uint64_t value) noexcept {
  if (value < 2) {
    return 0;
  }
  const int b = 63 - std::countl_zero(value);
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket \p i (0 for bucket 0).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_floor(int i) noexcept {
  return i == 0 ? 0 : std::uint64_t{1} << i;
}

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0; ///< sum of recorded values (ns for span histograms)
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  bool operator==(const HistogramSnapshot&) const = default;
};

/// A merged point-in-time view of a registry — what --metrics-out writes and
/// the METRICS opcode returns.
struct MetricsSnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauges{};
  std::array<HistogramSnapshot, kNumHists> histograms{};

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] const HistogramSnapshot& histogram(Hist h) const noexcept {
    return histograms[static_cast<std::size_t>(h)];
  }

  /// Serialize as the stable "oms.metrics.v1" JSON document (all metrics
  /// always present, enum order, so downstream parsers can pin offsets).
  [[nodiscard]] std::string to_json() const;

  /// Parse a document produced by to_json(). Throws oms::IoError on
  /// malformed JSON, an unknown schema id, unknown metric names, or a
  /// histogram with the wrong bucket count.
  [[nodiscard]] static MetricsSnapshot from_json(const std::string& text);

  bool operator==(const MetricsSnapshot&) const = default;
};

/// The registry proper: per-thread shards of relaxed atomics, merged on
/// scrape. All update paths are thread-safe; arming is not (see file
/// comment). Destroying an armed registry disarms it first, so a scoped
/// registry can never dangle behind the global hook pointer.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Install \p registry as the process-global sink / remove it.
  static void arm(MetricsRegistry& registry) noexcept;
  static void disarm() noexcept;
  [[nodiscard]] static MetricsRegistry* armed() noexcept;

  void add(Counter c, std::uint64_t delta) noexcept;
  void gauge_set(Gauge g, std::uint64_t value) noexcept;
  void gauge_max(Gauge g, std::uint64_t value) noexcept;
  void record(Hist h, std::uint64_t value) noexcept;

  /// Merge every shard into one consistent-enough view (concurrent updates
  /// may or may not be included; each slot is read atomically).
  [[nodiscard]] MetricsSnapshot scrape() const noexcept;

  /// Zero every metric (tests; not safe against concurrent updates).
  void reset() noexcept;

private:
  static constexpr int kShards = 16;

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
    std::array<std::atomic<std::uint64_t>, kNumHists> hist_count{};
    std::array<std::atomic<std::uint64_t>, kNumHists> hist_sum{};
    std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>,
               kNumHists>
        hist_buckets{};
  };

  /// Threads are spread round-robin over the shards on first use.
  [[nodiscard]] static int shard_index() noexcept;

  std::array<Shard, kShards> shards_{};
  std::array<std::atomic<std::uint64_t>, kNumGauges> gauges_{};
};

namespace detail {
/// The armed registry; null (the overwhelmingly common case) means every
/// hook is a no-op after one relaxed load.
extern std::atomic<MetricsRegistry*> g_metrics;
} // namespace detail

/// True iff a registry is armed — use it to skip clock reads and other
/// enabled-only work the hooks themselves cannot elide.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_metrics.load(std::memory_order_relaxed) != nullptr;
}

[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The hooks compiled into the hot paths: free when disarmed.

inline void metric_add(Counter c, std::uint64_t delta = 1) noexcept {
  MetricsRegistry* reg = detail::g_metrics.load(std::memory_order_relaxed);
  if (reg == nullptr) [[likely]] {
    return;
  }
  reg->add(c, delta);
}

inline void gauge_set(Gauge g, std::uint64_t value) noexcept {
  MetricsRegistry* reg = detail::g_metrics.load(std::memory_order_relaxed);
  if (reg == nullptr) [[likely]] {
    return;
  }
  reg->gauge_set(g, value);
}

inline void gauge_max(Gauge g, std::uint64_t value) noexcept {
  MetricsRegistry* reg = detail::g_metrics.load(std::memory_order_relaxed);
  if (reg == nullptr) [[likely]] {
    return;
  }
  reg->gauge_max(g, value);
}

inline void hist_record(Hist h, std::uint64_t value) noexcept {
  MetricsRegistry* reg = detail::g_metrics.load(std::memory_order_relaxed);
  if (reg == nullptr) [[likely]] {
    return;
  }
  reg->record(h, value);
}

/// Publish a run's merged WorkCounters into the registry — the single
/// aggregation point the drivers feed after their per-thread merge.
inline void publish_work(const WorkCounters& work) noexcept {
  if (!enabled()) [[likely]] {
    return;
  }
  metric_add(Counter::kWorkScoreEvaluations, work.score_evaluations);
  metric_add(Counter::kWorkNeighborVisits, work.neighbor_visits);
  metric_add(Counter::kWorkLayersTraversed, work.layers_traversed);
}

/// RAII stage timer: records the span's wall time into \p stage on
/// destruction. Costs one relaxed load (no clock read) while disarmed;
/// nests freely — each span records independently, so an outer stage's time
/// includes its inner stages'.
class TraceSpan {
public:
  explicit TraceSpan(Hist stage) noexcept
      : stage_(stage), start_ns_(enabled() ? now_ns() : 0) {}
  ~TraceSpan() {
    if (start_ns_ != 0) [[unlikely]] {
      hist_record(stage_, now_ns() - start_ns_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

private:
  Hist stage_;
  std::uint64_t start_ns_;
};

} // namespace oms::telemetry
