/// \file metrics.cpp
/// \brief MetricsRegistry storage, scrape/merge, and the stable
///        "oms.metrics.v1" JSON serialization (writer + strict reader).

#include "oms/telemetry/metrics.hpp"

#include <cctype>
#include <cstddef>

#include "oms/util/io_error.hpp"

namespace oms::telemetry {

namespace detail {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
} // namespace detail

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "stream.bytes_read",
    "stream.read_retries",
    "stream.lines_parsed",
    "stream.nodes",
    "stream.edges",
    "pipeline.batches",
    "pipeline.producer_stall_ns",
    "pipeline.consumer_wait_ns",
    "work.score_evaluations",
    "work.neighbor_visits",
    "work.layers_traversed",
    "buffered.buffers",
    "multilevel.commits_accepted",
    "multilevel.commits_rejected",
    "multilevel.backoff_skips",
    "window.evictions",
    "checkpoint.snapshots",
    "checkpoint.bytes",
    "service.req.where",
    "service.req.rank",
    "service.req.batch",
    "service.req.stats",
    "service.req.snapshot",
    "service.req.shutdown",
    "service.req.metrics",
    "service.req.invalid",
    "service.conns_accepted",
    "service.conns_rejected",
    "service.timeouts",
    "service.drains",
};

constexpr const char* kGaugeNames[kNumGauges] = {
    "progress.total_items",
    "pipeline.queue_depth_max",
    "service.conns_active",
};

constexpr const char* kHistNames[kNumHists] = {
    "stage.parse_ns",
    "stage.assign_ns",
    "stage.buffer_build_place_ns",
    "stage.buffer_refine_ns",
    "stage.multilevel_ns",
    "stage.checkpoint_write_ns",
    "pipeline.queue_wait_ns",
    "service.request_ns",
};

} // namespace

const char* counter_name(Counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

const char* gauge_name(Gauge g) noexcept {
  return kGaugeNames[static_cast<std::size_t>(g)];
}

const char* hist_name(Hist h) noexcept {
  return kHistNames[static_cast<std::size_t>(h)];
}

MetricsRegistry::~MetricsRegistry() {
  // A scoped registry must never dangle behind the global hook pointer.
  if (armed() == this) {
    disarm();
  }
}

void MetricsRegistry::arm(MetricsRegistry& registry) noexcept {
  detail::g_metrics.store(&registry, std::memory_order_release);
}

void MetricsRegistry::disarm() noexcept {
  detail::g_metrics.store(nullptr, std::memory_order_release);
}

MetricsRegistry* MetricsRegistry::armed() noexcept {
  return detail::g_metrics.load(std::memory_order_acquire);
}

int MetricsRegistry::shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kShards);
  return shard;
}

void MetricsRegistry::add(Counter c, std::uint64_t delta) noexcept {
  shards_[static_cast<std::size_t>(shard_index())]
      .counters[static_cast<std::size_t>(c)]
      .fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(Gauge g, std::uint64_t value) noexcept {
  gauges_[static_cast<std::size_t>(g)].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_max(Gauge g, std::uint64_t value) noexcept {
  std::atomic<std::uint64_t>& slot = gauges_[static_cast<std::size_t>(g)];
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::record(Hist h, std::uint64_t value) noexcept {
  Shard& shard = shards_[static_cast<std::size_t>(shard_index())];
  const auto i = static_cast<std::size_t>(h);
  shard.hist_count[i].fetch_add(1, std::memory_order_relaxed);
  shard.hist_sum[i].fetch_add(value, std::memory_order_relaxed);
  shard.hist_buckets[i][static_cast<std::size_t>(histogram_bucket(value))]
      .fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::scrape() const noexcept {
  MetricsSnapshot snap;
  for (const Shard& shard : shards_) {
    for (int c = 0; c < kNumCounters; ++c) {
      snap.counters[static_cast<std::size_t>(c)] +=
          shard.counters[static_cast<std::size_t>(c)].load(
              std::memory_order_relaxed);
    }
    for (int h = 0; h < kNumHists; ++h) {
      const auto i = static_cast<std::size_t>(h);
      snap.histograms[i].count +=
          shard.hist_count[i].load(std::memory_order_relaxed);
      snap.histograms[i].sum +=
          shard.hist_sum[i].load(std::memory_order_relaxed);
      for (int b = 0; b < kHistogramBuckets; ++b) {
        snap.histograms[i].buckets[static_cast<std::size_t>(b)] +=
            shard.hist_buckets[i][static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
      }
    }
  }
  for (int g = 0; g < kNumGauges; ++g) {
    snap.gauges[static_cast<std::size_t>(g)] =
        gauges_[static_cast<std::size_t>(g)].load(std::memory_order_relaxed);
  }
  return snap;
}

void MetricsRegistry::reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counters) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& c : shard.hist_count) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& s : shard.hist_sum) {
      s.store(0, std::memory_order_relaxed);
    }
    for (auto& hist : shard.hist_buckets) {
      for (auto& b : hist) {
        b.store(0, std::memory_order_relaxed);
      }
    }
  }
  for (auto& g : gauges_) {
    g.store(0, std::memory_order_relaxed);
  }
}

// --- JSON writer -----------------------------------------------------------

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  int n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) {
    out.push_back(buf[--n]);
  }
}

void append_key(std::string& out, const char* name) {
  out.push_back('"');
  out += name; // metric names never need escaping
  out += "\":";
}

} // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"oms.metrics.v1\",\"counters\":{";
  for (int c = 0; c < kNumCounters; ++c) {
    if (c != 0) {
      out.push_back(',');
    }
    append_key(out, kCounterNames[c]);
    append_u64(out, counters[static_cast<std::size_t>(c)]);
  }
  out += "},\"gauges\":{";
  for (int g = 0; g < kNumGauges; ++g) {
    if (g != 0) {
      out.push_back(',');
    }
    append_key(out, kGaugeNames[g]);
    append_u64(out, gauges[static_cast<std::size_t>(g)]);
  }
  out += "},\"histograms\":{";
  for (int h = 0; h < kNumHists; ++h) {
    const HistogramSnapshot& hist = histograms[static_cast<std::size_t>(h)];
    if (h != 0) {
      out.push_back(',');
    }
    append_key(out, kHistNames[h]);
    out += "{\"count\":";
    append_u64(out, hist.count);
    out += ",\"sum\":";
    append_u64(out, hist.sum);
    out += ",\"buckets\":[";
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (b != 0) {
        out.push_back(',');
      }
      append_u64(out, hist.buckets[static_cast<std::size_t>(b)]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

// --- JSON reader -----------------------------------------------------------
//
// A strict recursive-descent parser for exactly the documents to_json()
// emits (whitespace tolerated). Anything else — unknown keys, missing
// metrics, wrong bucket counts, trailing garbage — is an IoError, so a
// truncated or hand-mangled metrics file cannot round-trip silently.

namespace {

class JsonReader {
public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string_value() {
    expect('"');
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_++];
      if (c == '\\' || static_cast<unsigned char>(c) < 0x20) {
        fail("unsupported escape in string");
      }
      value.push_back(c);
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    }
    ++pos_;
    return value;
  }

  [[nodiscard]] std::uint64_t u64_value() {
    skip_ws();
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      fail("expected integer");
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(text_[pos_] - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        fail("integer overflow");
      }
      value = value * 10 + digit;
      ++pos_;
    }
    return value;
  }

  void expect_end() {
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing bytes after document");
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw IoError("metrics JSON: " + what + " at offset " +
                  std::to_string(pos_));
  }

private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Look up \p name in a metric name table; IoError on unknown names.
template <std::size_t N>
std::size_t name_index(JsonReader& reader, const std::string& name,
                       const char* const (&table)[N]) {
  for (std::size_t i = 0; i < N; ++i) {
    if (name == table[i]) {
      return i;
    }
  }
  reader.fail("unknown metric name '" + name + "'");
}

/// Parse `{"name":<parse_value()>,...}`, dispatching each value by name.
template <typename ParseValue>
void parse_named_object(JsonReader& reader, ParseValue&& parse_value) {
  reader.expect('{');
  if (reader.try_consume('}')) {
    return;
  }
  do {
    const std::string name = reader.string_value();
    reader.expect(':');
    parse_value(name);
  } while (reader.try_consume(','));
  reader.expect('}');
}

} // namespace

MetricsSnapshot MetricsSnapshot::from_json(const std::string& text) {
  JsonReader reader(text);
  MetricsSnapshot snap;

  reader.expect('{');
  if (reader.string_value() != "schema") {
    reader.fail("expected \"schema\" first");
  }
  reader.expect(':');
  if (const std::string schema = reader.string_value();
      schema != "oms.metrics.v1") {
    reader.fail("unsupported schema '" + schema + "'");
  }

  reader.expect(',');
  if (reader.string_value() != "counters") {
    reader.fail("expected \"counters\"");
  }
  reader.expect(':');
  parse_named_object(reader, [&](const std::string& name) {
    snap.counters[name_index(reader, name, kCounterNames)] =
        reader.u64_value();
  });

  reader.expect(',');
  if (reader.string_value() != "gauges") {
    reader.fail("expected \"gauges\"");
  }
  reader.expect(':');
  parse_named_object(reader, [&](const std::string& name) {
    snap.gauges[name_index(reader, name, kGaugeNames)] = reader.u64_value();
  });

  reader.expect(',');
  if (reader.string_value() != "histograms") {
    reader.fail("expected \"histograms\"");
  }
  reader.expect(':');
  parse_named_object(reader, [&](const std::string& name) {
    HistogramSnapshot& hist =
        snap.histograms[name_index(reader, name, kHistNames)];
    reader.expect('{');
    if (reader.string_value() != "count") {
      reader.fail("expected \"count\"");
    }
    reader.expect(':');
    hist.count = reader.u64_value();
    reader.expect(',');
    if (reader.string_value() != "sum") {
      reader.fail("expected \"sum\"");
    }
    reader.expect(':');
    hist.sum = reader.u64_value();
    reader.expect(',');
    if (reader.string_value() != "buckets") {
      reader.fail("expected \"buckets\"");
    }
    reader.expect(':');
    reader.expect('[');
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (b != 0) {
        reader.expect(',');
      }
      hist.buckets[static_cast<std::size_t>(b)] = reader.u64_value();
    }
    reader.expect(']');
    reader.expect('}');
  });

  reader.expect('}');
  reader.expect_end();
  return snap;
}

} // namespace oms::telemetry
