/// \file progress.cpp
/// \brief ProgressReporter heartbeat: scrape the armed registry, derive
///        items/rate/ETA, print one stderr line per tick.

#include "oms/telemetry/progress.hpp"

#include <cinttypes>
#include <cstdint>

#include "oms/telemetry/metrics.hpp"

namespace oms::telemetry {

ProgressReporter::ProgressReporter(std::FILE* out,
                                   std::chrono::milliseconds interval)
    : out_(out), start_(std::chrono::steady_clock::now()),
      thread_([this, interval] { run(interval); }) {}

ProgressReporter::~ProgressReporter() { stop(); }

void ProgressReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      return;
    }
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  thread_.join();
  tick(/*final_tick=*/true);
}

void ProgressReporter::run(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    tick(/*final_tick=*/false);
    lock.lock();
  }
}

bool ProgressReporter::tick(bool final_tick) {
  MetricsRegistry* reg = MetricsRegistry::armed();
  if (reg == nullptr) {
    return false;
  }
  const MetricsSnapshot snap = reg->scrape();
  const std::uint64_t items = snap.counter(Counter::kStreamNodes) +
                              snap.counter(Counter::kStreamEdges);
  if (items == last_items_ && !(final_tick && items > 0)) {
    return false; // nothing moved since the last line — stay quiet
  }
  last_items_ = items;

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = elapsed_s > 0.0 ? static_cast<double>(items) / elapsed_s
                                      : 0.0;
  const std::uint64_t total = snap.gauge(Gauge::kProgressTotalItems);
  if (total > 0 && rate > 0.0 && items <= total) {
    const double pct =
        100.0 * static_cast<double>(items) / static_cast<double>(total);
    const double eta_s = static_cast<double>(total - items) / rate;
    std::fprintf(out_,
                 "progress: %" PRIu64 "/%" PRIu64
                 " items (%.1f%%) | %.0f items/s | ETA %.1fs\n",
                 items, total, pct, rate, eta_s);
  } else {
    std::fprintf(out_, "progress: %" PRIu64 " items | %.0f items/s\n", items,
                 rate);
  }
  std::fflush(out_);
  return true;
}

} // namespace oms::telemetry
