/// \file progress.hpp
/// \brief --progress: a background stderr heartbeat scraped from the armed
///        MetricsRegistry (items streamed, rate, ETA). Stdout is never
///        touched, so pinned CLI output stays byte-identical.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

namespace oms::telemetry {

/// RAII heartbeat thread: while alive, prints one stderr line per interval
/// with the items streamed so far (stream.nodes + stream.edges), the current
/// rate, and — when the progress.total_items gauge is set — percent done and
/// an ETA. Quiet while nothing moves; requires an armed registry to have
/// anything to report. The destructor stops and joins the thread, so callers
/// can scope the reporter tightly around the run they want narrated.
class ProgressReporter {
public:
  explicit ProgressReporter(std::FILE* out = stderr,
                            std::chrono::milliseconds interval =
                                std::chrono::milliseconds(500));
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Stop the heartbeat early (idempotent; also called by the destructor).
  /// Prints a final line if any items were streamed since the last tick.
  void stop();

private:
  void run(std::chrono::milliseconds interval);
  /// One heartbeat: returns true if a line was printed.
  bool tick(bool final_tick);

  std::FILE* out_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::uint64_t last_items_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::thread thread_;
};

} // namespace oms::telemetry
