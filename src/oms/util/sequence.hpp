/// \file sequence.hpp
/// \brief Parsing and formatting of colon-separated sequences such as the
///        hierarchy string "4:16:2" and the distance string "1:10:100".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oms {

/// Parse "a1:a2:...:al" into its integer factors. Aborts on malformed input
/// (empty parts, non-digits, zero values) — these are programmer/config errors.
[[nodiscard]] std::vector<std::int64_t> parse_sequence(std::string_view text);

/// Format a sequence back into "a1:a2:...:al" form.
[[nodiscard]] std::string format_sequence(const std::vector<std::int64_t>& seq);

/// Product of all entries, checked against overflow.
[[nodiscard]] std::int64_t sequence_product(const std::vector<std::int64_t>& seq);

} // namespace oms
