/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the binary
///        snapshot formats: graph caches (graph/io) and streaming checkpoints
///        (stream/checkpoint) append a checksum so truncation and bit flips
///        surface as a clean oms::IoError instead of silently read garbage.
///
/// Table-driven, one byte per step — these files are written once per
/// checkpoint interval and read once per resume, so simplicity beats a
/// slice-by-8 implementation here. The table is built at compile time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace oms {

namespace detail {

[[nodiscard]] consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) != 0 ? 0xEDB88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

} // namespace detail

/// Fold \p bytes into a running CRC. Start from crc32_init(), finish with
/// crc32_final(); chunks may be fed in any split.
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFU; }

[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                                std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32Table[(crc ^ p[i]) & 0xFFU];
  }
  return crc;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFU;
}

/// One-shot convenience over a single contiguous buffer.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t bytes) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, bytes));
}

} // namespace oms
