/// \file assert.hpp
/// \brief Library assertion macros (CppCoreGuidelines I.6/I.8 style).
///
/// OMS_ASSERT is active in every build type: it guards cheap preconditions
/// whose violation would corrupt results silently (wrong block ids, capacity
/// overflow, ...). OMS_HEAVY_ASSERT guards O(n)-and-worse invariant scans and
/// is compiled in only when OMS_HEAVY_ASSERTS is defined (CMake option).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace oms::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "[oms] assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

} // namespace oms::detail

#define OMS_ASSERT_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) [[unlikely]] {                                            \
      ::oms::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));        \
    }                                                                      \
  } while (false)

#define OMS_ASSERT(expr) OMS_ASSERT_MSG(expr, "")

#if defined(OMS_HEAVY_ASSERTS)
#define OMS_HEAVY_ASSERT(expr) OMS_ASSERT(expr)
#define OMS_HEAVY_ASSERT_MSG(expr, msg) OMS_ASSERT_MSG(expr, msg)
#else
#define OMS_HEAVY_ASSERT(expr) ((void)0)
#define OMS_HEAVY_ASSERT_MSG(expr, msg) ((void)0)
#endif
