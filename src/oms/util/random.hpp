/// \file random.hpp
/// \brief Deterministic pseudo-random utilities: splitmix64 stateless hashing
///        and a xoshiro256** generator.
///
/// All stochastic components of the library (generators, seed-randomized
/// algorithms, the Hashing partitioner) derive their randomness from these
/// primitives so that every experiment is reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>

#include "oms/util/assert.hpp"

namespace oms {

/// Stateless 64-bit mixer (splitmix64 finalizer). Used both to seed PRNGs and
/// as the hash function of the Hashing streaming partitioner.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a node id and a salt (e.g. a tree-block id) into one hash value.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
}

/// xoshiro256** 1.0 by Blackman & Vigna; small, fast, and good enough for
/// workload generation. Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) {
      seed = splitmix64(seed);
      word = seed;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Unbiased enough for workload generation
  /// (Lemire-style multiply-shift reduction).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    OMS_ASSERT_MSG(bound > 0, "next_below requires positive bound");
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool next_bool(double p) noexcept { return next_double() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

} // namespace oms
