#include "oms/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace oms {

double arithmetic_mean(std::span<const double> values) noexcept {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (const double v : values) {
    OMS_ASSERT_MSG(v > 0.0, "geometric_mean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double shifted_geometric_mean(std::span<const double> values, double shift) {
  if (values.empty()) {
    return 0.0;
  }
  OMS_ASSERT(shift > 0.0);
  double log_sum = 0.0;
  for (const double v : values) {
    OMS_ASSERT_MSG(v >= 0.0, "shifted_geometric_mean requires non-negative values");
    log_sum += std::log(v + shift);
  }
  return std::exp(log_sum / static_cast<double>(values.size())) - shift;
}

double improvement_percent(double sigma_b, double sigma_a) {
  OMS_ASSERT_MSG(sigma_a > 0.0, "improvement_percent: reference value must be positive");
  return (sigma_b / sigma_a - 1.0) * 100.0;
}

double speedup(double time_b, double time_a) {
  OMS_ASSERT_MSG(time_a > 0.0, "speedup: time of A must be positive");
  return time_b / time_a;
}

void PerformanceProfile::add(const std::string& instance, const std::string& algorithm,
                             double value) {
  OMS_ASSERT_MSG(value >= 0.0, "performance profile values must be non-negative");
  auto& per_algo = instances_[instance];
  per_algo[algorithm] = value;
  if (std::find(algorithms_.begin(), algorithms_.end(), algorithm) ==
      algorithms_.end()) {
    algorithms_.push_back(algorithm);
  }
}

double PerformanceProfile::fraction_within(const std::string& algorithm,
                                           double tau) const {
  OMS_ASSERT(tau >= 1.0);
  if (instances_.empty()) {
    return 0.0;
  }
  std::size_t hits = 0;
  for (const auto& [instance, per_algo] : instances_) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [algo, value] : per_algo) {
      best = std::min(best, value);
    }
    const auto it = per_algo.find(algorithm);
    if (it == per_algo.end()) {
      continue; // missing result: counts as failure for this instance
    }
    // best == 0 edge case: only algorithms that also achieve 0 are "within".
    const bool within = (best == 0.0) ? (it->second == 0.0) : (it->second <= tau * best);
    if (within) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(instances_.size());
}

std::vector<std::vector<double>>
PerformanceProfile::table(std::span<const double> taus) const {
  std::vector<std::vector<double>> rows;
  rows.reserve(taus.size());
  for (const double tau : taus) {
    std::vector<double> row;
    row.reserve(algorithms_.size() + 1);
    row.push_back(tau);
    for (const auto& algo : algorithms_) {
      row.push_back(fraction_within(algo, tau));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

} // namespace oms
