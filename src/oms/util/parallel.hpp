/// \file parallel.hpp
/// \brief Thin OpenMP helpers (hardware thread discovery, a chunked
///        parallel-for matching the paper's vertex-centric parallelization)
///        plus the bounded blocking queue that carries parsed node batches
///        between the disk-ingest producer and the assignment consumers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include <omp.h>

#include "oms/util/assert.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"

/// TSan cannot see the fork/join synchronization inside an uninstrumented
/// OpenMP runtime (GCC's libgomp), so every parallel region would report
/// false races between the workers and the code after the implicit barrier.
/// Under TSan the chunked parallel-for below therefore walks the same chunk
/// decomposition sequentially (same work, same thread ids handed to the
/// body, no OMP threads). The std::thread-based pipeline machinery — the
/// concurrency the TSan CI leg exists to check — stays fully instrumented.
#if defined(__SANITIZE_THREAD__)
#define OMS_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OMS_TSAN_ACTIVE 1
#endif
#endif

namespace oms {

/// Number of hardware threads (>= 1).
[[nodiscard]] inline int hardware_threads() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

/// Clamp a requested thread count: 0 means "all hardware threads".
[[nodiscard]] inline int resolve_threads(int requested) noexcept {
  if (requested <= 0) {
    return hardware_threads();
  }
  return requested;
}

/// Run body(begin, end, thread_id) over [0, n) split into contiguous static
/// chunks. Static chunking keeps the streaming order locally sequential per
/// thread, which is what Section 3.4 of the paper assumes ("nodes ...
/// concurrently loaded by distinct threads").
///
/// \param chunk_size 0 = one maximal chunk per thread (lowest scheduling
///        overhead). A positive value splits [0, n) into chunks of that size
///        dealt to threads round-robin — smaller chunks smooth out degree
///        skew (a hub-heavy region no longer pins one thread) at the price
///        of more frequent chunk switches; each thread still sees its own
///        chunks in ascending order.
template <typename Body>
void parallel_chunks(std::size_t n, int num_threads, std::size_t chunk_size,
                     Body&& body) {
  const int threads = resolve_threads(num_threads);
  if (threads == 1 || n == 0) {
    body(std::size_t{0}, n, 0);
    return;
  }
#if defined(OMS_TSAN_ACTIVE)
  {
    const auto used = static_cast<std::size_t>(threads);
    const std::size_t chunk =
        chunk_size > 0 ? chunk_size : (n + used - 1) / used;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * chunk;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      body(begin, end, static_cast<int>(c % used));
    }
  }
#else
#pragma omp parallel num_threads(threads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto used = static_cast<std::size_t>(omp_get_num_threads());
    const std::size_t chunk =
        chunk_size > 0 ? chunk_size : (n + used - 1) / used;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    for (std::size_t c = tid; c < num_chunks; c += used) {
      const std::size_t begin = c * chunk;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      body(begin, end, static_cast<int>(tid));
    }
  }
#endif
}

/// Bounded blocking FIFO for producer/consumer pipelines (SPSC through MPMC;
/// every operation is mutex-guarded). Backpressure is built in: push() blocks
/// while the queue holds \p capacity elements, so a fast disk reader cannot
/// run arbitrarily far ahead of slow consumers.
///
/// Shutdown protocol: close() wakes every blocked thread. A push() on a
/// closed queue returns false and leaves the value untouched; pop() keeps
/// draining buffered elements and returns false only once the queue is both
/// closed and empty. This lets a failing side unblock the other without
/// losing in-flight work, and is what the streaming pipeline relies on to
/// surface an IoError raised mid-stream instead of deadlocking.
///
/// abort() is the error-path variant of close(): it additionally discards the
/// buffered elements, so a consumer that failed mid-batch does not leave
/// siblings chewing through stale work before they notice the shutdown.
///
/// A watchdog (set_watchdog) bounds every blocking wait: if the peer side is
/// dead — a producer that crashed without closing, a consumer stuck in a
/// syscall — the wait times out and throws IoError instead of deadlocking the
/// process forever. Disabled (0) by default; the pipeline arms it from
/// PipelineConfig.
template <typename T>
class BoundedQueue {
public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    OMS_ASSERT_MSG(capacity > 0, "BoundedQueue needs capacity >= 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Bound every subsequent blocking wait to \p timeout; 0 disables (plain
  /// untimed waits). Call before the producer/consumer threads start.
  void set_watchdog(std::chrono::milliseconds timeout) {
    const std::lock_guard<std::mutex> lock(mutex_);
    watchdog_ = timeout;
  }

  /// Blocks while full; false (value untouched) if the queue is closed.
  /// Throws IoError if the watchdog expires while waiting.
  [[nodiscard]] bool push(T&& value) {
    std::unique_lock<std::mutex> lock(mutex_);
    wait_guarded(lock, not_full_,
                 [this] { return items_.size() < capacity_ || closed_; },
                 "push (consumers stalled?)");
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; false once the queue is closed *and* drained.
  /// Throws IoError if the watchdog expires while waiting.
  [[nodiscard]] bool pop(T& out) {
    fault_sleep(FaultSite::kQueueDelay);
    std::unique_lock<std::mutex> lock(mutex_);
    wait_guarded(lock, not_empty_,
                 [this] { return !items_.empty() || closed_; },
                 "pop (producer stalled?)");
    if (items_.empty()) {
      return false;
    }
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Irreversible; wakes every blocked push() and pop().
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// close() plus discard of all buffered elements: the error-path shutdown.
  /// Every blocked push()/pop() returns false immediately (nothing left to
  /// drain), so sibling workers stop at their next queue operation.
  void abort() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      items_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
  /// Wait for \p ready under \p lock, bounded by the watchdog when armed.
  /// Spurious progress (any state change) rearms the timeout, so only a
  /// genuinely dead peer trips it.
  template <typename Pred>
  void wait_guarded(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                    Pred ready, const char* what) {
    if (watchdog_.count() == 0) {
      cv.wait(lock, ready);
      return;
    }
    if (!cv.wait_for(lock, watchdog_, ready)) {
      closed_ = true;
      items_.clear();
      not_empty_.notify_all();
      not_full_.notify_all();
      throw IoError(std::string("BoundedQueue watchdog timeout in ") + what);
    }
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::chrono::milliseconds watchdog_{0};
  bool closed_ = false;
};

} // namespace oms
