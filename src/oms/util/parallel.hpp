/// \file parallel.hpp
/// \brief Thin OpenMP helpers: hardware thread discovery and a chunked
///        parallel-for matching the paper's vertex-centric parallelization.
#pragma once

#include <cstddef>
#include <thread>

#include <omp.h>

#include "oms/util/assert.hpp"

namespace oms {

/// Number of hardware threads (>= 1).
[[nodiscard]] inline int hardware_threads() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

/// Clamp a requested thread count: 0 means "all hardware threads".
[[nodiscard]] inline int resolve_threads(int requested) noexcept {
  if (requested <= 0) {
    return hardware_threads();
  }
  return requested;
}

/// Run body(begin, end, thread_id) over [0, n) split into contiguous static
/// chunks. Static chunking keeps the streaming order locally sequential per
/// thread, which is what Section 3.4 of the paper assumes ("nodes ...
/// concurrently loaded by distinct threads").
///
/// \param chunk_size 0 = one maximal chunk per thread (lowest scheduling
///        overhead). A positive value splits [0, n) into chunks of that size
///        dealt to threads round-robin — smaller chunks smooth out degree
///        skew (a hub-heavy region no longer pins one thread) at the price
///        of more frequent chunk switches; each thread still sees its own
///        chunks in ascending order.
template <typename Body>
void parallel_chunks(std::size_t n, int num_threads, std::size_t chunk_size,
                     Body&& body) {
  const int threads = resolve_threads(num_threads);
  if (threads == 1 || n == 0) {
    body(std::size_t{0}, n, 0);
    return;
  }
#pragma omp parallel num_threads(threads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto used = static_cast<std::size_t>(omp_get_num_threads());
    const std::size_t chunk =
        chunk_size > 0 ? chunk_size : (n + used - 1) / used;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    for (std::size_t c = tid; c < num_chunks; c += used) {
      const std::size_t begin = c * chunk;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      body(begin, end, static_cast<int>(tid));
    }
  }
}

} // namespace oms
