/// \file work_counters.hpp
/// \brief Instrumentation counters used to verify the paper's complexity
///        claims (Theorems 2-4) empirically: the number of block-score
///        evaluations and neighbor visits performed by a streaming run.
#pragma once

#include <cstdint>

namespace oms {

/// Plain counters; each worker thread owns one instance and the driver merges
/// them at the end of a run, so no atomics are needed on the hot path. The
/// merged result is the run's single aggregation product: drivers publish it
/// once into the telemetry registry (telemetry::publish_work, the
/// work.* counters of --metrics-out and the METRICS opcode) and surface it
/// on PartitionArtifact::work for the CLI summary — there is no separate
/// ad-hoc reporting path.
struct WorkCounters {
  /// Score evaluations of candidate (sub-)blocks; Theorem 2 predicts
  /// ~ n * sum_i a_i for OMS and ~ n * k for flat Fennel/LDG.
  std::uint64_t score_evaluations = 0;
  /// Neighbor inspections; Theorem 2 predicts ~ m * l for OMS and ~ m for
  /// flat one-pass algorithms (each endpoint visited once).
  std::uint64_t neighbor_visits = 0;
  /// Tree layers traversed over all nodes (equals n for flat algorithms).
  std::uint64_t layers_traversed = 0;

  WorkCounters& operator+=(const WorkCounters& other) noexcept {
    score_evaluations += other.score_evaluations;
    neighbor_visits += other.neighbor_visits;
    layers_traversed += other.layers_traversed;
    return *this;
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return score_evaluations + neighbor_visits + layers_traversed;
  }
};

} // namespace oms
