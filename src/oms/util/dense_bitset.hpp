/// \file dense_bitset.hpp
/// \brief A table of fixed-width dense bitsets, one row per vertex — the
///        replica sets of the streaming vertex-cut partitioners.
///
/// Vertex-cut replication state is a |V| x k boolean matrix with small k
/// (tens to a few thousand blocks), so each row is a handful of 64-bit
/// words stored flat. Rows grow on demand because edge-list streams reveal
/// the vertex universe only as edges arrive.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "oms/types.hpp"
#include "oms/util/assert.hpp"

namespace oms {

class BitsetTable {
public:
  explicit BitsetTable(BlockId bits_per_row)
      : bits_per_row_(bits_per_row),
        words_per_row_((static_cast<std::size_t>(bits_per_row) + 63) / 64) {
    OMS_ASSERT_MSG(bits_per_row >= 1, "BitsetTable needs at least one bit per row");
  }

  [[nodiscard]] BlockId bits_per_row() const noexcept { return bits_per_row_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return num_rows_; }

  /// Grow to at least \p rows rows (doubling, so per-edge growth is O(1)
  /// amortized even when vertex ids arrive in ascending order).
  void ensure_rows(std::size_t rows) {
    if (rows <= num_rows_) {
      return;
    }
    std::size_t capacity = words_.size() / words_per_row_;
    if (rows > capacity) {
      capacity = capacity == 0 ? 16 : capacity;
      while (capacity < rows) {
        capacity *= 2;
      }
      words_.resize(capacity * words_per_row_, 0);
    }
    num_rows_ = rows;
  }

  void set(std::size_t row, BlockId bit) noexcept {
    OMS_HEAVY_ASSERT(row < num_rows_ && bit >= 0 && bit < bits_per_row_);
    words_[row * words_per_row_ + static_cast<std::size_t>(bit) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(bit) % 64);
  }

  /// Rows beyond the current size read as all-zero (a vertex never seen has
  /// no replicas), so tests need no bounds bookkeeping.
  [[nodiscard]] bool test(std::size_t row, BlockId bit) const noexcept {
    OMS_HEAVY_ASSERT(bit >= 0 && bit < bits_per_row_);
    if (row >= num_rows_) {
      return false;
    }
    return (words_[row * words_per_row_ + static_cast<std::size_t>(bit) / 64] >>
            (static_cast<std::size_t>(bit) % 64)) &
           1U;
  }

  /// Any bit set in [begin, end)? The hot probe of the hierarchical descent:
  /// "does u already have a replica inside this child's leaf range".
  [[nodiscard]] bool any_in_range(std::size_t row, BlockId begin,
                                  BlockId end) const noexcept {
    OMS_HEAVY_ASSERT(begin >= 0 && begin <= end && end <= bits_per_row_);
    if (row >= num_rows_ || begin == end) {
      return false;
    }
    const std::uint64_t* words = words_.data() + row * words_per_row_;
    const auto first = static_cast<std::size_t>(begin) / 64;
    const auto last = (static_cast<std::size_t>(end) - 1) / 64;
    const std::uint64_t head_mask = ~std::uint64_t{0}
                                    << (static_cast<std::size_t>(begin) % 64);
    const std::uint64_t tail_mask =
        ~std::uint64_t{0} >> (63 - (static_cast<std::size_t>(end) - 1) % 64);
    if (first == last) {
      return (words[first] & head_mask & tail_mask) != 0;
    }
    if ((words[first] & head_mask) != 0 || (words[last] & tail_mask) != 0) {
      return true;
    }
    for (std::size_t w = first + 1; w < last; ++w) {
      if (words[w] != 0) {
        return true;
      }
    }
    return false;
  }

  /// Set bits in [begin, end) of one row — how many of a vertex's replicas
  /// sit inside a module's leaf range.
  [[nodiscard]] std::uint32_t count_in_range(std::size_t row, BlockId begin,
                                             BlockId end) const noexcept {
    OMS_HEAVY_ASSERT(begin >= 0 && begin <= end && end <= bits_per_row_);
    if (row >= num_rows_ || begin == end) {
      return 0;
    }
    const std::uint64_t* words = words_.data() + row * words_per_row_;
    const auto first = static_cast<std::size_t>(begin) / 64;
    const auto last = (static_cast<std::size_t>(end) - 1) / 64;
    const std::uint64_t head_mask = ~std::uint64_t{0}
                                    << (static_cast<std::size_t>(begin) % 64);
    const std::uint64_t tail_mask =
        ~std::uint64_t{0} >> (63 - (static_cast<std::size_t>(end) - 1) % 64);
    if (first == last) {
      return static_cast<std::uint32_t>(
          std::popcount(words[first] & head_mask & tail_mask));
    }
    std::uint32_t count =
        static_cast<std::uint32_t>(std::popcount(words[first] & head_mask)) +
        static_cast<std::uint32_t>(std::popcount(words[last] & tail_mask));
    for (std::size_t w = first + 1; w < last; ++w) {
      count += static_cast<std::uint32_t>(std::popcount(words[w]));
    }
    return count;
  }

  /// Number of set bits in one row (= number of replicas of that vertex).
  [[nodiscard]] std::uint32_t count_row(std::size_t row) const noexcept {
    if (row >= num_rows_) {
      return 0;
    }
    std::uint32_t count = 0;
    const std::uint64_t* words = words_.data() + row * words_per_row_;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      count += static_cast<std::uint32_t>(std::popcount(words[w]));
    }
    return count;
  }

  /// Invoke \p fn(BlockId) for every set bit of \p row, ascending.
  template <typename Fn>
  void for_each_set(std::size_t row, Fn&& fn) const {
    if (row >= num_rows_) {
      return;
    }
    const std::uint64_t* words = words_.data() + row * words_per_row_;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t word = words[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<BlockId>(w * 64 + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

private:
  BlockId bits_per_row_;
  std::size_t words_per_row_;
  std::size_t num_rows_ = 0;
  std::vector<std::uint64_t> words_;
};

} // namespace oms
