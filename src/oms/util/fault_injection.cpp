#include "oms/util/fault_injection.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "oms/util/io_error.hpp"
#include "oms/util/random.hpp"

namespace oms {

namespace {

constexpr std::size_t kNumSites = static_cast<std::size_t>(FaultSite::kCount);

constexpr const char* kSiteNames[kNumSites] = {
    "read.transient", "read.error",   "read.short",
    "read.corrupt",   "queue.delay",  "fill.delay",
    "consume.throw",  "thread.spawn", "checkpoint.die",
    "svc.accept",     "svc.read",     "svc.write",
    "svc.slow",
};

/// Backing storage for the armed plan. arm() copies into this slot so the
/// caller's FaultPlan may die while the pointer stays valid; the pointer is
/// only ever this slot or null, so there is no lifetime hand-off to manage.
FaultPlan& armed_slot() {
  static FaultPlan slot;
  return slot;
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& spec, std::size_t begin,
                                      std::size_t end) {
  if (begin >= end) {
    throw IoError("fault spec: missing number in '" + spec + "'");
  }
  std::uint64_t value = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') {
      throw IoError("fault spec: bad number in '" + spec + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

} // namespace

const char* fault_site_name(FaultSite site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

FaultPlan::FaultPlan(const FaultPlan& other) { *this = other; }

FaultPlan& FaultPlan::operator=(const FaultPlan& other) {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    entries_[i] = other.entries_[i];
    hits_[i].store(0, std::memory_order_relaxed);
  }
  return *this;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::size_t at = spec.find('@', pos);
    if (at == std::string::npos || at >= comma) {
      throw IoError("fault spec: expected site@trigger in '" + spec + "'");
    }
    const std::string name = spec.substr(pos, at - pos);
    std::size_t site_idx = kNumSites;
    for (std::size_t i = 0; i < kNumSites; ++i) {
      if (name == kSiteNames[i]) {
        site_idx = i;
        break;
      }
    }
    if (site_idx == kNumSites) {
      throw IoError("fault spec: unknown site '" + name + "'");
    }
    const std::size_t plus = spec.find('+', at + 1);
    Entry& entry = plan.entries_[site_idx];
    entry.active = true;
    if (plus != std::string::npos && plus < comma) {
      entry.trigger = parse_u64(spec, at + 1, plus);
      entry.period = parse_u64(spec, plus + 1, comma);
      if (entry.period == 0) {
        throw IoError("fault spec: period must be >= 1 in '" + spec + "'");
      }
    } else {
      entry.trigger = parse_u64(spec, at + 1, comma);
      entry.period = 0;
    }
    if (entry.trigger == 0) {
      throw IoError("fault spec: trigger is 1-based in '" + spec + "'");
    }
    pos = comma + 1;
  }
  return plan;
}

FaultPlan FaultPlan::seeded(std::uint64_t seed) {
  FaultPlan plan;
  Rng rng(hash_combine(seed, 0x6661756c74ULL)); // "fault"
  const std::size_t num_faults = 1 + rng.next_below(3);
  for (std::size_t f = 0; f < num_faults; ++f) {
    // kCheckpointDie is excluded: a seeded sweep has no resume harness, so a
    // deliberate post-checkpoint crash would just look like a failure. The
    // checkpoint tests schedule it explicitly instead. The svc.* sites live
    // past it and are drawn by seeded_service only.
    const auto site = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(FaultSite::kCheckpointDie)));
    Entry& entry = plan.entries_[site];
    entry.active = true;
    entry.trigger = 1 + rng.next_below(40);
    // One site in three keeps firing periodically, to stress repeated faults.
    entry.period = rng.next_below(3) == 0 ? 1 + rng.next_below(8) : 0;
  }
  return plan;
}

FaultPlan FaultPlan::seeded_service(std::uint64_t seed) {
  FaultPlan plan;
  Rng rng(hash_combine(seed, 0x737663ULL)); // "svc"
  constexpr auto kFirst = static_cast<std::size_t>(FaultSite::kSvcAccept);
  constexpr auto kLast = static_cast<std::size_t>(FaultSite::kSvcSlow);
  const std::size_t num_faults = 1 + rng.next_below(3);
  for (std::size_t f = 0; f < num_faults; ++f) {
    const std::size_t site = kFirst + static_cast<std::size_t>(
                                          rng.next_below(kLast - kFirst + 1));
    Entry& entry = plan.entries_[site];
    entry.active = true;
    // Service sessions are short; keep triggers early so the schedule
    // actually fires within a sweep's request budget.
    entry.trigger = 1 + rng.next_below(12);
    entry.period = rng.next_below(3) == 0 ? 1 + rng.next_below(4) : 0;
  }
  return plan;
}

void FaultPlan::arm(const FaultPlan& plan) {
  detail::g_armed_fault_plan.store(nullptr, std::memory_order_release);
  armed_slot() = plan; // also resets the hit counters
  detail::g_armed_fault_plan.store(&armed_slot(), std::memory_order_release);
}

void FaultPlan::disarm() {
  detail::g_armed_fault_plan.store(nullptr, std::memory_order_release);
}

bool FaultPlan::arm_from_env() {
  if (const char* spec = std::getenv("OMS_FAULTS"); spec != nullptr && *spec != '\0') {
    arm(parse(spec));
    return true;
  }
  if (const char* env = std::getenv("OMS_FAULT_SEED"); env != nullptr && *env != '\0') {
    const std::string seed(env);
    arm(seeded(parse_u64(seed, 0, seed.size())));
    return true;
  }
  return false;
}

bool FaultPlan::should_fire(FaultSite site) noexcept {
  const auto idx = static_cast<std::size_t>(site);
  const Entry& entry = entries_[idx];
  if (!entry.active) {
    return false;
  }
  const std::uint64_t hit = hits_[idx].fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit == entry.trigger) {
    return true;
  }
  return entry.period != 0 && hit > entry.trigger &&
         (hit - entry.trigger) % entry.period == 0;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (std::size_t i = 0; i < kNumSites; ++i) {
    const Entry& entry = entries_[i];
    if (!entry.active) {
      continue;
    }
    if (!out.empty()) {
      out += ", ";
    }
    out += kSiteNames[i];
    out += '@';
    out += std::to_string(entry.trigger);
    if (entry.period != 0) {
      out += '+';
      out += std::to_string(entry.period);
    }
  }
  return out.empty() ? "(no faults)" : out;
}

namespace detail {
std::atomic<FaultPlan*> g_armed_fault_plan{nullptr};
} // namespace detail

void fault_sleep(FaultSite site) noexcept {
  if (fault_fires(site)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

} // namespace oms
