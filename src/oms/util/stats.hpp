/// \file stats.hpp
/// \brief Statistical aggregation used throughout the paper's evaluation:
///        arithmetic / geometric means, "improvement over" percentages, and
///        performance profiles (Dolan-More style, as plotted in Fig. 2d-f).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "oms/util/assert.hpp"

namespace oms {

/// Arithmetic mean; empty input yields 0.
[[nodiscard]] double arithmetic_mean(std::span<const double> values) noexcept;

/// Geometric mean of strictly positive values. The paper uses it when
/// averaging across instances "to give every instance the same influence".
/// Values must be > 0; violations abort (they indicate a broken experiment).
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Geometric mean that tolerates zeros by shifting: gm(v + shift) - shift.
/// Used for objectives that can legitimately be 0 (e.g. the edge-cut of a
/// disconnected instance with k equal to its component count).
[[nodiscard]] double shifted_geometric_mean(std::span<const double> values,
                                            double shift = 1.0);

/// The paper's improvement metric: (sigma_B / sigma_A - 1) * 100%. A positive
/// result means algorithm A improves on B (A's objective is smaller).
[[nodiscard]] double improvement_percent(double sigma_b, double sigma_a);

/// Speedup of A over B given running times: time_B / time_A.
[[nodiscard]] double speedup(double time_b, double time_a);

/// Performance profile over a set of instances (Fig. 2d-f). For every
/// instance each algorithm reports a value (running time or objective;
/// smaller is better). The profile of algorithm A at factor tau is the
/// fraction of instances on which A's value is within tau times the best
/// value any algorithm achieved on that instance.
class PerformanceProfile {
public:
  /// Record the value achieved by \p algorithm on \p instance.
  /// Values must be non-negative; zero is allowed (perfect score).
  void add(const std::string& instance, const std::string& algorithm, double value);

  /// Fraction of instances on which \p algorithm is within \p tau of the best.
  /// Instances where the algorithm reported nothing count as "not within".
  [[nodiscard]] double fraction_within(const std::string& algorithm, double tau) const;

  /// All algorithm names seen so far, in first-seen order.
  [[nodiscard]] const std::vector<std::string>& algorithms() const noexcept {
    return algorithms_;
  }

  [[nodiscard]] std::size_t num_instances() const noexcept { return instances_.size(); }

  /// Rows of (tau, fraction per algorithm) for the given tau values;
  /// convenient for table emission by the bench harness.
  [[nodiscard]] std::vector<std::vector<double>>
  table(std::span<const double> taus) const;

private:
  // instance -> (algorithm -> value)
  std::map<std::string, std::map<std::string, double>> instances_;
  std::vector<std::string> algorithms_;
};

/// Online accumulator for min/max/mean; used by tests and reporters.
class RunningStats {
public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

} // namespace oms
