/// \file memory.hpp
/// \brief Process memory introspection for the paper's Section 4.1 memory
///        comparison (VmRSS / VmHWM from /proc on Linux).
#pragma once

#include <cstdint>

namespace oms {

/// Current resident set size in bytes; 0 if /proc is unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Peak resident set size ("high water mark") in bytes; 0 if unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

} // namespace oms
