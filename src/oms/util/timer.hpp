/// \file timer.hpp
/// \brief Wall-clock timing helpers used by the experiment harness.
#pragma once

#include <chrono>

namespace oms {

/// Monotonic wall-clock stopwatch. Started on construction.
class Timer {
public:
  Timer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last restart().
  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the lifetime of the scope into a caller-owned counter;
/// convenient for attributing time to phases inside larger runs.
class ScopedTimer {
public:
  explicit ScopedTimer(double& accumulator_s) noexcept
      : accumulator_s_(accumulator_s) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { accumulator_s_ += timer_.elapsed_s(); }

private:
  double& accumulator_s_;
  Timer timer_;
};

} // namespace oms
