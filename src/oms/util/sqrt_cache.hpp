/// \file sqrt_cache.hpp
/// \brief Memoized sqrt over the small non-negative integers — the only
///        argument shape the gamma = 3/2 Fennel penalty ever evaluates.
///
/// Block weights move in node-weight steps inside [0, capacity], so for the
/// common capacities the whole argument domain fits a lookup table and the
/// scorer's sqrtsd (plus GCC's errno spill around it) disappears from the
/// per-block inner loop. Entries hold exactly std::sqrt(double(w)), keeping
/// every score bit-identical to the uncached computation; weights beyond the
/// table (or a negative transient) fall back to std::sqrt.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "oms/types.hpp"

namespace oms {

class SqrtCache {
public:
  /// Caps the table at 512 KiB — enough for every block capacity the paper's
  /// configurations produce; larger domains degrade to plain sqrt.
  static constexpr std::uint64_t kMaxEntries = std::uint64_t{1} << 16;

  SqrtCache() = default;

  /// Cache sqrt over [0, max_value], clamped to kMaxEntries.
  explicit SqrtCache(NodeWeight max_value) {
    if (max_value < 0) {
      return;
    }
    const auto entries =
        std::min(static_cast<std::uint64_t>(max_value) + 1, kMaxEntries);
    table_.reserve(entries);
    for (std::uint64_t w = 0; w < entries; ++w) {
      table_.push_back(std::sqrt(static_cast<double>(w)));
    }
  }

  [[nodiscard]] double operator()(NodeWeight w) const noexcept {
    // A negative w wraps to a huge index and falls through to std::sqrt,
    // reproducing the uncached NaN behaviour.
    const auto u = static_cast<std::uint64_t>(w);
    if (u < table_.size()) [[likely]] {
      return table_[u];
    }
    return std::sqrt(static_cast<double>(w));
  }

private:
  std::vector<double> table_;
};

} // namespace oms
