/// \file io_error.hpp
/// \brief Recoverable error channel for streaming graph ingest.
///
/// The library's OMS_ASSERT aborts the process, which is right for internal
/// invariants but wrong for *input* defects: a CLI fed a malformed METIS file
/// should fail with a message and a non-zero exit, not SIGABRT. Parsers that
/// consume external bytes (MetisNodeStream) throw IoError instead; callers
/// that cannot recover simply let it propagate.
#pragma once

#include <stdexcept>
#include <string>

namespace oms {

class IoError : public std::runtime_error {
public:
  explicit IoError(const std::string& message) : std::runtime_error(message) {}
};

/// Subclass for *content* defects (a malformed line, an out-of-range id) as
/// opposed to I/O machinery failures (read errors, watchdog timeouts,
/// truncated checkpoints). The distinction powers the --on-error=skip policy:
/// a ContentError on a data line can be skipped under a budget, while a plain
/// IoError always aborts the run. Catching IoError still catches both, so
/// every existing caller keeps its behavior.
class ContentError : public IoError {
public:
  explicit ContentError(const std::string& message) : IoError(message) {}
};

} // namespace oms
