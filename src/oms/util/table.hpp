/// \file table.hpp
/// \brief Fixed-width console table printer used by the benchmark harness to
///        emit the paper's tables and figure series in a readable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace oms {

/// Accumulates rows of strings and prints them with aligned columns.
/// Numeric cells are produced via the cell() helpers so formatting is uniform.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a full row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with a header rule and 2-space column gaps.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept { return headers_.size(); }

  /// Format helpers with fixed precision (uniform across all benches).
  [[nodiscard]] static std::string cell(double value, int precision = 2);
  [[nodiscard]] static std::string cell(std::int64_t value);
  [[nodiscard]] static std::string cell(std::uint64_t value);
  [[nodiscard]] static std::string percent_cell(double value, int precision = 1);

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace oms
