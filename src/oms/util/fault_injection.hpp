/// \file fault_injection.hpp
/// \brief Deterministic fault injection for the streaming stack.
///
/// A FaultPlan is a seeded, reproducible schedule of named failure sites:
/// "the 3rd raw read fails transiently", "the 2nd pipeline batch's consumer
/// throws", "the process dies right after the 2nd checkpoint". The hooks are
/// compiled into the hot paths permanently (line_reader, pipeline_core,
/// BoundedQueue, the checkpoint writer) but cost exactly one relaxed atomic
/// pointer load and a predicted-not-taken branch while no plan is armed — the
/// gated BM_* benches run with the hooks in and must not move.
///
/// Arming is process-global and NOT thread-safe against concurrently running
/// pipelines: arm before the streaming run starts, disarm after it returned
/// (all pipeline threads joined). The chaos suite and the CLI (via the
/// OMS_FAULTS / OMS_FAULT_SEED environment variables) are the only intended
/// users; production runs never arm a plan.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace oms {

/// Named injection sites. Each site is hit-counted independently; a plan
/// decides per site at which hit numbers it fires.
enum class FaultSite : std::uint8_t {
  kReadTransient = 0, ///< line_reader: one raw read fails like EINTR (retryable)
  kReadError,         ///< line_reader: one raw read fails hard (not retryable)
  kReadShort,         ///< line_reader: one raw read returns a single byte
  kReadCorrupt,       ///< line_reader: one read chunk gets a byte corrupted
  kQueueDelay,        ///< BoundedQueue: one pop is delayed (slow-consumer jitter)
  kFillDelay,         ///< pipeline producer: one fill is delayed (slow-disk jitter)
  kConsumeThrow,      ///< pipeline consumer: throws before consuming one batch
  kThreadSpawn,       ///< pipeline: spawning the producer thread fails
  kCheckpointDie,     ///< checkpoint driver: crash right after a snapshot landed
  kSvcAccept,         ///< service: one accepted connection dies before serving
  kSvcRead,           ///< service: one connection read fails hard (torn client)
  kSvcWrite,          ///< service: one reply write fails hard (client hung up)
  kSvcSlow,           ///< service: one frame read stalls (slow-loris jitter)
  kCount
};

/// Spelled names accepted by FaultPlan::parse (index == enum value).
[[nodiscard]] const char* fault_site_name(FaultSite site) noexcept;

/// A reproducible per-site firing schedule plus the per-site hit counters.
/// Copyable while unarmed; the armed instance lives in a private static slot.
class FaultPlan {
public:
  /// Parse a comma-separated spec: `site@n` fires on the n-th hit of `site`
  /// (1-based, once); `site@n+p` fires on the n-th hit and every p-th hit
  /// after it. Example: "read.transient@2,consume.throw@1+3".
  /// Throws oms::IoError on unknown sites or malformed numbers.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Derive a small pseudo-random schedule (1-3 sites, early trigger counts)
  /// deterministically from \p seed — the unit the chaos sweeps iterate over.
  /// Draws only from the streaming sites (everything before kCheckpointDie);
  /// the service sweep uses seeded_service instead.
  [[nodiscard]] static FaultPlan seeded(std::uint64_t seed);

  /// Like seeded(), but over the transport sites of the service runtime
  /// (svc.accept / svc.read / svc.write / svc.slow) — the unit the service
  /// chaos sweep iterates over.
  [[nodiscard]] static FaultPlan seeded_service(std::uint64_t seed);

  /// Install \p plan as the process-global armed plan (replacing any previous
  /// one) / remove it. See the header comment for the threading contract.
  static void arm(const FaultPlan& plan);
  static void disarm();

  /// Arm from the environment: OMS_FAULTS (spec, wins) or OMS_FAULT_SEED
  /// (decimal seed). Returns true if a plan was armed. Throws oms::IoError on
  /// a malformed OMS_FAULTS value.
  static bool arm_from_env();

  /// Count one hit of \p site and report whether the schedule fires on it.
  /// Thread-safe (sites are hit concurrently by pipeline threads).
  [[nodiscard]] bool should_fire(FaultSite site) noexcept;

  /// Human-readable one-line summary ("read.error@3, queue.delay@1+2"); used
  /// by the chaos suite to report which schedule broke.
  [[nodiscard]] std::string describe() const;

  FaultPlan() = default;
  FaultPlan(const FaultPlan& other);            // copies schedule, resets counters
  FaultPlan& operator=(const FaultPlan& other); // copies schedule, resets counters

private:
  struct Entry {
    bool active = false;
    std::uint64_t trigger = 0; ///< 1-based hit number of the first firing
    std::uint64_t period = 0;  ///< 0 = fire once; else fire every period hits after
  };

  Entry entries_[static_cast<std::size_t>(FaultSite::kCount)];
  std::atomic<std::uint64_t> hits_[static_cast<std::size_t>(FaultSite::kCount)] = {};
};

namespace detail {
/// The armed plan; null (the overwhelmingly common case) means every hook is
/// a no-op after one relaxed load.
extern std::atomic<FaultPlan*> g_armed_fault_plan;
} // namespace detail

/// The hook compiled into the hot paths: free when disarmed.
[[nodiscard]] inline bool fault_fires(FaultSite site) noexcept {
  FaultPlan* plan = detail::g_armed_fault_plan.load(std::memory_order_acquire);
  if (plan == nullptr) [[likely]] {
    return false;
  }
  return plan->should_fire(site);
}

/// Delay-site helper: sleep a few milliseconds if the site fires. Defined out
/// of line so the hot path does not pull in <thread>.
void fault_sleep(FaultSite site) noexcept;

} // namespace oms
