/// \file assignment_array.hpp
/// \brief The per-node block assignment shared by concurrent one-pass
///        workers, with the memory-model rigor the raw vector lacked.
///
/// In the paper's shared-memory model (Section 3.4) a worker placing node u
/// reads the *current* assignment of u's neighbors while other workers keep
/// writing theirs; stale or still-invalid views are tolerated by the
/// algorithm. In C++, though, those unsynchronized reads are a data race on
/// a plain vector. Relaxed atomics make the slots well-defined at zero cost:
/// an aligned relaxed 32-bit load/store compiles to the same instruction as
/// the plain one on mainstream ISAs, so sequential results (and the golden
/// hashes) are bit-identical and the hot path gains nothing to pay.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "oms/types.hpp"

namespace oms {

class AssignmentArray {
public:
  explicit AssignmentArray(std::size_t num_nodes) : slots_(num_nodes) {
    fill(kInvalidBlock);
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  [[nodiscard]] BlockId load(NodeId u) const noexcept {
    return slots_[u].load(std::memory_order_relaxed);
  }

  void store(NodeId u, BlockId b) noexcept {
    slots_[u].store(b, std::memory_order_relaxed);
  }

  void fill(BlockId b) noexcept {
    for (std::atomic<BlockId>& slot : slots_) {
      slot.store(b, std::memory_order_relaxed);
    }
  }

  /// Copy out the final assignment (called once, after every worker joined).
  [[nodiscard]] std::vector<BlockId> take() const {
    std::vector<BlockId> out(slots_.size());
    for (std::size_t u = 0; u < slots_.size(); ++u) {
      out[u] = slots_[u].load(std::memory_order_relaxed);
    }
    return out;
  }

  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept {
    return static_cast<std::uint64_t>(slots_.size() * sizeof(std::atomic<BlockId>));
  }

private:
  static_assert(std::atomic<BlockId>::is_always_lock_free);
  std::vector<std::atomic<BlockId>> slots_;
};

} // namespace oms
