#include "oms/util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "oms/util/assert.hpp"

namespace oms {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OMS_ASSERT_MSG(!headers_.empty(), "table requires at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  OMS_ASSERT_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c])) << row[c];
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  std::size_t rule_width = 2 * (headers_.size() - 1);
  for (const std::size_t w : widths) {
    rule_width += w;
  }
  out << std::string(rule_width, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

std::string TablePrinter::cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string TablePrinter::cell(std::int64_t value) { return std::to_string(value); }

std::string TablePrinter::cell(std::uint64_t value) { return std::to_string(value); }

std::string TablePrinter::percent_cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::showpos << std::fixed << std::setprecision(precision) << value << "%";
  return ss.str();
}

} // namespace oms
