#include "oms/util/sequence.hpp"

#include <charconv>
#include <limits>

#include "oms/util/assert.hpp"

namespace oms {

std::vector<std::int64_t> parse_sequence(std::string_view text) {
  OMS_ASSERT_MSG(!text.empty(), "parse_sequence: empty string");
  std::vector<std::int64_t> result;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = text.find(':', pos);
    const std::string_view part =
        text.substr(pos, next == std::string_view::npos ? std::string_view::npos
                                                        : next - pos);
    OMS_ASSERT_MSG(!part.empty(), "parse_sequence: empty component");
    std::int64_t value = 0;
    const auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), value);
    OMS_ASSERT_MSG(ec == std::errc{} && ptr == part.data() + part.size(),
                   "parse_sequence: component is not an integer");
    OMS_ASSERT_MSG(value >= 1, "parse_sequence: components must be >= 1");
    result.push_back(value);
    if (next == std::string_view::npos) {
      break;
    }
    pos = next + 1;
  }
  return result;
}

std::string format_sequence(const std::vector<std::int64_t>& seq) {
  std::string out;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) {
      out += ':';
    }
    out += std::to_string(seq[i]);
  }
  return out;
}

std::int64_t sequence_product(const std::vector<std::int64_t>& seq) {
  std::int64_t product = 1;
  for (const std::int64_t a : seq) {
    OMS_ASSERT_MSG(a > 0, "sequence_product: factors must be positive");
    OMS_ASSERT_MSG(product <= std::numeric_limits<std::int64_t>::max() / a,
                   "sequence_product: overflow");
    product *= a;
  }
  return product;
}

} // namespace oms
