#include "oms/util/memory.hpp"

#include <cstdio>
#include <cstring>

namespace oms {
namespace {

std::uint64_t read_status_kb(const char* key) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) {
    return 0;
  }
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      // Format: "VmRSS:\t  123456 kB".
      std::sscanf(line + key_len, "%*[ :\t]%lu", &kb);
      break;
    }
  }
  std::fclose(file);
  return kb * 1024;
}

} // namespace

std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS"); }

std::uint64_t peak_rss_bytes() {
  // Some sandboxed kernels omit VmHWM from /proc/self/status; fall back to
  // the current RSS so callers still get a meaningful lower bound.
  const std::uint64_t high_water = read_status_kb("VmHWM");
  return high_water != 0 ? high_water : current_rss_bytes();
}

} // namespace oms
