/// \file fastdiv.hpp
/// \brief Precomputed magic-number division and modulo (Lemire, "Faster
///        remainder by direct computation", 2019) for the streaming hot
///        paths, where the divisor (a child count or sub-range width) is
///        fixed per tree block but only known at run time.
///
/// Both reductions are *exact* — they return bit-identical results to the
/// hardware `/` and `%` operators — so swapping them into a scorer cannot
/// change any partition decision.
#pragma once

#include <cstdint>

#include "oms/util/assert.hpp"

namespace oms {

__extension__ using uint128_t = unsigned __int128;

/// Exact n / d for 32-bit dividends via one 64x64->128 multiply.
/// d == 1 is encoded as magic == 0 (identity), so a single predictable
/// branch replaces the divide in the degenerate case.
struct FastDiv32 {
  std::uint64_t magic = 0;

  [[nodiscard]] static constexpr FastDiv32 of(std::uint32_t d) noexcept {
    FastDiv32 f;
    if (d > 1) {
      f.magic = ~std::uint64_t{0} / d + 1;
    }
    return f;
  }

  [[nodiscard]] std::uint32_t divide(std::uint32_t n) const noexcept {
    if (magic == 0) {
      return n; // divisor 1
    }
    return static_cast<std::uint32_t>(
        (static_cast<uint128_t>(magic) * n) >> 64);
  }
};

/// Exact n % d for 64-bit dividends and 32-bit divisors via a 128-bit magic.
/// Used by the hashing descent layers, whose dividend is a full 64-bit hash.
struct FastMod64 {
  uint128_t magic = 0;
  std::uint32_t divisor = 1;

  [[nodiscard]] static constexpr FastMod64 of(std::uint32_t d) noexcept {
    FastMod64 f;
    f.divisor = d;
    if (d > 1) {
      f.magic = ~uint128_t{0} / d + 1;
    }
    return f;
  }

  [[nodiscard]] std::uint64_t mod(std::uint64_t n) const noexcept {
    if (magic == 0) {
      return 0; // divisor 1
    }
    const uint128_t lowbits = magic * n;
    // ((lowbits * d) >> 128) computed from 64-bit halves.
    const std::uint64_t lo = static_cast<std::uint64_t>(lowbits);
    const std::uint64_t hi = static_cast<std::uint64_t>(lowbits >> 64);
    const std::uint64_t carry =
        static_cast<std::uint64_t>((static_cast<uint128_t>(lo) * divisor) >> 64);
    return static_cast<std::uint64_t>(
        (static_cast<uint128_t>(hi) * divisor + carry) >> 64);
  }
};

} // namespace oms
