/// \file env.hpp
/// \brief Environment-variable configuration knobs for the bench harness
///        (OMS_BENCH_SCALE, OMS_BENCH_THREADS, ...).
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>

namespace oms {

/// Value of an environment variable, or \p fallback when unset/empty.
[[nodiscard]] inline std::string env_or(const char* name, std::string_view fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return std::string(fallback);
  }
  return std::string(value);
}

/// Integer environment variable, or \p fallback when unset or unparsable.
[[nodiscard]] inline long env_or_int(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

} // namespace oms
