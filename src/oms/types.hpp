/// \file types.hpp
/// \brief Fundamental integer types shared by every module of the library.
///
/// The sizes follow the scale targeted by the paper (graphs with up to a few
/// hundred million edges, at most a few tens of thousands of blocks):
/// 32-bit node and block identifiers, 64-bit edge offsets and weights.
#pragma once

#include <cstdint>
#include <limits>

namespace oms {

/// Identifier of a node (vertex). Nodes are always numbered [0, n).
using NodeId = std::uint32_t;

/// Index into the CSR edge arrays; 64-bit because m can exceed 2^32.
using EdgeIndex = std::uint64_t;

/// Identifier of a partition block / processing element. Signed so that
/// kInvalidBlock (-1) can mark "not yet assigned" streamed nodes.
using BlockId = std::int32_t;

/// Node weights. Integral per the paper's unit-weight benchmark graphs, but
/// 64-bit so that block weights (sums over millions of nodes) never overflow.
using NodeWeight = std::int64_t;

/// Edge weights (also used for communication volumes C_ij).
using EdgeWeight = std::int64_t;

/// Accumulated objective values: edge-cut and mapping cost J.
using Cost = std::int64_t;

inline constexpr BlockId kInvalidBlock = -1;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

} // namespace oms
