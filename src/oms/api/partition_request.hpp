/// \file partition_request.hpp
/// \brief The one request struct behind every partitioning entry point.
///
/// Historically the library surface was ~10 scattered free-function drivers
/// (run_one_pass_from_file, buffered_partition_from_file[_resumable], the
/// window via make-an-assigner, the edge-partition driver, ...), each taking
/// a different config struct, so every tool re-implemented the dispatch.
/// PartitionRequest unifies PartitionConfig, BufferedConfig, WindowConfig,
/// EdgePartConfig and the checkpoint/pipeline/error-policy options into a
/// single description of "partition this input like so"; oms::Partitioner
/// (api/partitioner.hpp) turns it into a PartitionArtifact. The CLI flags of
/// partition_tool and oms_serve map onto these fields one to one
/// (cli/parse_request.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "oms/types.hpp"

namespace oms {

/// A request that cannot be executed: unknown algorithm, contradictory
/// flags, an out-of-range tuning value, an unusable input path, a resume
/// checkpoint that does not match the run. Distinct from oms::IoError on
/// purpose — an invalid *request* is a usage problem (the CLI exits 2),
/// while malformed input *content* is an IoError (the CLI exits 1).
class InvalidRequest : public std::runtime_error {
public:
  explicit InvalidRequest(const std::string& message)
      : std::runtime_error(message) {}
};

struct PartitionRequest {
  // --- input -------------------------------------------------------------
  /// Path of the graph to ingest (METIS node stream or SNAP-style edge
  /// list). Unused by the in-memory Partitioner::partition(CsrGraph&, ...).
  std::string graph_path;
  /// "auto" (extension sniff: .edgelist/.el/.edges/.snap = edge list),
  /// "metis" or "edgelist".
  std::string format = "auto";

  // --- problem -----------------------------------------------------------
  /// Node streams: oms | fennel | ldg | hashing | window | buffered.
  /// Edge lists:   hdrf | dbh | grid2d.
  /// Empty = default for the format (oms / hdrf).
  std::string algo;
  /// Number of blocks; ignored (derived) when \p hierarchy is set.
  BlockId k = 0;
  /// Process-mapping topology "a1:a2:...:al" (paper notation). Sets k to the
  /// PE count and switches the objective to the mapping cost J (node
  /// streams) or the weighted replica cost (hierarchical HDRF).
  std::optional<std::string> hierarchy;
  std::string distances = "1:10:100";
  double epsilon = 0.03;
  /// HDRF balance pressure (edge lists only).
  double lambda = 1.1;
  std::uint64_t seed = 1;

  // --- per-model tuning --------------------------------------------------
  int threads = 1;          ///< in-memory parallel one-pass / metric threads
  long buffer_size = 4096;  ///< buffered model: nodes per buffer
  long refine_iters = 3;    ///< buffered model: refinement budget multiplier
  std::optional<std::string> buffered_engine; ///< lp | multilevel
  long window_size = 1024;  ///< sliding window: delayed nodes

  // --- execution ---------------------------------------------------------
  bool from_disk = false;
  bool pipeline = false;      ///< implies from_disk
  int io_threads = 1;         ///< pipeline consumers (one-pass node algos)
  std::uint64_t watchdog_ms = 0;

  // --- fault tolerance ---------------------------------------------------
  std::string checkpoint;                 ///< snapshot path; empty = disabled
  std::uint64_t checkpoint_every = 65536; ///< cadence in streamed nodes
  std::string resume;                     ///< checkpoint to resume from
  std::string on_error = "abort";         ///< abort | skip (malformed lines)
  std::uint64_t error_budget = 100;       ///< max skips under on_error=skip
};

} // namespace oms
