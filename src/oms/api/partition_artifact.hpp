/// \file partition_artifact.hpp
/// \brief The immutable product of a partitioning run: the assignment, the
///        hierarchical address tree, and the run's metrics — everything a
///        downstream system needs to *use* the partition millions of times
///        (oms_serve answers its queries straight off this struct).
///
/// Shape follows the engine → primitive → execute pattern of mature
/// performance libraries: Partitioner::partition() ingests the graph once
/// and returns this artifact; lookups (where / rank_of) are then O(1) /
/// O(tree height) with no further access to the input. Artifacts snapshot
/// to disk in a checksummed binary format (same CRC-32 + strict-length
/// discipline as the v2 graph cache in graph/io), so a daemon restart — or
/// a fleet of replicas — can restore served state without re-partitioning.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "oms/core/multisection_tree.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/stream/error_policy.hpp"
#include "oms/types.hpp"
#include "oms/util/work_counters.hpp"

namespace oms {

/// Quality metrics of the run. Streaming entry points never materialize the
/// graph, so graph-dependent metrics are only available from the in-memory
/// path; -1 marks "not computed".
struct ArtifactMetrics {
  double edge_cut = -1.0;           ///< node partitions, in-memory runs
  double imbalance = -1.0;          ///< node partitions, in-memory runs
  double mapping_j = -1.0;          ///< node partitions with a hierarchy
  double replication_factor = -1.0; ///< edge partitions
  double edge_imbalance = -1.0;     ///< edge partitions
  double replica_cost = -1.0;       ///< hierarchical edge partitions
};

struct PartitionArtifact {
  /// Algorithm that produced the assignment ("oms", "buffered:lp", "hdrf", ...).
  std::string algo;
  /// Vertex-cut artifact? Then \p assignment holds one block per *edge* in
  /// stream order and where() answers edge-index queries.
  bool edge_partition = false;
  BlockId k = 0;
  std::uint64_t num_nodes = 0; ///< nodes streamed (vertices seen, edge runs)
  std::uint64_t num_edges = 0;
  std::uint64_t self_loops_skipped = 0; ///< edge runs only
  std::uint64_t seed = 1;
  double elapsed_s = 0.0;
  /// Block per node (or per edge, see edge_partition), stream order.
  std::vector<BlockId> assignment;
  /// The process-mapping topology, when the run had one.
  std::optional<SystemHierarchy> hierarchy;
  ArtifactMetrics metrics;
  /// Malformed-line skip accounting of the run (on_error=skip); transient,
  /// not serialized.
  StreamErrorStats skip_stats;
  /// Merged work counters of the producing run (node one-pass routes only;
  /// all-zero elsewhere); transient, not serialized.
  WorkCounters work;

  /// O(1) lookup: block of item \p v (node id, or edge index for vertex-cut
  /// artifacts). kInvalidBlock for out-of-range ids — callers that must
  /// distinguish (the service protocol) check before trusting the value.
  [[nodiscard]] BlockId where(std::uint64_t v) const noexcept {
    return v < assignment.size() ? assignment[static_cast<std::size_t>(v)]
                                 : kInvalidBlock;
  }

  /// Hierarchical address of item \p v: the id of the MultisectionTree leaf
  /// covering its block — the PE's position in the topology for mapping
  /// runs, the b-section address otherwise. -1 for out-of-range ids.
  [[nodiscard]] std::int64_t rank_of(std::uint64_t v) const noexcept {
    const BlockId b = where(v);
    if (b == kInvalidBlock || !tree_.has_value()) {
      return -1;
    }
    return static_cast<std::int64_t>(tree_->leaf_block_id(b));
  }

  /// The address tree rank_of() descends: regular(hierarchy) for mapping
  /// runs, the default base-4 b-section otherwise. Built by
  /// Partitioner::partition() and by read_artifact(); rebuild after mutating
  /// k/hierarchy by hand.
  [[nodiscard]] const MultisectionTree& tree() const { return *tree_; }
  void rebuild_tree();

private:
  std::optional<MultisectionTree> tree_;
};

/// Snapshot/restore: little-endian binary ("OMSPART1"), u64 payload length,
/// CRC-32 trailer over every preceding byte, strict length check — the same
/// corruption discipline as the v2 binary graph cache. read_artifact throws
/// oms::IoError on unopenable paths, bad magic, truncation, trailing bytes
/// and CRC mismatch, and rebuilds the address tree.
void write_artifact(const PartitionArtifact& artifact, const std::string& path);
[[nodiscard]] PartitionArtifact read_artifact(const std::string& path);

} // namespace oms
