/// \file partitioner.hpp
/// \brief The unified partitioning facade: one entry point over every driver
///        family in the library — flat one-pass, OMS mapping, sliding
///        window, buffered (lp/multilevel), and the vertex-cut edge
///        partitioners — sequential, pipelined, checkpointed or in memory.
///
/// The facade routes a PartitionRequest to the existing drivers, so its
/// results are bit-identical to calling those drivers directly (pinned by
/// the facade parity suite). partition_tool, oms_serve and the tests all
/// dispatch through here; the legacy free functions remain as the routed-to
/// implementations and as thin compatibility entry points for one release.
///
/// Error contract:
///  * InvalidRequest — the request itself cannot be executed (unknown algo,
///    contradictory flags, unusable path, resume mismatch). CLIs exit 2.
///  * oms::IoError  — the input *content* is malformed. CLIs exit 1.
#pragma once

#include "oms/api/partition_artifact.hpp"
#include "oms/api/partition_request.hpp"
#include "oms/graph/csr_graph.hpp"

namespace oms {

class Partitioner {
public:
  /// Fill defaults and validate: resolves format "auto" from the extension,
  /// picks the per-format default algorithm, derives k from the hierarchy,
  /// makes pipeline/checkpointing imply from_disk, and rejects every
  /// contradictory or out-of-range combination with InvalidRequest.
  /// Idempotent; partition() normalizes internally, so calling this first is
  /// only needed to *inspect* the resolved request (the CLIs do, for their
  /// advisory notes).
  [[nodiscard]] static PartitionRequest normalize(PartitionRequest request);

  /// Ingest request.graph_path once (streaming from disk or loading in
  /// memory, per the request) and produce the partition artifact.
  /// Throws InvalidRequest / IoError per the contract above.
  [[nodiscard]] PartitionArtifact partition(const PartitionRequest& request) const;

  /// In-memory entry point over an already-loaded graph (node algorithms
  /// only; graph_path/format/from_disk/pipeline/checkpoint fields are
  /// ignored). Decisions are bit-identical to the disk entry point on the
  /// same node order.
  [[nodiscard]] PartitionArtifact partition(const CsrGraph& graph,
                                            const PartitionRequest& request) const;
};

} // namespace oms
