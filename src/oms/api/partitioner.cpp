#include "oms/api/partitioner.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/core/online_multisection.hpp"
#include "oms/edgepart/dbh.hpp"
#include "oms/edgepart/driver.hpp"
#include "oms/edgepart/grid2d.hpp"
#include "oms/edgepart/hdrf.hpp"
#include "oms/edgepart/hierarchical_hdrf.hpp"
#include "oms/graph/io.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/buffered_stream_driver.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/stream/error_policy.hpp"
#include "oms/stream/metis_stream.hpp"
#include "oms/stream/pipeline.hpp"
#include "oms/stream/window_partitioner.hpp"
#include "oms/telemetry/metrics.hpp"
#include "oms/util/io_error.hpp"

namespace oms {
namespace {

/// Edge-list extensions autodetected when the format is "auto".
[[nodiscard]] bool looks_like_edge_list(const std::string& path) {
  const std::string ext = std::filesystem::path(path).extension().string();
  return ext == ".edgelist" || ext == ".el" || ext == ".edges" || ext == ".snap";
}

[[nodiscard]] bool is_edge_algo(const std::string& algo) {
  return algo == "hdrf" || algo == "dbh" || algo == "grid2d";
}

[[nodiscard]] bool is_node_algo(const std::string& algo) {
  return algo == "oms" || algo == "fennel" || algo == "ldg" ||
         algo == "hashing" || algo == "window" || algo == "buffered";
}

[[nodiscard]] std::optional<SystemHierarchy> topo_of(const PartitionRequest& req) {
  if (!req.hierarchy.has_value()) {
    return std::nullopt;
  }
  return SystemHierarchy::parse(*req.hierarchy, req.distances);
}

/// Request-level validation shared by the disk and in-memory entry points.
/// Every rejected combination keeps the exact diagnostic the CLI printed
/// before the facade existed (minus the "error: " prefix the CLIs add).
void validate_tuning(const PartitionRequest& req) {
  if (req.buffered_engine.has_value() && *req.buffered_engine != "lp" &&
      *req.buffered_engine != "multilevel") {
    throw InvalidRequest("--buffered-engine must be 'lp' or 'multilevel' (got '" +
                         *req.buffered_engine + "')");
  }
  if (req.buffered_engine.has_value() && req.algo != "buffered") {
    throw InvalidRequest("--buffered-engine requires --algo buffered");
  }
  if (!std::isfinite(req.epsilon) || req.epsilon < 0.0) {
    // The partitioners OMS_ASSERT on negative slack (and NaN fails every
    // capacity comparison); reject both here instead.
    throw InvalidRequest("--epsilon must be a finite value >= 0");
  }
  constexpr long kMaxNodeCount = std::numeric_limits<NodeId>::max();
  if (req.buffer_size < 1 || req.buffer_size > kMaxNodeCount) {
    throw InvalidRequest("--buffer-size must be in [1, " +
                         std::to_string(kMaxNodeCount) + "]");
  }
  if (req.refine_iters < 0 ||
      req.refine_iters > std::numeric_limits<int>::max()) {
    throw InvalidRequest("--refine-iters must be >= 0");
  }
  if (req.window_size < 1 || req.window_size > kMaxNodeCount) {
    throw InvalidRequest("--window-size must be in [1, " +
                         std::to_string(kMaxNodeCount) + "]");
  }
}

[[nodiscard]] std::unique_ptr<OnePassAssigner> make_assigner(
    const PartitionRequest& req, const std::optional<SystemHierarchy>& topo,
    NodeId n, EdgeIndex m, NodeWeight total_weight) {
  PartitionConfig pc;
  pc.k = req.k;
  pc.epsilon = req.epsilon;
  pc.seed = req.seed;
  if (req.algo == "fennel") {
    return std::make_unique<FennelPartitioner>(n, m, total_weight, pc);
  }
  if (req.algo == "ldg") {
    return std::make_unique<LdgPartitioner>(n, total_weight, pc);
  }
  if (req.algo == "hashing") {
    return std::make_unique<HashingPartitioner>(n, total_weight, pc);
  }
  if (req.algo == "window") {
    WindowConfig wc;
    wc.window_size = static_cast<NodeId>(req.window_size);
    wc.epsilon = req.epsilon;
    wc.seed = req.seed;
    return std::make_unique<WindowPartitioner>(n, total_weight, wc, req.k);
  }
  OMS_ASSERT_MSG(req.algo == "oms", "normalize() admits only known algorithms");
  OmsConfig config;
  config.epsilon = req.epsilon;
  config.seed = req.seed;
  if (topo.has_value()) {
    return std::make_unique<OnlineMultisection>(n, m, total_weight, *topo, config);
  }
  return std::make_unique<OnlineMultisection>(n, m, total_weight, req.k, config);
}

[[nodiscard]] BufferedConfig buffered_config(const PartitionRequest& req,
                                             const std::optional<SystemHierarchy>& topo) {
  BufferedConfig bc;
  bc.buffer_size = static_cast<NodeId>(req.buffer_size);
  bc.epsilon = req.epsilon;
  bc.seed = req.seed;
  bc.refinement_iterations = static_cast<int>(req.refine_iters);
  if (req.buffered_engine.has_value() && *req.buffered_engine == "multilevel") {
    bc.engine = BufferedEngine::kMultilevel;
  }
  if (topo.has_value()) {
    // Buffered streaming then optimizes the mapping objective J directly
    // (distance-weighted gains) instead of plain edge cut.
    bc.hierarchy = &*topo;
  }
  return bc;
}

[[nodiscard]] StreamErrorPolicy error_policy_of(const PartitionRequest& req) {
  StreamErrorPolicy policy;
  policy.action = req.on_error == "skip" ? StreamErrorPolicy::Action::kSkip
                                         : StreamErrorPolicy::Action::kAbort;
  policy.skip_budget = req.error_budget;
  return policy;
}

/// Artifact scaffolding shared by every route.
[[nodiscard]] PartitionArtifact base_artifact(const PartitionRequest& req,
                                              std::optional<SystemHierarchy> topo) {
  PartitionArtifact artifact;
  artifact.algo = req.algo;
  artifact.k = req.k;
  artifact.seed = req.seed;
  artifact.hierarchy = std::move(topo);
  return artifact;
}

/// The vertex-cut route: stream the edge list one pass from disk through an
/// edgepart assigner; metrics come from the partitioner's replica state.
[[nodiscard]] PartitionArtifact partition_edge_stream(
    const PartitionRequest& req, std::optional<SystemHierarchy> topo) {
  EdgePartConfig config;
  config.k = req.k;
  config.lambda = req.lambda;
  config.epsilon = req.epsilon;
  config.seed = req.seed;
  std::unique_ptr<StreamingEdgePartitioner> partitioner;
  if (topo.has_value()) {
    partitioner = std::make_unique<HierarchicalHdrfPartitioner>(*topo, config);
  } else if (req.algo == "hdrf") {
    partitioner = std::make_unique<HdrfPartitioner>(config);
  } else if (req.algo == "dbh") {
    partitioner = std::make_unique<DbhPartitioner>(config);
  } else {
    partitioner = std::make_unique<Grid2dPartitioner>(config);
  }

  PartitionArtifact artifact = base_artifact(req, std::move(topo));
  EdgePartitionResult result;
  if (req.pipeline) {
    PipelineConfig pipeline;
    pipeline.watchdog_ms = req.watchdog_ms;
    pipeline.error_policy = error_policy_of(req);
    pipeline.error_stats_out = &artifact.skip_stats;
    result = run_edge_partition_from_file(req.graph_path, *partitioner, pipeline);
  } else {
    result = run_edge_partition_from_file(req.graph_path, *partitioner,
                                          error_policy_of(req),
                                          &artifact.skip_stats);
  }

  artifact.edge_partition = true;
  artifact.num_nodes = result.stats.num_vertices;
  artifact.num_edges = result.stats.num_edges;
  artifact.self_loops_skipped = result.stats.self_loops_skipped;
  artifact.elapsed_s = result.elapsed_s;
  artifact.metrics.replication_factor = replication_factor(partitioner->replicas());
  artifact.metrics.edge_imbalance = edge_imbalance(partitioner->edge_loads());
  if (artifact.hierarchy.has_value()) {
    artifact.metrics.replica_cost = static_cast<double>(
        hierarchical_replica_cost(partitioner->replicas(), *artifact.hierarchy));
  }
  artifact.assignment = std::move(result.edge_assignment);
  artifact.rebuild_tree();
  return artifact;
}

/// The disk-native node-stream route: one-pass (plain, pipelined or
/// resumable) and the buffered drivers, never materializing the graph.
[[nodiscard]] PartitionArtifact partition_metis_stream(
    const PartitionRequest& req, std::optional<SystemHierarchy> topo) {
  // True streaming: only the header is read ahead of time. Capacity bounds
  // assume unit node weights (total = n), which the header lets us check.
  MetisNodeStream probe(req.graph_path);
  const MetisHeader header = probe.header();
  if (header.has_node_weights) {
    throw InvalidRequest(
        "--from-disk assumes unit node weights; this graph has node weights "
        "(load it without --from-disk)");
  }
  const bool checkpointing = !req.checkpoint.empty() || !req.resume.empty();
  // Resume validation happens up front, against the header of the *actual*
  // input: a checkpoint from a different algorithm, k, seed or graph is a
  // usage error (InvalidRequest), not a mid-stream IoError.
  const std::string ckpt_algo =
      req.algo == "buffered"
          ? std::string(buffered_checkpoint_algo_id(buffered_config(req, topo)))
          : req.algo;
  std::optional<CheckpointState> resume_state;
  if (!req.resume.empty()) {
    try {
      resume_state = read_checkpoint_file(req.resume);
      validate_resume(resume_state->meta, ckpt_algo,
                      static_cast<std::uint64_t>(req.k), req.seed,
                      header.num_nodes);
    } catch (const IoError& e) {
      throw InvalidRequest(e.what());
    }
  }
  const CheckpointState* resume_ptr =
      resume_state.has_value() ? &*resume_state : nullptr;
  CheckpointConfig ckpt;
  ckpt.path = req.checkpoint;
  ckpt.every_nodes = req.checkpoint_every;

  PartitionArtifact artifact = base_artifact(req, std::move(topo));
  artifact.num_nodes = header.num_nodes;
  artifact.num_edges = header.num_edges;
  // The header announces the stream size up front — that is what turns the
  // --progress heartbeat from a plain rate into percent-done + ETA.
  telemetry::gauge_set(telemetry::Gauge::kProgressTotalItems, header.num_nodes);

  if (req.algo == "buffered") {
    const BufferedConfig bc = buffered_config(req, artifact.hierarchy);
    artifact.algo = buffered_checkpoint_algo_id(bc);
    BufferedResult br;
    if (req.pipeline) {
      // The buffered model has its own driver: whole buffers are modeled and
      // refined jointly, with the pipeline parsing the next buffers ahead.
      PipelineConfig pipeline;
      pipeline.watchdog_ms = req.watchdog_ms;
      br = buffered_partition_from_file(req.graph_path, req.k, bc, pipeline);
    } else if (checkpointing) {
      br = buffered_partition_from_file_resumable(req.graph_path, req.k, bc,
                                                  ckpt, resume_ptr);
    } else {
      br = buffered_partition_from_file(req.graph_path, req.k, bc);
    }
    artifact.assignment = std::move(br.assignment);
    artifact.elapsed_s = br.elapsed_s;
  } else {
    auto assigner = make_assigner(req, artifact.hierarchy, header.num_nodes,
                                  header.num_edges,
                                  static_cast<NodeWeight>(header.num_nodes));
    StreamResult result;
    if (req.pipeline) {
      PipelineConfig pipeline;
      pipeline.assign_threads = req.io_threads;
      pipeline.watchdog_ms = req.watchdog_ms;
      pipeline.error_policy = error_policy_of(req);
      pipeline.error_stats_out = &artifact.skip_stats;
      result = run_one_pass_from_file(req.graph_path, *assigner, pipeline);
    } else {
      // The sequential disk path is the checkpointing driver; with no
      // checkpoint/resume it degenerates to the plain one-pass loop.
      MetisNodeStream stream(req.graph_path, MetisNodeStream::kDefaultBufferBytes);
      stream.set_error_policy(error_policy_of(req));
      result = run_one_pass_resumable(stream, *assigner, ckpt_algo, req.seed,
                                      ckpt, resume_ptr);
      artifact.skip_stats = stream.error_stats();
    }
    artifact.assignment = std::move(result.assignment);
    artifact.elapsed_s = result.elapsed_s;
    artifact.work = result.work;
  }
  artifact.rebuild_tree();
  return artifact;
}

/// The in-memory node route, shared by partition(request) on a loaded METIS
/// file and the partition(graph, request) overload. Also the only route that
/// can afford graph-dependent quality metrics.
[[nodiscard]] PartitionArtifact partition_in_memory(
    const CsrGraph& graph, const PartitionRequest& req,
    std::optional<SystemHierarchy> topo) {
  PartitionArtifact artifact = base_artifact(req, std::move(topo));
  artifact.num_nodes = graph.num_nodes();
  artifact.num_edges = graph.num_edges();
  telemetry::gauge_set(telemetry::Gauge::kProgressTotalItems, graph.num_nodes());

  if (req.algo == "buffered") {
    const BufferedConfig bc = buffered_config(req, artifact.hierarchy);
    artifact.algo = buffered_checkpoint_algo_id(bc);
    BufferedResult br = buffered_partition(graph, req.k, bc);
    artifact.assignment = std::move(br.assignment);
    artifact.elapsed_s = br.elapsed_s;
  } else {
    auto assigner = make_assigner(req, artifact.hierarchy, graph.num_nodes(),
                                  graph.num_edges(), graph.total_node_weight());
    // The window commits in stream order, so it always runs sequentially.
    const int threads = req.algo == "window" ? 1 : req.threads;
    StreamResult result = run_one_pass(graph, *assigner, threads);
    artifact.assignment = std::move(result.assignment);
    artifact.elapsed_s = result.elapsed_s;
    artifact.work = result.work;
  }

  artifact.metrics.edge_cut =
      static_cast<double>(edge_cut(graph, artifact.assignment));
  artifact.metrics.imbalance = imbalance(graph, artifact.assignment, req.k);
  if (artifact.hierarchy.has_value()) {
    artifact.metrics.mapping_j = static_cast<double>(mapping_cost(
        graph, *artifact.hierarchy, artifact.assignment, req.threads));
  }
  artifact.rebuild_tree();
  return artifact;
}

} // namespace

PartitionRequest Partitioner::normalize(PartitionRequest req) {
  if (req.graph_path.empty()) {
    throw InvalidRequest("no input graph given");
  }
  if (req.format != "auto" && req.format != "metis" && req.format != "edgelist") {
    throw InvalidRequest("--format must be 'metis' or 'edgelist' (got '" +
                         req.format + "')");
  }
  if (req.format == "auto") {
    req.format = looks_like_edge_list(req.graph_path) ? "edgelist" : "metis";
  }
  const bool edge_list = req.format == "edgelist";
  if (req.algo.empty()) {
    req.algo = edge_list ? "hdrf" : "oms";
  }
  if (!is_node_algo(req.algo) && !is_edge_algo(req.algo)) {
    throw InvalidRequest("unknown --algo '" + req.algo + "'");
  }
  if (edge_list != is_edge_algo(req.algo)) {
    throw InvalidRequest("--algo " + req.algo + " needs --format " +
                         (is_edge_algo(req.algo) ? "edgelist" : "metis"));
  }
  if (req.pipeline) {
    req.from_disk = true;
  }
  if (req.hierarchy.has_value()) {
    req.k = SystemHierarchy::parse(*req.hierarchy, req.distances).num_pes();
  }
  if (req.k < 1) {
    throw InvalidRequest("need --k or --hierarchy");
  }
  validate_tuning(req);
  // Checkpoint/resume gating: the checkpointing drivers are the sequential
  // disk streamers for the one-pass algorithms and the buffered model.
  const bool checkpointing = !req.checkpoint.empty() || !req.resume.empty();
  if (checkpointing) {
    if (edge_list) {
      throw InvalidRequest("--checkpoint/--resume support METIS node streams "
                           "only (not edge lists)");
    }
    if (req.pipeline) {
      throw InvalidRequest("--checkpoint/--resume are incompatible with "
                           "--pipeline (the checkpointing driver is sequential)");
    }
    if (req.algo == "window") {
      throw InvalidRequest("--algo window does not support --checkpoint/--resume "
                           "(window state is not checkpointable)");
    }
    if (req.checkpoint_every < 1) {
      throw InvalidRequest("--checkpoint-every must be >= 1");
    }
    req.from_disk = true; // checkpoints reference a byte offset in the file
  }
  const bool skip_errors = req.on_error == "skip";
  if (req.on_error != "abort" && req.on_error != "skip") {
    throw InvalidRequest("--on-error must be 'abort' or 'skip' (got '" +
                         req.on_error + "')");
  }
  if (skip_errors && !edge_list && !req.from_disk) {
    throw InvalidRequest("--on-error skip applies to streaming runs; add "
                         "--from-disk (or use an edge-list input)");
  }
  if (skip_errors && req.algo == "buffered") {
    throw InvalidRequest("--on-error skip is not supported with --algo buffered");
  }
  // Unsupported combinations get exactly one diagnostic each. Window and
  // buffered stream from disk like the one-pass algorithms; the only
  // structural limit left is that both commit nodes in stream order, so the
  // pipeline can overlap parsing but never fan assignment out.
  if (req.algo == "window" && req.pipeline && req.io_threads != 1) {
    throw InvalidRequest("--algo window is sequential; --pipeline supports only "
                         "--io-threads 1");
  }
  if ((req.from_disk || edge_list) && req.io_threads < 0) {
    throw InvalidRequest("--io-threads must be >= 0 (0 = all hardware threads)");
  }
  if (edge_list) {
    if (req.hierarchy.has_value() && req.algo != "hdrf") {
      throw InvalidRequest("--hierarchy with an edge list requires --algo hdrf "
                           "(hierarchical HDRF)");
    }
    if (!std::isfinite(req.lambda) || req.lambda < 0.0) {
      throw InvalidRequest("--lambda must be a finite value >= 0");
    }
  }
  // The loaders raise IoError on unopenable files, but a bad path deserves
  // the request-level error (CLI exit 2), not the malformed-content one (1).
  // Directories open "successfully" on Linux, so reject them explicitly.
  // FIFOs (process substitution, mkfifo pipelines) must NOT be probe-opened —
  // the open/close would SIGPIPE the writer — so only regular files get the
  // readability probe.
  std::error_code fs_error;
  const std::filesystem::file_status graph_status =
      std::filesystem::status(req.graph_path, fs_error);
  if (fs_error || std::filesystem::is_directory(graph_status) ||
      (std::filesystem::is_regular_file(graph_status) &&
       !std::ifstream(req.graph_path).good())) {
    throw InvalidRequest("cannot open graph file '" + req.graph_path + "'");
  }
  if (!edge_list && req.from_disk &&
      !std::filesystem::is_regular_file(graph_status)) {
    // --from-disk opens the file twice (header probe, then the full stream),
    // which a FIFO cannot replay. (The edge-list path opens it exactly once,
    // so it has no such restriction.)
    throw InvalidRequest("--from-disk needs a regular file, not a pipe");
  }
  return req;
}

PartitionArtifact Partitioner::partition(const PartitionRequest& request) const {
  const PartitionRequest req = normalize(request);
  std::optional<SystemHierarchy> topo = topo_of(req);
  if (req.format == "edgelist") {
    return partition_edge_stream(req, std::move(topo));
  }
  if (req.from_disk) {
    return partition_metis_stream(req, std::move(topo));
  }
  const CsrGraph graph = read_metis(req.graph_path);
  return partition_in_memory(graph, req, std::move(topo));
}

PartitionArtifact Partitioner::partition(const CsrGraph& graph,
                                         const PartitionRequest& request) const {
  PartitionRequest req = request;
  if (req.algo.empty()) {
    req.algo = "oms";
  }
  if (!is_node_algo(req.algo)) {
    throw InvalidRequest("in-memory partitioning needs a node algorithm, not '" +
                         req.algo + "'");
  }
  if (req.hierarchy.has_value()) {
    req.k = SystemHierarchy::parse(*req.hierarchy, req.distances).num_pes();
  }
  if (req.k < 1) {
    throw InvalidRequest("need --k or --hierarchy");
  }
  validate_tuning(req);
  return partition_in_memory(graph, req, topo_of(req));
}

} // namespace oms
