#include "oms/api/partition_artifact.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>

#include "oms/stream/checkpoint.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/crc32.hpp"
#include "oms/util/io_error.hpp"

namespace oms {
namespace {

// "OMSPART1": partition artifact snapshot, version 1. Layout mirrors the v2
// binary graph cache: magic, u64 payload length, payload, CRC-32 over every
// preceding byte, and the file must be exactly that long.
constexpr std::uint64_t kArtifactMagic = 0x4f4d5350'41525431ULL;

// The artifact payload rides the bounds-checked CheckpointWriter/Reader pair
// so truncated or mismatched payloads surface as clean IoError, never as
// out-of-bounds reads.
void put_artifact(CheckpointWriter& w, const PartitionArtifact& a) {
  w.put_string(a.algo);
  w.put_u32(a.edge_partition ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(a.k));
  w.put_u64(a.num_nodes);
  w.put_u64(a.num_edges);
  w.put_u64(a.self_loops_skipped);
  w.put_u64(a.seed);
  w.put_f64(a.elapsed_s);
  w.put_u32(a.hierarchy.has_value() ? 1 : 0);
  if (a.hierarchy.has_value()) {
    const auto& extents = a.hierarchy->extents();
    const auto& distances = a.hierarchy->distances();
    w.put_u32(static_cast<std::uint32_t>(extents.size()));
    for (std::size_t i = 0; i < extents.size(); ++i) {
      w.put_i64(extents[i]);
      w.put_i64(distances[i]);
    }
  }
  w.put_f64(a.metrics.edge_cut);
  w.put_f64(a.metrics.imbalance);
  w.put_f64(a.metrics.mapping_j);
  w.put_f64(a.metrics.replication_factor);
  w.put_f64(a.metrics.edge_imbalance);
  w.put_f64(a.metrics.replica_cost);
  w.put_u64(a.assignment.size());
  for (const BlockId b : a.assignment) {
    w.put_u32(static_cast<std::uint32_t>(b));
  }
}

[[nodiscard]] PartitionArtifact get_artifact(CheckpointReader& r,
                                             const std::string& path) {
  PartitionArtifact a;
  a.algo = r.get_string();
  a.edge_partition = r.get_u32() != 0;
  a.k = static_cast<BlockId>(r.get_u32());
  a.num_nodes = r.get_u64();
  a.num_edges = r.get_u64();
  a.self_loops_skipped = r.get_u64();
  a.seed = r.get_u64();
  a.elapsed_s = r.get_f64();
  if (a.k < 1) {
    throw IoError(path + ": artifact has no blocks (k < 1)");
  }
  if (r.get_u32() != 0) {
    const std::uint32_t levels = r.get_u32();
    if (levels == 0 || levels > 64) {
      throw IoError(path + ": implausible hierarchy depth in artifact");
    }
    std::vector<std::int64_t> extents;
    std::vector<std::int64_t> distances;
    extents.reserve(levels);
    distances.reserve(levels);
    for (std::uint32_t i = 0; i < levels; ++i) {
      extents.push_back(r.get_i64());
      distances.push_back(r.get_i64());
    }
    a.hierarchy.emplace(std::move(extents), std::move(distances));
    if (a.hierarchy->num_pes() != a.k) {
      throw IoError(path + ": artifact hierarchy PE count disagrees with k");
    }
  }
  a.metrics.edge_cut = r.get_f64();
  a.metrics.imbalance = r.get_f64();
  a.metrics.mapping_j = r.get_f64();
  a.metrics.replication_factor = r.get_f64();
  a.metrics.edge_imbalance = r.get_f64();
  a.metrics.replica_cost = r.get_f64();
  const std::uint64_t count = r.get_u64();
  // The bounds-checked reader would catch an oversized count too, but only
  // after a giant allocation; 4 bytes per entry caps it cheaply up front.
  if (count * 4 > r.remaining()) {
    throw IoError(path + ": artifact assignment longer than the file");
  }
  a.assignment.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto b = static_cast<BlockId>(r.get_u32());
    if (b < 0 || b >= a.k) {
      throw IoError(path + ": artifact assignment entry out of [0, k)");
    }
    a.assignment.push_back(b);
  }
  r.expect_end();
  return a;
}

} // namespace

void PartitionArtifact::rebuild_tree() {
  OMS_ASSERT_MSG(k >= 1, "artifact needs k >= 1 before building its tree");
  if (hierarchy.has_value()) {
    const std::vector<std::int64_t> extents = hierarchy->extents_top_down();
    tree_ = MultisectionTree::regular(extents);
  } else {
    // The default b-section base of OmsConfig; for non-OMS algorithms the
    // tree is purely an address scheme, so any fixed base works as long as
    // save/restore agree on it.
    tree_ = MultisectionTree::b_section(k, 4);
  }
}

void write_artifact(const PartitionArtifact& artifact, const std::string& path) {
  CheckpointWriter payload;
  put_artifact(payload, artifact);

  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    throw IoError("cannot open artifact file '" + path + "' for writing");
  }
  std::uint32_t crc = crc32_init();
  const auto write_raw = [&out, &crc](const void* data, std::size_t bytes) {
    crc = crc32_update(crc, data, bytes);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  };
  const std::uint64_t magic = kArtifactMagic;
  const std::uint64_t payload_len = payload.bytes().size();
  write_raw(&magic, sizeof magic);
  write_raw(&payload_len, sizeof payload_len);
  write_raw(payload.bytes().data(), payload.bytes().size());
  const std::uint32_t checksum = crc32_final(crc);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  out.flush();
  if (!out.good()) {
    throw IoError("write failure on artifact file '" + path + "'");
  }
}

PartitionArtifact read_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw IoError("cannot open artifact file '" + path + "'");
  }
  std::uint32_t crc = crc32_init();
  const auto read_raw = [&in, &path, &crc](void* data, std::size_t bytes) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (!in.good()) {
      throw IoError(path + ": truncated artifact file");
    }
    crc = crc32_update(crc, data, bytes);
  };
  std::uint64_t magic = 0;
  std::uint64_t payload_len = 0;
  read_raw(&magic, sizeof magic);
  if (magic != kArtifactMagic) {
    throw IoError(path + ": bad magic in artifact file");
  }
  read_raw(&payload_len, sizeof payload_len);
  if (payload_len >= (std::uint64_t{1} << 40)) {
    throw IoError(path + ": implausible payload size in artifact header");
  }
  const auto payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(payload_start);
  const auto actual = static_cast<std::uint64_t>(file_end - payload_start);
  if (actual < payload_len + sizeof(std::uint32_t)) {
    throw IoError(path + ": truncated artifact file");
  }
  if (actual > payload_len + sizeof(std::uint32_t)) {
    throw IoError(path + ": artifact file longer than its header describes");
  }
  std::vector<char> payload(static_cast<std::size_t>(payload_len));
  if (!payload.empty()) {
    read_raw(payload.data(), payload.size());
  }
  const std::uint32_t computed = crc32_final(crc);
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (!in.good() || stored != computed) {
    throw IoError(path + ": CRC mismatch in artifact file (corrupt bytes)");
  }
  CheckpointReader reader(payload);
  PartitionArtifact artifact = get_artifact(reader, path);
  artifact.rebuild_tree();
  return artifact;
}

} // namespace oms
