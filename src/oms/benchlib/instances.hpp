/// \file instances.hpp
/// \brief The benchmark instance registry: generated stand-ins for the
///        paper's Table 1 families (meshes, circuits, citations, web, social,
///        roads, artificial rgg/del), at three scales so the full suite runs
///        in minutes by default (`OMS_BENCH_SCALE=small|medium|large`).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "oms/graph/csr_graph.hpp"

namespace oms::bench {

struct InstanceSpec {
  std::string name;
  std::string family; ///< Table 1 "Type" column analogue
  std::function<CsrGraph()> make;
};

enum class Scale { kSmall, kMedium, kLarge };

/// Parse OMS_BENCH_SCALE (default small).
[[nodiscard]] Scale scale_from_env();

[[nodiscard]] const char* scale_name(Scale scale) noexcept;

/// The full suite (one instance per family and size class, mirroring how
/// Table 1 spans families); ~11 instances per scale.
[[nodiscard]] std::vector<InstanceSpec> benchmark_suite(Scale scale);

/// The subset used by the scalability experiments (Table 2 / Fig. 3): the
/// largest instances of the suite, analogous to the paper's ">= 2M node"
/// selection.
[[nodiscard]] std::vector<InstanceSpec> scalability_suite(Scale scale);

/// Look a single instance up by name (aborts if unknown).
[[nodiscard]] InstanceSpec instance_by_name(Scale scale, const std::string& name);

} // namespace oms::bench
