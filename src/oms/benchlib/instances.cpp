#include "oms/benchlib/instances.hpp"

#include <algorithm>
#include <cmath>

#include "oms/graph/generators.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/env.hpp"

namespace oms::bench {

Scale scale_from_env() {
  const std::string value = env_or("OMS_BENCH_SCALE", "small");
  if (value == "medium") {
    return Scale::kMedium;
  }
  if (value == "large") {
    return Scale::kLarge;
  }
  return Scale::kSmall;
}

const char* scale_name(Scale scale) noexcept {
  switch (scale) {
    case Scale::kSmall: return "small";
    case Scale::kMedium: return "medium";
    case Scale::kLarge: return "large";
  }
  return "unknown";
}

std::vector<InstanceSpec> benchmark_suite(Scale scale) {
  // Linear size multiplier relative to the small scale; "large" approaches
  // the lower end of the paper's instance sizes.
  const NodeId f = scale == Scale::kSmall ? 1 : (scale == Scale::kMedium ? 4 : 16);
  const auto side = [f](NodeId base) {
    // sqrt-scaled side length for 2D grids.
    NodeId s = base;
    NodeId mult = f;
    while (mult >= 4) {
      s *= 2;
      mult /= 4;
    }
    if (mult == 2) {
      s = static_cast<NodeId>(static_cast<double>(s) * 1.41);
    }
    return s;
  };

  std::vector<InstanceSpec> suite;
  // Meshes (Dubcova1 / ML_Laplace / HV15R analogues).
  suite.push_back({"mesh2d", "Meshes",
                   [=] { return gen::grid_2d(side(128), side(128)); }});
  suite.push_back({"mesh3d", "Meshes", [=] {
                     const auto s = static_cast<NodeId>(
                         26.0 * std::pow(static_cast<double>(f), 1.0 / 3.0));
                     return gen::grid_3d(s, s, s);
                   }});
  suite.push_back({"delaunay", "Artificial",
                   [=] { return gen::delaunay(16384 * f, 0xDE1A); }});
  suite.push_back({"rgg", "Artificial",
                   [=] { return gen::random_geometric(16384 * f, 0x4667); }});
  // Social networks (soc-LiveJournal / orkut analogues).
  suite.push_back({"social-ba", "Social",
                   [=] { return gen::barabasi_albert(20000 * f, 8, 0x50C1); }});
  // Citations (coAuthorsDBLP / cit-Patents analogues).
  suite.push_back({"citations-ba", "Citations",
                   [=] { return gen::barabasi_albert(30000 * f, 3, 0xC17E); }});
  // Web crawls (eu-2005 / web-Google analogues).
  suite.push_back({"web-rmat", "Web", [=] {
                     std::uint32_t s = 14;
                     NodeId mult = f;
                     while (mult > 1) {
                       ++s;
                       mult /= 2;
                     }
                     return gen::rmat(s, 8, 0x3EB5);
                   }});
  // Circuits (hcircuit / FullChip analogues: very sparse, skewed).
  suite.push_back({"circuit-rmat", "Circuit", [=] {
                     std::uint32_t s = 15;
                     NodeId mult = f;
                     while (mult > 1) {
                       ++s;
                       mult /= 2;
                     }
                     return gen::rmat(s, 2, 0xC14C, 0.45, 0.22, 0.22);
                   }});
  // Road networks (italy-osm / great-britain-osm analogues).
  suite.push_back({"roads", "Roads",
                   [=] { return gen::road_network(side(150), side(150), 0x0AD5); }});
  // Small-world miscellany (ca-hollywood-style high clustering).
  suite.push_back({"smallworld", "Misc",
                   [=] { return gen::watts_strogatz(20000 * f, 5, 0.1, 0x5A11); }});
  return suite;
}

std::vector<InstanceSpec> scalability_suite(Scale scale) {
  // The heaviest representatives, mirroring the paper's choice of
  // soc-orkut-dir, HV15R and soc-LiveJournal1 (social, mesh, social).
  std::vector<InstanceSpec> all = benchmark_suite(scale);
  std::vector<InstanceSpec> picks;
  for (const auto& name : {"social-ba", "mesh3d", "web-rmat"}) {
    for (auto& spec : all) {
      if (spec.name == name) {
        picks.push_back(spec);
      }
    }
  }
  return picks;
}

InstanceSpec instance_by_name(Scale scale, const std::string& name) {
  for (auto& spec : benchmark_suite(scale)) {
    if (spec.name == name) {
      return spec;
    }
  }
  OMS_ASSERT_MSG(false, "unknown benchmark instance");
  return {};
}

} // namespace oms::bench
