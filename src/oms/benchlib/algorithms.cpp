#include "oms/benchlib/algorithms.hpp"

#include "oms/core/online_multisection.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/multilevel/multilevel_partitioner.hpp"
#include "oms/multilevel/recursive_multisection.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/timer.hpp"

namespace oms::bench {

const char* algo_name(Algo algo) noexcept {
  switch (algo) {
    case Algo::kHashing: return "Hashing";
    case Algo::kLdg: return "LDG";
    case Algo::kFennel: return "Fennel";
    case Algo::kOms: return "OMS";
    case Algo::kNhOms: return "nh-OMS";
    case Algo::kKaMinParLite: return "KaMinParLite";
    case Algo::kIntMapLite: return "IntMapLite";
  }
  return "unknown";
}

SystemHierarchy paper_topology(std::int64_t r) {
  OMS_ASSERT(r >= 1);
  // S is written innermost-first in SystemHierarchy: 4 cores, 16 processors,
  // r nodes — the paper's S = 4:16:r with D = 1:10:100.
  return SystemHierarchy({4, 16, r}, {1, 10, 100});
}

namespace {

struct SingleRun {
  std::vector<BlockId> assignment;
  double time_s = 0.0;
  WorkCounters work;
  std::uint64_t state_bytes = 0;
};

SingleRun run_once(Algo algo, const CsrGraph& graph, const RunOptions& options,
                   BlockId k, std::uint64_t seed) {
  SingleRun out;
  PartitionConfig pc;
  pc.k = k;
  pc.epsilon = options.epsilon;
  pc.seed = seed;

  switch (algo) {
    case Algo::kHashing: {
      HashingPartitioner p(graph.num_nodes(), graph.total_node_weight(), pc);
      out.state_bytes = p.state_bytes();
      StreamResult r = run_one_pass(graph, p, options.threads);
      out.assignment = std::move(r.assignment);
      out.time_s = r.elapsed_s;
      out.work = r.work;
      break;
    }
    case Algo::kLdg: {
      LdgPartitioner p(graph.num_nodes(), graph.total_node_weight(), pc);
      out.state_bytes = p.state_bytes();
      StreamResult r = run_one_pass(graph, p, options.threads);
      out.assignment = std::move(r.assignment);
      out.time_s = r.elapsed_s;
      out.work = r.work;
      break;
    }
    case Algo::kFennel: {
      FennelPartitioner p(graph.num_nodes(), graph.num_edges(),
                          graph.total_node_weight(), pc);
      out.state_bytes = p.state_bytes();
      StreamResult r = run_one_pass(graph, p, options.threads);
      out.assignment = std::move(r.assignment);
      out.time_s = r.elapsed_s;
      out.work = r.work;
      break;
    }
    case Algo::kOms:
    case Algo::kNhOms: {
      OmsConfig config;
      config.epsilon = options.epsilon;
      config.seed = seed;
      config.adapted_alpha = options.adapted_alpha;
      config.base = options.base;
      config.quality_layers = options.quality_layers;
      config.scorer = options.oms_use_ldg ? ScorerKind::kLdg : ScorerKind::kFennel;
      if (algo == Algo::kOms) {
        OMS_ASSERT_MSG(options.topology.has_value(), "OMS requires a topology");
        OnlineMultisection p(graph.num_nodes(), graph.num_edges(),
                             graph.total_node_weight(), *options.topology, config);
        out.state_bytes = p.state_bytes();
        StreamResult r = run_one_pass(graph, p, options.threads);
        out.assignment = std::move(r.assignment);
        out.time_s = r.elapsed_s;
        out.work = r.work;
      } else {
        OnlineMultisection p(graph.num_nodes(), graph.num_edges(),
                             graph.total_node_weight(), k, config);
        out.state_bytes = p.state_bytes();
        StreamResult r = run_one_pass(graph, p, options.threads);
        out.assignment = std::move(r.assignment);
        out.time_s = r.elapsed_s;
        out.work = r.work;
      }
      break;
    }
    case Algo::kKaMinParLite: {
      MultilevelConfig config;
      config.epsilon = options.epsilon;
      config.seed = seed;
      Timer timer;
      MultilevelResult r = multilevel_partition(graph, k, config);
      out.time_s = timer.elapsed_s();
      out.assignment = std::move(r.partition);
      out.state_bytes = r.peak_graph_bytes;
      break;
    }
    case Algo::kIntMapLite: {
      OMS_ASSERT_MSG(options.topology.has_value(), "IntMapLite requires a topology");
      IntMapConfig config;
      config.multilevel.epsilon = options.epsilon;
      config.seed = seed;
      Timer timer;
      IntMapResult r = offline_recursive_multisection(graph, *options.topology,
                                                      config);
      out.time_s = timer.elapsed_s();
      out.assignment = std::move(r.mapping);
      out.state_bytes = r.peak_graph_bytes;
      break;
    }
  }
  return out;
}

} // namespace

RunMetrics run_algorithm(Algo algo, const CsrGraph& graph, const RunOptions& options) {
  const BlockId k = options.topology.has_value() ? options.topology->num_pes()
                                                 : options.k_override;
  OMS_ASSERT_MSG(k >= 1, "need a topology or k_override");

  RunMetrics metrics;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    const std::uint64_t seed = options.seed + static_cast<std::uint64_t>(rep) * 1000003;
    SingleRun run = run_once(algo, graph, options, k, seed);

    verify_partition(graph, run.assignment, k);
    metrics.time_s += run.time_s;
    metrics.edge_cut += static_cast<double>(edge_cut(graph, run.assignment));
    if (options.topology.has_value()) {
      metrics.mapping_cost += static_cast<double>(
          mapping_cost(graph, *options.topology, run.assignment, options.threads));
    }
    metrics.balanced = metrics.balanced &&
                       is_balanced(graph, run.assignment, k, options.epsilon);
    metrics.work = run.work;
    metrics.state_bytes = run.state_bytes;
  }
  const auto reps = static_cast<double>(options.repetitions);
  metrics.time_s /= reps;
  metrics.edge_cut /= reps;
  metrics.mapping_cost /= reps;
  return metrics;
}

} // namespace oms::bench
