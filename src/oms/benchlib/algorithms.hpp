/// \file algorithms.hpp
/// \brief Unified runner over every algorithm the paper evaluates, so each
///        bench binary can sweep algorithms x instances x k uniformly.
///
/// Evaluation conventions follow Section 4:
///  * process-mapping experiments use S = 4:16:r, D = 1:10:100, k = 64r;
///    streaming partitioners that ignore the hierarchy (Hashing, Fennel,
///    KaMinParLite) map block i onto PE i;
///  * repetitions use distinct seeds; objective and time are averaged
///    arithmetically per instance; instances aggregate by geometric mean.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/types.hpp"
#include "oms/util/work_counters.hpp"

namespace oms::bench {

enum class Algo {
  kHashing,
  kLdg,
  kFennel,
  kOms,         ///< online multi-section along the given hierarchy
  kNhOms,       ///< online b-section, no hierarchy (general partitioning)
  kKaMinParLite,///< internal-memory multilevel reference
  kIntMapLite,  ///< internal-memory integrated mapping reference
};

[[nodiscard]] const char* algo_name(Algo algo) noexcept;

/// Everything measured for one (algorithm, instance, k) cell, averaged over
/// repetitions.
struct RunMetrics {
  double time_s = 0.0;
  double edge_cut = 0.0;
  double mapping_cost = 0.0; ///< 0 unless a topology was supplied
  bool balanced = true;
  WorkCounters work;         ///< from the last repetition (deterministic shape)
  std::uint64_t state_bytes = 0; ///< streaming state (0 for in-memory algorithms)
};

struct RunOptions {
  int repetitions = 3;
  int threads = 1;
  std::uint64_t seed = 1;
  double epsilon = 0.03;
  /// Present for process-mapping experiments; absent for pure partitioning
  /// (then k_override gives the block count).
  std::optional<SystemHierarchy> topology;
  BlockId k_override = 0;
  /// OMS knobs (forwarded to OmsConfig).
  bool adapted_alpha = true;
  int base = 4;
  int quality_layers = 1 << 20;
  bool oms_use_ldg = false;
};

/// Run \p algo under \p options; aborts on invalid combinations (e.g. kOms
/// without a topology).
[[nodiscard]] RunMetrics run_algorithm(Algo algo, const CsrGraph& graph,
                                       const RunOptions& options);

/// The paper's standard mapping topology for a given r: S = 4:16:r,
/// D = 1:10:100 (k = 64 r).
[[nodiscard]] SystemHierarchy paper_topology(std::int64_t r);

} // namespace oms::bench
