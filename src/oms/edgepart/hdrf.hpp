/// \file hdrf.hpp
/// \brief HDRF — High-Degree Replicated First (Petroni et al., CIKM'15) —
///        the reference one-pass vertex-cut heuristic.
///
/// For each edge (u, v) every block b is scored
///   C(b) = g(u, b) + g(v, b) + lambda * bal(b)
/// where g(x, b) = 1 + (1 - d(x) / (d(u) + d(v))) if x already has a replica
/// on b and 0 otherwise (d = *partial* degree, so the lower-degree endpoint
/// contributes the larger reward — high-degree vertices get replicated
/// first, keeping low-degree vertices intact), and
/// bal(b) = (max_load - load(b)) / (1 + max_load - min_load).
/// Ties break to the lowest block id, so a run is fully deterministic.
#pragma once

#include "oms/edgepart/edge_partitioner.hpp"

namespace oms {

class HdrfPartitioner final : public StreamingEdgePartitioner {
public:
  explicit HdrfPartitioner(const EdgePartConfig& config)
      : StreamingEdgePartitioner(config) {}

protected:
  [[nodiscard]] BlockId choose_block(const StreamedEdge& edge) override;

private:
  PartialDegrees degrees_;
};

} // namespace oms
