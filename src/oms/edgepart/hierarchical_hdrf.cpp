#include "oms/edgepart/hierarchical_hdrf.hpp"

namespace oms {
namespace {

EdgePartConfig with_k(EdgePartConfig config, BlockId k) {
  config.k = k;
  return config;
}

} // namespace

HierarchicalHdrfPartitioner::HierarchicalHdrfPartitioner(
    const SystemHierarchy& topo, const EdgePartConfig& config)
    : StreamingEdgePartitioner(with_k(config, topo.num_pes())),
      topo_(topo),
      tree_(MultisectionTree::regular(topo.extents_top_down())) {
  tree_loads_.assign(tree_.num_blocks(), 0);
  leaf_tree_id_.resize(static_cast<std::size_t>(topo_.num_pes()));
  for (BlockId b = 0; b < topo_.num_pes(); ++b) {
    leaf_tree_id_[static_cast<std::size_t>(b)] =
        static_cast<std::int32_t>(tree_.leaf_block_id(b));
  }
  // The root (depth 0) splits the outermost level l whose distance is
  // distances[l-1]; depth d splits level l-d. Affinity is *boosted* by the
  // distance a crossing at that layer would commit, normalized by the
  // innermost (cheapest) distance: the leaf layer scores exactly like flat
  // HDRF, while at the node layer keeping a vertex's replicas together
  // outweighs the balance nudge in proportion to d_level / d_1. (Scaling
  // affinity *down* at cheap layers instead would leave inner modules to
  // pure balance, spraying replicas — the opposite of the objective.)
  const std::size_t levels = topo_.num_levels();
  const auto d_inner = static_cast<double>(topo_.distances().front());
  depth_weight_.resize(levels, 1.0);
  for (std::size_t depth = 0; depth < levels; ++depth) {
    const std::int64_t d = topo_.distances()[levels - 1 - depth];
    depth_weight_[depth] = d_inner > 0.0 ? static_cast<double>(d) / d_inner : 1.0;
  }
}

BlockId HierarchicalHdrfPartitioner::choose_block(const StreamedEdge& edge) {
  const auto du = static_cast<double>(degrees_.increment(edge.u));
  const auto dv = static_cast<double>(degrees_.increment(edge.v));
  const double degree_sum = du + dv;
  const double gain_u = 1.0 + (1.0 - du / degree_sum);
  const double gain_v = 1.0 + (1.0 - dv / degree_sum);
  const BitsetTable& reps = replicas();
  const double lambda = config().lambda;
  const std::uint32_t total_u = reps.count_row(edge.u);
  const std::uint32_t total_v = reps.count_row(edge.v);

  const double epsilon = config().epsilon;
  std::size_t blk_id = 0;
  const MultisectionTree::Block* blk = &tree_.root();
  while (!blk->is_leaf()) {
    const std::int32_t first = blk->first_child;
    const std::int32_t count = blk->num_children;
    EdgeWeight min_load = tree_loads_[static_cast<std::size_t>(first)];
    EdgeWeight max_load = min_load;
    for (std::int32_t c = 1; c < count; ++c) {
      const EdgeWeight load = tree_loads_[static_cast<std::size_t>(first + c)];
      min_load = load < min_load ? load : min_load;
      max_load = load > max_load ? load : max_load;
    }
    const double balance_range = 1.0 + static_cast<double>(max_load - min_load);
    const double level_weight =
        depth_weight_[static_cast<std::size_t>(blk->depth)];
    // Online per-layer capacity: a child already holding more than its fair
    // share (with epsilon slack) of the parent's load — counting the edge
    // about to land — is out, however strong its replica affinity. The
    // distance-boosted affinity would otherwise hoard connected graphs into
    // one module of the expensive layers.
    const double parent_load = static_cast<double>(
        tree_loads_[blk_id] + edge.weight);
    const double capacity =
        (1.0 + epsilon) * parent_load / static_cast<double>(count) + 1.0;

    std::int32_t best = -1;
    double best_score = -1.0;
    std::int32_t least_loaded = first;
    for (std::int32_t c = 0; c < count; ++c) {
      const auto child_id = static_cast<std::size_t>(first + c);
      if (tree_loads_[child_id] <
          tree_loads_[static_cast<std::size_t>(least_loaded)]) {
        least_loaded = first + c;
      }
      const double new_load =
          static_cast<double>(tree_loads_[child_id] + edge.weight);
      if (new_load > capacity) {
        continue;
      }
      const MultisectionTree::Block& child = tree_.block(child_id);
      double score = lambda *
                     static_cast<double>(max_load - tree_loads_[child_id]) /
                     balance_range;
      // Module affinity graded by the *share* of the endpoint's replicas the
      // module holds: a binary probe would credit every module a hub has
      // touched equally, erasing the signal exactly on the streams where it
      // matters most. Single-replica vertices (the common case HDRF protects)
      // reduce to the binary probe.
      const std::uint32_t in_u =
          reps.count_in_range(edge.u, child.leaf_begin, child.leaf_end);
      if (in_u > 0) {
        score += level_weight * gain_u * static_cast<double>(in_u) /
                 static_cast<double>(total_u);
      }
      const std::uint32_t in_v =
          reps.count_in_range(edge.v, child.leaf_begin, child.leaf_end);
      if (in_v > 0) {
        score += level_weight * gain_v * static_cast<double>(in_v) /
                 static_cast<double>(total_v);
      }
      if (score > best_score) {
        best_score = score;
        best = first + c;
      }
    }
    if (best < 0) {
      // Heavy edge weights can push every child past the fair-share cap;
      // the least-loaded child is the balance-optimal fallback.
      best = least_loaded;
    }
    blk_id = static_cast<std::size_t>(best);
    blk = &tree_.block(blk_id);
  }
  return blk->leaf_begin;
}

void HierarchicalHdrfPartitioner::on_placed(const StreamedEdge& edge,
                                            BlockId block) {
  // Subtree loads along the leaf-to-root path back the sibling balance term.
  std::int32_t id = leaf_tree_id_[static_cast<std::size_t>(block)];
  while (id >= 0) {
    tree_loads_[static_cast<std::size_t>(id)] += edge.weight;
    id = tree_.block(static_cast<std::size_t>(id)).parent;
  }
}

} // namespace oms
