/// \file edge_partitioner.hpp
/// \brief The streaming vertex-cut model: edges arrive one at a time and are
///        permanently placed on one of k blocks; vertices are *replicated*
///        wherever their edges land. The objective is the replication factor
///        (average replicas per vertex — the vertex-cut analogue of the
///        communication-volume objective) under edge-load balance.
///
/// StreamingEdgePartitioner is the edge-stream counterpart of
/// OnePassAssigner: one instance handles one pass over one edge stream. The
/// base class owns the state every algorithm shares — the per-vertex replica
/// bitsets, per-block edge loads, and the per-edge assignment record — so a
/// concrete algorithm only implements choose_block().
#pragma once

#include <span>
#include <vector>

#include "oms/stream/edge_list_stream.hpp"
#include "oms/types.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/dense_bitset.hpp"

namespace oms {

/// Shared knobs of the streaming edge partitioners.
struct EdgePartConfig {
  BlockId k = 2;
  /// HDRF balance pressure (the lambda of Petroni et al.): 0 ignores load,
  /// larger values trade replication for tighter edge balance.
  double lambda = 1.1;
  /// Per-layer load slack of the hierarchical descent: a child module whose
  /// subtree load would exceed (1 + epsilon) * its fair share of the parent
  /// load so far is ineligible, whatever its affinity — the online analogue
  /// of the Lmax capacity (an edge list has no header, so there is no m to
  /// derive an absolute capacity from). Compounds to roughly
  /// (1 + epsilon)^levels - 1 total edge imbalance.
  double epsilon = 0.05;
  /// Salt of the hashing algorithms (DBH, Grid); HDRF is seed-free.
  std::uint64_t seed = 1;
};

class StreamingEdgePartitioner {
public:
  explicit StreamingEdgePartitioner(const EdgePartConfig& config)
      : config_(config),
        replicas_(config.k),
        edge_loads_(static_cast<std::size_t>(config.k), 0) {
    OMS_ASSERT_MSG(config.k >= 1, "edge partitioning needs k >= 1");
  }
  virtual ~StreamingEdgePartitioner() = default;

  StreamingEdgePartitioner(const StreamingEdgePartitioner&) = delete;
  StreamingEdgePartitioner& operator=(const StreamingEdgePartitioner&) = delete;

  /// Permanently place \p edge: pick a block, replicate both endpoints
  /// there, account the edge load. Returns the chosen block in [0, k).
  BlockId assign(const StreamedEdge& edge) {
    const BlockId block = choose_block(edge);
    OMS_HEAVY_ASSERT(block >= 0 && block < config_.k);
    const std::size_t rows =
        static_cast<std::size_t>(edge.u > edge.v ? edge.u : edge.v) + 1;
    replicas_.ensure_rows(rows);
    replicas_.set(edge.u, block);
    replicas_.set(edge.v, block);
    edge_loads_[static_cast<std::size_t>(block)] += edge.weight;
    edge_assignment_.push_back(block);
    on_placed(edge, block);
    return block;
  }

  [[nodiscard]] BlockId num_blocks() const noexcept { return config_.k; }
  [[nodiscard]] const EdgePartConfig& config() const noexcept { return config_; }

  /// Replica sets built so far: row = vertex id, bit = block.
  [[nodiscard]] const BitsetTable& replicas() const noexcept { return replicas_; }

  /// Accumulated edge weight per block.
  [[nodiscard]] std::span<const EdgeWeight> edge_loads() const noexcept {
    return edge_loads_;
  }

  /// Block of the i-th streamed edge, in stream order.
  [[nodiscard]] const std::vector<BlockId>& edge_assignment() const noexcept {
    return edge_assignment_;
  }

  /// Release the per-edge assignment (partitioner is done afterwards).
  [[nodiscard]] std::vector<BlockId> take_edge_assignment() {
    return std::move(edge_assignment_);
  }

protected:
  /// Score the candidate blocks for \p edge. Called exactly once per edge,
  /// *before* the base class updates replicas/loads; may update
  /// algorithm-private state (e.g. partial degrees).
  [[nodiscard]] virtual BlockId choose_block(const StreamedEdge& edge) = 0;

  /// Hook after the shared state was updated (e.g. hierarchical subtree
  /// load accounting).
  virtual void on_placed(const StreamedEdge& edge, BlockId block) {
    (void)edge;
    (void)block;
  }

private:
  EdgePartConfig config_;
  BitsetTable replicas_;
  std::vector<EdgeWeight> edge_loads_;
  std::vector<BlockId> edge_assignment_;
};

/// Partial-degree table of the one-pass model: the degree of a vertex *as
/// seen so far* in the stream (HDRF and DBH decide from these — the true
/// degrees are unknowable without a second pass).
class PartialDegrees {
public:
  /// Count one more incident edge at \p v and return the new partial degree.
  std::uint32_t increment(NodeId v) {
    if (static_cast<std::size_t>(v) >= degrees_.size()) {
      std::size_t capacity = degrees_.size() == 0 ? 16 : degrees_.size();
      while (capacity <= static_cast<std::size_t>(v)) {
        capacity *= 2;
      }
      degrees_.resize(capacity, 0);
    }
    return ++degrees_[v];
  }

  [[nodiscard]] std::uint32_t of(NodeId v) const noexcept {
    return static_cast<std::size_t>(v) < degrees_.size() ? degrees_[v] : 0;
  }

private:
  std::vector<std::uint32_t> degrees_;
};

} // namespace oms
