/// \file driver.hpp
/// \brief The edge-streaming loop: drive an edge source through a
///        StreamingEdgePartitioner, sequentially or with the parse/assign
///        pipeline of the node stream (PR 3) reused unchanged.
///
/// Vertex-cut assigners are order-dependent sequential algorithms (partial
/// degrees, min/max load tracking), so the pipelined driver always runs one
/// consumer: the reader thread parses ahead into recycled EdgeBatch buffers
/// while the calling thread assigns — the output is bit-identical to the
/// sequential driver, only the parse latency is hidden.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "oms/edgepart/edge_partitioner.hpp"
#include "oms/stream/edge_list_stream.hpp"
#include "oms/stream/pipeline.hpp"
#include "oms/types.hpp"

namespace oms {

/// What the stream revealed about the graph (edge lists carry no header).
struct EdgeStreamStats {
  EdgeIndex num_edges = 0;
  EdgeIndex self_loops_skipped = 0;
  /// One past the largest endpoint id (0 when no edge streamed).
  NodeId num_vertices = 0;
};

/// Result of a streaming edge-partition pass.
struct EdgePartitionResult {
  std::vector<BlockId> edge_assignment; ///< block per edge, stream order
  double elapsed_s = 0.0;
  EdgeStreamStats stats;
};

/// Stream the edge-list file through \p partitioner (sequential; disk order
/// is the edge order). \p error_policy is the malformed-line policy
/// (--on-error); \p error_stats_out, when non-null, receives the skip
/// accounting at the end of the pass.
[[nodiscard]] EdgePartitionResult run_edge_partition_from_file(
    const std::string& path, StreamingEdgePartitioner& partitioner,
    const StreamErrorPolicy& error_policy = {},
    StreamErrorStats* error_stats_out = nullptr);

/// Same decisions, pipelined: a producer thread parses EdgeBatches while the
/// calling thread assigns (PipelineConfig::assign_threads is ignored — see
/// the file comment). batch_nodes/ring_batches/reader_buffer_bytes apply.
[[nodiscard]] EdgePartitionResult run_edge_partition_from_file(
    const std::string& path, StreamingEdgePartitioner& partitioner,
    const PipelineConfig& config);

/// In-memory pass over an already-materialized edge sequence (tests,
/// benchmarks, restreaming experiments). Self-loops are skipped like the
/// file reader does.
[[nodiscard]] EdgePartitionResult run_edge_partition(
    std::span<const StreamedEdge> edges, StreamingEdgePartitioner& partitioner);

} // namespace oms
