#include "oms/edgepart/driver.hpp"

#include "oms/stream/pipeline_core.hpp"
#include "oms/telemetry/metrics.hpp"
#include "oms/util/timer.hpp"

namespace oms {
namespace {

EdgeStreamStats stats_of(const EdgeListStream& stream) {
  EdgeStreamStats stats;
  stats.num_edges = stream.edges_delivered();
  stats.self_loops_skipped = stream.self_loops_skipped();
  stats.num_vertices =
      stream.edges_delivered() > 0 ? stream.max_vertex_id() + 1 : 0;
  return stats;
}

} // namespace

EdgePartitionResult run_edge_partition_from_file(
    const std::string& path, StreamingEdgePartitioner& partitioner,
    const StreamErrorPolicy& error_policy, StreamErrorStats* error_stats_out) {
  EdgeListStream stream(path);
  stream.set_error_policy(error_policy);
  EdgePartitionResult result;
  Timer timer;
  StreamedEdge edge;
  // Edge counting is batched so the armed-telemetry cost stays off the
  // per-edge path; the pipelined overload counts per batch instead.
  std::uint64_t pending_edges = 0;
  while (stream.next(edge)) {
    partitioner.assign(edge);
    if (++pending_edges == 8192) {
      telemetry::metric_add(telemetry::Counter::kStreamEdges, pending_edges);
      pending_edges = 0;
    }
  }
  if (pending_edges != 0) {
    telemetry::metric_add(telemetry::Counter::kStreamEdges, pending_edges);
  }
  result.elapsed_s = timer.elapsed_s();
  result.stats = stats_of(stream);
  if (error_stats_out != nullptr) {
    *error_stats_out = stream.error_stats();
  }
  result.edge_assignment = partitioner.take_edge_assignment();
  return result;
}

EdgePartitionResult run_edge_partition_from_file(
    const std::string& path, StreamingEdgePartitioner& partitioner,
    const PipelineConfig& config) {
  EdgeListStream stream(path, config.reader_buffer_bytes);
  stream.set_error_policy(config.error_policy);
  EdgePartitionResult result;
  Timer timer;
  run_batched_pipeline<EdgeBatch>(
      config.ring_batches, /*consumers=*/1,
      [&](EdgeBatch& batch) {
        return stream.fill_batch(batch, config.batch_nodes);
      },
      [&](const EdgeBatch& batch, int) {
        const std::size_t count = batch.size();
        for (std::size_t i = 0; i < count; ++i) {
          partitioner.assign(batch.edge(i));
        }
        telemetry::metric_add(telemetry::Counter::kStreamEdges, count);
      },
      config.watchdog_ms);
  result.elapsed_s = timer.elapsed_s();
  // The producer thread has joined inside run_batched_pipeline, so reading
  // the stream counters here is race-free.
  result.stats = stats_of(stream);
  if (config.error_stats_out != nullptr) {
    *config.error_stats_out = stream.error_stats();
  }
  result.edge_assignment = partitioner.take_edge_assignment();
  return result;
}

EdgePartitionResult run_edge_partition(std::span<const StreamedEdge> edges,
                                       StreamingEdgePartitioner& partitioner) {
  EdgePartitionResult result;
  Timer timer;
  NodeId max_id = 0;
  for (const StreamedEdge& edge : edges) {
    if (edge.u == edge.v) {
      ++result.stats.self_loops_skipped;
      continue;
    }
    partitioner.assign(edge);
    ++result.stats.num_edges;
    max_id = edge.u > max_id ? edge.u : max_id;
    max_id = edge.v > max_id ? edge.v : max_id;
  }
  result.elapsed_s = timer.elapsed_s();
  result.stats.num_vertices = result.stats.num_edges > 0 ? max_id + 1 : 0;
  result.edge_assignment = partitioner.take_edge_assignment();
  return result;
}

} // namespace oms
