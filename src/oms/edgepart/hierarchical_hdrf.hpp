/// \file hierarchical_hdrf.hpp
/// \brief Hierarchy-aware HDRF: the paper's recursive multi-section applied
///        to the vertex-cut model — process mapping for edge partitions.
///
/// Plain HDRF treats all k blocks as equidistant, but on a hierarchical
/// system (cores within processors within nodes, distances d1 < ... < dl)
/// replicas of the same vertex that land in different *nodes* cost far more
/// to synchronize than replicas within one processor. This partitioner
/// descends the MultisectionTree built from the topology (top layer first,
/// exactly like the online multi-section descends for node streams) and
/// scores each child module with the HDRF terms
///   C(child) = w_level * (g(u, child) + g(v, child)) + lambda * bal(child)
/// where g rewards a module holding replicas of the endpoint in its leaf
/// range (graded by the *share* of the endpoint's replicas it holds), bal
/// balances *subtree* edge loads among siblings under a per-layer fair-share
/// capacity, and w_level = d_level / d_1 boosts the replica affinity by the
/// communication distance the choice is about to commit, relative to the
/// innermost (cheapest) level: the leaf layer scores exactly like flat HDRF
/// and keeping replicas together matters most at the outermost layer.
/// The optimized objective is the weighted replica communication cost that
/// hierarchical_replica_cost() measures, which reduces to the replication
/// factor objective when all distances are equal.
#pragma once

#include <vector>

#include "oms/core/multisection_tree.hpp"
#include "oms/edgepart/edge_partitioner.hpp"
#include "oms/mapping/hierarchy.hpp"

namespace oms {

class HierarchicalHdrfPartitioner final : public StreamingEdgePartitioner {
public:
  /// \p config.k is ignored: the block count is \p topo.num_pes().
  HierarchicalHdrfPartitioner(const SystemHierarchy& topo,
                              const EdgePartConfig& config);

  [[nodiscard]] const SystemHierarchy& topology() const noexcept { return topo_; }

protected:
  [[nodiscard]] BlockId choose_block(const StreamedEdge& edge) override;
  void on_placed(const StreamedEdge& edge, BlockId block) override;

private:
  SystemHierarchy topo_;
  MultisectionTree tree_;
  PartialDegrees degrees_;
  /// Accumulated edge weight per tree block (subtree totals) — the sibling
  /// balance term of the descent; O(2k) like the tree itself.
  std::vector<EdgeWeight> tree_loads_;
  /// Tree block id of each final block's leaf, for the upward load walk.
  std::vector<std::int32_t> leaf_tree_id_;
  /// d_level / d_max per internal-block depth (root = outermost level).
  std::vector<double> depth_weight_;
};

} // namespace oms
