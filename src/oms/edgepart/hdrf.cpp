#include "oms/edgepart/hdrf.hpp"

namespace oms {

BlockId HdrfPartitioner::choose_block(const StreamedEdge& edge) {
  // Partial degrees are bumped on arrival, before scoring, per the original
  // streaming formulation (the edge itself is evidence of degree).
  const auto du = static_cast<double>(degrees_.increment(edge.u));
  const auto dv = static_cast<double>(degrees_.increment(edge.v));
  const double degree_sum = du + dv;
  // theta(x) in the paper: the *normalized complement* of x's degree share —
  // rewarding the block that already holds the lower-degree endpoint.
  const double gain_u = 1.0 + (1.0 - du / degree_sum);
  const double gain_v = 1.0 + (1.0 - dv / degree_sum);

  const std::span<const EdgeWeight> loads = edge_loads();
  const BitsetTable& reps = replicas();
  const BlockId k = num_blocks();

  EdgeWeight min_load = loads[0];
  EdgeWeight max_load = loads[0];
  for (BlockId b = 1; b < k; ++b) {
    const EdgeWeight load = loads[static_cast<std::size_t>(b)];
    min_load = load < min_load ? load : min_load;
    max_load = load > max_load ? load : max_load;
  }
  const double balance_range = 1.0 + static_cast<double>(max_load - min_load);

  BlockId best = 0;
  double best_score = -1.0;
  for (BlockId b = 0; b < k; ++b) {
    double score = config().lambda *
                   static_cast<double>(max_load - loads[static_cast<std::size_t>(b)]) /
                   balance_range;
    if (reps.test(edge.u, b)) {
      score += gain_u;
    }
    if (reps.test(edge.v, b)) {
      score += gain_v;
    }
    if (score > best_score) {
      best_score = score;
      best = b;
    }
  }
  return best;
}

} // namespace oms
