/// \file dbh.hpp
/// \brief DBH — Degree-Based Hashing (Xie et al., NIPS'14): hash the edge on
///        its lower-degree endpoint, so high-degree vertices absorb the
///        replication (their cut is information-theoretically cheap) while
///        low-degree vertices stay whole.
///
/// Streaming variant: degrees are *partial* (as seen so far), bumped on
/// arrival before the decision; the hash is seeded splitmix64, so a run is
/// deterministic for a fixed seed. O(1) per edge, no scoring loop.
#pragma once

#include "oms/edgepart/edge_partitioner.hpp"
#include "oms/util/random.hpp"

namespace oms {

class DbhPartitioner final : public StreamingEdgePartitioner {
public:
  explicit DbhPartitioner(const EdgePartConfig& config)
      : StreamingEdgePartitioner(config) {}

protected:
  [[nodiscard]] BlockId choose_block(const StreamedEdge& edge) override {
    const std::uint32_t du = degrees_.increment(edge.u);
    const std::uint32_t dv = degrees_.increment(edge.v);
    // Lower partial degree wins; ties go to the smaller id so the choice is
    // deterministic regardless of endpoint order in the file.
    const NodeId pivot =
        du < dv || (du == dv && edge.u < edge.v) ? edge.u : edge.v;
    const std::uint64_t hash = hash_combine(config().seed, pivot);
    return static_cast<BlockId>(hash % static_cast<std::uint64_t>(num_blocks()));
  }

private:
  PartialDegrees degrees_;
};

} // namespace oms
