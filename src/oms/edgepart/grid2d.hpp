/// \file grid2d.hpp
/// \brief Grid / 2D constrained hashing (the PowerGraph "grid" ingress):
///        blocks form an r x c grid, each vertex hashes to one cell, and an
///        edge may only go to the two cells where its endpoints' row and
///        column constraint sets intersect — every vertex is replicated on
///        at most r + c - 1 blocks by construction.
///
/// For edge (u, v) the candidates are (row(u), col(v)) and (row(v), col(u));
/// the less loaded one wins (ties to the lower block id). k that is not a
/// product of two near-equal factors leaves k - r*c blocks unused — the
/// constructor picks the factorization maximizing r*c coverage with the most
/// square aspect.
#pragma once

#include "oms/edgepart/edge_partitioner.hpp"
#include "oms/util/random.hpp"

namespace oms {

class Grid2dPartitioner final : public StreamingEdgePartitioner {
public:
  explicit Grid2dPartitioner(const EdgePartConfig& config)
      : StreamingEdgePartitioner(config) {
    // Best r <= sqrt(k): maximize covered blocks r*(k/r), preferring the
    // squarer grid on ties (replication bound r + c - 1 is smallest there).
    const BlockId k = config.k;
    rows_ = 1;
    cols_ = k;
    for (BlockId r = 1; static_cast<std::int64_t>(r) * r <= k; ++r) {
      const BlockId c = k / r;
      if (r * c >= rows_ * cols_) {
        rows_ = r;
        cols_ = c;
      }
    }
  }

  [[nodiscard]] BlockId grid_rows() const noexcept { return rows_; }
  [[nodiscard]] BlockId grid_cols() const noexcept { return cols_; }

protected:
  [[nodiscard]] BlockId choose_block(const StreamedEdge& edge) override {
    const BlockId cell_u = cell_of(edge.u);
    const BlockId cell_v = cell_of(edge.v);
    const BlockId cand1 = (cell_u / cols_) * cols_ + cell_v % cols_;
    const BlockId cand2 = (cell_v / cols_) * cols_ + cell_u % cols_;
    if (cand1 == cand2) {
      return cand1;
    }
    const std::span<const EdgeWeight> loads = edge_loads();
    const EdgeWeight load1 = loads[static_cast<std::size_t>(cand1)];
    const EdgeWeight load2 = loads[static_cast<std::size_t>(cand2)];
    if (load1 != load2) {
      return load1 < load2 ? cand1 : cand2;
    }
    return cand1 < cand2 ? cand1 : cand2;
  }

private:
  [[nodiscard]] BlockId cell_of(NodeId v) const noexcept {
    const std::uint64_t hash = hash_combine(config().seed, v);
    return static_cast<BlockId>(hash % static_cast<std::uint64_t>(rows_ * cols_));
  }

  BlockId rows_ = 1;
  BlockId cols_ = 1;
};

} // namespace oms
