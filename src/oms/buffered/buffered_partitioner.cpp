#include "oms/buffered/buffered_partitioner.hpp"

#include <algorithm>
#include <numeric>

#include "oms/util/assert.hpp"
#include "oms/util/random.hpp"
#include "oms/util/timer.hpp"

namespace oms {
namespace {

/// Joint optimization state for one buffer [begin, end).
///
/// The HeiStream model graph is: the buffer-induced subgraph, plus one
/// super-node per block standing for everything assigned in earlier buffers.
/// We keep the model implicit — for each buffer node we gather (a) edges to
/// earlier, already-assigned neighbors, bucketed by their block ("super
/// edges"), and (b) edges to other buffer nodes, resolved against the
/// evolving in-buffer assignment.
class BufferModel {
public:
  BufferModel(const CsrGraph& graph, BlockId k, NodeWeight lmax,
              std::vector<BlockId>& assignment, std::vector<NodeWeight>& block_weight)
      : graph_(graph),
        k_(k),
        lmax_(lmax),
        assignment_(assignment),
        block_weight_(block_weight),
        gather_(static_cast<std::size_t>(k), 0) {}

  void set_range(NodeId begin, NodeId end) {
    begin_ = begin;
    end_ = end;
  }

  /// Connection weight of \p u to every block, counting assigned neighbors
  /// both outside (committed) and inside (tentative) the buffer.
  /// Returns the touched blocks; weights are in gather().
  const std::vector<BlockId>& gather_connections(NodeId u) {
    for (const BlockId b : touched_) {
      gather_[static_cast<std::size_t>(b)] = 0;
    }
    touched_.clear();
    const auto neigh = graph_.neighbors(u);
    const auto weights = graph_.incident_weights(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      const BlockId b = assignment_[neigh[i]];
      if (b == kInvalidBlock) {
        continue; // future node (or not yet placed in this buffer)
      }
      if (gather_[static_cast<std::size_t>(b)] == 0) {
        touched_.push_back(b);
      }
      gather_[static_cast<std::size_t>(b)] += weights[i];
    }
    return touched_;
  }

  [[nodiscard]] EdgeWeight connection(BlockId b) const {
    return gather_[static_cast<std::size_t>(b)];
  }

  /// Greedy initial placement: LDG-style multiplicative penalty over the
  /// model connections (cheap, respects remaining capacity).
  void place_initially() {
    for (NodeId u = begin_; u < end_; ++u) {
      const auto& touched = gather_connections(u);
      BlockId best = kInvalidBlock;
      double best_score = -1.0;
      NodeWeight best_weight = 0;
      for (const BlockId b : touched) {
        const NodeWeight w = block_weight_[static_cast<std::size_t>(b)];
        if (w + graph_.node_weight(u) > lmax_) {
          continue;
        }
        const double score =
            static_cast<double>(connection(b)) *
            (1.0 - static_cast<double>(w) / static_cast<double>(lmax_));
        if (score > best_score ||
            (score == best_score && w < best_weight)) {
          best = b;
          best_score = score;
          best_weight = w;
        }
      }
      if (best == kInvalidBlock || best_score <= 0.0) {
        // No (feasible) connected block: take the globally lightest one so
        // empty blocks fill up and balance is always attainable.
        best = 0;
        for (BlockId b = 1; b < k_; ++b) {
          if (block_weight_[static_cast<std::size_t>(b)] <
              block_weight_[static_cast<std::size_t>(best)]) {
            best = b;
          }
        }
      }
      commit(u, best);
    }
  }

  /// Fixed-vertex label propagation over the buffer: earlier buffers are
  /// immutable (they are the super-nodes), buffer nodes may move while the
  /// balance constraint keeps holding.
  std::size_t refine(int iterations, Rng& rng) {
    std::vector<NodeId> order(end_ - begin_);
    std::iota(order.begin(), order.end(), begin_);
    std::size_t total_moved = 0;
    for (int iteration = 0; iteration < iterations; ++iteration) {
      rng.shuffle(order);
      std::size_t moved = 0;
      for (const NodeId u : order) {
        const BlockId current = assignment_[u];
        const auto& touched = gather_connections(u);
        const EdgeWeight internal = connection(current);
        BlockId best = current;
        EdgeWeight best_connection = internal;
        NodeWeight best_weight = block_weight_[static_cast<std::size_t>(current)];
        for (const BlockId b : touched) {
          if (b == current) {
            continue;
          }
          if (block_weight_[static_cast<std::size_t>(b)] + graph_.node_weight(u) >
              lmax_) {
            continue;
          }
          const EdgeWeight conn = connection(b);
          if (conn > best_connection ||
              (conn == best_connection &&
               block_weight_[static_cast<std::size_t>(b)] < best_weight)) {
            best = b;
            best_connection = conn;
            best_weight = block_weight_[static_cast<std::size_t>(b)];
          }
        }
        if (best != current) {
          block_weight_[static_cast<std::size_t>(current)] -= graph_.node_weight(u);
          block_weight_[static_cast<std::size_t>(best)] += graph_.node_weight(u);
          assignment_[u] = best;
          ++moved;
        }
      }
      total_moved += moved;
      if (moved == 0) {
        break;
      }
    }
    return total_moved;
  }

private:
  void commit(NodeId u, BlockId b) {
    assignment_[u] = b;
    block_weight_[static_cast<std::size_t>(b)] += graph_.node_weight(u);
  }

  const CsrGraph& graph_;
  BlockId k_;
  NodeWeight lmax_;
  std::vector<BlockId>& assignment_;
  std::vector<NodeWeight>& block_weight_;
  std::vector<EdgeWeight> gather_;
  std::vector<BlockId> touched_;
  NodeId begin_ = 0;
  NodeId end_ = 0;
};

} // namespace

BufferedResult buffered_partition(const CsrGraph& graph, BlockId k,
                                  const BufferedConfig& config) {
  OMS_ASSERT(k >= 1);
  OMS_ASSERT(config.buffer_size >= 1);
  const NodeWeight lmax =
      max_block_weight(graph.total_node_weight(), k, config.epsilon);

  BufferedResult result;
  result.assignment.assign(graph.num_nodes(), kInvalidBlock);
  std::vector<NodeWeight> block_weight(static_cast<std::size_t>(k), 0);

  Timer timer;
  Rng rng(config.seed);
  BufferModel model(graph, k, lmax, result.assignment, block_weight);
  for (NodeId begin = 0; begin < graph.num_nodes(); begin += config.buffer_size) {
    const NodeId end = std::min<NodeId>(begin + config.buffer_size, graph.num_nodes());
    model.set_range(begin, end);
    model.place_initially();
    model.refine(config.refinement_iterations, rng);
    ++result.buffers_processed;
  }
  result.elapsed_s = timer.elapsed_s();
  return result;
}

} // namespace oms
