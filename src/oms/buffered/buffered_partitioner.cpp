#include "oms/buffered/buffered_partitioner.hpp"

#include <algorithm>
#include <limits>

#include "oms/mapping/hierarchy.hpp"
#include "oms/multilevel/buffer_multilevel.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/telemetry/metrics.hpp"
#include "oms/util/assert.hpp"
#include "oms/util/io_error.hpp"
#include "oms/util/timer.hpp"

namespace oms {

namespace {
[[nodiscard]] inline std::size_t as_index(BlockId b) noexcept {
  return static_cast<std::size_t>(b);
}
} // namespace

BufferedPartitioner::BufferedPartitioner(NodeId num_nodes,
                                         NodeWeight total_node_weight, BlockId k,
                                         const BufferedConfig& config)
    : k_(k),
      lmax_(oms::max_block_weight(total_node_weight, k, config.epsilon)),
      refinement_iterations_(config.refinement_iterations),
      engine_(config.engine),
      assignment_(num_nodes, kInvalidBlock),
      block_weight_(as_index(k), 0),
      penalty_(as_index(k), 1.0),
      gather_(as_index(k), 0) {
  OMS_ASSERT(k >= 1);
  OMS_ASSERT(config.buffer_size >= 1);
  OMS_ASSERT(config.refinement_iterations >= 0);
  if (config.hierarchy != nullptr) {
    OMS_ASSERT_MSG(config.hierarchy->num_pes() == k,
                   "hierarchy PE count must equal the number of blocks");
    dist_.resize(as_index(k) * as_index(k));
    for (BlockId x = 0; x < k; ++x) {
      for (BlockId y = 0; y < k; ++y) {
        const std::int64_t d = config.hierarchy->distance(x, y);
        dist_[as_index(x) * as_index(k) + as_index(y)] = d;
        dist_max_ = std::max(dist_max_, d);
      }
    }
  }
  if (config.engine == BufferedEngine::kMultilevel) {
    BufferMultilevelConfig ml;
    ml.coarse_floor = config.ml_coarse_floor;
    ml.coarsening_factor = config.ml_coarsening_factor;
    ml.max_levels = config.ml_max_levels;
    ml.clustering_iterations = config.ml_clustering_iterations;
    ml.initial_attempts = config.ml_initial_attempts;
    ml.refinement_iterations = config.ml_refinement_iterations;
    ml.seed = config.seed;
    ml_ = std::make_unique<BufferMultilevel>(k, ml);
  }
}

BufferedPartitioner::~BufferedPartitioner() = default;

void BufferedPartitioner::set_block_weight(BlockId b, NodeWeight w) {
  block_weight_[as_index(b)] = w;
  // Recomputed (not delta-updated) so the score arithmetic matches a fresh
  // 1 - w/Lmax evaluation exactly — determinism across entry points hinges
  // on every path computing identical doubles.
  penalty_[as_index(b)] =
      1.0 - static_cast<double>(w) / static_cast<double>(lmax_);
}

BlockId BufferedPartitioner::lightest_block() const {
  BlockId best = 0;
  for (BlockId b = 1; b < k_; ++b) {
    if (block_weight_[as_index(b)] < block_weight_[as_index(best)]) {
      best = b;
    }
  }
  return best;
}

template <bool kUnit, typename LocalBlock, typename NodeAt>
void BufferedPartitioner::build_and_place(std::vector<LocalBlock>& local,
                                          NodeId first_id, std::uint32_t count,
                                          std::size_t arc_bound, NodeAt&& node_at) {
  begin_ = first_id;
  size_ = count;
  const NodeId end = begin_ + size_;

  // Cursor-written arenas sized once by the arc bound: the hot walk below
  // never pays push_back bookkeeping, and raw pointers keep the compiler
  // from re-loading vector internals after every store.
  intra_offset_.resize(size_ + std::size_t{1});
  intra_target_.resize(arc_bound);
  if constexpr (!kUnit) {
    intra_weight_.resize(arc_bound);
  }
  super_offset_.resize(size_ + std::size_t{1});
  super_block_.resize(arc_bound);
  super_weight_.resize(arc_bound);
  node_weight_.resize(size_);
  intra_unit_ = kUnit;
  seed_.assign(size_, 0);
  local.resize(size_); // written in placement order; reads stay behind writes

  std::uint32_t* const intra_offset = intra_offset_.data();
  std::uint32_t* const intra_target = intra_target_.data();
  EdgeWeight* const intra_weight = intra_weight_.data();
  std::uint32_t* const super_offset = super_offset_.data();
  BlockId* const super_block = super_block_.data();
  EdgeWeight* const super_weight = super_weight_.data();
  EdgeWeight* const gather = gather_.data();
  const BlockId* const assignment = assignment_.data();
  std::uint32_t intra_cursor = 0;
  std::uint32_t super_cursor = 0;
  intra_offset[0] = 0;
  super_offset[0] = 0;

  for (std::uint32_t i = 0; i < size_; ++i) {
    const StreamedNode node = node_at(i);
    node_weight_[i] = node.weight;

    // Phase 1 of the fused walk: committed neighbors (earlier buffers) fold
    // into gather_ — they become this node's aggregated super-edges — while
    // in-buffer arcs are recorded into the intra CSR for refinement.
    const std::uint32_t intra_begin = intra_cursor;
    for (std::size_t e = 0; e < node.neighbors.size(); ++e) {
      const NodeId v = node.neighbors[e];
      if (v < begin_) {
        const BlockId b = assignment[v];
        if (gather[as_index(b)] == 0) {
          touched_.push_back(b);
        }
        gather[as_index(b)] += kUnit ? 1 : node.edge_weights[e];
      } else if (v < end) {
        const std::uint32_t j = v - begin_;
        intra_target[intra_cursor] = j;
        if constexpr (!kUnit) {
          intra_weight[intra_cursor] = node.edge_weights[e];
        }
        ++intra_cursor;
        if (j > i) {
          // An in-buffer successor: this node decides before seeing it, so
          // it seeds the refinement active set.
          seed_[i] = 1;
        }
      }
      // else: a future node beyond this buffer — it is undecided while this
      // buffer optimizes, exactly like the one-pass algorithms skip it.
    }
    // Seal the super-edges before intra contributions mix in: the committed
    // side is immutable during this buffer, so refinement re-reads it from
    // the aggregated list instead of ever walking the raw adjacency again.
    for (const BlockId b : touched_) {
      super_block[super_cursor] = b;
      super_weight[super_cursor] = gather[as_index(b)];
      ++super_cursor;
    }
    super_offset[i + 1] = super_cursor;

    // Phase 2: already-placed in-buffer predecessors join the gather; the
    // union is exactly the information a streaming placement may use.
    intra_offset[i + 1] = intra_cursor;
    for (std::uint32_t e = intra_begin; e < intra_cursor; ++e) {
      const std::uint32_t j = intra_target[e];
      if (j >= i) {
        continue; // successor (or self-loop): not yet placed
      }
      const auto b = static_cast<BlockId>(local[j]);
      if (gather[as_index(b)] == 0) {
        touched_.push_back(b);
      }
      gather[as_index(b)] += kUnit ? 1 : intra_weight[e];
    }

    // Greedy placement: LDG-style multiplicative penalty over the gathered
    // connections (cheap, respects remaining capacity).
    const NodeWeight weight = node_weight_[i];
    BlockId best = kInvalidBlock;
    double best_score = -1.0;
    NodeWeight best_weight = 0;
    if (!dist_.empty()) {
      // Mapping-aware placement: put the node where its communication is
      // cheapest, i.e. minimize sum over connected blocks of conn * d(b, b').
      // A block with no direct connection can still win when it sits close
      // to the blocks this node communicates with, so all k are candidates.
      // Strict cost minimization snowballs on scale-free streams (the LDG
      // penalty exists to stop exactly that), so the distance cost is only
      // the *primary* key: among blocks within one distance unit per
      // connection of the optimum — in practice, the optimum's whole
      // hierarchy group — the lightest block wins. Balance pressure stays
      // local to the group, where it is J-neutral.
      std::int64_t total_connection = 0;
      for (const BlockId t : touched_) {
        total_connection += gather[as_index(t)];
      }
      std::int64_t best_cost = 0;
      for (BlockId b = 0; b < k_; ++b) {
        const NodeWeight w = block_weight_[as_index(b)];
        if (w + weight > lmax_) {
          continue;
        }
        const std::int64_t* const row = dist_.data() + as_index(b) * as_index(k_);
        std::int64_t cost = 0;
        for (const BlockId t : touched_) {
          cost += gather[as_index(t)] * row[as_index(t)];
        }
        if (best == kInvalidBlock) {
          best = b;
          best_cost = cost;
          best_weight = w;
          continue;
        }
        const std::int64_t slack = total_connection;
        if (cost + slack < best_cost ||
            (cost <= best_cost + slack && w < best_weight)) {
          best = b;
          best_cost = std::min(best_cost, cost);
          best_weight = w;
        }
      }
      if (best != kInvalidBlock) {
        best_score = 1.0; // feasible choice made; skip the fallback below
      }
    } else {
      for (const BlockId b : touched_) {
        const NodeWeight w = block_weight_[as_index(b)];
        if (w + weight > lmax_) {
          continue;
        }
        const double score =
            static_cast<double>(gather_[as_index(b)]) * penalty_[as_index(b)];
        if (score > best_score || (score == best_score && w < best_weight)) {
          best = b;
          best_score = score;
          best_weight = w;
        }
      }
    }
    if (best == kInvalidBlock || best_score <= 0.0) {
      // No (feasible) connected block: take the globally lightest one so
      // empty blocks fill up and balance is always attainable.
      best = lightest_block();
    }
    local[i] = static_cast<LocalBlock>(best);
    set_block_weight(best, block_weight_[as_index(best)] + weight);

    for (const BlockId b : touched_) {
      gather[as_index(b)] = 0;
    }
    touched_.clear();
  }
}

template <typename LocalBlock>
void BufferedPartitioner::gather_connections(const std::vector<LocalBlock>& local,
                                             std::uint32_t i) {
  EdgeWeight* const gather = gather_.data();
  for (const BlockId b : touched_) {
    gather[as_index(b)] = 0;
  }
  touched_.clear();
  // Super-edges are unique per node by construction: straight assigns, no
  // first-touch test.
  const BlockId* const super_block = super_block_.data();
  const EdgeWeight* const super_weight = super_weight_.data();
  for (std::uint32_t s = super_offset_[i]; s < super_offset_[i + 1]; ++s) {
    const BlockId b = super_block[s];
    touched_.push_back(b);
    gather[as_index(b)] = super_weight[s];
  }
  const std::uint32_t* const intra_target = intra_target_.data();
  const LocalBlock* const blocks = local.data();
  const std::uint32_t intra_begin = intra_offset_[i];
  const std::uint32_t intra_end = intra_offset_[i + 1];
  // Unit edge weights (the overwhelmingly common streaming case) skip the
  // weight array entirely: one fewer stream to pull through the cache on
  // every revisit.
  if (intra_unit_) {
    for (std::uint32_t e = intra_begin; e < intra_end; ++e) {
      const auto b = static_cast<BlockId>(blocks[intra_target[e]]);
      if (gather[as_index(b)] == 0) {
        touched_.push_back(b);
      }
      gather[as_index(b)] += 1;
    }
  } else {
    const EdgeWeight* const intra_weight = intra_weight_.data();
    for (std::uint32_t e = intra_begin; e < intra_end; ++e) {
      const auto b = static_cast<BlockId>(blocks[intra_target[e]]);
      if (gather[as_index(b)] == 0) {
        touched_.push_back(b);
      }
      gather[as_index(b)] += intra_weight[e];
    }
  }
}

template <typename LocalBlock>
void BufferedPartitioner::refine(std::vector<LocalBlock>& local) {
  if (size_ == 0 || k_ == 1 || refinement_iterations_ == 0) {
    return;
  }
  // Active set: only nodes that decided before seeing an in-buffer successor
  // start dirty; everyone else re-enters solely when a neighbor moves. Each
  // node is examined at most refinement_iterations times — the old
  // sweep-count bound — so hot hubs cannot thrash the queue. Deliberate
  // trade-off vs full sweeps: a node placed with complete information is
  // never revisited even though placement (connection * penalty) and
  // refinement (raw connection) rank blocks differently, so a rare
  // penalty-driven placement stays put unless a neighbor moves; measured
  // cuts stay within 0.2% of full shuffled sweeps at a fraction of the work.
  const auto visit_budget =
      static_cast<std::uint8_t>(std::min(refinement_iterations_, 255));
  queue_.resize(size_);
  in_queue_.assign(size_, 0);
  visits_left_.assign(size_, visit_budget);
  std::size_t head = 0;
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < size_; ++i) {
    if (seed_[i] != 0) {
      queue_[count++] = i;
      in_queue_[i] = 1;
    }
  }

  while (count > 0) {
    const std::uint32_t i = queue_[head];
    head = head + 1 < size_ ? head + 1 : 0;
    --count;
    in_queue_[i] = 0;
    --visits_left_[i];

    const auto current = static_cast<BlockId>(local[i]);
    const NodeWeight weight = node_weight_[i];
    gather_connections(local, i);
    BlockId best = current;
    if (!dist_.empty()) {
      // Mapping-aware move rule: maximize the distance-discounted connection
      // volume (equivalently, minimize this node's contribution to J); all k
      // blocks are candidates, same reasoning as in placement.
      const auto gain_of = [&](BlockId b) {
        const std::int64_t* const row = dist_.data() + as_index(b) * as_index(k_);
        std::int64_t gain = 0;
        for (const BlockId t : touched_) {
          gain += gather_[as_index(t)] * (dist_max_ - row[as_index(t)]);
        }
        return gain;
      };
      std::int64_t best_gain = gain_of(current);
      NodeWeight best_weight = block_weight_[as_index(current)];
      for (BlockId b = 0; b < k_; ++b) {
        if (b == current) {
          continue;
        }
        const NodeWeight w = block_weight_[as_index(b)];
        if (w + weight > lmax_) {
          continue;
        }
        const std::int64_t gain = gain_of(b);
        if (gain > best_gain || (gain == best_gain && w < best_weight)) {
          best = b;
          best_gain = gain;
          best_weight = w;
        }
      }
    } else {
      EdgeWeight best_connection = gather_[as_index(current)];
      NodeWeight best_weight = block_weight_[as_index(current)];
      for (const BlockId b : touched_) {
        if (b == current) {
          continue;
        }
        const NodeWeight w = block_weight_[as_index(b)];
        if (w + weight > lmax_) {
          continue;
        }
        const EdgeWeight connection = gather_[as_index(b)];
        if (connection > best_connection ||
            (connection == best_connection && w < best_weight)) {
          best = b;
          best_connection = connection;
          best_weight = w;
        }
      }
    }
    if (best == current) {
      continue;
    }
    set_block_weight(current, block_weight_[as_index(current)] - weight);
    set_block_weight(best, block_weight_[as_index(best)] + weight);
    local[i] = static_cast<LocalBlock>(best);
    // The move changed the neighborhood of every in-buffer neighbor: those
    // with budget left re-enter the queue — except neighbors already in the
    // destination block, whose internal connection just grew while the
    // alternative shrank (provably stabler under the move rule).
    for (std::uint32_t e = intra_offset_[i]; e < intra_offset_[i + 1]; ++e) {
      const std::uint32_t j = intra_target_[e];
      if (in_queue_[j] == 0 && visits_left_[j] > 0 &&
          static_cast<BlockId>(local[j]) != best) {
        in_queue_[j] = 1;
        std::size_t tail = head + count;
        if (tail >= size_) {
          tail -= size_;
        }
        queue_[tail] = j;
        ++count;
      }
    }
  }
  // Restore the gather invariant (all-zero outside an operation): the last
  // examined node's connections would otherwise leak into the next buffer's
  // build as phantom super-edges.
  for (const BlockId b : touched_) {
    gather_[as_index(b)] = 0;
  }
  touched_.clear();
}

template <typename LocalBlock>
void BufferedPartitioner::refine_multilevel(std::vector<LocalBlock>& local) {
  if (size_ == 0 || k_ == 1) {
    return;
  }
  BufferModelView model;
  model.num_nodes = size_;
  model.intra_offset = intra_offset_.data();
  model.intra_target = intra_target_.data();
  model.intra_weight = intra_unit_ ? nullptr : intra_weight_.data();
  model.node_weight = node_weight_.data();
  model.super_offset = super_offset_.data();
  model.super_block = super_block_.data();
  model.super_weight = super_weight_.data();

  ml_part_.resize(size_);
  for (std::uint32_t i = 0; i < size_; ++i) {
    ml_part_[i] = static_cast<BlockId>(local[i]);
  }
  // The buffer index salts the engine's RNG: every buffer explores fresh
  // seeds, yet all entry points (in-memory, disk, pipelined) feed identical
  // buffers in identical order and therefore agree bit for bit.
  ml_->improve(model, ml_part_, block_weight_, lmax_,
               dist_.empty() ? nullptr : dist_.data(),
               static_cast<std::uint64_t>(buffers_processed_));
  for (std::uint32_t i = 0; i < size_; ++i) {
    local[i] = static_cast<LocalBlock>(ml_part_[i]);
  }
  // improve() rewrote block_weight_ in place; resync the cached penalties.
  for (BlockId b = 0; b < k_; ++b) {
    set_block_weight(b, block_weight_[as_index(b)]);
  }
}

template <bool kUnit, typename LocalBlock, typename NodeAt>
void BufferedPartitioner::run_buffer(std::vector<LocalBlock>& local,
                                     NodeId first_id, std::uint32_t count,
                                     std::size_t arc_bound, NodeAt&& node_at) {
  {
    const telemetry::TraceSpan span(telemetry::Hist::kStageBufferBuild);
    build_and_place<kUnit>(local, first_id, count, arc_bound, node_at);
  }
  // The cheap active-set refine always runs: its result is the multilevel
  // engine's incoming candidate (and never-worse fallback), anchoring the
  // two engines' trajectories together — they only diverge on buffers where
  // the V-cycle strictly improves the model objective.
  {
    const telemetry::TraceSpan span(telemetry::Hist::kStageBufferRefine);
    refine(local);
  }
  if (engine_ == BufferedEngine::kMultilevel) {
    const telemetry::TraceSpan span(telemetry::Hist::kStageMultilevel);
    refine_multilevel(local);
  }
  // One sequential flush per buffer: the hot loops above only touch the
  // compact local array (half a BlockId each, L1-resident at the default
  // buffer size), never the O(n) assignment.
  for (std::uint32_t i = 0; i < size_; ++i) {
    assignment_[begin_ + i] = static_cast<BlockId>(local[i]);
  }
  ++buffers_processed_;
  telemetry::metric_add(telemetry::Counter::kBufferedBuffers);
}

template <typename NodeAt>
void BufferedPartitioner::dispatch_buffer(bool unit_weights, NodeId first_id,
                                          std::uint32_t count,
                                          std::size_t arc_bound, NodeAt&& node_at) {
  // Blocks are committed (never invalid) by the time anything reads a local
  // slot, so 16 bits suffice whenever k fits them. Unit edge weights (the
  // common streaming case) drop the weight arrays from every hot loop.
  const bool small_k = static_cast<std::uint64_t>(k_) <=
                       std::numeric_limits<std::uint16_t>::max() + std::uint64_t{1};
  if (small_k && unit_weights) {
    run_buffer<true>(local16_, first_id, count, arc_bound, node_at);
  } else if (small_k) {
    run_buffer<false>(local16_, first_id, count, arc_bound, node_at);
  } else if (unit_weights) {
    run_buffer<true>(local32_, first_id, count, arc_bound, node_at);
  } else {
    run_buffer<false>(local32_, first_id, count, arc_bound, node_at);
  }
}

void BufferedPartitioner::process_buffer(const NodeBatch& batch) {
  if (batch.empty()) {
    return;
  }
  OMS_ASSERT_MSG(batch.first_id() + batch.size() <= assignment_.size(),
                 "batch extends past the announced node count");
  const std::span<const EdgeWeight> weights = batch.all_edge_weights();
  const bool unit = std::all_of(weights.begin(), weights.end(),
                                [](EdgeWeight w) { return w == 1; });
  dispatch_buffer(unit, batch.first_id(), static_cast<std::uint32_t>(batch.size()),
                  batch.num_arcs(),
                  [&](std::uint32_t i) { return batch.node(i); });
}

void BufferedPartitioner::process_graph_range(const CsrGraph& graph, NodeId begin,
                                              NodeId end) {
  if (begin >= end) {
    return;
  }
  OMS_ASSERT_MSG(end <= assignment_.size(),
                 "range extends past the announced node count");
  // Identical arcs in, identical partition out: the graph spans carry the
  // same values a NodeBatch parsed from the file would (parity-pinned).
  const std::span<const EdgeWeight> adjwgt = graph.raw_adjwgt();
  const auto arcs_begin = static_cast<std::size_t>(graph.raw_xadj()[begin]);
  const auto arcs_end = static_cast<std::size_t>(graph.raw_xadj()[end]);
  const bool unit =
      std::all_of(adjwgt.begin() + arcs_begin, adjwgt.begin() + arcs_end,
                  [](EdgeWeight w) { return w == 1; });
  dispatch_buffer(unit, begin, end - begin, arcs_end - arcs_begin,
                  [&](std::uint32_t i) {
    const NodeId u = begin + i;
    return StreamedNode{u, graph.node_weight(u), graph.neighbors(u),
                        graph.incident_weights(u)};
  });
}

std::vector<BlockId> BufferedPartitioner::take_assignment() {
  return std::move(assignment_);
}

void BufferedPartitioner::save_stream_state(CheckpointWriter& w) const {
  save_assignment(w, assignment_);
  w.put_u64(block_weight_.size());
  for (const NodeWeight bw : block_weight_) {
    w.put_i64(bw);
  }
  w.put_u64(buffers_processed_);
  if (ml_ != nullptr) {
    const auto [streak, skip] = ml_->backoff_state();
    w.put_i64(streak);
    w.put_u64(skip);
  } else {
    w.put_i64(0);
    w.put_u64(0);
  }
}

void BufferedPartitioner::load_stream_state(CheckpointReader& r) {
  load_assignment(r, assignment_);
  if (r.get_u64() != block_weight_.size()) {
    throw IoError("checkpoint: block weight count mismatch");
  }
  // Through set_block_weight so the cached penalties resync exactly as the
  // uninterrupted run computed them.
  for (BlockId b = 0; b < k_; ++b) {
    set_block_weight(b, r.get_i64());
  }
  buffers_processed_ = r.get_u64();
  const std::int64_t streak = r.get_i64();
  const std::uint64_t skip = r.get_u64();
  if (ml_ != nullptr) {
    ml_->restore_backoff(streak, skip);
  }
}

BufferedResult buffered_partition(const CsrGraph& graph, BlockId k,
                                  const BufferedConfig& config) {
  OMS_ASSERT(k >= 1);
  OMS_ASSERT(config.buffer_size >= 1);

  Timer timer;
  BufferedPartitioner core(graph.num_nodes(), graph.total_node_weight(), k, config);
  for (NodeId begin = 0; begin < graph.num_nodes(); begin += config.buffer_size) {
    const NodeId end = std::min<NodeId>(begin + config.buffer_size, graph.num_nodes());
    core.process_graph_range(graph, begin, end);
  }

  BufferedResult result;
  result.buffers_processed = core.buffers_processed();
  result.assignment = core.take_assignment();
  result.elapsed_s = timer.elapsed_s();
  return result;
}

} // namespace oms
