/// \file buffered_partitioner.hpp
/// \brief Buffered streaming partitioning in the style of HeiStream
///        (Faraj & Schulz, the paper's reference [13]) — the related-work
///        model the paper positions itself against: instead of deciding per
///        node, load a *buffer* of delta nodes, build a model graph that
///        represents the already-assigned rest of the graph by k fixed
///        super-nodes, optimize the buffer jointly, then commit.
///
/// This "lite" variant keeps HeiStream's model construction and its overall
/// O(m + n) complexity but replaces the inner multilevel engine with a
/// greedy placement + fixed-vertex label-propagation refinement. Its role in
/// this repository matches the paper's positioning: better cuts than the
/// strictly one-pass algorithms at higher (but k-independent) cost per node.
#pragma once

#include <cstdint>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/types.hpp"

namespace oms {

struct BufferedConfig {
  /// Nodes per buffer ("delta" in HeiStream). Larger buffers see more of the
  /// graph at once and cut fewer edges, at higher latency per decision.
  NodeId buffer_size = 4096;
  double epsilon = 0.03;
  std::uint64_t seed = 1;
  /// Label-propagation refinement rounds over each buffer model.
  int refinement_iterations = 3;
};

struct BufferedResult {
  std::vector<BlockId> assignment;
  double elapsed_s = 0.0;
  std::size_t buffers_processed = 0;
};

/// Partition \p graph into \p k balanced blocks by streaming it buffer by
/// buffer in node-id order. The returned partition satisfies the epsilon
/// balance constraint.
[[nodiscard]] BufferedResult buffered_partition(const CsrGraph& graph, BlockId k,
                                                const BufferedConfig& config);

} // namespace oms
