/// \file buffered_partitioner.hpp
/// \brief Buffered streaming partitioning in the style of HeiStream
///        (Faraj & Schulz, the paper's reference [13]) — the related-work
///        model the paper positions itself against: instead of deciding per
///        node, load a *buffer* of delta nodes, build a model graph that
///        represents the already-assigned rest of the graph by k fixed
///        super-nodes, optimize the buffer jointly, then commit.
///
/// This "lite" variant keeps HeiStream's model construction and its overall
/// O(m + n) complexity but replaces the inner multilevel engine with a
/// greedy placement + fixed-vertex label-propagation refinement. Its role in
/// this repository matches the paper's positioning: better cuts than the
/// strictly one-pass algorithms at higher (but k-independent) cost per node.
///
/// The core is a true streaming algorithm: BufferedPartitioner consumes
/// NodeBatch chunks (the pipelined disk reader's handoff unit) in stream
/// order and holds O(buffer + k) state beyond the assignment vector. Each
/// batch is materialized once into a reusable buffer-local model — a
/// contiguous intra-buffer CSR plus per-node super-edges aggregated by block
/// at build time — so the optimization loops never re-walk a raw
/// neighborhood. Refinement is an active-set sweep: only nodes whose
/// neighborhood changed are revisited, and it is deterministic (no RNG).
/// The in-memory buffered_partition() entry point and the disk-native driver
/// (stream/buffered_stream_driver.hpp) both run this core on identical
/// batches, so their partitions coincide bit for bit on the same node order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/stream/node_batch.hpp"
#include "oms/types.hpp"

namespace oms {

class BufferMultilevel;
class CheckpointReader;
class CheckpointWriter;
class SystemHierarchy;

/// Inner optimization engine run on each buffer-local model.
enum class BufferedEngine {
  /// Flat active-set label propagation (the "lite" default): fastest, and
  /// golden-pinned bit for bit across releases.
  kLp,
  /// HeiStream-proper: contract the model by LP clustering, partition the
  /// coarsest level best-of-seeds, project and refine back down. Better cuts
  /// (the buffer is optimized with a global view) at a few times the cost.
  kMultilevel,
};

struct BufferedConfig {
  /// Nodes per buffer ("delta" in HeiStream). Larger buffers see more of the
  /// graph at once and cut fewer edges, at higher latency per decision.
  NodeId buffer_size = 4096;
  double epsilon = 0.03;
  /// Seed for the multilevel engine's shuffled sweeps and BFS starts. The lp
  /// engine is deterministic (active-set, no RNG) and ignores it.
  std::uint64_t seed = 1;
  /// Refinement budget: the active set examines each buffer node at most
  /// this many times (total work thus bounded like that many full
  /// label-propagation sweeps, but the queue usually drains far earlier).
  int refinement_iterations = 3;
  BufferedEngine engine = BufferedEngine::kLp;
  /// Multilevel-engine knobs (engine == kMultilevel); see
  /// BufferMultilevelConfig for semantics.
  NodeId ml_coarse_floor = 128;
  int ml_coarsening_factor = 2;
  int ml_max_levels = 20;
  int ml_clustering_iterations = 1;
  int ml_initial_attempts = 3;
  int ml_refinement_iterations = 2;
  /// Optional process-mapping topology. When set (num_pes() must equal k),
  /// placement and refinement score block gains against the hierarchy's
  /// layer distances — buffered streaming then optimizes the paper's mapping
  /// objective J instead of plain edge cut. Not owned; must outlive the
  /// partitioner.
  const SystemHierarchy* hierarchy = nullptr;
};

struct BufferedResult {
  std::vector<BlockId> assignment;
  double elapsed_s = 0.0;
  std::size_t buffers_processed = 0;
};

/// Streaming core shared by the in-memory and disk-native entry points.
/// Feed buffers of consecutive stream nodes (ids must arrive in order,
/// starting at 0) via process_buffer(), then take_assignment().
class BufferedPartitioner {
public:
  BufferedPartitioner(NodeId num_nodes, NodeWeight total_node_weight, BlockId k,
                      const BufferedConfig& config);
  ~BufferedPartitioner(); // out of line: BufferMultilevel is incomplete here

  /// Jointly place and refine one buffer of nodes, then commit it. The batch
  /// must start at the next unseen node id; adjacency may reference any node
  /// (earlier = super-edges, in-buffer = model edges, future = ignored).
  void process_buffer(const NodeBatch& batch);

  /// Same, fed directly from an in-memory graph's adjacency spans (the
  /// buffered_partition() entry point) — identical arcs, identical result.
  void process_graph_range(const CsrGraph& graph, NodeId begin, NodeId end);

  [[nodiscard]] BlockId num_blocks() const noexcept { return k_; }
  [[nodiscard]] std::size_t buffers_processed() const noexcept {
    return buffers_processed_;
  }
  [[nodiscard]] NodeWeight max_block_weight() const noexcept { return lmax_; }

  /// Release the final assignment (the partitioner is done afterwards).
  [[nodiscard]] std::vector<BlockId> take_assignment();

  /// Checkpoint/resume at a buffer boundary (stream/checkpoint.hpp): the
  /// cross-buffer state is the assignment prefix, the block weights (the
  /// cached penalties are recomputed on load), buffers_processed_ (the
  /// multilevel engine's per-buffer RNG salt) and the engine's adaptive
  /// backoff. Everything else is per-buffer arena scratch.
  void save_stream_state(CheckpointWriter& w) const;
  void load_stream_state(CheckpointReader& r);

private:
  /// One fused pass per buffer node: walk the raw adjacency exactly once,
  /// aggregating committed neighbors (earlier buffers) into per-block
  /// super-edges and recording in-buffer arcs into the intra CSR — the
  /// buffer-local model — while the same walk feeds the greedy LDG-style
  /// initial placement. Refinement then runs on the model only; the raw
  /// adjacency is never revisited. LocalBlock is the compact in-buffer
  /// block-id type (uint16 whenever k fits, else uint32) so the refinement
  /// loop's random reads stay L1-resident.
  template <bool kUnit, typename LocalBlock, typename NodeAt>
  void build_and_place(std::vector<LocalBlock>& local, NodeId first_id,
                       std::uint32_t count, std::size_t arc_bound,
                       NodeAt&& node_at);

  /// Connection weight of local node \p i to every block it touches, from
  /// the model (super-edges + assigned in-buffer neighbors). Results are in
  /// gather_[b] for b in touched_.
  template <typename LocalBlock>
  void gather_connections(const std::vector<LocalBlock>& local, std::uint32_t i);

  /// Fixed-vertex label propagation over the buffer driven by an active-set
  /// queue: seeded with the nodes whose neighborhood was incomplete at
  /// placement time (they have in-buffer successors), a node re-enters only
  /// when an in-buffer neighbor moved, and no node is examined more than
  /// refinement_iterations times (the old sweep-count work bound).
  template <typename LocalBlock>
  void refine(std::vector<LocalBlock>& local);

  /// Hand the buffer-local model to the multilevel engine (widening the
  /// compact local blocks to BlockId and back); the engine updates
  /// block_weight_ directly, so the cached penalties are resynced after.
  template <typename LocalBlock>
  void refine_multilevel(std::vector<LocalBlock>& local);

  /// build_and_place + refine + one sequential flush of the buffer's blocks
  /// into the O(n) assignment.
  template <bool kUnit, typename LocalBlock, typename NodeAt>
  void run_buffer(std::vector<LocalBlock>& local, NodeId first_id,
                  std::uint32_t count, std::size_t arc_bound, NodeAt&& node_at);

  /// Pick the narrowest local block representation for this k and the
  /// weight specialization for this buffer.
  template <typename NodeAt>
  void dispatch_buffer(bool unit_weights, NodeId first_id, std::uint32_t count,
                       std::size_t arc_bound, NodeAt&& node_at);

  [[nodiscard]] BlockId lightest_block() const;
  void set_block_weight(BlockId b, NodeWeight w);

  BlockId k_;
  NodeWeight lmax_;
  int refinement_iterations_;
  BufferedEngine engine_;
  std::size_t buffers_processed_ = 0;
  std::unique_ptr<BufferMultilevel> ml_; // engine_ == kMultilevel only
  std::vector<BlockId> ml_part_;         // widened local blocks for ml_
  // Process-mapping state (empty when no hierarchy is configured): k*k
  // row-major block distances and their maximum, for J-aware gain scoring.
  std::vector<std::int64_t> dist_;
  std::int64_t dist_max_ = 0;
  std::vector<BlockId> assignment_;      // O(n): the output
  std::vector<NodeWeight> block_weight_; // O(k)
  std::vector<double> penalty_;          // O(k): 1 - w/Lmax, kept in sync

  // Buffer-local model graph; capacity is reused across buffers (arena).
  NodeId begin_ = 0;      // stream id of local node 0
  std::uint32_t size_ = 0;
  std::vector<std::uint32_t> intra_offset_; // size_+1: prefix into intra arrays
  std::vector<std::uint32_t> intra_target_; // local index of in-buffer neighbor
  std::vector<EdgeWeight> intra_weight_;
  std::vector<std::uint32_t> super_offset_; // size_+1: prefix into super arrays
  std::vector<BlockId> super_block_;        // aggregated block super-edges
  std::vector<EdgeWeight> super_weight_;
  std::vector<NodeWeight> node_weight_; // size_
  bool intra_unit_ = true; // all intra weights 1: gather skips the array

  // Gather + active-set scratch (arena, zero steady-state allocation).
  std::vector<EdgeWeight> gather_; // O(k), all-zero except touched_
  std::vector<BlockId> touched_;
  std::vector<std::uint32_t> queue_; // ring of local indices
  std::vector<std::uint8_t> in_queue_;
  std::vector<std::uint8_t> visits_left_; // per-node refinement budget
  std::vector<std::uint8_t> seed_;        // has in-buffer successors
  std::vector<std::uint16_t> local16_;    // in-buffer blocks, k <= 2^16
  std::vector<std::uint32_t> local32_;    // in-buffer blocks, larger k
};

/// Partition \p graph into \p k balanced blocks by streaming it buffer by
/// buffer in node-id order. The returned partition satisfies the epsilon
/// balance constraint and is identical to the disk-native driver's output on
/// the same stream.
[[nodiscard]] BufferedResult buffered_partition(const CsrGraph& graph, BlockId k,
                                                const BufferedConfig& config);

} // namespace oms
