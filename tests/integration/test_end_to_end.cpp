/// Integration tests: whole pipelines across modules, mirroring how the
/// paper's experiments actually run (graph -> stream -> algorithm -> metrics).
#include <gtest/gtest.h>

#include <cstdio>

#include "oms/benchlib/algorithms.hpp"
#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/metis_stream.hpp"

namespace oms {
namespace {

TEST(EndToEnd, DiskStreamingMatchesInMemoryForOms) {
  const CsrGraph g = gen::random_geometric(2000, 3);
  const std::string path = ::testing::TempDir() + "/oms_e2e.graph";
  write_metis(g, path);

  const SystemHierarchy topo = SystemHierarchy::parse("4:4", "1:10");
  OmsConfig config;

  OnlineMultisection mem(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  const StreamResult in_memory = run_one_pass(g, mem, 1);

  MetisNodeStream probe(path);
  OnlineMultisection disk(probe.header().num_nodes, probe.header().num_edges,
                          static_cast<NodeWeight>(probe.header().num_nodes), topo,
                          config);
  const StreamResult from_disk = run_one_pass_from_file(path, disk);

  EXPECT_EQ(in_memory.assignment, from_disk.assignment);
  std::remove(path.c_str());
}

TEST(EndToEnd, OmsMappingBeatsHierarchyObliviousFennel) {
  // The paper's headline mapping result (Fig. 2a): on hierarchy-friendly
  // inputs OMS produces better J than Fennel with identity block->PE mapping.
  const CsrGraph g = gen::random_geometric(8000, 71);
  const SystemHierarchy topo = bench::paper_topology(2); // k = 128

  bench::RunOptions options;
  options.repetitions = 2;
  options.topology = topo;
  const auto oms = bench::run_algorithm(bench::Algo::kOms, g, options);
  const auto fennel = bench::run_algorithm(bench::Algo::kFennel, g, options);
  const auto hashing = bench::run_algorithm(bench::Algo::kHashing, g, options);

  EXPECT_LT(oms.mapping_cost, fennel.mapping_cost);
  EXPECT_LT(fennel.mapping_cost, hashing.mapping_cost);
  EXPECT_TRUE(oms.balanced);
}

TEST(EndToEnd, NhOmsCutCompetitiveWithFennelAndFarBetterThanHashing) {
  // Fig. 2b shape: nh-OMS cuts slightly more than Fennel (paper: ~5% on
  // average) and far less than Hashing.
  const CsrGraph g = gen::grid_2d(80, 80);
  bench::RunOptions options;
  options.repetitions = 2;
  options.k_override = 64;
  const auto nh_oms = bench::run_algorithm(bench::Algo::kNhOms, g, options);
  const auto fennel = bench::run_algorithm(bench::Algo::kFennel, g, options);
  const auto hashing = bench::run_algorithm(bench::Algo::kHashing, g, options);

  EXPECT_LT(nh_oms.edge_cut, hashing.edge_cut / 2);
  EXPECT_LT(nh_oms.edge_cut, fennel.edge_cut * 2.0); // generous envelope
}

TEST(EndToEnd, KaMinParLiteDominatesStreamingQuality) {
  const CsrGraph g = gen::random_geometric(4000, 15);
  bench::RunOptions options;
  options.repetitions = 1;
  options.k_override = 32;
  const auto ml = bench::run_algorithm(bench::Algo::kKaMinParLite, g, options);
  const auto fennel = bench::run_algorithm(bench::Algo::kFennel, g, options);
  EXPECT_LT(ml.edge_cut, fennel.edge_cut);
  EXPECT_TRUE(ml.balanced);
}

TEST(EndToEnd, IntMapLiteBestMappingQuality) {
  const CsrGraph g = gen::random_geometric(3000, 19);
  bench::RunOptions options;
  options.repetitions = 1;
  options.topology = SystemHierarchy::parse("4:4:2", "1:10:100");
  const auto intmap = bench::run_algorithm(bench::Algo::kIntMapLite, g, options);
  const auto oms = bench::run_algorithm(bench::Algo::kOms, g, options);
  EXPECT_LT(intmap.mapping_cost, oms.mapping_cost);
  EXPECT_TRUE(intmap.balanced);
}

TEST(EndToEnd, WorkCounterShapesMatchComplexityClaims) {
  // Theorem 2 vs the flat O(m + nk): as k grows with fixed n and m, Fennel's
  // score evaluations grow linearly in k while OMS's grow ~ logarithmically.
  const CsrGraph g = gen::barabasi_albert(4000, 4, 9);
  bench::RunOptions options;
  options.repetitions = 1;

  std::uint64_t fennel_prev = 0;
  std::uint64_t oms_prev = 0;
  for (const BlockId k : {64, 256, 1024}) {
    options.k_override = k;
    const auto fennel = bench::run_algorithm(bench::Algo::kFennel, g, options);
    const auto nh_oms = bench::run_algorithm(bench::Algo::kNhOms, g, options);
    if (fennel_prev > 0) {
      // Fennel quadruples with k; OMS adds one more tree layer (b=4).
      EXPECT_NEAR(static_cast<double>(fennel.work.score_evaluations) /
                      static_cast<double>(fennel_prev),
                  4.0, 0.2);
      EXPECT_LT(static_cast<double>(nh_oms.work.score_evaluations) /
                    static_cast<double>(oms_prev),
                1.8);
    }
    fennel_prev = fennel.work.score_evaluations;
    oms_prev = nh_oms.work.score_evaluations;
  }
}

TEST(EndToEnd, StreamingStateIsTinyComparedToInMemory) {
  // Section 4.1's memory story: streaming state ~ O(n + k), internal-memory
  // algorithms hold whole graph copies.
  const CsrGraph g = gen::barabasi_albert(20000, 8, 5);
  bench::RunOptions options;
  options.repetitions = 1;
  options.k_override = 64;
  const auto nh_oms = bench::run_algorithm(bench::Algo::kNhOms, g, options);
  const auto ml = bench::run_algorithm(bench::Algo::kKaMinParLite, g, options);
  EXPECT_LT(nh_oms.state_bytes * 4, ml.state_bytes);
}

TEST(EndToEnd, PaperTopologyConvention) {
  const SystemHierarchy topo = bench::paper_topology(3);
  EXPECT_EQ(topo.num_pes(), 192); // 64 * 3
  EXPECT_EQ(topo.distance(0, 1), 1);
  EXPECT_EQ(topo.distance(0, 4), 10);
  EXPECT_EQ(topo.distance(0, 64), 100);
}

} // namespace
} // namespace oms
