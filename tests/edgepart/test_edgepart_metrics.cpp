/// \file test_edgepart_metrics.cpp
/// \brief Vertex-cut metrics: replication factor, replication overhead, edge
///        imbalance and hierarchical replica cost on hand-checked tiny
///        replica tables, plus a property test recomputing every metric from
///        scratch against a random partitioner run (honours OMS_TEST_SEED).
#include <gtest/gtest.h>

#include <vector>

#include "oms/edgepart/hdrf.hpp"
#include "oms/edgepart/driver.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/util/dense_bitset.hpp"
#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(BitsetTableTest, SetTestCountAndRanges) {
  BitsetTable table(130); // > 2 words per row
  table.ensure_rows(3);
  table.set(0, 0);
  table.set(0, 64);
  table.set(0, 129);
  table.set(2, 65);
  EXPECT_TRUE(table.test(0, 0));
  EXPECT_TRUE(table.test(0, 64));
  EXPECT_TRUE(table.test(0, 129));
  EXPECT_FALSE(table.test(0, 1));
  EXPECT_FALSE(table.test(1, 0));
  EXPECT_FALSE(table.test(99, 0)); // row beyond the table reads empty
  EXPECT_EQ(table.count_row(0), 3u);
  EXPECT_EQ(table.count_row(1), 0u);
  EXPECT_EQ(table.count_row(99), 0u);

  EXPECT_TRUE(table.any_in_range(0, 0, 1));
  EXPECT_FALSE(table.any_in_range(0, 1, 64));
  EXPECT_TRUE(table.any_in_range(0, 1, 65));
  EXPECT_TRUE(table.any_in_range(0, 100, 130));
  EXPECT_FALSE(table.any_in_range(0, 65, 129));
  EXPECT_FALSE(table.any_in_range(0, 64, 64)); // empty range
  EXPECT_TRUE(table.any_in_range(2, 0, 130));

  std::vector<BlockId> bits;
  table.for_each_set(0, [&](BlockId b) { bits.push_back(b); });
  EXPECT_EQ(bits, (std::vector<BlockId>{0, 64, 129}));

  // Growth preserves contents.
  table.ensure_rows(1000);
  EXPECT_TRUE(table.test(0, 129));
  EXPECT_TRUE(table.test(2, 65));
  EXPECT_EQ(table.count_row(999), 0u);
}

TEST(EdgePartMetrics, HandCheckedTinyTable) {
  // 4 vertices over k = 4: replica sets {0}, {0,1}, {1,2,3}, {} (vertex 3
  // never occurs).
  BitsetTable replicas(4);
  replicas.ensure_rows(4);
  replicas.set(0, 0);
  replicas.set(1, 0);
  replicas.set(1, 1);
  replicas.set(2, 1);
  replicas.set(2, 2);
  replicas.set(2, 3);

  // (1 + 2 + 3) replicas over 3 occurring vertices.
  EXPECT_DOUBLE_EQ(replication_factor(replicas), 2.0);
  EXPECT_EQ(replication_overhead(replicas), 3);

  // Hierarchy 2x2: PEs {0,1} share a level-1 module (d=1), crossing costs 5.
  const SystemHierarchy topo({2, 2}, {1, 5});
  // vertex 0: single replica, cost 0.
  // vertex 1: master 0, replica 1 -> distance(0,1) = 1.
  // vertex 2: master 1, replicas 2 and 3 -> distance(1,2) + distance(1,3)
  //           = 5 + 5.
  EXPECT_EQ(hierarchical_replica_cost(replicas, topo), 11);

  // With uniform distances d the cost is d * replication_overhead.
  const SystemHierarchy uniform({2, 2}, {7, 7});
  EXPECT_EQ(hierarchical_replica_cost(replicas, uniform),
            7 * replication_overhead(replicas));
}

TEST(EdgePartMetrics, EdgeImbalance) {
  EXPECT_DOUBLE_EQ(edge_imbalance(std::vector<EdgeWeight>{5, 5, 5, 5}), 0.0);
  // max 8 over perfect 5: 8/5 - 1.
  EXPECT_DOUBLE_EQ(edge_imbalance(std::vector<EdgeWeight>{8, 4, 4, 4}), 0.6);
  // All empty: defined as perfectly balanced.
  EXPECT_DOUBLE_EQ(edge_imbalance(std::vector<EdgeWeight>{0, 0}), 0.0);
  // One block holds everything of k = 4: 4x the perfect share.
  EXPECT_DOUBLE_EQ(edge_imbalance(std::vector<EdgeWeight>{12, 0, 0, 0}), 3.0);
}

TEST(EdgePartMetrics, EmptyTableIsZero) {
  BitsetTable replicas(8);
  EXPECT_DOUBLE_EQ(replication_factor(replicas), 0.0);
  EXPECT_EQ(replication_overhead(replicas), 0);
  const SystemHierarchy topo({8}, {3});
  EXPECT_EQ(hierarchical_replica_cost(replicas, topo), 0);
}

/// Property: every metric recomputed from the raw edge assignment matches
/// the partitioner-reported metrics exactly, for random streams.
TEST(EdgePartMetricsProperty, MatchesBruteForceRecount) {
  for (std::uint64_t draw = 0; draw < 8; ++draw) {
    Rng rng(testing::draw_seed(draw));
    const NodeId n = 20 + static_cast<NodeId>(rng.next_below(200));
    const std::size_t m = 30 + rng.next_below(800);
    const BlockId k = 2 + static_cast<BlockId>(rng.next_below(30));
    std::vector<StreamedEdge> edges;
    edges.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      StreamedEdge e;
      e.u = static_cast<NodeId>(rng.next_below(n));
      e.v = static_cast<NodeId>(rng.next_below(n));
      e.weight = 1 + static_cast<EdgeWeight>(rng.next_below(9));
      edges.push_back(e); // self-loops included: the driver must skip them
    }

    EdgePartConfig config;
    config.k = k;
    config.seed = testing::draw_seed(draw ^ 0xabcdULL);
    HdrfPartitioner partitioner(config);
    const auto result = run_edge_partition(edges, partitioner);

    // Brute-force recount from the per-edge assignment record.
    BitsetTable replicas(k);
    std::vector<EdgeWeight> loads(static_cast<std::size_t>(k), 0);
    std::size_t next_assigned = 0;
    EdgeIndex streamed = 0;
    EdgeIndex loops = 0;
    for (const StreamedEdge& e : edges) {
      if (e.u == e.v) {
        ++loops;
        continue;
      }
      const BlockId b = result.edge_assignment[next_assigned++];
      replicas.ensure_rows(static_cast<std::size_t>(std::max(e.u, e.v)) + 1);
      replicas.set(e.u, b);
      replicas.set(e.v, b);
      loads[static_cast<std::size_t>(b)] += e.weight;
      ++streamed;
    }
    ASSERT_EQ(next_assigned, result.edge_assignment.size());
    EXPECT_EQ(result.stats.num_edges, streamed);
    EXPECT_EQ(result.stats.self_loops_skipped, loops);

    EXPECT_DOUBLE_EQ(replication_factor(partitioner.replicas()),
                     replication_factor(replicas))
        << "draw " << draw;
    EXPECT_EQ(replication_overhead(partitioner.replicas()),
              replication_overhead(replicas));
    EXPECT_DOUBLE_EQ(edge_imbalance(partitioner.edge_loads()),
                     edge_imbalance(loads));
    const SystemHierarchy topo({k}, {2});
    EXPECT_EQ(hierarchical_replica_cost(partitioner.replicas(), topo),
              hierarchical_replica_cost(replicas, topo));
    EXPECT_EQ(hierarchical_replica_cost(replicas, topo),
              2 * replication_overhead(replicas));
  }
}

} // namespace
} // namespace oms
