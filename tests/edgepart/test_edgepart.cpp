/// \file test_edgepart.cpp
/// \brief The streaming vertex-cut partitioners: structural invariants
///        (replicas cover assignments, loads add up), determinism (golden
///        hashes pinned for a fixed seed), the grid replication bound, the
///        HDRF-beats-hashing quality contract on generated benchlib
///        instances, and the hierarchical HDRF replica-cost win.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "oms/benchlib/instances.hpp"
#include "oms/edgepart/dbh.hpp"
#include "oms/edgepart/driver.hpp"
#include "oms/edgepart/grid2d.hpp"
#include "oms/edgepart/hdrf.hpp"
#include "oms/edgepart/hierarchical_hdrf.hpp"
#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

/// Each undirected CSR edge once (u < v), in node order — the stream order
/// write_edge_list produces.
std::vector<StreamedEdge> edges_of(const CsrGraph& graph) {
  std::vector<StreamedEdge> edges;
  edges.reserve(graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const NodeId v : graph.neighbors(u)) {
      if (v > u) {
        edges.push_back(StreamedEdge{u, v, 1});
      }
    }
  }
  return edges;
}

std::uint64_t fnv1a(const std::vector<BlockId>& assignment) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const BlockId b : assignment) {
    hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Every edge's block must hold replicas of both endpoints, loads must add
/// up to the stream total, and the replica table must not claim blocks no
/// edge ever used.
void check_consistency(const std::vector<StreamedEdge>& edges,
                       const std::vector<BlockId>& assignment,
                       const StreamingEdgePartitioner& partitioner) {
  ASSERT_EQ(edges.size(), assignment.size());
  const BlockId k = partitioner.num_blocks();
  std::vector<EdgeWeight> loads(static_cast<std::size_t>(k), 0);
  BitsetTable expected(k);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const BlockId b = assignment[i];
    ASSERT_GE(b, 0);
    ASSERT_LT(b, k);
    loads[static_cast<std::size_t>(b)] += edges[i].weight;
    const std::size_t hi = std::max(edges[i].u, edges[i].v);
    expected.ensure_rows(hi + 1);
    expected.set(edges[i].u, b);
    expected.set(edges[i].v, b);
    EXPECT_TRUE(partitioner.replicas().test(edges[i].u, b));
    EXPECT_TRUE(partitioner.replicas().test(edges[i].v, b));
  }
  const auto actual_loads = partitioner.edge_loads();
  for (BlockId b = 0; b < k; ++b) {
    EXPECT_EQ(actual_loads[static_cast<std::size_t>(b)],
              loads[static_cast<std::size_t>(b)]);
  }
  // Replica table == brute-force recount (no spurious replicas).
  for (std::size_t row = 0; row < expected.num_rows(); ++row) {
    for (BlockId b = 0; b < k; ++b) {
      EXPECT_EQ(partitioner.replicas().test(row, b), expected.test(row, b))
          << "vertex " << row << " block " << b;
    }
  }
}

TEST(EdgePartitioners, StructuralInvariants) {
  const CsrGraph graph = gen::barabasi_albert(600, 4, 11);
  const auto edges = edges_of(graph);
  EdgePartConfig config;
  config.k = 8;

  {
    HdrfPartitioner hdrf(config);
    auto result = run_edge_partition(edges, hdrf);
    EXPECT_EQ(result.stats.num_edges, edges.size());
    check_consistency(edges, result.edge_assignment, hdrf);
  }
  {
    DbhPartitioner dbh(config);
    auto result = run_edge_partition(edges, dbh);
    check_consistency(edges, result.edge_assignment, dbh);
  }
  {
    Grid2dPartitioner grid(config);
    auto result = run_edge_partition(edges, grid);
    check_consistency(edges, result.edge_assignment, grid);
  }
  {
    const SystemHierarchy topo({2, 4}, {1, 10});
    HierarchicalHdrfPartitioner hier(topo, config);
    EXPECT_EQ(hier.num_blocks(), 8);
    auto result = run_edge_partition(edges, hier);
    check_consistency(edges, result.edge_assignment, hier);
  }
}

// Golden hashes: the assignments are deterministic functions of (stream,
// seed). A change here is a behavior change of the algorithms and must be
// deliberate (re-pin the constants and say why in the commit).
TEST(EdgePartitioners, DeterministicGoldenHashes) {
  const CsrGraph graph = gen::barabasi_albert(2000, 5, 42);
  const auto edges = edges_of(graph);
  EdgePartConfig config;
  config.k = 32;
  config.seed = 7;

  HdrfPartitioner hdrf(config);
  DbhPartitioner dbh(config);
  Grid2dPartitioner grid(config);
  const SystemHierarchy topo({4, 8}, {1, 10});
  HierarchicalHdrfPartitioner hier(topo, config);

  const std::uint64_t hdrf_hash = fnv1a(run_edge_partition(edges, hdrf).edge_assignment);
  const std::uint64_t dbh_hash = fnv1a(run_edge_partition(edges, dbh).edge_assignment);
  const std::uint64_t grid_hash = fnv1a(run_edge_partition(edges, grid).edge_assignment);
  const std::uint64_t hier_hash = fnv1a(run_edge_partition(edges, hier).edge_assignment);

  // Re-running with fresh instances must reproduce bit-for-bit.
  HdrfPartitioner hdrf2(config);
  EXPECT_EQ(fnv1a(run_edge_partition(edges, hdrf2).edge_assignment), hdrf_hash);

  EXPECT_EQ(hdrf_hash, UINT64_C(13916820886605075696));
  EXPECT_EQ(dbh_hash, UINT64_C(1438274005582894611));
  EXPECT_EQ(grid_hash, UINT64_C(1648501044873963081));
  EXPECT_EQ(hier_hash, UINT64_C(6094589065741919468));
}

TEST(EdgePartitioners, DifferentSeedMovesTheHashingAlgorithms) {
  const CsrGraph graph = gen::barabasi_albert(500, 4, 3);
  const auto edges = edges_of(graph);
  EdgePartConfig a;
  a.k = 16;
  a.seed = 1;
  EdgePartConfig b = a;
  b.seed = 2;

  DbhPartitioner dbh_a(a);
  DbhPartitioner dbh_b(b);
  EXPECT_NE(run_edge_partition(edges, dbh_a).edge_assignment,
            run_edge_partition(edges, dbh_b).edge_assignment);
  Grid2dPartitioner grid_a(a);
  Grid2dPartitioner grid_b(b);
  EXPECT_NE(run_edge_partition(edges, grid_a).edge_assignment,
            run_edge_partition(edges, grid_b).edge_assignment);
}

TEST(EdgePartitioners, GridReplicationBound) {
  // Grid constraint sets cap every vertex at rows + cols - 1 replicas.
  const CsrGraph graph = gen::barabasi_albert(800, 6, 5);
  const auto edges = edges_of(graph);
  EdgePartConfig config;
  config.k = 16;
  Grid2dPartitioner grid(config);
  EXPECT_EQ(grid.grid_rows() * grid.grid_cols(), 16);
  (void)run_edge_partition(edges, grid);
  const auto bound = static_cast<std::uint32_t>(grid.grid_rows() +
                                                grid.grid_cols() - 1);
  for (std::size_t row = 0; row < grid.replicas().num_rows(); ++row) {
    EXPECT_LE(grid.replicas().count_row(row), bound) << "vertex " << row;
  }
}

// The quality contract of the acceptance criteria: on the generated
// benchlib instances HDRF's replication factor beats the hashing baselines
// (allowing a small tolerance — HDRF is a heuristic, not a bound).
TEST(EdgePartitioners, HdrfBeatsDbhAndGridOnBenchlibInstances) {
  const BlockId k = 32;
  for (const char* name : {"social-ba", "web-rmat", "citations-ba"}) {
    const auto spec = bench::instance_by_name(bench::Scale::kSmall, name);
    const CsrGraph graph = spec.make();
    const auto edges = edges_of(graph);
    EdgePartConfig config;
    config.k = k;

    HdrfPartitioner hdrf(config);
    DbhPartitioner dbh(config);
    Grid2dPartitioner grid(config);
    (void)run_edge_partition(edges, hdrf);
    (void)run_edge_partition(edges, dbh);
    (void)run_edge_partition(edges, grid);

    const double rf_hdrf = replication_factor(hdrf.replicas());
    const double rf_dbh = replication_factor(dbh.replicas());
    const double rf_grid = replication_factor(grid.replicas());
    EXPECT_LE(rf_hdrf, rf_dbh * 1.02) << name;
    EXPECT_LE(rf_hdrf, rf_grid * 1.02) << name;
    // And it must stay a usable partition, not one giant block.
    EXPECT_LT(edge_imbalance(hdrf.edge_loads()), 1.0) << name;
  }
}

TEST(EdgePartitioners, HierarchicalHdrfLowersReplicaCost) {
  // On a hierarchy with strongly non-uniform distances, scoring replicas
  // against the multisection tree must lower the distance-weighted replica
  // cost. The fair baseline is the *hierarchy-blind* variant under the same
  // per-layer balance regime: a one-level hierarchy over the same k blocks
  // (plain HDRF would instead buy low cost with unbounded imbalance, which
  // confounds the comparison).
  const SystemHierarchy topo({4, 4, 4}, {1, 10, 100});
  const SystemHierarchy flat_topo({topo.num_pes()}, {1});
  const CsrGraph graph = gen::barabasi_albert(4000, 6, 9);
  const auto edges = edges_of(graph);
  EdgePartConfig config;
  config.k = topo.num_pes();

  HierarchicalHdrfPartitioner flat(flat_topo, config);
  HierarchicalHdrfPartitioner hier(topo, config);
  (void)run_edge_partition(edges, flat);
  (void)run_edge_partition(edges, hier);

  const Cost flat_cost = hierarchical_replica_cost(flat.replicas(), topo);
  const Cost hier_cost = hierarchical_replica_cost(hier.replicas(), topo);
  EXPECT_LT(hier_cost, flat_cost);
  // Both respect the layered balance cap, so the comparison is apples to
  // apples on load as well.
  EXPECT_LT(edge_imbalance(hier.edge_loads()), 0.5);
  EXPECT_LT(edge_imbalance(flat.edge_loads()), 0.5);
  // The trade stays sane: replication factor within 2x of the blind run.
  EXPECT_LE(replication_factor(hier.replicas()),
            2.0 * replication_factor(flat.replicas()));
}

} // namespace
} // namespace oms
