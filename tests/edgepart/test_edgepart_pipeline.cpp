/// \file test_edgepart_pipeline.cpp
/// \brief The pipelined edge-stream driver: bit-identical output to the
///        sequential stream across batch/ring geometries, parity with the
///        in-memory driver, and IoError surfacing from the producer thread
///        without deadlocking the pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "oms/edgepart/dbh.hpp"
#include "oms/edgepart/driver.hpp"
#include "oms/edgepart/hdrf.hpp"
#include "oms/edgepart/hierarchical_hdrf.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(EdgePartPipeline, BitIdenticalToSequentialAcrossGeometries) {
  const CsrGraph graph = gen::barabasi_albert(3000, 5, 17);
  const std::string path = temp_path("oms_ep_pipe.edgelist");
  write_edge_list(graph, path);

  EdgePartConfig config;
  config.k = 16;
  HdrfPartitioner sequential(config);
  const auto expected = run_edge_partition_from_file(path, sequential);
  ASSERT_EQ(expected.stats.num_edges, graph.num_edges());
  ASSERT_EQ(expected.stats.num_vertices, graph.num_nodes());

  struct Geometry {
    std::size_t batch_edges;
    std::size_t ring;
  };
  for (const Geometry geo : {Geometry{1, 1}, Geometry{7, 2}, Geometry{1024, 4},
                             Geometry{1u << 20, 3}}) {
    PipelineConfig pipeline;
    pipeline.batch_nodes = geo.batch_edges;
    pipeline.ring_batches = geo.ring;
    HdrfPartitioner partitioner(config);
    const auto result = run_edge_partition_from_file(path, partitioner, pipeline);
    EXPECT_EQ(result.edge_assignment, expected.edge_assignment)
        << "batch=" << geo.batch_edges << " ring=" << geo.ring;
    EXPECT_EQ(result.stats.num_edges, expected.stats.num_edges);
    EXPECT_EQ(result.stats.num_vertices, expected.stats.num_vertices);
  }
  std::remove(path.c_str());
}

TEST(EdgePartPipeline, HierarchicalPartitionerPipelinesIdentically) {
  const CsrGraph graph = gen::barabasi_albert(2000, 4, 23);
  const std::string path = temp_path("oms_ep_pipe_hier.edgelist");
  write_edge_list(graph, path);

  const SystemHierarchy topo({4, 4}, {1, 10});
  EdgePartConfig config;
  HierarchicalHdrfPartitioner sequential(topo, config);
  const auto expected = run_edge_partition_from_file(path, sequential);

  PipelineConfig pipeline;
  pipeline.batch_nodes = 256;
  HierarchicalHdrfPartitioner pipelined(topo, config);
  const auto result = run_edge_partition_from_file(path, pipelined, pipeline);
  EXPECT_EQ(result.edge_assignment, expected.edge_assignment);
  std::remove(path.c_str());
}

TEST(EdgePartPipeline, FileDriverMatchesInMemoryDriver) {
  const CsrGraph graph = gen::barabasi_albert(1500, 4, 29);
  const std::string path = temp_path("oms_ep_mem.edgelist");
  write_edge_list(graph, path);

  std::vector<StreamedEdge> edges;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const NodeId v : graph.neighbors(u)) {
      if (v > u) {
        edges.push_back(StreamedEdge{u, v, 1});
      }
    }
  }

  EdgePartConfig config;
  config.k = 8;
  config.seed = 5;
  DbhPartitioner from_memory(config);
  DbhPartitioner from_file(config);
  const auto mem = run_edge_partition(edges, from_memory);
  const auto file = run_edge_partition_from_file(path, from_file);
  EXPECT_EQ(mem.edge_assignment, file.edge_assignment);
  EXPECT_EQ(mem.stats.num_edges, file.stats.num_edges);
  EXPECT_EQ(mem.stats.num_vertices, file.stats.num_vertices);
  std::remove(path.c_str());
}

TEST(EdgePartPipeline, IoErrorFromProducerSurfacesWithoutDeadlock) {
  const std::string path = temp_path("oms_ep_pipe_err.edgelist");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  // Enough valid edges to fill several batches, then garbage.
  for (int i = 0; i < 5000; ++i) {
    std::fprintf(f, "%d %d\n", i % 97, i % 89 + 97);
  }
  std::fprintf(f, "broken line\n");
  std::fclose(f);

  EdgePartConfig config;
  config.k = 4;
  for (const std::size_t batch : {std::size_t{16}, std::size_t{4096}}) {
    PipelineConfig pipeline;
    pipeline.batch_nodes = batch;
    HdrfPartitioner partitioner(config);
    EXPECT_THROW(
        { (void)run_edge_partition_from_file(path, partitioner, pipeline); },
        IoError);
  }
  std::remove(path.c_str());
}

TEST(EdgePartPipeline, EmptyStreamRaisesThroughThePipeline) {
  const std::string path = temp_path("oms_ep_pipe_empty.edgelist");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("# comments only\n", f);
  std::fclose(f);

  EdgePartConfig config;
  config.k = 4;
  PipelineConfig pipeline;
  HdrfPartitioner partitioner(config);
  EXPECT_THROW(
      { (void)run_edge_partition_from_file(path, partitioner, pipeline); },
      IoError);
  std::remove(path.c_str());
}

} // namespace
} // namespace oms
