/// \file test_edge_stream.cpp
/// \brief EdgeListStream: SNAP-style parsing (comments, whitespace, optional
///        weights, self-loop skipping, missing trailing newline), the
///        fill_batch chunk-handoff parity, rewind(), and the IoError channel
///        for malformed content.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "oms/stream/edge_list_stream.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

std::vector<StreamedEdge> drain(EdgeListStream& stream) {
  std::vector<StreamedEdge> edges;
  StreamedEdge edge;
  while (stream.next(edge)) {
    edges.push_back(edge);
  }
  return edges;
}

TEST(EdgeListStream, ParsesPlainEdges) {
  const std::string path = temp_path("oms_es_plain.edgelist");
  write_text(path, "0 1\n1 2\n2 0\n");
  EdgeListStream stream(path);
  const auto edges = drain(stream);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].u, 0u);
  EXPECT_EQ(edges[0].v, 1u);
  EXPECT_EQ(edges[0].weight, 1);
  EXPECT_EQ(edges[2].u, 2u);
  EXPECT_EQ(edges[2].v, 0u);
  EXPECT_EQ(stream.edges_delivered(), 3u);
  EXPECT_EQ(stream.max_vertex_id(), 2u);
  EXPECT_EQ(stream.self_loops_skipped(), 0u);
  std::remove(path.c_str());
}

TEST(EdgeListStream, SkipsCommentsBlanksAndSelfLoops) {
  const std::string path = temp_path("oms_es_comments.edgelist");
  write_text(path,
             "# SNAP-style header comment\n"
             "# NodeId\tNodeId\n"
             "\n"
             "0\t1\n"
             "3 3\n"
             "  \t \n"
             "2 4\n");
  EdgeListStream stream(path);
  const auto edges = drain(stream);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].u, 0u);
  EXPECT_EQ(edges[0].v, 1u);
  EXPECT_EQ(edges[1].u, 2u);
  EXPECT_EQ(edges[1].v, 4u);
  EXPECT_EQ(stream.self_loops_skipped(), 1u);
  EXPECT_EQ(stream.max_vertex_id(), 4u);
  std::remove(path.c_str());
}

TEST(EdgeListStream, ParsesWeightsAndMissingTrailingNewline) {
  const std::string path = temp_path("oms_es_weights.edgelist");
  write_text(path, "0 1 7\n1 2 3\n2 3 9"); // no trailing newline
  EdgeListStream stream(path);
  const auto edges = drain(stream);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].weight, 7);
  EXPECT_EQ(edges[1].weight, 3);
  EXPECT_EQ(edges[2].weight, 9);
  std::remove(path.c_str());
}

TEST(EdgeListStream, TinyBufferExercisesRefillSeams) {
  // A 64-byte buffer (the minimum) forces many memmove+refill steps.
  const std::string path = temp_path("oms_es_tiny.edgelist");
  std::string text = "# comment line that is longer than the tiny buffer size\n";
  for (int i = 0; i < 200; ++i) {
    text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  }
  write_text(path, text);
  EdgeListStream stream(path, 1);
  const auto edges = drain(stream);
  ASSERT_EQ(edges.size(), 200u);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(edges[i].u, static_cast<NodeId>(i));
    EXPECT_EQ(edges[i].v, static_cast<NodeId>(i + 1));
  }
  std::remove(path.c_str());
}

TEST(EdgeListStream, FillBatchMatchesNext) {
  const std::string path = temp_path("oms_es_batch.edgelist");
  std::string text;
  for (int i = 0; i < 97; ++i) {
    text += std::to_string(i % 13) + " " + std::to_string(i % 7 + 13) + "\n";
  }
  write_text(path, text);

  EdgeListStream seq(path);
  const auto expected = drain(seq);

  for (const std::size_t batch_size : {1u, 7u, 64u, 1000u}) {
    EdgeListStream stream(path);
    EdgeBatch batch;
    std::vector<StreamedEdge> got;
    while (stream.fill_batch(batch, batch_size) > 0) {
      EXPECT_LE(batch.size(), batch_size);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        got.push_back(batch.edge(i));
      }
    }
    ASSERT_EQ(got.size(), expected.size()) << "batch size " << batch_size;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].u, expected[i].u);
      EXPECT_EQ(got[i].v, expected[i].v);
      EXPECT_EQ(got[i].weight, expected[i].weight);
    }
  }
  std::remove(path.c_str());
}

TEST(EdgeListStream, RewindReplaysTheStream) {
  const std::string path = temp_path("oms_es_rewind.edgelist");
  write_text(path, "# header\n0 1\n1 2\n4 4\n2 3\n");
  EdgeListStream stream(path);
  const auto first = drain(stream);
  stream.rewind();
  EXPECT_EQ(stream.edges_delivered(), 0u);
  const auto second = drain(stream);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].u, second[i].u);
    EXPECT_EQ(first[i].v, second[i].v);
  }
  EXPECT_EQ(stream.self_loops_skipped(), 1u);
  std::remove(path.c_str());
}

// IoError channel: malformed *content* must raise, not abort.

TEST(EdgeListStreamError, UnopenablePath) {
  EXPECT_THROW(EdgeListStream("/nonexistent/definitely_not_here.edgelist"),
               IoError);
}

TEST(EdgeListStreamError, NonNumericEndpoint) {
  const std::string path = temp_path("oms_es_garbage.edgelist");
  write_text(path, "0 1\n2 xyz\n");
  EdgeListStream stream(path);
  StreamedEdge edge;
  ASSERT_TRUE(stream.next(edge));
  EXPECT_THROW(stream.next(edge), IoError);
  std::remove(path.c_str());
}

TEST(EdgeListStreamError, TruncatedLastLine) {
  const std::string path = temp_path("oms_es_trunc.edgelist");
  write_text(path, "0 1\n2"); // last line lost its second endpoint
  EdgeListStream stream(path);
  StreamedEdge edge;
  ASSERT_TRUE(stream.next(edge));
  EXPECT_THROW(stream.next(edge), IoError);
  std::remove(path.c_str());
}

TEST(EdgeListStreamError, EmptyFileAndCommentOnlyFile) {
  for (const char* text : {"", "# nothing here\n# at all\n", "3 3\n5 5\n"}) {
    const std::string path = temp_path("oms_es_empty.edgelist");
    write_text(path, text);
    EdgeListStream stream(path);
    StreamedEdge edge;
    EXPECT_THROW(stream.next(edge), IoError) << "text: '" << text << "'";
    std::remove(path.c_str());
  }
}

TEST(EdgeListStreamError, TrailingTokensAndBadWeight) {
  {
    const std::string path = temp_path("oms_es_trail.edgelist");
    write_text(path, "0 1 2 3\n");
    EdgeListStream stream(path);
    StreamedEdge edge;
    EXPECT_THROW(stream.next(edge), IoError);
    std::remove(path.c_str());
  }
  {
    const std::string path = temp_path("oms_es_badw.edgelist");
    write_text(path, "0 1 0\n");
    EdgeListStream stream(path);
    StreamedEdge edge;
    EXPECT_THROW(stream.next(edge), IoError);
    std::remove(path.c_str());
  }
  {
    const std::string path = temp_path("oms_es_negid.edgelist");
    write_text(path, "-1 4\n");
    EdgeListStream stream(path);
    StreamedEdge edge;
    EXPECT_THROW(stream.next(edge), IoError);
    std::remove(path.c_str());
  }
}

TEST(EdgeListStreamError, MessageCarriesFileAndLine) {
  const std::string path = temp_path("oms_es_lineno.edgelist");
  write_text(path, "# comment\n0 1\nbad line\n");
  EdgeListStream stream(path);
  StreamedEdge edge;
  ASSERT_TRUE(stream.next(edge));
  try {
    (void)stream.next(edge);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":3:"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

} // namespace
} // namespace oms
