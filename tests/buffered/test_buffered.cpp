#include "oms/buffered/buffered_partitioner.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(Buffered, AssignsEveryNodeBalanced) {
  const CsrGraph g = gen::random_geometric(3000, 5);
  for (const BlockId k : {2, 8, 32, 100}) {
    BufferedConfig config;
    const BufferedResult r = buffered_partition(g, k, config);
    verify_partition(g, r.assignment, k);
    EXPECT_TRUE(is_balanced(g, r.assignment, k, config.epsilon)) << "k=" << k;
  }
}

TEST(Buffered, BufferCountMatchesCeilDivision) {
  const CsrGraph g = testing::path_graph(1000);
  BufferedConfig config;
  config.buffer_size = 300;
  const BufferedResult r = buffered_partition(g, 4, config);
  EXPECT_EQ(r.buffers_processed, 4u); // ceil(1000 / 300)
}

TEST(Buffered, WholeGraphBufferEqualsOfflineQualityRegime) {
  // With one buffer spanning the whole graph the model sees everything and
  // the joint optimization must beat one-pass Fennel on a locality-friendly
  // instance.
  const CsrGraph g = gen::grid_2d(50, 50);
  BufferedConfig config;
  config.buffer_size = g.num_nodes();
  config.refinement_iterations = 8;
  const BufferedResult buffered = buffered_partition(g, 8, config);

  PartitionConfig pc;
  pc.k = 8;
  FennelPartitioner fennel(g.num_nodes(), g.num_edges(), g.total_node_weight(), pc);
  const StreamResult one_pass = run_one_pass(g, fennel, 1);

  EXPECT_LT(edge_cut(g, buffered.assignment), edge_cut(g, one_pass.assignment));
}

TEST(Buffered, LargerBuffersDoNotHurtMuch) {
  // Quality should be weakly improving (statistically) with buffer size;
  // assert the generous direction: the largest buffer beats the tiniest.
  const CsrGraph g = gen::random_geometric(4000, 9);
  const BlockId k = 16;
  BufferedConfig tiny;
  tiny.buffer_size = 16;
  BufferedConfig large;
  large.buffer_size = 4000;
  const Cost tiny_cut = edge_cut(g, buffered_partition(g, k, tiny).assignment);
  const Cost large_cut = edge_cut(g, buffered_partition(g, k, large).assignment);
  EXPECT_LT(large_cut, tiny_cut);
}

TEST(Buffered, DeterministicForFixedSeed) {
  const CsrGraph g = gen::barabasi_albert(1500, 3, 7);
  BufferedConfig config;
  config.seed = 99;
  const BufferedResult a = buffered_partition(g, 8, config);
  const BufferedResult b = buffered_partition(g, 8, config);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Buffered, KeepsCliquesTogether) {
  // The buffer sees a whole clique at once, so unlike one-pass Fennel with
  // standard alpha (see test_fennel.cpp) it reconstructs the obvious optimum.
  const CsrGraph g = testing::two_cliques_bridge(10);
  BufferedConfig config;
  config.buffer_size = 20;
  config.refinement_iterations = 10;
  const BufferedResult r = buffered_partition(g, 2, config);
  EXPECT_EQ(edge_cut(g, r.assignment), 1);
}

TEST(Buffered, SingleBlockDegenerate) {
  const CsrGraph g = testing::cycle_graph(64);
  BufferedConfig config;
  const BufferedResult r = buffered_partition(g, 1, config);
  for (const BlockId b : r.assignment) {
    EXPECT_EQ(b, 0);
  }
}

} // namespace
} // namespace oms
