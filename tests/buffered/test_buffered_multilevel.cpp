/// \file test_buffered_multilevel.cpp
/// \brief The multilevel inner engine of the buffered core: parity across all
///        three entry points (in-memory, disk-sequential, disk-pipelined),
///        validity/balance, degenerate inputs, per-buffer never-worse
///        behavior against the greedy placement, and a golden re-pin proving
///        the default lp engine is untouched by the engine plumbing.
#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/buffered_stream_driver.hpp"
#include "tests/test_support.hpp"

#include <cstdio>
#include <fstream>
#include <string>

namespace oms {
namespace {

using testing::fnv1a;

class TempMetisFile {
public:
  explicit TempMetisFile(const CsrGraph& graph, const std::string& tag) {
    path_ = ::testing::TempDir() + "/oms_buffered_ml_" + tag + ".graph";
    write_metis(graph, path_);
  }
  ~TempMetisFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
};

[[nodiscard]] BufferedConfig multilevel_config(NodeId buffer_size = 4096) {
  BufferedConfig config;
  config.engine = BufferedEngine::kMultilevel;
  config.buffer_size = buffer_size;
  return config;
}

TEST(BufferedMultilevel, DiskMatchesInMemorySequentialAndPipelined) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  const CsrGraph grid = gen::grid_2d(60, 60);
  const struct {
    const CsrGraph* graph;
    const char* tag;
  } cases[] = {{&ba, "ba"}, {&grid, "grid"}};
  for (const auto& c : cases) {
    const TempMetisFile file(*c.graph, c.tag);
    for (const NodeId buffer : {64u, 1000u, 8192u}) {
      const BufferedConfig config = multilevel_config(buffer);
      const BufferedResult memory = buffered_partition(*c.graph, 24, config);
      const BufferedResult disk =
          buffered_partition_from_file(file.path(), 24, config);
      const BufferedResult pipelined =
          buffered_partition_from_file(file.path(), 24, config, PipelineConfig{});
      EXPECT_EQ(memory.assignment, disk.assignment)
          << c.tag << " buffer=" << buffer;
      EXPECT_EQ(memory.assignment, pipelined.assignment)
          << c.tag << " buffer=" << buffer << " (pipelined)";
    }
  }
}

TEST(BufferedMultilevel, PartitionIsValidAndBalanced) {
  const CsrGraph g = gen::random_geometric(2500, 5);
  for (const NodeId buffer : {300u, 4096u}) {
    const BufferedResult r =
        buffered_partition(g, 12, multilevel_config(buffer));
    verify_partition(g, r.assignment, 12);
    EXPECT_TRUE(is_balanced(g, r.assignment, 12, 0.03)) << "buffer=" << buffer;
  }
}

TEST(BufferedMultilevel, NeverWorseThanLpOnCoherentStream) {
  // A mesh streamed in row-major order: the regime the multilevel engine is
  // for. The per-buffer never-worse guarantee (the engine falls back to the
  // greedy placement when its own result loses under the model objective)
  // plus coarsening's global view must show up as a cut no worse than lp's.
  const CsrGraph g = gen::grid_2d(80, 80);
  BufferedConfig lp_config;
  lp_config.buffer_size = 1600;
  const BufferedResult lp = buffered_partition(g, 16, lp_config);
  const BufferedResult ml = buffered_partition(g, 16, multilevel_config(1600));
  EXPECT_LE(edge_cut(g, ml.assignment), edge_cut(g, lp.assignment));
}

TEST(BufferedMultilevel, DeterministicAcrossRuns) {
  const CsrGraph g = gen::random_geometric(3000, 9);
  const BufferedResult a = buffered_partition(g, 16, multilevel_config(512));
  const BufferedResult b = buffered_partition(g, 16, multilevel_config(512));
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(BufferedMultilevel, DegenerateInputs) {
  // k == 1: everything lands in block 0; the engine must not roll its RNG on
  // empty or trivial buffers.
  const CsrGraph path = testing::path_graph(100);
  const BufferedResult k1 = buffered_partition(path, 1, multilevel_config(16));
  for (const BlockId b : k1.assignment) {
    EXPECT_EQ(b, 0);
  }
  // Singleton buffers: every buffer model is a single node with no intra
  // edges (coarsening and refinement are both vacuous).
  const BufferedResult single = buffered_partition(path, 4, multilevel_config(1));
  verify_partition(path, single.assignment, 4);
  // More blocks than nodes in a buffer.
  const CsrGraph tiny = testing::cycle_graph(30);
  const BufferedResult wide = buffered_partition(tiny, 10, multilevel_config(3));
  verify_partition(tiny, wide.assignment, 10);
}

TEST(BufferedMultilevel, HierarchyParityAcrossEntryPoints) {
  // J-aware commits must stay bit-identical across entry points too (the
  // distance matrix only changes the gain arithmetic, not the data flow).
  const SystemHierarchy topo = SystemHierarchy::parse("4:3:2", "1:10:100");
  const CsrGraph g = gen::barabasi_albert(4000, 4, 3);
  const TempMetisFile file(g, "topo");
  BufferedConfig config = multilevel_config(1000);
  config.hierarchy = &topo;
  const BufferedResult memory = buffered_partition(g, topo.num_pes(), config);
  const BufferedResult disk =
      buffered_partition_from_file(file.path(), topo.num_pes(), config);
  const BufferedResult pipelined = buffered_partition_from_file(
      file.path(), topo.num_pes(), config, PipelineConfig{});
  EXPECT_EQ(memory.assignment, disk.assignment);
  EXPECT_EQ(memory.assignment, pipelined.assignment);
  verify_partition(g, memory.assignment, topo.num_pes());
}

// ---------------------------------------------------------------------------
// The lp engine must be bit-for-bit unaffected by the engine plumbing: an
// explicit engine=kLp config reproduces the golden hash pinned (pre-engine-
// flag) in test_buffered_stream.cpp. If this fails while BufferedGolden
// passes, the BufferedConfig defaults and the explicit lp path diverged.
// ---------------------------------------------------------------------------

TEST(BufferedMultilevel, ExplicitLpEngineReproducesPinnedGolden) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  BufferedConfig config;
  config.engine = BufferedEngine::kLp;
  EXPECT_EQ(fnv1a(buffered_partition(ba, 24, config).assignment),
            0xcc49cbb6a1fc4da2ULL);
}

} // namespace
} // namespace oms
