/// \file test_buffered_stream.cpp
/// \brief The disk-native buffered driver: parity against the in-memory
///        entry point (sequential and pipelined), IoError propagation from
///        mid-buffer parse failures (no deadlock), and golden hashes pinning
///        the buffered algorithm's output bit-for-bit.
#include "oms/stream/buffered_stream_driver.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/util/io_error.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

using testing::fnv1a;

class TempMetisFile {
public:
  explicit TempMetisFile(const CsrGraph& graph, const std::string& tag) {
    path_ = ::testing::TempDir() + "/oms_buffered_stream_" + tag + ".graph";
    write_metis(graph, path_);
  }
  explicit TempMetisFile(const std::string& contents, const std::string& tag) {
    path_ = ::testing::TempDir() + "/oms_buffered_stream_" + tag + ".graph";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempMetisFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
};

TEST(BufferedStream, DiskMatchesInMemorySequentialAndPipelined) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  const CsrGraph grid = gen::grid_2d(60, 60);
  const struct {
    const CsrGraph* graph;
    const char* tag;
  } cases[] = {{&ba, "ba"}, {&grid, "grid"}};
  for (const auto& c : cases) {
    const TempMetisFile file(*c.graph, c.tag);
    for (const NodeId buffer : {64u, 1000u, 8192u}) {
      BufferedConfig config;
      config.buffer_size = buffer;
      const BufferedResult memory = buffered_partition(*c.graph, 24, config);
      const BufferedResult disk =
          buffered_partition_from_file(file.path(), 24, config);
      const BufferedResult pipelined =
          buffered_partition_from_file(file.path(), 24, config, PipelineConfig{});
      EXPECT_EQ(memory.assignment, disk.assignment)
          << c.tag << " buffer=" << buffer;
      EXPECT_EQ(memory.assignment, pipelined.assignment)
          << c.tag << " buffer=" << buffer << " (pipelined)";
      EXPECT_EQ(memory.buffers_processed, disk.buffers_processed);
      EXPECT_EQ(memory.buffers_processed, pipelined.buffers_processed);
    }
  }
}

TEST(BufferedStream, PipelinedParityAcrossRingDepths) {
  const CsrGraph g = gen::random_geometric(3000, 5);
  const TempMetisFile file(g, "ring");
  BufferedConfig config;
  config.buffer_size = 256;
  const BufferedResult memory = buffered_partition(g, 16, config);
  for (const std::size_t ring : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    PipelineConfig pipeline;
    pipeline.ring_batches = ring;
    const BufferedResult r =
        buffered_partition_from_file(file.path(), 16, config, pipeline);
    EXPECT_EQ(memory.assignment, r.assignment) << "ring=" << ring;
  }
}

TEST(BufferedStream, PartitionIsValidAndBalanced) {
  const CsrGraph g = gen::random_geometric(2500, 5);
  const TempMetisFile file(g, "balance");
  BufferedConfig config;
  config.buffer_size = 300;
  const BufferedResult r = buffered_partition_from_file(file.path(), 12, config);
  verify_partition(g, r.assignment, 12);
  EXPECT_TRUE(is_balanced(g, r.assignment, 12, config.epsilon));
}

TEST(BufferedStream, BufferCountMatchesCeilDivision) {
  const CsrGraph g = testing::path_graph(1000);
  const TempMetisFile file(g, "ceil");
  BufferedConfig config;
  config.buffer_size = 300;
  const BufferedResult r = buffered_partition_from_file(file.path(), 4, config);
  EXPECT_EQ(r.buffers_processed, 4u); // ceil(1000 / 300)
}

/// A malformed token in the middle of the stream — after several buffers
/// already committed — must surface as IoError from both drivers, with every
/// pipeline thread joined first (the test finishing at all proves no
/// deadlock; the pipelined driver's reader thread hits the error while the
/// consumer is mid-buffer).
TEST(BufferedStream, IoErrorMidBufferPropagates) {
  std::string contents = "1000 999\n";
  for (int u = 1; u <= 1000; ++u) {
    if (u == 600) {
      contents += "not_a_number\n";
      continue;
    }
    // Path graph, 1-based ids.
    if (u > 1) {
      contents += std::to_string(u - 1) + " ";
    }
    if (u < 1000) {
      contents += std::to_string(u + 1);
    }
    contents += "\n";
  }
  const TempMetisFile file(contents, "midbuffer");
  BufferedConfig config;
  config.buffer_size = 128; // the error lands in the 5th buffer
  EXPECT_THROW((void)buffered_partition_from_file(file.path(), 4, config),
               IoError);
  EXPECT_THROW(
      (void)buffered_partition_from_file(file.path(), 4, config, PipelineConfig{}),
      IoError);
}

TEST(BufferedStream, IoErrorOutOfRangeNeighbor) {
  const TempMetisFile file("3 2\n2\n1 9\n2\n", "range");
  BufferedConfig config;
  EXPECT_THROW((void)buffered_partition_from_file(file.path(), 2, config),
               IoError);
  EXPECT_THROW(
      (void)buffered_partition_from_file(file.path(), 2, config, PipelineConfig{}),
      IoError);
}

TEST(BufferedStream, RejectsNodeWeightedFiles) {
  // fmt = 10: node weights present. The balance bound needs the total node
  // weight before the pass, which the header cannot provide.
  const TempMetisFile file("2 1 10\n5 2\n7 1\n", "weighted");
  BufferedConfig config;
  EXPECT_THROW((void)buffered_partition_from_file(file.path(), 2, config),
               IoError);
  EXPECT_THROW(
      (void)buffered_partition_from_file(file.path(), 2, config, PipelineConfig{}),
      IoError);
}

TEST(BufferedStream, EmptyGraphYieldsEmptyAssignment) {
  const TempMetisFile file("0 0\n", "empty");
  BufferedConfig config;
  const BufferedResult r = buffered_partition_from_file(file.path(), 4, config);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_EQ(r.buffers_processed, 0u);
}

// ---------------------------------------------------------------------------
// Golden hashes: FNV-1a fingerprints of the buffered algorithm's output
// (recorded from this implementation — fused model build + active-set
// refinement). The disk driver must reproduce them through the full
// write_metis -> fill_batch round trip. Regenerate only for *intentional*
// algorithm changes.
// ---------------------------------------------------------------------------

TEST(BufferedGolden, DefaultsOnBarabasiAlbert) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  BufferedConfig config;
  const std::uint64_t memory_hash = fnv1a(buffered_partition(ba, 24, config).assignment);
  EXPECT_EQ(memory_hash, 0xcc49cbb6a1fc4da2ULL);
  const TempMetisFile file(ba, "golden_ba");
  EXPECT_EQ(fnv1a(buffered_partition_from_file(file.path(), 24, config).assignment),
            memory_hash);
}

TEST(BufferedGolden, SmallBuffersManyBlocksOnGrid) {
  const CsrGraph grid = gen::grid_2d(60, 60);
  BufferedConfig config;
  config.buffer_size = 500;
  config.refinement_iterations = 8;
  const std::uint64_t memory_hash =
      fnv1a(buffered_partition(grid, 100, config).assignment);
  EXPECT_EQ(memory_hash, 0x62efabc147806dc0ULL);
  const TempMetisFile file(grid, "golden_grid");
  EXPECT_EQ(
      fnv1a(buffered_partition_from_file(file.path(), 100, config).assignment),
      memory_hash);
}

} // namespace
} // namespace oms
