/// Randomized invariant sweep ("fuzz light"): random graphs x random valid
/// configurations, all invariants must hold on every draw. Seeds derive from
/// oms::testing::test_seed() (fixed unless OMS_TEST_SEED is set), so failures
/// reproduce exactly.
#include <gtest/gtest.h>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

class OmsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OmsFuzz, InvariantsHoldOnRandomConfigurations) {
  SCOPED_TRACE("OMS_TEST_SEED=" + std::to_string(oms::testing::test_seed()));
  Rng rng(oms::testing::draw_seed(static_cast<std::uint64_t>(GetParam())));

  // Random graph from a random family.
  CsrGraph graph = [&]() -> CsrGraph {
    const auto n = static_cast<NodeId>(500 + rng.next_below(3000));
    switch (rng.next_below(4)) {
      case 0: return gen::erdos_renyi(n, n * 4, rng());
      case 1: return gen::barabasi_albert(n, 3, rng());
      case 2: return gen::random_geometric(n, rng());
      default: return gen::watts_strogatz(n, 4, 0.2, rng());
    }
  }();

  OmsConfig config;
  config.epsilon = 0.02 + rng.next_double() * 0.2;
  config.seed = rng();
  config.base = static_cast<int>(2 + rng.next_below(7));
  config.scorer = rng.next_bool(0.5) ? ScorerKind::kFennel : ScorerKind::kLdg;
  config.adapted_alpha = rng.next_bool(0.5);
  if (rng.next_bool(0.3)) {
    config.quality_layers = static_cast<int>(rng.next_below(4));
  }
  const auto k = static_cast<BlockId>(2 + rng.next_below(300));
  const int threads = rng.next_bool(0.5) ? 1 : static_cast<int>(2 + rng.next_below(7));

  OnlineMultisection oms(graph.num_nodes(), graph.num_edges(),
                         graph.total_node_weight(), k, config);
  // Structural tree invariants hold for every random (k, base) draw.
  const auto& tree = oms.tree();
  EXPECT_EQ(tree.num_final_blocks(), k);
  EXPECT_LE(tree.num_non_root_blocks(), 2 * static_cast<std::size_t>(k));

  const StreamResult r = run_one_pass(graph, oms, threads);
  verify_partition(graph, r.assignment, k);
  // Sequential runs must meet epsilon exactly. Parallel runs can overshoot a
  // block only while several threads pass the capacity check concurrently
  // (paper Section 3.4 accepts this), which is bounded by one extra node per
  // other thread: weight <= Lmax + (threads - 1) * max node weight.
  const NodeWeight lmax =
      max_block_weight(graph.total_node_weight(), k, config.epsilon);
  const NodeWeight allowed = lmax + (threads - 1); // unit node weights here
  for (const NodeWeight w : block_weights_of(graph, r.assignment, k)) {
    EXPECT_LE(w, allowed) << "k=" << k << " base=" << config.base
                          << " eps=" << config.epsilon << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Draws, OmsFuzz, ::testing::Range(0, 24),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "draw" + std::to_string(param_info.param);
                         });

} // namespace
} // namespace oms
