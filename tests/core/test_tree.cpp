#include "oms/core/multisection_tree.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace oms {
namespace {

/// Collect leaves left-to-right and verify they partition [0, k).
void expect_leaves_partition_range(const MultisectionTree& tree) {
  std::vector<bool> covered(static_cast<std::size_t>(tree.num_final_blocks()), false);
  for (std::size_t id = 0; id < tree.num_blocks(); ++id) {
    const auto& block = tree.block(id);
    EXPECT_LE(block.leaf_begin, block.leaf_end);
    if (block.is_leaf()) {
      ASSERT_EQ(block.num_leaves(), 1);
      EXPECT_FALSE(covered[static_cast<std::size_t>(block.leaf_begin)]);
      covered[static_cast<std::size_t>(block.leaf_begin)] = true;
    }
  }
  for (const bool c : covered) {
    EXPECT_TRUE(c);
  }
}

/// Children ranges must tile the parent range exactly.
void expect_children_tile_parents(const MultisectionTree& tree) {
  for (std::size_t id = 0; id < tree.num_blocks(); ++id) {
    const auto& block = tree.block(id);
    if (block.is_leaf()) {
      continue;
    }
    BlockId cursor = block.leaf_begin;
    for (std::int32_t c = 0; c < block.num_children; ++c) {
      const auto& child = tree.block(static_cast<std::size_t>(block.first_child + c));
      EXPECT_EQ(child.parent, static_cast<std::int32_t>(id));
      EXPECT_EQ(child.leaf_begin, cursor);
      EXPECT_EQ(child.depth, block.depth + 1);
      cursor = child.leaf_end;
    }
    EXPECT_EQ(cursor, block.leaf_end);
  }
}

TEST(RegularTree, PaperHierarchyShape) {
  // S = 4:16:2 top-down is (2, 16, 4): root -> 2 -> 32 -> 128 leaves.
  const std::array<std::int64_t, 3> extents{2, 16, 4};
  const MultisectionTree tree = MultisectionTree::regular(extents);
  EXPECT_EQ(tree.num_final_blocks(), 128);
  EXPECT_EQ(tree.height(), 3);
  // 1 root + 2 + 32 + 128.
  EXPECT_EQ(tree.num_blocks(), 1u + 2u + 32u + 128u);
  expect_leaves_partition_range(tree);
  expect_children_tile_parents(tree);
}

TEST(RegularTree, Lemma1BlockBound) {
  // With all extents >= 2, non-root blocks number at most 2k.
  const std::vector<std::vector<std::int64_t>> hierarchies = {
      {2, 2, 2, 2}, {4, 4, 4}, {2, 16, 4}, {8, 8}, {3, 3, 3, 3}, {2, 3, 4, 5}};
  for (const auto& extents : hierarchies) {
    const MultisectionTree tree = MultisectionTree::regular(extents);
    const auto k = static_cast<std::size_t>(tree.num_final_blocks());
    EXPECT_LE(tree.num_non_root_blocks(), 2 * k)
        << "extents size " << extents.size();
  }
}

TEST(RegularTree, ExtentOneCreatesPassThroughLayer) {
  const std::array<std::int64_t, 3> extents{1, 16, 4}; // S = 4:16:1
  const MultisectionTree tree = MultisectionTree::regular(extents);
  EXPECT_EQ(tree.num_final_blocks(), 64);
  EXPECT_EQ(tree.root().num_children, 1);
  expect_children_tile_parents(tree);
}

TEST(RegularTree, SingleBlockDegenerate) {
  const std::array<std::int64_t, 1> extents{1};
  const MultisectionTree tree = MultisectionTree::regular(extents);
  EXPECT_EQ(tree.num_final_blocks(), 1);
  // A 1-leaf root is itself a leaf: no descent needed at all.
  EXPECT_TRUE(tree.root().is_leaf());
}

TEST(BSection, PaperExampleKFive) {
  // Section 3.3: k = 5, b = 2 -> the first subproblem's blocks cover 3 and 2
  // final blocks with capacities 3*Lmax and 2*Lmax.
  MultisectionTree tree = MultisectionTree::b_section(5, 2);
  ASSERT_EQ(tree.root().num_children, 2);
  const auto& left = tree.block(1);
  const auto& right = tree.block(2);
  EXPECT_EQ(left.num_leaves(), 3);
  EXPECT_EQ(right.num_leaves(), 2);

  tree.finalize(/*lmax=*/100, /*alpha_global=*/1.0, /*adapted=*/true);
  EXPECT_EQ(tree.block(1).capacity, 300);
  EXPECT_EQ(tree.block(2).capacity, 200);
  // alpha scales with 1/sqrt(t).
  EXPECT_NEAR(tree.block(1).alpha, 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(tree.block(2).alpha, 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(BSection, PowerOfBaseGivesUniformTree) {
  const MultisectionTree tree = MultisectionTree::b_section(64, 4);
  EXPECT_EQ(tree.height(), 3); // 4^3 = 64
  EXPECT_EQ(tree.num_blocks(), 1u + 4u + 16u + 64u);
  expect_leaves_partition_range(tree);
  expect_children_tile_parents(tree);
}

TEST(BSection, ArbitraryKSweepInvariants) {
  for (const int base : {2, 3, 4, 8}) {
    for (const BlockId k : {1, 2, 3, 5, 7, 12, 13, 64, 100, 127, 128, 129, 1000}) {
      const MultisectionTree tree = MultisectionTree::b_section(k, base);
      EXPECT_EQ(tree.num_final_blocks(), k);
      expect_leaves_partition_range(tree);
      expect_children_tile_parents(tree);
      // Height bound of Theorem 4: ceil(log_b k) (+1 slack for uneven splits).
      const double logbk =
          std::log(static_cast<double>(k)) / std::log(static_cast<double>(base));
      EXPECT_LE(tree.height(), static_cast<std::int32_t>(std::ceil(logbk)) + 1)
          << "k=" << k << " base=" << base;
      // O(k) space (Lemma 1 analogue for b-sections).
      EXPECT_LE(tree.num_non_root_blocks(), 2 * static_cast<std::size_t>(std::max(k, 1)))
          << "k=" << k << " base=" << base;
    }
  }
}

TEST(BSection, MidpointSplitMatchesAlgorithm2) {
  // BuildHierarchy splits {kL..kR} at floor((kL+kR)/2); with 0-based ranges
  // that is "larger half first". Check a couple of hand-computed cases.
  const MultisectionTree t7 = MultisectionTree::b_section(7, 2);
  EXPECT_EQ(t7.block(1).num_leaves(), 4); // {0..3}
  EXPECT_EQ(t7.block(2).num_leaves(), 3); // {4..6}

  const MultisectionTree t3 = MultisectionTree::b_section(3, 2);
  EXPECT_EQ(t3.block(1).num_leaves(), 2);
  EXPECT_EQ(t3.block(2).num_leaves(), 1);
}

TEST(ChildIndexOfLeaf, MatchesLinearScanEverywhere) {
  for (const int base : {2, 3, 4, 5}) {
    for (const BlockId k : {5, 17, 64, 100}) {
      const MultisectionTree tree = MultisectionTree::b_section(k, base);
      for (std::size_t id = 0; id < tree.num_blocks(); ++id) {
        const auto& parent = tree.block(id);
        if (parent.is_leaf()) {
          continue;
        }
        for (BlockId leaf = parent.leaf_begin; leaf < parent.leaf_end; ++leaf) {
          // Reference: scan children ranges.
          std::int32_t expected = -1;
          for (std::int32_t c = 0; c < parent.num_children; ++c) {
            const auto& child =
                tree.block(static_cast<std::size_t>(parent.first_child + c));
            if (leaf >= child.leaf_begin && leaf < child.leaf_end) {
              expected = c;
              break;
            }
          }
          EXPECT_EQ(tree.child_index_of_leaf(parent, leaf), expected)
              << "k=" << k << " base=" << base << " leaf=" << leaf;
        }
      }
    }
  }
}

TEST(LeafBlockId, DescendsToTheRightLeaf) {
  const MultisectionTree tree = MultisectionTree::b_section(37, 3);
  for (BlockId leaf = 0; leaf < 37; ++leaf) {
    const auto id = tree.leaf_block_id(leaf);
    EXPECT_TRUE(tree.block(id).is_leaf());
    EXPECT_EQ(tree.block(id).leaf_begin, leaf);
  }
}

TEST(Finalize, VanillaAlphaIsUniform) {
  MultisectionTree tree = MultisectionTree::b_section(8, 2);
  tree.finalize(10, 0.7, /*adapted=*/false);
  for (std::size_t id = 0; id < tree.num_blocks(); ++id) {
    EXPECT_DOUBLE_EQ(tree.block(id).alpha, 0.7);
  }
}

TEST(Finalize, AdaptedAlphaMatchesLayerFormula) {
  // For a regular hierarchy, alpha_i = alpha / sqrt(prod_{r<i} a_r); with
  // t = number of leaves below the block, that is alpha / sqrt(t).
  const std::array<std::int64_t, 3> extents{2, 4, 8}; // k = 64
  MultisectionTree tree = MultisectionTree::regular(extents);
  tree.finalize(1, 2.0, /*adapted=*/true);
  for (std::size_t id = 0; id < tree.num_blocks(); ++id) {
    const auto& block = tree.block(id);
    EXPECT_NEAR(block.alpha,
                2.0 / std::sqrt(static_cast<double>(block.num_leaves())), 1e-12);
  }
}

TEST(RegularTreeDeath, IndivisibleHierarchyRejected) {
  const std::array<std::int64_t, 2> bad{3, 2};
  // This *is* divisible (k=6, layers 3 then 2); craft a truly bad case by
  // asking for depth beyond the hierarchy: impossible through the public
  // API, so instead check extents must be >= 1.
  const std::array<std::int64_t, 2> zero{0, 2};
  EXPECT_DEATH((void)MultisectionTree::regular(zero), ">= 1");
  (void)bad;
}

TEST(BSectionDeath, BaseOneRejected) {
  EXPECT_DEATH((void)MultisectionTree::b_section(8, 1), "base >= 2");
}

} // namespace
} // namespace oms
