/// \file test_golden_equivalence.cpp
/// \brief Regression wall for the streaming hot-path optimizations: the
///        sequential assignments must stay bit-identical to the seed
///        algorithm, across scorers and modes.
///
/// Two layers of protection:
///  * golden hashes — FNV-1a fingerprints of the assignment vectors produced
///    by the *seed* implementation (recorded before the shrinking-frontier
///    descent, per-block penalty constants, fast-mod and sqrt cache landed).
///    Any scoring or tie-break drift changes a fingerprint.
///  * online/offline equivalence — the optimized single-pass descent must
///    still match the l-pass offline reference exactly (paper Section 3.1),
///    and a multi-threaded pass must stay covered and balanced within the
///    overshoot bound of Section 3.4.
#include "oms/core/online_multisection.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "oms/graph/generators.hpp"
#include "oms/graph/graph_builder.hpp"
#include "oms/graph/io.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/stream/pipeline.hpp"
#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

using testing::fnv1a;

/// Deterministic weighted multigraph-free graph with non-unit node and edge
/// weights (the descent must be exact for weighted capacities too).
[[nodiscard]] CsrGraph weighted_graph() {
  Rng rng(777);
  const NodeId n = 1200;
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    builder.set_node_weight(u, 1 + static_cast<NodeWeight>(rng.next_below(5)));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (int d = 0; d < 4; ++d) {
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (v != u) {
        builder.add_edge(u, v, 1 + static_cast<EdgeWeight>(rng.next_below(9)));
      }
    }
  }
  return std::move(builder).build();
}

[[nodiscard]] std::uint64_t oms_hash(const CsrGraph& g, const OmsConfig& config,
                                     BlockId k) {
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                         config);
  return fnv1a(run_one_pass(g, oms, 1).assignment);
}

[[nodiscard]] std::uint64_t oms_hash(const CsrGraph& g, const OmsConfig& config,
                                     const SystemHierarchy& topo) {
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  return fnv1a(run_one_pass(g, oms, 1).assignment);
}

// Fingerprints recorded from the seed implementation (commit 7945fdd tree,
// Release build). Regenerate only for *intentional* algorithm changes.
TEST(GoldenEquivalence, NhOmsFennelDefaults) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  EXPECT_EQ(oms_hash(ba, OmsConfig{}, BlockId{24}), 0xdf5910a0b8af5c66ULL);
}

TEST(GoldenEquivalence, NhOmsLdgBase3) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  OmsConfig config;
  config.scorer = ScorerKind::kLdg;
  config.base = 3;
  EXPECT_EQ(oms_hash(ba, config, BlockId{100}), 0x5ba5138edca06d51ULL);
}

TEST(GoldenEquivalence, NhOmsVanillaAlphaBase2) {
  const CsrGraph grid = gen::grid_2d(60, 60);
  OmsConfig config;
  config.adapted_alpha = false;
  config.base = 2;
  EXPECT_EQ(oms_hash(grid, config, BlockId{37}), 0x3748baaf71245b0cULL);
}

TEST(GoldenEquivalence, NhOmsLargeK) {
  const CsrGraph big = gen::barabasi_albert(1 << 13, 6, 7);
  EXPECT_EQ(oms_hash(big, OmsConfig{}, BlockId{4096}), 0xc04e5fdbbdc6bb31ULL);
}

TEST(GoldenEquivalence, NhOmsWeightedGraph) {
  EXPECT_EQ(oms_hash(weighted_graph(), OmsConfig{}, BlockId{24}),
            0x28366b7513619939ULL);
}

TEST(GoldenEquivalence, OmsHybridMapping) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  OmsConfig config;
  config.quality_layers = 1;
  EXPECT_EQ(oms_hash(ba, config, SystemHierarchy::parse("4:16:2", "1:10:100")),
            0x7ac180a2471a1e66ULL);
}

TEST(GoldenEquivalence, OmsAllHashedMapping) {
  const CsrGraph grid = gen::grid_2d(60, 60);
  OmsConfig config;
  config.quality_layers = 0;
  config.seed = 99;
  EXPECT_EQ(oms_hash(grid, config, SystemHierarchy::parse("4:4:4", "1:10:100")),
            0x32b86c4f33c7c75bULL);
}

TEST(GoldenEquivalence, OmsFennelWeightedMapping) {
  EXPECT_EQ(oms_hash(weighted_graph(), OmsConfig{},
                     SystemHierarchy::parse("4:16:2", "1:10:100")),
            0x18f8feb794389b1cULL);
}

TEST(GoldenEquivalence, FlatFennel) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  PartitionConfig pc;
  pc.k = 96;
  FennelPartitioner fennel(ba.num_nodes(), ba.num_edges(), ba.total_node_weight(),
                           pc);
  EXPECT_EQ(fnv1a(run_one_pass(ba, fennel, 1).assignment), 0x2d45a97b4c53b8eeULL);
}

TEST(GoldenEquivalence, FlatLdg) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  PartitionConfig pc;
  pc.k = 33;
  LdgPartitioner ldg(ba.num_nodes(), ba.total_node_weight(), pc);
  EXPECT_EQ(fnv1a(run_one_pass(ba, ldg, 1).assignment), 0xee67e2db8124ef7dULL);
}

TEST(GoldenEquivalence, FlatHashing) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  PartitionConfig pc;
  pc.k = 77;
  pc.seed = 5;
  HashingPartitioner hashing(ba.num_nodes(), ba.total_node_weight(), pc);
  EXPECT_EQ(fnv1a(run_one_pass(ba, hashing, 1).assignment), 0x33d0cc2987716cf5ULL);
}

// ---------------------------------------------------------------------------
// Pipelined disk path: the producer/consumer driver with one assign thread
// must reproduce the *same* golden fingerprints through the full round trip
// write_metis -> parse-ahead batches -> assignment. Parse-ahead reorders
// work, never decisions.
// ---------------------------------------------------------------------------

[[nodiscard]] std::uint64_t pipelined_hash(const CsrGraph& g, OnePassAssigner& a,
                                           std::size_t batch_nodes) {
  const std::string path =
      ::testing::TempDir() + "/oms_golden_pipeline_" + std::to_string(batch_nodes) +
      ".graph";
  write_metis(g, path);
  PipelineConfig config;
  config.assign_threads = 1;
  config.batch_nodes = batch_nodes;
  const std::uint64_t h = fnv1a(run_one_pass_from_file(path, a, config).assignment);
  std::remove(path.c_str());
  return h;
}

TEST(GoldenEquivalence, PipelinedNhOmsFennelDefaults) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  for (const std::size_t batch : {std::size_t{64}, std::size_t{4096}}) {
    OnlineMultisection oms(ba.num_nodes(), ba.num_edges(), ba.total_node_weight(),
                           BlockId{24}, OmsConfig{});
    EXPECT_EQ(pipelined_hash(ba, oms, batch), 0xdf5910a0b8af5c66ULL)
        << "batch=" << batch;
  }
}

TEST(GoldenEquivalence, PipelinedNhOmsWeightedGraph) {
  // Non-unit node and edge weights cross the batch handoff too.
  const CsrGraph g = weighted_graph();
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                         BlockId{24}, OmsConfig{});
  EXPECT_EQ(pipelined_hash(g, oms, 256), 0x28366b7513619939ULL);
}

TEST(GoldenEquivalence, PipelinedFlatFennel) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  PartitionConfig pc;
  pc.k = 96;
  FennelPartitioner fennel(ba.num_nodes(), ba.num_edges(), ba.total_node_weight(),
                           pc);
  EXPECT_EQ(pipelined_hash(ba, fennel, 512), 0x2d45a97b4c53b8eeULL);
}

TEST(GoldenEquivalence, PipelinedOmsHybridMapping) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  OmsConfig config;
  config.quality_layers = 1;
  OnlineMultisection oms(ba.num_nodes(), ba.num_edges(), ba.total_node_weight(),
                         SystemHierarchy::parse("4:16:2", "1:10:100"), config);
  EXPECT_EQ(pipelined_hash(ba, oms, 1024), 0x7ac180a2471a1e66ULL);
}

// ---------------------------------------------------------------------------
// Online == offline across every scorer the descent supports, on a graph and
// k chosen to exercise heterogeneous child ranges (k not a base power).
// ---------------------------------------------------------------------------

class GoldenOnlineOffline : public ::testing::TestWithParam<int> {};

TEST_P(GoldenOnlineOffline, MatchesOfflineMultipass) {
  const CsrGraph g = gen::barabasi_albert(3000, 4, 29);
  OmsConfig config;
  switch (GetParam()) {
    case 0: break;                                   // Fennel, adapted alpha
    case 1: config.scorer = ScorerKind::kLdg; break; // LDG
    case 2: config.quality_layers = 2; break;        // hybrid: scored top, hashed below
    default: config.quality_layers = 0; break;       // pure hashing
  }
  OnlineMultisection online(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                            BlockId{88}, config);
  const std::vector<BlockId> a = run_one_pass(g, online, 1).assignment;
  OnlineMultisection reference(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                               BlockId{88}, config);
  EXPECT_EQ(a, reference.run_offline_multipass(g));
}

std::string scorer_case_name(const ::testing::TestParamInfo<int>& info) {
  static constexpr const char* kNames[] = {"fennel", "ldg", "hybrid", "hashing"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Scorers, GoldenOnlineOffline, ::testing::Values(0, 1, 2, 3),
                         scorer_case_name);

// ---------------------------------------------------------------------------
// Multi-threaded one-pass invariants: full coverage and the Section 3.4
// overshoot bound — a block can exceed its capacity only while several
// threads race one capacity check, so by at most (threads - 1) max-weight
// nodes plus whatever the all-full fallback adds; bound both with slack.
// ---------------------------------------------------------------------------

TEST(GoldenEquivalence, ParallelRunIsCoveredAndBalanced) {
  const CsrGraph g = gen::barabasi_albert(30000, 5, 17);
  const BlockId k = 64;
  for (const int threads : {2, 4, 8}) {
    for (const std::size_t chunk_size : {std::size_t{0}, std::size_t{1024}}) {
      OmsConfig config;
      OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                             config);
      const StreamResult r = run_one_pass(g, oms, threads, chunk_size);
      verify_partition(g, r.assignment, k);

      const NodeWeight lmax =
          max_block_weight(g.total_node_weight(), k, config.epsilon);
      NodeWeight max_node_weight = 1;
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        max_node_weight = std::max(max_node_weight, g.node_weight(u));
      }
      const auto cap = block_weights_of(g, r.assignment, k);
      for (BlockId b = 0; b < k; ++b) {
        EXPECT_LE(cap[static_cast<std::size_t>(b)],
                  lmax + threads * max_node_weight)
            << "block " << b << " overshot beyond the parallel bound (threads="
            << threads << ", chunk=" << chunk_size << ")";
      }
    }
  }
}

} // namespace
} // namespace oms
