#include "oms/core/online_multisection.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "oms/graph/generators.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

OmsConfig default_config() {
  OmsConfig config;
  config.epsilon = 0.03;
  config.seed = 1;
  return config;
}

TEST(Oms, AssignsEveryNodeWithinRange) {
  const CsrGraph g = gen::grid_2d(30, 30);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:2", "1:10:100");
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         default_config());
  const StreamResult r = run_one_pass(g, oms, 1);
  verify_partition(g, r.assignment, topo.num_pes());
}

TEST(Oms, RespectsBalanceAcrossHierarchies) {
  const CsrGraph g = gen::barabasi_albert(4000, 4, 21);
  for (const char* extents : {"2:2", "4:4", "4:16:2", "2:2:2:2", "8:4", "4:16:1"}) {
    const SystemHierarchy topo =
        SystemHierarchy::parse(extents, std::string(extents)); // distances unused here
    OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                           default_config());
    const StreamResult r = run_one_pass(g, oms, 1);
    verify_partition(g, r.assignment, topo.num_pes());
    EXPECT_TRUE(is_balanced(g, r.assignment, topo.num_pes(), 0.03))
        << "S=" << extents;
  }
}

TEST(NhOms, RespectsBalanceAcrossKSweep) {
  const CsrGraph g = gen::random_geometric(4000, 9);
  for (const BlockId k : {2, 3, 5, 7, 13, 64, 100, 128, 500}) {
    OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                           default_config());
    const StreamResult r = run_one_pass(g, oms, 1);
    verify_partition(g, r.assignment, k);
    EXPECT_TRUE(is_balanced(g, r.assignment, k, 0.03)) << "k=" << k;
  }
}

TEST(Oms, TreeWeightsAreConsistentAfterRun) {
  // Leaf weights must equal the block weights of the final assignment, and
  // every internal block's weight must equal the sum of its children.
  const CsrGraph g = gen::rmat(11, 4, 33);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:4", "1:10:100");
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         default_config());
  const StreamResult r = run_one_pass(g, oms, 1);

  const auto block_weights = block_weights_of(g, r.assignment, topo.num_pes());
  const auto& tree = oms.tree();
  for (std::size_t id = 0; id < tree.num_blocks(); ++id) {
    const auto& block = tree.block(id);
    if (block.is_leaf()) {
      EXPECT_EQ(oms.tree_block_weight(id),
                block_weights[static_cast<std::size_t>(block.leaf_begin)]);
    } else if (block.parent >= 0) { // root weight is never tracked
      NodeWeight child_sum = 0;
      for (std::int32_t c = 0; c < block.num_children; ++c) {
        child_sum += oms.tree_block_weight(
            static_cast<std::size_t>(block.first_child + c));
      }
      EXPECT_EQ(oms.tree_block_weight(id), child_sum);
    }
  }
}

TEST(Oms, KeepsCliquesTogetherInHierarchy) {
  // 4 cliques -> hierarchy 2:2 (4 PEs): each clique should land on one PE and
  // adjacent cliques (which share a bridge) should prefer nearby PEs. Dense
  // toy cliques sit outside the standard alpha calibration (see the Fennel
  // toy tests), so pin alpha into the follow-neighbors-but-respect-capacity
  // window.
  const CsrGraph g = testing::clique_chain(4, 8);
  const SystemHierarchy topo = SystemHierarchy::parse("2:2", "1:10");
  OmsConfig config = default_config();
  config.alpha_override = 0.3;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  const StreamResult r = run_one_pass(g, oms, 1);
  for (NodeId c = 0; c < 4; ++c) {
    for (NodeId u = 1; u < 8; ++u) {
      EXPECT_EQ(r.assignment[c * 8 + u], r.assignment[c * 8])
          << "clique " << c << " split";
    }
  }
  EXPECT_TRUE(is_balanced(g, r.assignment, 4, 0.03));
}

TEST(Oms, HybridLayersReduceScoringWork) {
  const CsrGraph g = gen::barabasi_albert(3000, 4, 5);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:4", "1:10:100");

  OmsConfig full = default_config();
  OnlineMultisection oms_full(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                              topo, full);
  const StreamResult r_full = run_one_pass(g, oms_full, 1);

  OmsConfig hybrid = default_config();
  hybrid.quality_layers = 1; // only the top layer scored, rest hashed
  OnlineMultisection oms_hybrid(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                                topo, hybrid);
  const StreamResult r_hybrid = run_one_pass(g, oms_hybrid, 1);

  // Hashed layers do not visit neighbors, so the hybrid run pays only the
  // top-layer gather (one full neighbor scan). The full run pays that scan
  // plus the shrinking frontier on the two deeper layers — more than the
  // hybrid but at most the pre-frontier 3x bound.
  EXPECT_GE(r_full.work.neighbor_visits, r_hybrid.work.neighbor_visits);
  EXPECT_LE(r_full.work.neighbor_visits, 3 * r_hybrid.work.neighbor_visits);
  EXPECT_EQ(r_hybrid.work.neighbor_visits, g.num_arcs());
  EXPECT_LT(r_hybrid.work.score_evaluations, r_full.work.score_evaluations);
  // Quality degrades (Theorem 3's trade-off) but balance must hold.
  verify_partition(g, r_hybrid.assignment, topo.num_pes());
  EXPECT_TRUE(is_balanced(g, r_hybrid.assignment, topo.num_pes(), 0.03));
  EXPECT_GE(edge_cut(g, r_hybrid.assignment), edge_cut(g, r_full.assignment));
}

TEST(Oms, AllHashedEqualsQualityLayersZero) {
  const CsrGraph g = gen::grid_2d(40, 40);
  OmsConfig hashed = default_config();
  hashed.quality_layers = 0;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                         BlockId{16}, hashed);
  const StreamResult r = run_one_pass(g, oms, 1);
  EXPECT_EQ(r.work.neighbor_visits, 0u);
  verify_partition(g, r.assignment, 16);
  EXPECT_TRUE(is_balanced(g, r.assignment, 16, 0.03));
}

TEST(Oms, LdgScorerWorksAndBalances) {
  const CsrGraph g = gen::random_geometric(3000, 31);
  OmsConfig config = default_config();
  config.scorer = ScorerKind::kLdg;
  const SystemHierarchy topo = SystemHierarchy::parse("4:8", "1:10");
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  const StreamResult r = run_one_pass(g, oms, 1);
  verify_partition(g, r.assignment, 32);
  EXPECT_TRUE(is_balanced(g, r.assignment, 32, 0.03));
}

TEST(Oms, SequentialRunsAreDeterministic) {
  const CsrGraph g = gen::rmat(10, 6, 3);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4", "1:10");
  OnlineMultisection a(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                       default_config());
  OnlineMultisection b(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                       default_config());
  EXPECT_EQ(run_one_pass(g, a, 1).assignment, run_one_pass(g, b, 1).assignment);
}

TEST(NhOms, WorkCountersMatchTheoremFourShape) {
  // For base b and k = b^h, score evaluations are <= n * b * height and
  // neighbor visits <= m_arcs * height — the O((m + nb) log_b k) bound.
  const CsrGraph g = gen::barabasi_albert(2000, 4, 13);
  const BlockId k = 64;
  OmsConfig config = default_config();
  config.base = 4;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                         config);
  const StreamResult r = run_one_pass(g, oms, 1);
  const auto height = static_cast<std::uint64_t>(oms.tree().height());
  EXPECT_EQ(height, 3u); // 4^3 = 64
  EXPECT_LE(r.work.score_evaluations,
            static_cast<std::uint64_t>(g.num_nodes()) * 4 * height);
  // The shrinking-frontier gather scans every arc once at the top layer and
  // only surviving (already-assigned, same-subtree) pairs below, so neighbor
  // work sits between m and Theorem 2's m * l bound.
  EXPECT_GE(r.work.neighbor_visits, g.num_arcs());
  EXPECT_LE(r.work.neighbor_visits, g.num_arcs() * height);
  EXPECT_EQ(r.work.layers_traversed,
            static_cast<std::uint64_t>(g.num_nodes()) * height);
}

TEST(NhOms, AsymptoticallyCheaperThanFennelForLargeK) {
  const CsrGraph g = gen::barabasi_albert(3000, 4, 17);
  const BlockId k = 1024;
  PartitionConfig pc;
  pc.k = k;
  FennelPartitioner fennel(g.num_nodes(), g.num_edges(), g.total_node_weight(), pc);
  const StreamResult rf = run_one_pass(g, fennel, 1);

  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                         default_config());
  const StreamResult ro = run_one_pass(g, oms, 1);

  // Fennel: n*k = 3.07M score evals. OMS (b=4): n * 4 * log_4(1024) = 60k.
  EXPECT_GT(rf.work.score_evaluations, 10 * ro.work.score_evaluations);
}

TEST(Oms, StateBytesIsOrderNPlusK) {
  const NodeId n = 50000;
  const SystemHierarchy topo = SystemHierarchy::parse("4:16:8", "1:10:100");
  OnlineMultisection oms(n, 100000, n, topo, default_config());
  // Theorem 1: O(n + k) memory. The per-block constant covers one padded
  // cache line of weight (contention-free layout) plus the tree block with
  // its precomputed descent accelerators; Lemma 1 bounds the tree at 2k
  // blocks.
  const std::uint64_t k = static_cast<std::uint64_t>(topo.num_pes());
  EXPECT_LE(oms.state_bytes(),
            n * sizeof(BlockId) + 2 * k * (64 + sizeof(MultisectionTree::Block)));
}

TEST(Oms, UnassignRemovesWeightAlongFullPath) {
  const CsrGraph g = testing::path_graph(16);
  const SystemHierarchy topo = SystemHierarchy::parse("2:2", "1:10");
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         default_config());
  (void)run_one_pass(g, oms, 1);
  // Note: take_assignment() moved the vector out; rebuild the state.
  OnlineMultisection fresh(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                           default_config());
  WorkCounters counters;
  fresh.prepare(1);
  for (NodeId u = 0; u < 16; ++u) {
    fresh.assign({u, 1, g.neighbors(u), g.incident_weights(u)}, 0, counters);
  }
  NodeWeight total_before = 0;
  for (std::size_t id = 1; id <= 2; ++id) { // the two depth-1 blocks
    total_before += fresh.tree_block_weight(id);
  }
  EXPECT_EQ(total_before, 16);
  fresh.unassign(0, 1);
  NodeWeight total_after = 0;
  for (std::size_t id = 1; id <= 2; ++id) {
    total_after += fresh.tree_block_weight(id);
  }
  EXPECT_EQ(total_after, 15);
  EXPECT_EQ(fresh.block_of(0), kInvalidBlock);
}

TEST(NhOms, SingleBlockDegenerate) {
  const CsrGraph g = testing::cycle_graph(10);
  OmsConfig config = default_config();
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                         BlockId{1}, config);
  const StreamResult r = run_one_pass(g, oms, 1);
  for (const BlockId b : r.assignment) {
    EXPECT_EQ(b, 0);
  }
}

// ---------------------------------------------------------------------------
// The paper's central structural claim (Section 3.1): the online algorithm
// produces exactly the same result as the l-pass offline multi-section.
// ---------------------------------------------------------------------------

using EquivalenceParams = std::tuple<int, int, bool>;

class OnlineOfflineEquivalence : public ::testing::TestWithParam<EquivalenceParams> {};

TEST_P(OnlineOfflineEquivalence, BitForBitEqual) {
  const auto [graph_kind, config_kind, use_hierarchy] = GetParam();

  CsrGraph g = [&]() -> CsrGraph {
    switch (graph_kind) {
      case 0: return gen::grid_2d(25, 25);
      case 1: return gen::barabasi_albert(800, 3, 7);
      case 2: return gen::random_geometric(700, 11);
      default: return gen::rmat(9, 5, 2);
    }
  }();

  OmsConfig config;
  config.epsilon = 0.03;
  config.seed = 42;
  switch (config_kind) {
    case 0: break; // tuned defaults (Fennel, adapted alpha, b = 4)
    case 1: config.scorer = ScorerKind::kLdg; break;
    case 2: config.adapted_alpha = false; break;
    case 3: config.quality_layers = 1; break; // hybrid with hashing below
    default: config.base = 2; break;
  }

  std::vector<BlockId> online;
  std::vector<BlockId> offline;
  if (use_hierarchy) {
    const SystemHierarchy topo = SystemHierarchy::parse("4:4:2", "1:10:100");
    OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                           config);
    online = run_one_pass(g, oms, 1).assignment;
    OnlineMultisection ref(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                           config);
    offline = ref.run_offline_multipass(g);
  } else {
    const BlockId k = 24; // not a power of the base: heterogeneous tree
    OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                           config);
    online = run_one_pass(g, oms, 1).assignment;
    OnlineMultisection ref(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                           config);
    offline = ref.run_offline_multipass(g);
  }
  EXPECT_EQ(online, offline);
}

std::string equivalence_case_name(const ::testing::TestParamInfo<EquivalenceParams>& info) {
  static constexpr const char* kGraphs[] = {"grid", "ba", "rgg", "rmat"};
  static constexpr const char* kConfigs[] = {"default", "ldg", "vanilla_alpha",
                                             "hybrid", "base2"};
  return std::string(kGraphs[std::get<0>(info.param)]) + "_" +
         kConfigs[std::get<1>(info.param)] + "_" +
         (std::get<2>(info.param) ? "mapping" : "partitioning");
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, OnlineOfflineEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),  // graphs
                       ::testing::Values(0, 1, 2, 3, 4), // configs
                       ::testing::Bool()),              // hierarchy vs b-section
    equivalence_case_name);

// ---------------------------------------------------------------------------
// Parameterized balance sweep: every (k, base, epsilon) combination must
// produce a balanced, complete partition.
// ---------------------------------------------------------------------------

using SweepParams = std::tuple<BlockId, int, double>;

class NhOmsSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(NhOmsSweep, BalancedAndComplete) {
  const auto [k, base, epsilon] = GetParam();
  const CsrGraph g = gen::barabasi_albert(2500, 4, 3);
  OmsConfig config;
  config.epsilon = epsilon;
  config.base = base;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                         config);
  const StreamResult r = run_one_pass(g, oms, 1);
  verify_partition(g, r.assignment, k);
  EXPECT_TRUE(is_balanced(g, r.assignment, k, epsilon));
  EXPECT_EQ(num_non_empty_blocks(r.assignment, k), std::min<BlockId>(k, 2500));
}

std::string sweep_case_name(const ::testing::TestParamInfo<SweepParams>& info) {
  return "k" + std::to_string(std::get<0>(info.param)) + "_b" +
         std::to_string(std::get<1>(info.param)) + "_eps" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
}

INSTANTIATE_TEST_SUITE_P(
    KBaseEpsilon, NhOmsSweep,
    ::testing::Combine(::testing::Values<BlockId>(2, 5, 16, 100, 128),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(0.03, 0.1)),
    sweep_case_name);

} // namespace
} // namespace oms
