/// Deep and degenerate hierarchy coverage: the paper's complexity results
/// (Corollary 1) are about hierarchies with many levels — these tests push
/// the multi-section through deep binary hierarchies, mixed extents with
/// ones, and both orderings of wide/narrow levels.
#include <gtest/gtest.h>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"

namespace oms {
namespace {

std::vector<BlockId> run_oms(const CsrGraph& g, const SystemHierarchy& topo) {
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  return run_one_pass(g, oms, 1).assignment;
}

TEST(DeepHierarchy, BinaryTenLevels) {
  // 2^10 = 1024 PEs via a 10-level binary hierarchy (Corollary 1's setting).
  const CsrGraph g = gen::barabasi_albert(30000, 4, 3);
  const std::vector<std::int64_t> extents(10, 2);
  const std::vector<std::int64_t> distances{1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  const SystemHierarchy topo(extents, distances);
  EXPECT_EQ(topo.num_pes(), 1024);

  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  EXPECT_EQ(oms.tree().height(), 10);
  // Lemma 1: sum over layers = 2 + 4 + ... + 1024 = 2046 <= 2k.
  EXPECT_EQ(oms.tree().num_non_root_blocks(), 2046u);

  const StreamResult r = run_one_pass(g, oms, 1);
  verify_partition(g, r.assignment, 1024);
  EXPECT_TRUE(is_balanced(g, r.assignment, 1024, config.epsilon));
  // Theorem 2 work shape: n * sum(a_i) = n * 20 score evaluations at most.
  EXPECT_LE(r.work.score_evaluations, static_cast<std::uint64_t>(g.num_nodes()) * 20);
}

TEST(DeepHierarchy, OnesInterleavedAreTransparent) {
  // S = 1:4:1:4:1 must behave exactly like S = 4:4 (pass-through levels).
  const CsrGraph g = gen::random_geometric(4000, 9);
  const SystemHierarchy with_ones({1, 4, 1, 4, 1}, {1, 2, 3, 4, 5});
  const SystemHierarchy plain({4, 4}, {2, 4});
  EXPECT_EQ(with_ones.num_pes(), plain.num_pes());
  EXPECT_EQ(run_oms(g, with_ones), run_oms(g, plain));
}

TEST(DeepHierarchy, WideVsNarrowOrderingsDiffer) {
  // 4:16 vs 16:4 cover the same k = 64 but different module structure; both
  // must be valid/balanced, and generally produce different mappings.
  const CsrGraph g = gen::random_geometric(5000, 21);
  const SystemHierarchy wide_inner({16, 4}, {1, 10});
  const SystemHierarchy narrow_inner({4, 16}, {1, 10});
  const auto a = run_oms(g, wide_inner);
  const auto b = run_oms(g, narrow_inner);
  verify_partition(g, a, 64);
  verify_partition(g, b, 64);
  EXPECT_TRUE(is_balanced(g, a, 64, 0.03));
  EXPECT_TRUE(is_balanced(g, b, 64, 0.03));
  EXPECT_NE(a, b);
}

TEST(DeepHierarchy, MixedExtentsMatchK) {
  const CsrGraph g = gen::barabasi_albert(6000, 3, 5);
  for (const auto& extents :
       {std::vector<std::int64_t>{2, 3, 4}, std::vector<std::int64_t>{5, 2, 2},
        std::vector<std::int64_t>{3, 3, 3, 3}}) {
    std::vector<std::int64_t> distances(extents.size());
    for (std::size_t i = 0; i < distances.size(); ++i) {
      distances[i] = static_cast<std::int64_t>(i) + 1;
    }
    const SystemHierarchy topo(extents, distances);
    const auto assignment = run_oms(g, topo);
    verify_partition(g, assignment, topo.num_pes());
    EXPECT_TRUE(is_balanced(g, assignment, topo.num_pes(), 0.03))
        << topo.to_string();
    EXPECT_EQ(num_non_empty_blocks(assignment, topo.num_pes()), topo.num_pes());
  }
}

} // namespace
} // namespace oms
