#include <gtest/gtest.h>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"

namespace oms {
namespace {

/// Parallel streaming is non-deterministic by design (Section 3.4); these
/// tests check the invariants that must survive any interleaving.
class OmsParallel : public ::testing::TestWithParam<int> {};

TEST_P(OmsParallel, MappingModeInvariants) {
  const int threads = GetParam();
  const CsrGraph g = gen::barabasi_albert(20000, 5, 3);
  const SystemHierarchy topo = SystemHierarchy::parse("4:16:2", "1:10:100");
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  const StreamResult r = run_one_pass(g, oms, threads);

  verify_partition(g, r.assignment, topo.num_pes());
  // The paper accepts rare transient overshoot under parallelism; allow a
  // small slack above the sequential 3% bound.
  EXPECT_TRUE(is_balanced(g, r.assignment, topo.num_pes(), 0.05));
  // Work totals are interleaving-independent.
  EXPECT_EQ(r.work.layers_traversed,
            static_cast<std::uint64_t>(g.num_nodes()) * 3);
}

TEST_P(OmsParallel, PartitioningModeInvariants) {
  const int threads = GetParam();
  const CsrGraph g = gen::grid_2d(120, 120);
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                         BlockId{64}, config);
  const StreamResult r = run_one_pass(g, oms, threads);
  verify_partition(g, r.assignment, 64);
  EXPECT_TRUE(is_balanced(g, r.assignment, 64, 0.05));
}

TEST_P(OmsParallel, TreeWeightTotalsMatchNodeWeight) {
  const int threads = GetParam();
  const CsrGraph g = gen::random_geometric(15000, 5);
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                         BlockId{32}, config);
  (void)run_one_pass(g, oms, threads);
  // Every depth-1 layer must have absorbed the full node weight exactly —
  // atomic adds make the sum lossless regardless of scheduling.
  const auto& tree = oms.tree();
  NodeWeight top_layer_sum = 0;
  for (std::int32_t c = 0; c < tree.root().num_children; ++c) {
    top_layer_sum += oms.tree_block_weight(
        static_cast<std::size_t>(tree.root().first_child + c));
  }
  EXPECT_EQ(top_layer_sum, g.total_node_weight());
}

INSTANTIATE_TEST_SUITE_P(Threads, OmsParallel, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "t" + std::to_string(param_info.param);
                         });

} // namespace
} // namespace oms
