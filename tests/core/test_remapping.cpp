#include "oms/core/remapping.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/metrics.hpp"

namespace oms {
namespace {

TEST(Remapping, TracksOneCutPerPass) {
  const CsrGraph g = gen::random_geometric(1500, 3);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4", "1:10");
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  const RemapResult r = remap_multisection(g, oms, 4);
  EXPECT_EQ(r.cut_per_pass.size(), 4u);
  verify_partition(g, r.assignment, 16);
  EXPECT_EQ(edge_cut(g, r.assignment), r.cut_per_pass.back());
}

TEST(Remapping, ImprovesCutOnLocalityFriendlyGraphs) {
  const CsrGraph g = gen::grid_2d(40, 40);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4", "1:10");
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  const RemapResult r = remap_multisection(g, oms, 5);
  EXPECT_LT(r.cut_per_pass.back(), r.cut_per_pass.front());
}

TEST(Remapping, ImprovesMappingObjective) {
  const CsrGraph g = gen::random_geometric(3000, 11);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:2", "1:10:100");

  OmsConfig config;
  OnlineMultisection one_pass(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                              topo, config);
  const RemapResult single = remap_multisection(g, one_pass, 1);

  OnlineMultisection restreamed(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                                topo, config);
  const RemapResult multi = remap_multisection(g, restreamed, 4);

  EXPECT_LT(mapping_cost(g, topo, multi.assignment),
            mapping_cost(g, topo, single.assignment));
}

TEST(Remapping, StaysBalancedAcrossPasses) {
  const CsrGraph g = gen::barabasi_albert(2500, 4, 7);
  const SystemHierarchy topo = SystemHierarchy::parse("4:16:1", "1:10:100");
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  const RemapResult r = remap_multisection(g, oms, 3);
  EXPECT_TRUE(is_balanced(g, r.assignment, topo.num_pes(), config.epsilon));
}

TEST(Remapping, OnePassEqualsPlainStreaming) {
  const CsrGraph g = gen::rmat(10, 4, 5);
  const BlockId k = 24;
  OmsConfig config;
  OnlineMultisection via_remap(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                               k, config);
  const RemapResult r = remap_multisection(g, via_remap, 1);

  OnlineMultisection plain(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                           config);
  const StreamResult s = run_one_pass(g, plain, 1);
  EXPECT_EQ(r.assignment, s.assignment);
}

TEST(Remapping, TreeWeightsStayConsistent) {
  // After any number of unassign/assign cycles, the weight of the top layer
  // must equal the total node weight exactly.
  const CsrGraph g = gen::random_geometric(1200, 17);
  const SystemHierarchy topo = SystemHierarchy::parse("2:2:2", "1:2:4");
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  (void)remap_multisection(g, oms, 3);
  NodeWeight top = 0;
  for (std::int32_t c = 0; c < oms.tree().root().num_children; ++c) {
    top += oms.tree_block_weight(
        static_cast<std::size_t>(oms.tree().root().first_child + c));
  }
  EXPECT_EQ(top, g.total_node_weight());
}

} // namespace
} // namespace oms
