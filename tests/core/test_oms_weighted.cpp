/// Weighted-graph coverage: the paper's benchmark graphs are unit-weighted,
/// but the algorithms are defined over c(v) and omega(e); these tests pin
/// down the weighted semantics (capacity in weight units, attraction in edge
/// weight) across the whole streaming family.
#include <gtest/gtest.h>

#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/graph_builder.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/util/random.hpp"

namespace oms {
namespace {

/// Random geometric graph with node weights 1..5 and edge weights 1..9.
CsrGraph weighted_test_graph(NodeId n, std::uint64_t seed) {
  const CsrGraph base = gen::random_geometric(n, seed);
  Rng rng(seed ^ 0xabcdef);
  GraphBuilder builder(base.num_nodes());
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    builder.set_node_weight(u, 1 + static_cast<NodeWeight>(rng.next_below(5)));
    for (std::size_t i = 0; i < base.neighbors(u).size(); ++i) {
      const NodeId v = base.neighbors(u)[i];
      if (u < v) {
        builder.add_edge(u, v, 1 + static_cast<EdgeWeight>(rng.next_below(9)));
      }
    }
  }
  return std::move(builder).build();
}

TEST(WeightedOms, BalanceIsInWeightUnits) {
  // With non-unit weights, no one-pass algorithm can guarantee the strict
  // Lmax bound (a heavy node arriving when every block is nearly full must
  // go somewhere); the standard streaming guarantee is Lmax + wmax. The
  // paper's evaluation sidesteps this by assigning unit weights.
  const CsrGraph g = weighted_test_graph(3000, 7);
  NodeWeight wmax = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    wmax = std::max(wmax, g.node_weight(u));
  }
  for (const BlockId k : {4, 16, 64}) {
    OmsConfig config;
    OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                           config);
    const StreamResult r = run_one_pass(g, oms, 1);
    verify_partition(g, r.assignment, k);
    const NodeWeight lmax =
        max_block_weight(g.total_node_weight(), k, config.epsilon);
    for (const NodeWeight w : block_weights_of(g, r.assignment, k)) {
      EXPECT_LE(w, lmax + wmax) << "k=" << k;
    }
  }
}

TEST(WeightedOms, TreeWeightsSumNodeWeights) {
  const CsrGraph g = weighted_test_graph(1200, 3);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4", "1:10");
  OmsConfig config;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), topo,
                         config);
  (void)run_one_pass(g, oms, 1);
  NodeWeight top = 0;
  for (std::int32_t c = 0; c < oms.tree().root().num_children; ++c) {
    top += oms.tree_block_weight(
        static_cast<std::size_t>(oms.tree().root().first_child + c));
  }
  EXPECT_EQ(top, g.total_node_weight());
}

TEST(WeightedOms, OnlineOfflineEquivalenceSurvivesWeights) {
  const CsrGraph g = weighted_test_graph(900, 11);
  OmsConfig config;
  config.seed = 5;
  OnlineMultisection online(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                            BlockId{24}, config);
  const std::vector<BlockId> a = run_one_pass(g, online, 1).assignment;
  OnlineMultisection offline(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                             BlockId{24}, config);
  EXPECT_EQ(a, offline.run_offline_multipass(g));
}

TEST(WeightedOms, HeavyEdgesDominateAttraction) {
  // 0-1 with weight 100 vs 0-2 with weight 1; after 0 lands, 1 must join it
  // while the streamed graph stays tiny enough that capacity allows it.
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 100);
  builder.add_edge(0, 2, 1);
  builder.add_edge(2, 3, 1);
  const CsrGraph g = std::move(builder).build();
  OmsConfig config;
  config.epsilon = 1.0; // capacity never binds in this toy
  config.alpha_override = 0.01;
  OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                         BlockId{2}, config);
  const StreamResult r = run_one_pass(g, oms, 1);
  EXPECT_EQ(r.assignment[1], r.assignment[0]);
}

TEST(WeightedBaselines, FennelAndLdgRespectWeightedBalance) {
  const CsrGraph g = weighted_test_graph(2500, 19);
  PartitionConfig pc;
  pc.k = 32;
  FennelPartitioner fennel(g.num_nodes(), g.num_edges(), g.total_node_weight(), pc);
  EXPECT_TRUE(is_balanced(g, run_one_pass(g, fennel, 1).assignment, 32, pc.epsilon));
  LdgPartitioner ldg(g.num_nodes(), g.total_node_weight(), pc);
  EXPECT_TRUE(is_balanced(g, run_one_pass(g, ldg, 1).assignment, 32, pc.epsilon));
}

TEST(WeightedBuffered, BalanceInWeightUnits) {
  const CsrGraph g = weighted_test_graph(2000, 23);
  BufferedConfig config;
  const BufferedResult r = buffered_partition(g, 16, config);
  verify_partition(g, r.assignment, 16);
  EXPECT_TRUE(is_balanced(g, r.assignment, 16, config.epsilon));
}

TEST(WeightedCut, UsesEdgeWeights) {
  const CsrGraph g = weighted_test_graph(500, 29);
  std::vector<BlockId> partition(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    partition[u] = static_cast<BlockId>(u % 2);
  }
  // Weighted cut differs from the unweighted crossing count unless all
  // crossing edges happen to have weight 1 (vanishingly unlikely here).
  Cost crossing_count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v && partition[u] != partition[v]) {
        ++crossing_count;
      }
    }
  }
  EXPECT_GT(edge_cut(g, partition), crossing_count);
}

} // namespace
} // namespace oms
