#include "oms/stream/window_partitioner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/metis_stream.hpp"
#include "oms/stream/pipeline.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

using testing::fnv1a;

TEST(Window, AssignsEveryNodeBalanced) {
  const CsrGraph g = gen::random_geometric(2000, 3);
  for (const BlockId k : {2, 8, 32}) {
    WindowConfig config;
    WindowPartitioner p(g.num_nodes(), g.total_node_weight(), config, k);
    const StreamResult r = run_one_pass(g, p, 1);
    verify_partition(g, r.assignment, k);
    EXPECT_TRUE(is_balanced(g, r.assignment, k, config.epsilon)) << "k=" << k;
  }
}

TEST(Window, WindowOfOneEqualsLdg) {
  // A 1-node window commits each node right as the next arrives — exactly
  // LDG's information set, so the partitions must coincide.
  const CsrGraph g = gen::barabasi_albert(1200, 3, 5);
  const BlockId k = 8;
  WindowConfig wc;
  wc.window_size = 1;
  WindowPartitioner window(g.num_nodes(), g.total_node_weight(), wc, k);
  const StreamResult wr = run_one_pass(g, window, 1);

  PartitionConfig pc;
  pc.k = k;
  pc.epsilon = wc.epsilon;
  LdgPartitioner ldg(g.num_nodes(), g.total_node_weight(), pc);
  const StreamResult lr = run_one_pass(g, ldg, 1);
  EXPECT_EQ(wr.assignment, lr.assignment);
}

TEST(Window, DelayHelpsOnForwardEdges) {
  // Path graph streamed forward: with no window, node u only ever sees u-1
  // assigned; a window lets u's decision happen after u+1..u+w arrived, so
  // consecutive runs land in the same block more often near block borders.
  const CsrGraph g = testing::path_graph(600);
  const BlockId k = 6;
  WindowConfig small;
  small.window_size = 1;
  WindowConfig large;
  large.window_size = 128;
  WindowPartitioner p_small(g.num_nodes(), g.total_node_weight(), small, k);
  WindowPartitioner p_large(g.num_nodes(), g.total_node_weight(), large, k);
  const Cost cut_small = edge_cut(g, run_one_pass(g, p_small, 1).assignment);
  const Cost cut_large = edge_cut(g, run_one_pass(g, p_large, 1).assignment);
  EXPECT_LE(cut_large, cut_small + 1); // never meaningfully worse on a path
}

TEST(Window, DrainsRemainderAtTakeAssignment) {
  const CsrGraph g = testing::path_graph(100);
  WindowConfig config;
  config.window_size = 64; // larger than the remainder after the last flush
  WindowPartitioner p(g.num_nodes(), g.total_node_weight(), config, 4);
  const StreamResult r = run_one_pass(g, p, 1);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_NE(r.assignment[u], kInvalidBlock) << u;
  }
}

/// The window stores each delayed node's adjacency in its ring, so it runs
/// one-pass from disk like the undelayed algorithms — and must make the
/// exact same decisions it makes in memory.
TEST(Window, DiskMatchesInMemory) {
  const CsrGraph g = gen::barabasi_albert(3000, 4, 9);
  const std::string path = ::testing::TempDir() + "/oms_window_disk.graph";
  write_metis(g, path);
  const BlockId k = 12;
  for (const NodeId window_size : {1u, 64u, 1024u, 4096u}) {
    WindowConfig config;
    config.window_size = window_size;
    WindowPartitioner in_memory(g.num_nodes(), g.total_node_weight(), config, k);
    const StreamResult memory = run_one_pass(g, in_memory, 1);

    WindowPartitioner from_disk(g.num_nodes(), g.total_node_weight(), config, k);
    const StreamResult disk = run_one_pass_from_file(path, from_disk);
    EXPECT_EQ(memory.assignment, disk.assignment) << "w=" << window_size;

    WindowPartitioner pipelined(g.num_nodes(), g.total_node_weight(), config, k);
    PipelineConfig pipeline; // 1 consumer: stream order preserved exactly
    pipeline.batch_nodes = 256;
    const StreamResult piped = run_one_pass_from_file(path, pipelined, pipeline);
    EXPECT_EQ(memory.assignment, piped.assignment)
        << "w=" << window_size << " (pipelined)";
  }
  std::remove(path.c_str());
}

// Golden hash pinning the window algorithm's output bit-for-bit (the ring
// rewrite must keep reproducing the original deque implementation's
// decisions). Regenerate only for *intentional* algorithm changes.
TEST(WindowGolden, DefaultsOnBarabasiAlbert) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  WindowConfig config;
  WindowPartitioner p(ba.num_nodes(), ba.total_node_weight(), config, 24);
  EXPECT_EQ(fnv1a(run_one_pass(ba, p, 1).assignment), 0x0603467191294bfcULL);
}

TEST(WindowDeath, RejectsParallelDrivers) {
  const CsrGraph g = testing::path_graph(64);
  WindowConfig config;
  WindowPartitioner p(g.num_nodes(), g.total_node_weight(), config, 2);
  EXPECT_DEATH((void)run_one_pass(g, p, 4), "sequential");
}

} // namespace
} // namespace oms
