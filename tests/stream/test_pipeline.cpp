/// \file test_pipeline.cpp
/// \brief The pipelined disk driver must change *when* work happens, never
///        *what* is decided: single-consumer runs are bit-identical to the
///        sequential file driver across batch/ring geometries; multi-consumer
///        runs keep the parallel driver's coverage and overshoot invariants;
///        an IoError raised mid-stream surfaces on the caller instead of
///        deadlocking; fill_batch survives rewind() and batch seams.
#include "oms/stream/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/graph_builder.hpp"
#include "oms/graph/io.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_text(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  ASSERT_TRUE(out.good());
}

CsrGraph weighted_fixture(NodeId n) {
  Rng rng(2026);
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    builder.set_node_weight(u, 1 + static_cast<NodeWeight>(rng.next_below(5)));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (int d = 0; d < 3; ++d) {
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (v != u) {
        builder.add_edge(u, v, 1 + static_cast<EdgeWeight>(rng.next_below(7)));
      }
    }
  }
  return std::move(builder).build();
}

std::unique_ptr<FennelPartitioner> fennel_for(const CsrGraph& g, BlockId k) {
  PartitionConfig pc;
  pc.k = k;
  return std::make_unique<FennelPartitioner>(g.num_nodes(), g.num_edges(),
                                             g.total_node_weight(), pc);
}

// ---------------------------------------------------------------------------
// Decision parity: one consumer == sequential file driver, bit for bit.
// ---------------------------------------------------------------------------

TEST(Pipeline, SingleConsumerMatchesSequentialAcrossGeometries) {
  const CsrGraph g = gen::barabasi_albert(800, 4, 13);
  const std::string path = temp_path("oms_pipeline_parity.graph");
  write_metis(g, path);

  auto sequential = fennel_for(g, 7);
  const StreamResult expected = run_one_pass_from_file(path, *sequential);

  // Degenerate geometries force every seam: single-node batches, a one-slot
  // ring (strict ping-pong), an arc cap that closes batches early, a reader
  // buffer far smaller than a line.
  struct Geometry {
    std::size_t batch_nodes, batch_arcs, ring, buffer;
  };
  for (const Geometry geo : {Geometry{1, 0, 1, 64}, Geometry{3, 0, 2, 64},
                             Geometry{64, 16, 2, 256}, Geometry{4096, 0, 4, 1 << 16},
                             Geometry{1024, 1 << 18, 8, 1 << 18}}) {
    SCOPED_TRACE("batch=" + std::to_string(geo.batch_nodes) +
                 " arcs=" + std::to_string(geo.batch_arcs) +
                 " ring=" + std::to_string(geo.ring) +
                 " buffer=" + std::to_string(geo.buffer));
    PipelineConfig config;
    config.assign_threads = 1;
    config.batch_nodes = geo.batch_nodes;
    config.batch_arcs = geo.batch_arcs;
    config.ring_batches = geo.ring;
    config.reader_buffer_bytes = geo.buffer;
    auto pipelined = fennel_for(g, 7);
    const StreamResult got = run_one_pass_from_file(path, *pipelined, config);
    EXPECT_EQ(got.assignment, expected.assignment);
    EXPECT_EQ(got.work.score_evaluations, expected.work.score_evaluations);
  }
  std::remove(path.c_str());
}

TEST(Pipeline, SingleConsumerMatchesSequentialOnWeightedOms) {
  const CsrGraph g = weighted_fixture(600);
  const std::string path = temp_path("oms_pipeline_weighted.graph");
  write_metis(g, path);

  OmsConfig oc;
  OnlineMultisection sequential(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                                BlockId{24}, oc);
  const StreamResult expected = run_one_pass_from_file(path, sequential);

  PipelineConfig config;
  config.batch_nodes = 37; // misaligned with n on purpose
  OnlineMultisection pipelined(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                               BlockId{24}, oc);
  const StreamResult got = run_one_pass_from_file(path, pipelined, config);
  EXPECT_EQ(got.assignment, expected.assignment);
  std::remove(path.c_str());
}

TEST(Pipeline, CommentsIsolatedNodesAndMissingTrailingLines) {
  // The batch boundary must not disturb the line-level quirks of the format.
  const std::string path = temp_path("oms_pipeline_quirks.graph");
  write_text(path,
             "% leading comment\n"
             "5 2\n"
             "2\n"
             "1 3\n"
             "\n"
             "% comment\n"
             "2\n");
  auto assigner = [] {
    PartitionConfig pc;
    pc.k = 2;
    return std::make_unique<FennelPartitioner>(5, 2, 5, pc);
  };
  auto sequential = assigner();
  const StreamResult expected = run_one_pass_from_file(path, *sequential);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    PipelineConfig config;
    config.batch_nodes = batch;
    config.ring_batches = 1;
    auto pipelined = assigner();
    const StreamResult got = run_one_pass_from_file(path, *pipelined, config);
    EXPECT_EQ(got.assignment, expected.assignment) << "batch=" << batch;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Multi-consumer: same invariants as the in-memory parallel driver.
// ---------------------------------------------------------------------------

TEST(Pipeline, MultiConsumerIsCoveredAndBalanced) {
  const CsrGraph g = gen::barabasi_albert(20000, 5, 17);
  const std::string path = temp_path("oms_pipeline_parallel.graph");
  write_metis(g, path);
  const BlockId k = 32;

  for (const int threads : {2, 4}) {
    OmsConfig config;
    OnlineMultisection oms(g.num_nodes(), g.num_edges(), g.total_node_weight(), k,
                           config);
    PipelineConfig pipeline;
    pipeline.assign_threads = threads;
    pipeline.batch_nodes = 1024;
    const StreamResult r = run_one_pass_from_file(path, oms, pipeline);
    verify_partition(g, r.assignment, k);

    const NodeWeight lmax =
        max_block_weight(g.total_node_weight(), k, config.epsilon);
    const auto cap = block_weights_of(g, r.assignment, k);
    for (BlockId b = 0; b < k; ++b) {
      EXPECT_LE(cap[static_cast<std::size_t>(b)], lmax + threads)
          << "block " << b << " overshot the parallel bound (threads=" << threads
          << ")";
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Failure paths: IoError mid-stream must surface, not deadlock or abort.
// ---------------------------------------------------------------------------

TEST(Pipeline, IoErrorMidStreamSurfacesOnCaller) {
  // 200 well-formed nodes, then garbage, with tiny batches and a one-slot
  // ring so the error strikes while consumers are busy and the producer is
  // backpressured.
  const NodeId n = 201;
  std::string content = std::to_string(n) + " 0\n";
  for (NodeId u = 0; u < n - 1; ++u) {
    content += "\n";
  }
  content += "garbage\n";
  const std::string path = temp_path("oms_pipeline_ioerror.graph");
  write_text(path, content);

  PartitionConfig pc;
  pc.k = 2;
  FennelPartitioner fennel(n, 0, n, pc);
  PipelineConfig config;
  config.batch_nodes = 8;
  config.ring_batches = 1;
  EXPECT_THROW((void)run_one_pass_from_file(path, fennel, config), IoError);
  std::remove(path.c_str());
}

TEST(Pipeline, IoErrorInHeaderSurfacesBeforeThreadsSpawn) {
  const std::string path = temp_path("oms_pipeline_badheader.graph");
  write_text(path, "not a header\n");
  PartitionConfig pc;
  pc.k = 2;
  FennelPartitioner fennel(4, 0, 4, pc);
  EXPECT_THROW((void)run_one_pass_from_file(path, fennel, PipelineConfig{}), IoError);
  std::remove(path.c_str());
}

/// An assigner that fails mid-pass: the consumer-side exception must
/// propagate to the caller and unblock the producer (no deadlock).
class ThrowingAssigner final : public OnePassAssigner {
public:
  explicit ThrowingAssigner(NodeId fail_at) : fail_at_(fail_at) {}
  void prepare(int) override {}
  BlockId assign(const StreamedNode& node, int, WorkCounters&) override {
    if (node.id >= fail_at_) {
      throw std::runtime_error("assigner failure injection");
    }
    return 0;
  }
  [[nodiscard]] BlockId block_of(NodeId) const override { return 0; }
  [[nodiscard]] BlockId num_blocks() const override { return 1; }
  [[nodiscard]] std::vector<BlockId> take_assignment() override { return {}; }

private:
  NodeId fail_at_;
};

TEST(Pipeline, ConsumerExceptionUnblocksProducer) {
  const CsrGraph g = gen::grid_2d(40, 40);
  const std::string path = temp_path("oms_pipeline_consumerfail.graph");
  write_metis(g, path);
  ThrowingAssigner assigner(64);
  PipelineConfig config;
  config.batch_nodes = 16;
  config.ring_batches = 1; // maximal backpressure on the producer
  EXPECT_THROW((void)run_one_pass_from_file(path, assigner, config),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// fill_batch (the chunk-handoff API) and rewind-after-pipeline parity.
// ---------------------------------------------------------------------------

TEST(Pipeline, FillBatchRewindReplaysIdentically) {
  const CsrGraph g = weighted_fixture(300);
  const std::string path = temp_path("oms_pipeline_rewind.graph");
  write_metis(g, path);

  const auto drain = [](MetisNodeStream& stream) {
    std::vector<std::vector<NodeId>> adjacency;
    std::vector<NodeWeight> weights;
    NodeBatch batch;
    while (stream.fill_batch(batch, 17, 64) > 0) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const StreamedNode node = batch.node(i);
        EXPECT_EQ(node.id, adjacency.size());
        adjacency.emplace_back(node.neighbors.begin(), node.neighbors.end());
        weights.push_back(node.weight);
      }
    }
    return std::make_pair(adjacency, weights);
  };

  MetisNodeStream stream(path, 128);
  const auto first = drain(stream);
  EXPECT_EQ(first.first.size(), g.num_nodes());
  stream.rewind();
  const auto second = drain(stream);
  EXPECT_EQ(first, second);

  // Restream mixing the two APIs: batches first, node-at-a-time after rewind.
  stream.rewind();
  StreamedNode node{};
  NodeId count = 0;
  while (stream.next(node)) {
    ASSERT_LT(count, g.num_nodes());
    EXPECT_EQ(std::vector<NodeId>(node.neighbors.begin(), node.neighbors.end()),
              first.first[count]);
    EXPECT_EQ(node.weight, first.second[count]);
    ++count;
  }
  EXPECT_EQ(count, g.num_nodes());
  std::remove(path.c_str());
}

TEST(Pipeline, FillBatchHonorsArcCap) {
  const CsrGraph g = testing::star_graph(50); // node 0 has degree 49
  const std::string path = temp_path("oms_pipeline_arccap.graph");
  write_metis(g, path);
  MetisNodeStream stream(path);
  NodeBatch batch;
  // The hub exceeds the cap by itself: the batch must still make progress
  // (one node), never loop or split a node.
  ASSERT_EQ(stream.fill_batch(batch, 100, 8), 1u);
  EXPECT_EQ(batch.node(0).neighbors.size(), 49u);
  // Leaves close the batch once 8 arcs accumulate.
  ASSERT_EQ(stream.fill_batch(batch, 100, 8), 8u);
  EXPECT_EQ(batch.first_id(), 1u);
  std::remove(path.c_str());
}

TEST(Pipeline, EmptyGraphRunsClean) {
  const std::string path = temp_path("oms_pipeline_empty.graph");
  write_text(path, "0 0\n");
  ThrowingAssigner never_assigns(0); // would throw on any node: none arrive
  const StreamResult r =
      run_one_pass_from_file(path, never_assigns, PipelineConfig{});
  EXPECT_TRUE(r.assignment.empty());
  std::remove(path.c_str());
}

} // namespace
} // namespace oms
